//! The eco-serve wire protocol: line-delimited JSON requests and
//! responses.
//!
//! Every request is one JSON object on one line with an `"op"` field:
//!
//! ```text
//! {"op": "run", "id": "r1", "job": {"faulty": "f.v", "golden": "g.v",
//!  "weights": "w.txt", "targets": ["t_0"], "budget": 200000}}
//! {"op": "ping", "id": 2}
//! {"op": "stats", "id": 3}
//! {"op": "shutdown", "id": 4}
//! ```
//!
//! The `"job"` object takes exactly the keys of a batch-manifest entry
//! (`name`, `faulty`, `golden`, `weights`, `targets`, `budget`); paths
//! are resolved against the daemon's working directory, so clients
//! should send absolute paths. `"id"` is an optional string or integer
//! echoed verbatim in the response (defaults to `null`).
//!
//! Every request gets exactly one response line carrying the echoed
//! `id`, `"ok"`, and either the deterministic job-record fields (`run`)
//! or a typed refusal: `"error"` is `"busy"` (admission queue full —
//! retry later), `"draining"` (daemon is shutting down, no new work), or
//! `"bad-request"` (unparseable line or malformed job). Responses to one
//! connection are written in request order, so a replayed request
//! stream yields byte-identical `run` response bytes whatever the worker
//! count (`stats` responses carry live counters and are exempt).

use eco_batch::{job_spec_from_json, json, JobRecord, JobSpec};
use eco_core::{JsonObj, MemoStats};

/// A parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Run one ECO job and respond with its deterministic record.
    Run {
        /// Echo id.
        id: json::Value,
        /// The job to run (manifest-entry keys).
        spec: JobSpec,
    },
    /// Liveness probe.
    Ping {
        /// Echo id.
        id: json::Value,
    },
    /// Live daemon counters (non-deterministic response).
    Stats {
        /// Echo id.
        id: json::Value,
    },
    /// Graceful drain: finish admitted jobs, refuse new ones, exit.
    Shutdown {
        /// Echo id.
        id: json::Value,
    },
}

impl Request {
    /// The request's `op` tag.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Run { .. } => "run",
            Request::Ping { .. } => "ping",
            Request::Stats { .. } => "stats",
            Request::Shutdown { .. } => "shutdown",
        }
    }
}

/// Parses one request line. Any malformed input — truncated JSON, a bad
/// escape, an unknown op, a malformed job — is a typed error for a
/// `bad-request` response, never a panic (the parser is the same
/// hardened subset the batch manifests use).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line)?;
    let json::Value::Obj(fields) = value else {
        return Err(format!("expected a request object, got {}", value.kind()));
    };
    let mut op = None;
    let mut id = json::Value::Null;
    let mut job = None;
    for (key, value) in fields {
        match key.as_str() {
            "op" => match value {
                json::Value::Str(s) => op = Some(s),
                other => return Err(format!("op: expected a string, got {}", other.kind())),
            },
            "id" => match value {
                v @ (json::Value::Str(_) | json::Value::Int(_) | json::Value::Null) => id = v,
                other => {
                    return Err(format!(
                        "id: expected a string, integer or null, got {}",
                        other.kind()
                    ))
                }
            },
            "job" => job = Some(value),
            other => return Err(format!("unknown request key `{other}`")),
        }
    }
    let Some(op) = op else {
        return Err("request is missing the `op` field".into());
    };
    match op.as_str() {
        "run" => {
            let Some(job) = job else {
                return Err("run request is missing the `job` object".into());
            };
            let spec = job_spec_from_json("job", job).map_err(|e| e.to_string())?;
            Ok(Request::Run { id, spec })
        }
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Starts a response object with the echoed id and `ok` flag.
fn response(id: &json::Value, ok: bool) -> JsonObj {
    JsonObj::new().raw("id", &id.to_string()).bool("ok", ok)
}

/// The deterministic `run` response: the echoed id plus exactly the
/// scheduling-independent job-record fields of the batch JSONL report.
pub fn run_response(id: &json::Value, record: &JobRecord) -> String {
    response(id, true)
        .str("op", "run")
        .str("name", &record.name)
        .str("status", record.status.tag())
        .u64("targets", record.targets as u64)
        .u64("patches", record.patches as u64)
        .u64("cost", record.cost)
        .u64("size", record.size)
        .bool("verified", record.verified)
        .str("detail", &record.detail)
        .build()
}

/// A typed refusal (`busy`, `draining`, or `bad-request`).
pub fn refusal(id: &json::Value, error: &str, detail: &str) -> String {
    response(id, false)
        .str("error", error)
        .str("detail", detail)
        .build()
}

/// The `ping` response.
pub fn ping_response(id: &json::Value) -> String {
    response(id, true).str("op", "ping").build()
}

/// The `shutdown` acknowledgment. Sequenced after every earlier
/// response of the connection, so receiving it means all of the
/// client's admitted work is done.
pub fn shutdown_response(id: &json::Value) -> String {
    response(id, true)
        .str("op", "shutdown")
        .bool("draining", true)
        .build()
}

/// Live counters for a `stats` response (non-deterministic; excluded
/// from the byte-identity contract).
pub struct StatsView {
    /// Shared memo-cache counters.
    pub memo: MemoStats,
    /// Jobs currently queued (admitted, not yet running).
    pub queued: usize,
    /// Run jobs completed since startup.
    pub served: u64,
    /// Requests shed with `busy`.
    pub busy: u64,
    /// Worker threads.
    pub workers: usize,
}

/// The `stats` response.
pub fn stats_response(id: &json::Value, view: &StatsView) -> String {
    let memo = JsonObj::new()
        .u64("hits", view.memo.hits)
        .u64("misses", view.memo.misses)
        .u64("insertions", view.memo.insertions)
        .u64("evictions", view.memo.evictions)
        .u64("fallbacks", view.memo.fallbacks)
        .u64("entries", view.memo.entries)
        .build();
    response(id, true)
        .str("op", "stats")
        .u64("served", view.served)
        .u64("busy", view.busy)
        .u64("queued", view.queued as u64)
        .u64("workers", view.workers as u64)
        .raw("memo", &memo)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_batch::JobStatus;
    use std::path::PathBuf;

    #[test]
    fn parses_a_full_run_request() {
        let req = parse_request(
            r#"{"op": "run", "id": "r1", "job": {"name": "u", "faulty": "/d/f.v",
                "golden": "/d/g.v", "weights": "/d/w.txt", "targets": ["t_0"], "budget": 9}}"#,
        )
        .unwrap();
        let Request::Run { id, spec } = req else {
            panic!("expected run")
        };
        assert_eq!(id, json::Value::Str("r1".into()));
        assert_eq!(spec.name, "u");
        assert_eq!(spec.faulty, PathBuf::from("/d/f.v"));
        assert_eq!(spec.budget, Some(9));
    }

    #[test]
    fn id_defaults_to_null_and_echoes_integers() {
        let req = parse_request(r#"{"op": "ping"}"#).unwrap();
        let Request::Ping { id } = req else { panic!() };
        assert_eq!(
            ping_response(&id),
            "{\"id\": null, \"ok\": true, \"op\": \"ping\"}"
        );
        let req = parse_request(r#"{"op": "ping", "id": 7}"#).unwrap();
        let Request::Ping { id } = req else { panic!() };
        assert_eq!(
            ping_response(&id),
            "{\"id\": 7, \"ok\": true, \"op\": \"ping\"}"
        );
    }

    #[test]
    fn malformed_lines_are_typed_errors_never_panics() {
        for bad in [
            "",
            "{",
            "nonsense",
            r#"{"op": "run"}"#,                         // missing job
            r#"{"op": "run", "job": {"faulty": "f"}}"#, // missing golden
            r#"{"op": "warp", "id": 1}"#,               // unknown op
            r#"{"op": "run", "id": [1], "job": {}}"#,   // bad id type
            r#"{"op": "run", "job": {"faulty": "a\"#,   // truncated escape
            r#"{"op": "ping", "extra": 1}"#,            // unknown key
        ] {
            assert!(parse_request(bad).is_err(), "input {bad:?} must error");
        }
    }

    #[test]
    fn run_response_carries_exactly_the_deterministic_record_fields() {
        let record = JobRecord {
            pass: 0,
            index: 0,
            name: "u1".into(),
            status: JobStatus::Complete,
            targets: 2,
            patches: 2,
            cost: 11,
            size: 5,
            verified: true,
            detail: String::new(),
        };
        assert_eq!(
            run_response(&json::Value::Str("a".into()), &record),
            "{\"id\": \"a\", \"ok\": true, \"op\": \"run\", \"name\": \"u1\", \
             \"status\": \"complete\", \"targets\": 2, \"patches\": 2, \"cost\": 11, \
             \"size\": 5, \"verified\": true, \"detail\": \"\"}"
        );
    }

    #[test]
    fn refusals_are_typed() {
        let busy = refusal(&json::Value::Int(3), "busy", "queue full (8 jobs)");
        assert_eq!(
            busy,
            "{\"id\": 3, \"ok\": false, \"error\": \"busy\", \
             \"detail\": \"queue full (8 jobs)\"}"
        );
    }
}
