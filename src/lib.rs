#![warn(missing_docs)]
//! # eco — cost-aware ECO patch generation
//!
//! Facade crate for the `eco` workspace: a from-scratch Rust
//! implementation of *"Cost-Aware Patch Generation for Multi-Target
//! Function Rectification of Engineering Change Orders"* (Zhang & Jiang,
//! DAC 2018), including every substrate the algorithm needs — an AIG
//! package, a CDCL SAT solver with Craig interpolation, FRAIG sweeping,
//! contest-format netlist I/O, and a synthetic benchmark generator.
//!
//! Most users want [`core::EcoEngine`]; see the crate-level docs of each
//! member for the details:
//!
//! * [`aig`] — And-Inverter Graphs (structural hashing, cofactors,
//!   substitution, simulation).
//! * [`sat`] — CDCL solving, assumptions/cores, interpolation.
//! * [`fraig`] — simulation + SAT sweeping equivalence classes.
//! * [`netlist`] — structural Verilog subset and weight files.
//! * [`core`] — the paper's algorithm (flow of Fig. 1).
//! * [`seq`] — sequential ECO: latch-aware netlists, BTOR2 and
//!   latch-BLIF I/O, k-frame unrolling with patch fold-back, and the
//!   any-to-any format hub behind `eco-convert`.
//! * [`workgen`] — synthetic ICCAD-2017-style ECO instances.
//! * [`batch`] — manifest-driven batch runs over many instances with a
//!   cross-job memo cache and job-level work stealing.
//! * [`serve`] — the persistent daemon: JSONL jobs over a unix socket
//!   with admission control, graceful drain, and an always-warm memo
//!   cache shared across requests.
//!
//! # Examples
//!
//! ```
//! use eco::core::{EcoEngine, EcoInstance, EcoOptions};
//! use eco::netlist::{parse_verilog, WeightTable};
//!
//! let faulty = parse_verilog(
//!     "module f (a, b, c, t, y); input a, b, c, t; output y;
//!      xor g1 (y, t, c); endmodule",
//! )?;
//! let golden = parse_verilog(
//!     "module g (a, b, c, y); input a, b, c; output y;
//!      wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
//! )?;
//! let inst = EcoInstance::from_netlists(
//!     "demo", &faulty, &golden, vec!["t".into()], &WeightTable::new(1),
//! )?;
//! let result = EcoEngine::new(inst, EcoOptions::default()).run()?;
//! assert!(result.size >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use eco_aig as aig;
pub use eco_batch as batch;
pub use eco_core as core;
pub use eco_fraig as fraig;
pub use eco_netlist as netlist;
pub use eco_sat as sat;
pub use eco_seq as seq;
pub use eco_serve as serve;
pub use eco_workgen as workgen;
