//! BLIF (Berkeley Logic Interchange Format) I/O, combinational subset.
//!
//! Supports flat `.model` blocks with `.inputs`/`.outputs`/`.names`
//! (single-output sum-of-products covers) and `.end`; line continuations
//! (`\`) and `#` comments are handled. Latches (`.latch`) and hierarchy
//! (`.subckt`) are rejected — the ECO flow is purely combinational.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use eco_aig::{Aig, Lit, Var};

/// Error produced when BLIF text cannot be parsed or elaborated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    /// 1-based (logical) line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseBlifError {}

/// A parsed-and-elaborated BLIF model.
#[derive(Clone, Debug)]
pub struct BlifModel {
    /// Model name.
    pub name: String,
    /// The elaborated AIG (inputs/outputs in declaration order).
    pub aig: Aig,
    /// Literal of every defined net.
    pub net_lits: HashMap<String, Lit>,
}

#[derive(Debug)]
struct SopDef {
    output: String,
    inputs: Vec<String>,
    /// (input pattern, output value); `None` in a pattern = don't care.
    rows: Vec<(Vec<Option<bool>>, bool)>,
    line: usize,
}

/// Parses a combinational BLIF model into an AIG.
///
/// # Errors
///
/// Returns [`ParseBlifError`] on unsupported constructs, malformed covers,
/// undefined nets, cycles, or multiple drivers.
///
/// # Examples
///
/// ```
/// let text = ".model m\n.inputs a b c\n.outputs y\n\
///             .names a b w\n11 1\n.names w c y\n10 1\n01 1\n.end\n";
/// let model = eco_netlist::parse_blif(text)?;
/// // y = (a&b) XOR c
/// assert_eq!(model.aig.eval(&[true, true, false]), vec![true]);
/// assert_eq!(model.aig.eval(&[true, true, true]), vec![false]);
/// # Ok::<(), eco_netlist::ParseBlifError>(())
/// ```
pub fn parse_blif(text: &str) -> Result<BlifModel, ParseBlifError> {
    let err = |line: usize, m: &str| ParseBlifError {
        line,
        message: m.to_string(),
    };

    // Logical lines: strip comments, join continuations.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let without_comment = raw.split('#').next().unwrap_or("");
        let (content, continued) = match without_comment.trim_end().strip_suffix('\\') {
            Some(rest) => (rest.to_string(), true),
            None => (without_comment.to_string(), false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(&content);
                if continued {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((line_no, content));
                } else if !content.trim().is_empty() {
                    logical.push((line_no, content));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical.push((start, acc));
    }

    let mut name = String::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut defs: Vec<SopDef> = Vec::new();
    let mut current: Option<SopDef> = None;
    let mut ended = false;

    for (line_no, line) in &logical {
        let line_no = *line_no;
        let mut toks = line.split_whitespace();
        let Some(first) = toks.next() else { continue };
        if ended {
            break;
        }
        match first {
            ".model" => {
                if !name.is_empty() {
                    return Err(err(line_no, "multiple .model blocks are not supported"));
                }
                name = toks.next().unwrap_or("top").to_string();
            }
            ".inputs" => inputs.extend(toks.map(str::to_string)),
            ".outputs" => outputs.extend(toks.map(str::to_string)),
            ".names" => {
                if let Some(def) = current.take() {
                    defs.push(def);
                }
                let mut nets: Vec<String> = toks.map(str::to_string).collect();
                let Some(output) = nets.pop() else {
                    return Err(err(line_no, ".names needs at least an output"));
                };
                current = Some(SopDef {
                    output,
                    inputs: nets,
                    rows: Vec::new(),
                    line: line_no,
                });
            }
            ".latch" => return Err(err(line_no, ".latch is not supported (combinational only)")),
            ".subckt" | ".gate" => return Err(err(line_no, "hierarchical BLIF is not supported")),
            ".end" => {
                ended = true;
            }
            tok if tok.starts_with('.') => {
                return Err(err(line_no, &format!("unsupported directive `{tok}`")))
            }
            pattern => {
                let Some(def) = current.as_mut() else {
                    return Err(err(line_no, "cover row outside .names"));
                };
                let (in_pat, out_val) = if def.inputs.is_empty() {
                    ("", pattern)
                } else {
                    let out = toks
                        .next()
                        .ok_or_else(|| err(line_no, "cover row missing output value"))?;
                    if toks.next().is_some() {
                        return Err(err(line_no, "trailing tokens in cover row"));
                    }
                    (pattern, out)
                };
                if in_pat.len() != def.inputs.len() {
                    return Err(err(line_no, "cover row arity mismatch"));
                }
                let bits: Result<Vec<Option<bool>>, ParseBlifError> = in_pat
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(Some(false)),
                        '1' => Ok(Some(true)),
                        '-' => Ok(None),
                        other => Err(err(line_no, &format!("invalid cover bit `{other}`"))),
                    })
                    .collect();
                let out_val = match out_val {
                    "1" => true,
                    "0" => false,
                    other => return Err(err(line_no, &format!("invalid output value `{other}`"))),
                };
                def.rows.push((bits?, out_val));
            }
        }
    }
    if let Some(def) = current.take() {
        defs.push(def);
    }

    // Elaborate: DFS over definitions with cycle detection.
    let mut aig = Aig::new();
    let mut net_lits: HashMap<String, Lit> = HashMap::new();
    for n in &inputs {
        let lit = aig.add_input(n.clone());
        if net_lits.insert(n.clone(), lit).is_some() {
            return Err(err(0, &format!("net `{n}` declared twice")));
        }
    }
    let mut driver: HashMap<&str, usize> = HashMap::new();
    for (i, def) in defs.iter().enumerate() {
        let n = def.output.as_str();
        if net_lits.contains_key(n) || driver.insert(n, i).is_some() {
            return Err(err(def.line, &format!("net `{n}` has multiple drivers")));
        }
    }

    #[derive(PartialEq, Clone, Copy)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<usize, Mark> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    for start in 0..defs.len() {
        let mut stack = vec![start];
        while let Some(&di) = stack.last() {
            match marks.get(&di) {
                Some(Mark::Done) => {
                    stack.pop();
                }
                Some(Mark::Visiting) => {
                    marks.insert(di, Mark::Done);
                    order.push(di);
                    stack.pop();
                }
                None => {
                    marks.insert(di, Mark::Visiting);
                    for n in &defs[di].inputs {
                        if net_lits.contains_key(n.as_str()) {
                            continue;
                        }
                        let &dep = driver.get(n.as_str()).ok_or_else(|| {
                            err(defs[di].line, &format!("net `{n}` is never defined"))
                        })?;
                        match marks.get(&dep) {
                            Some(Mark::Visiting) => {
                                return Err(err(defs[di].line, &format!("cycle through `{n}`")))
                            }
                            Some(Mark::Done) => {}
                            None => stack.push(dep),
                        }
                    }
                }
            }
        }
    }
    // `order` is reverse-dependency order only if we pushed on Done; we
    // did — dependencies complete before dependents.
    for di in order {
        let def = &defs[di];
        let lit = build_sop(&mut aig, def, &net_lits).map_err(|m| err(def.line, &m))?;
        net_lits.insert(def.output.clone(), lit);
    }
    for n in &outputs {
        let &lit = net_lits
            .get(n.as_str())
            .ok_or_else(|| err(0, &format!("output `{n}` is never defined")))?;
        aig.add_output(n.clone(), lit);
    }
    Ok(BlifModel {
        name: if name.is_empty() { "top".into() } else { name },
        aig,
        net_lits,
    })
}

fn build_sop(aig: &mut Aig, def: &SopDef, net_lits: &HashMap<String, Lit>) -> Result<Lit, String> {
    let in_lits: Result<Vec<Lit>, String> = def
        .inputs
        .iter()
        .map(|n| {
            net_lits
                .get(n.as_str())
                .copied()
                .ok_or_else(|| format!("net `{n}` undefined"))
        })
        .collect();
    let in_lits = in_lits?;
    if def.rows.is_empty() {
        // Empty cover: constant 0.
        return Ok(Lit::FALSE);
    }
    let out_val = def.rows[0].1;
    if def.rows.iter().any(|(_, v)| *v != out_val) {
        return Err("mixed on-set and off-set rows in one cover".into());
    }
    let cubes: Vec<Lit> = def
        .rows
        .iter()
        .map(|(pattern, _)| {
            let lits: Vec<Lit> = pattern
                .iter()
                .zip(&in_lits)
                .filter_map(|(bit, &l)| bit.map(|b| l.xor_complement(!b)))
                .collect();
            aig.and_many(&lits)
        })
        .collect();
    let union = aig.or_many(&cubes);
    Ok(union.xor_complement(!out_val))
}

/// Writes the reachable logic of an AIG as flat BLIF.
///
/// AND nodes become two-input covers with complement handling in the
/// pattern plane; outputs get buffer/inverter covers. Internal nets are
/// named `n<k>`.
pub fn write_blif(aig: &Aig, model_name: &str) -> String {
    use fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, ".model {model_name}");
    let input_names: Vec<String> = (0..aig.num_inputs())
        .map(|p| aig.input_name(p).to_owned())
        .collect();
    let _ = writeln!(s, ".inputs {}", input_names.join(" "));
    let out_names: Vec<String> = aig.outputs().iter().map(|o| o.name.clone()).collect();
    let _ = writeln!(s, ".outputs {}", out_names.join(" "));

    let roots: Vec<Lit> = aig.outputs().iter().map(|o| o.lit).collect();
    let mut name_of: HashMap<Var, String> = HashMap::new();
    name_of.insert(Var::CONST, "__const0".to_string());
    for (p, &v) in aig.inputs().iter().enumerate() {
        name_of.insert(v, aig.input_name(p).to_owned());
    }
    let cone = aig.cone_vars(&roots);
    let mut const_used = false;
    for &v in &cone {
        if let Some((fan0, fan1)) = aig.and_fanins(v) {
            let n = format!("n{}", v.index());
            let p0 = if fan0.is_complement() { '0' } else { '1' };
            let p1 = if fan1.is_complement() { '0' } else { '1' };
            let _ = writeln!(
                s,
                ".names {} {} {}\n{}{} 1",
                name_of[&fan0.var()],
                name_of[&fan1.var()],
                n,
                p0,
                p1
            );
            const_used |= fan0.var() == Var::CONST || fan1.var() == Var::CONST;
            name_of.insert(v, n);
        }
    }
    for out in aig.outputs() {
        let v = out.lit.var();
        if v == Var::CONST {
            // Constant output: empty cover = 0, single `1` row = 1.
            let _ = writeln!(s, ".names {}", out.name);
            if out.lit.is_complement() {
                let _ = writeln!(s, "1");
            }
            continue;
        }
        let row = if out.lit.is_complement() {
            "0 1"
        } else {
            "1 1"
        };
        let _ = writeln!(s, ".names {} {}\n{}", name_of[&v], out.name, row);
    }
    if const_used {
        let _ = writeln!(s, ".names __const0");
    }
    s.push_str(".end\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_model() {
        let text = ".model demo\n.inputs a b c\n.outputs y z\n\
                    .names a b w\n11 1\n\
                    .names w c y\n10 1\n01 1\n\
                    .names c z\n0 1\n.end\n";
        let m = parse_blif(text).expect("parses");
        assert_eq!(m.name, "demo");
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let w = vals[0] && vals[1];
            assert_eq!(m.aig.eval(&vals), vec![w ^ vals[2], !vals[2]], "{vals:?}");
        }
    }

    #[test]
    fn dont_cares_and_offset_rows() {
        // f defined by off-set rows: f = !(a & !b).
        let text = ".model m\n.inputs a b\n.outputs f g\n\
                    .names a b f\n10 0\n\
                    .names a b g\n-1 1\n.end\n";
        let m = parse_blif(text).expect("parses");
        for bits in 0u32..4 {
            let vals: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            let out = m.aig.eval(&vals);
            assert_eq!(out[0], !vals[0] || vals[1], "f at {vals:?}");
            assert_eq!(out[1], vals[1], "g at {vals:?}");
        }
    }

    #[test]
    fn constants_and_continuations() {
        let text = ".model m\n.inputs a\n.outputs one zero pass\n\
                    .names one\n1\n.names zero\n\
                    .names a \\\npass\n1 1\n.end\n";
        let m = parse_blif(text).expect("parses");
        assert_eq!(m.aig.eval(&[false]), vec![true, false, false]);
        assert_eq!(m.aig.eval(&[true]), vec![true, false, true]);
    }

    #[test]
    fn out_of_order_definitions() {
        let text = ".model m\n.inputs a b\n.outputs y\n\
                    .names w a y\n11 1\n\
                    .names a b w\n01 1\n10 1\n.end\n";
        let m = parse_blif(text).expect("parses");
        for bits in 0u32..4 {
            let vals: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            let w = vals[0] ^ vals[1];
            assert_eq!(m.aig.eval(&vals), vec![w && vals[0]]);
        }
    }

    #[test]
    fn rejects_unsupported_and_malformed() {
        assert!(parse_blif(".model m\n.latch a b\n.end\n").is_err());
        assert!(parse_blif(".model m\n.subckt foo\n.end\n").is_err());
        assert!(parse_blif(".model m\n.inputs a\n.outputs y\n11 1\n.end\n").is_err());
        assert!(parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1\n.end\n").is_err());
        assert!(parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\nx 1\n.end\n").is_err());
        assert!(
            parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n").is_err()
        );
        // Cycle.
        assert!(parse_blif(
            ".model m\n.inputs a\n.outputs y\n.names y a w\n11 1\n.names w a y\n11 1\n.end\n"
        )
        .is_err());
        // Undefined output.
        assert!(parse_blif(".model m\n.inputs a\n.outputs ghost\n.end\n").is_err());
    }

    #[test]
    fn write_round_trip() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, !b);
        let f = aig.xor(ab, c);
        aig.add_output("f", f);
        aig.add_output("nf", !f);
        aig.add_output("k1", Lit::TRUE);
        let text = write_blif(&aig, "rt");
        let back = parse_blif(&text).expect("round trip parses");
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(aig.eval(&vals), back.aig.eval(&vals), "{vals:?}");
        }
    }
}
