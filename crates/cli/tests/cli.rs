//! End-to-end tests of the `eco-patch` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eco-patch"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

const FAULTY: &str = "module f (a, b, c, t, y);\n\
                      input a, b, c, t;\noutput y;\nxor g1 (y, t, c);\nendmodule\n";
const GOLDEN: &str = "module g (a, b, c, y);\n\
                      input a, b, c;\noutput y;\nwire w;\nand g1 (w, a, b);\n\
                      xor g2 (y, w, c);\nendmodule\n";

#[test]
fn patches_and_writes_verilog() {
    let dir = tmpdir("ok");
    let f = dir.join("faulty.v");
    let g = dir.join("golden.v");
    let w = dir.join("weights.txt");
    let o = dir.join("patch.v");
    std::fs::write(&f, FAULTY).expect("write");
    std::fs::write(&g, GOLDEN).expect("write");
    std::fs::write(&w, "a 5\nb 5\nc 9\n").expect("write");
    let out = bin()
        .args(["-f", f.to_str().expect("path")])
        .args(["-g", g.to_str().expect("path")])
        .args(["-w", w.to_str().expect("path")])
        .args(["-t", "t"])
        .args(["-o", o.to_str().expect("path")])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let patch = std::fs::read_to_string(&o).expect("patch file");
    assert!(patch.contains("module patch"));
    assert!(patch.contains("output t"));
    // The patch parses and drives the target.
    let nl = eco_netlist::parse_verilog(&patch).expect("patch parses");
    assert_eq!(nl.outputs, vec!["t"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cost 10"), "stderr: {stderr}");
}

#[test]
fn stdout_mode_and_quiet() {
    let dir = tmpdir("stdout");
    let f = dir.join("faulty.v");
    let g = dir.join("golden.v");
    std::fs::write(&f, FAULTY).expect("write");
    std::fs::write(&g, GOLDEN).expect("write");
    let out = bin()
        .args(["-f", f.to_str().expect("path")])
        .args(["-g", g.to_str().expect("path")])
        .args(["-t", "t", "-q"])
        .output()
        .expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("module patch"));
    assert!(String::from_utf8_lossy(&out.stderr).is_empty());
}

#[test]
fn unrectifiable_exits_2() {
    let dir = tmpdir("unrect");
    let f = dir.join("faulty.v");
    let g = dir.join("golden.v");
    std::fs::write(
        &f,
        "module f (a, t, y, z); input a, t; output y, z;\nbuf g1 (y, t);\nbuf g2 (z, a);\nendmodule\n",
    )
    .expect("write");
    std::fs::write(
        &g,
        "module g (a, y, z); input a; output y, z;\nbuf g1 (y, a);\nnot g2 (z, a);\nendmodule\n",
    )
    .expect("write");
    let out = bin()
        .args(["-f", f.to_str().expect("path")])
        .args(["-g", g.to_str().expect("path")])
        .args(["-t", "t"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unrectifiable"));
}

#[test]
fn usage_errors_exit_1() {
    let out = bin().output().expect("run");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = bin().args(["--frobnicate"]).output().expect("run");
    assert_eq!(out.status.code(), Some(1));

    let out = bin()
        .args(["-f", "/nonexistent.v", "-g", "/nonexistent.v", "-t", "t"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn flag_variants_accepted() {
    let dir = tmpdir("flags");
    let f = dir.join("faulty.v");
    let g = dir.join("golden.v");
    std::fs::write(&f, FAULTY).expect("write");
    std::fs::write(&g, GOLDEN).expect("write");
    for extra in [
        vec!["--no-localization"],
        vec!["--no-optimize"],
        vec!["--initial", "interpolant"],
        vec!["--initial", "negoff"],
    ] {
        let out = bin()
            .args(["--faulty", f.to_str().expect("path")])
            .args(["--golden", g.to_str().expect("path")])
            .args(["--targets", "t", "-q"])
            .args(&extra)
            .output()
            .expect("run");
        assert!(out.status.success(), "args {extra:?}");
    }
    let out = bin()
        .args(["-f", f.to_str().expect("path")])
        .args(["-g", g.to_str().expect("path")])
        .args(["-t", "t", "--initial", "bogus"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn blif_inputs_are_accepted() {
    let dir = tmpdir("blif");
    let f = dir.join("faulty.blif");
    let g = dir.join("golden.blif");
    std::fs::write(
        &f,
        ".model f\n.inputs a b c t\n.outputs y\n.names t c y\n10 1\n01 1\n.end\n",
    )
    .expect("write");
    std::fs::write(
        &g,
        ".model g\n.inputs a b c\n.outputs y\n.names a b w\n11 1\n\
         .names w c y\n10 1\n01 1\n.end\n",
    )
    .expect("write");
    let out = bin()
        .args(["-f", f.to_str().expect("path")])
        .args(["-g", g.to_str().expect("path")])
        .args(["-t", "t", "-q"])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let patch = String::from_utf8_lossy(&out.stdout);
    assert!(patch.contains("module patch"), "{patch}");
}

/// `--unroll K` runs the sequential flow on latch-BLIF inputs: the cut
/// output-cone net `w` (the AND of the two shift stages) is re-driven
/// by a time-invariant patch, proven over K frames.
#[test]
fn unroll_mode_patches_a_latch_design() {
    const SEQ_GOLDEN: &str = ".model sr\n.inputs d\n.outputs q\n\
                              .latch d s0 0\n.latch s0 s1 0\n\
                              .names s0 s1 w\n11 1\n.names w q\n1 1\n.end\n";
    const SEQ_FAULTY: &str = ".model sr\n.inputs d w\n.outputs q\n\
                              .latch d s0 0\n.latch s0 s1 0\n\
                              .names w q\n1 1\n.end\n";
    let dir = tmpdir("unroll");
    let f = dir.join("faulty.blif");
    let g = dir.join("golden.blif");
    let o = dir.join("patch.v");
    std::fs::write(&f, SEQ_FAULTY).expect("write");
    std::fs::write(&g, SEQ_GOLDEN).expect("write");
    let out = bin()
        .args(["-f", f.to_str().expect("path")])
        .args(["-g", g.to_str().expect("path")])
        .args(["-t", "w"])
        .args(["--unroll", "3"])
        .args(["-o", o.to_str().expect("path")])
        .output()
        .expect("run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {stderr}");
    assert!(
        stderr.contains("patched and verified over 3 frames"),
        "stderr: {stderr}"
    );
    let patch = std::fs::read_to_string(&o).expect("patch file");
    let nl = eco_netlist::parse_verilog(&patch).expect("patch parses");
    assert_eq!(nl.outputs, vec!["w"]);
    // No frame-indexed names leak into the folded patch.
    assert!(!patch.contains('@'), "patch: {patch}");

    // A zero frame count is a usage error.
    let out = bin()
        .args(["-f", f.to_str().expect("path")])
        .args(["-g", g.to_str().expect("path")])
        .args(["-t", "w"])
        .args(["--unroll", "0"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
}
