#![warn(missing_docs)]
//! # eco-fraig — functional reduction by simulation + SAT sweeping
//!
//! Detects functionally equivalent (or complementary) nodes in an
//! [`eco_aig::Aig`] the FRAIG way [Mishchenko et al., 2005]: random
//! simulation buckets nodes by a 128-bit canonical-word fingerprint (full
//! words compared only on collision), a SAT solver verifies candidate
//! pairs, and counterexamples are appended to an incremental simulation
//! arena ([`eco_aig::IncrementalSim`]) — re-simulating only the new
//! stimulus columns — until a fixpoint.
//!
//! The ECO flow (Fig. 1 of the paper) uses [`fraig_classes`] for two
//! purposes: identifying *shared equivalent signals* between the faulty and
//! golden circuits (placed in one AIG manager) for localization, and
//! reducing patch logic via [`fraig_reduce`].
//!
//! # Examples
//!
//! ```
//! use eco_aig::Aig;
//! use eco_fraig::{fraig_classes, FraigOptions};
//!
//! // Two structurally different forms of a & b.
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let f1 = aig.and(a, b);
//! let or = aig.or(a, b);
//! let f2 = aig.and(f1, or); // still a & b
//! aig.add_output("f1", f1);
//! aig.add_output("f2", f2);
//!
//! let classes = fraig_classes(&aig, &FraigOptions::default());
//! assert_eq!(classes.equivalent(f1.var(), f2.var()), Some(false));
//! ```

mod sweep;
mod uf;

pub use crate::sweep::{
    fraig_classes, fraig_classes_memo, fraig_classes_stats, fraig_reduce, sweep_fingerprint,
    EquivClass, EquivClasses, FraigOptions, SweepMemo, SweepStats,
};
pub use crate::uf::ParityUnionFind;
