//! Table-2-shape reproduction as a test: on the synthetic contest suite,
//! the cost-aware engine must (a) always produce verified patches and
//! (b) beat the PI-support baseline on every difficult unit.
//!
//! The full 20-unit sweep lives in `cargo run -p eco-bench --bin table2`;
//! this test pins the *shape* on a fast subset so regressions surface in
//! `cargo test`.

mod common;

use eco::core::{EcoEngine, EcoOptions};
use eco::workgen::contest_suite;

fn fast_subset() -> Vec<&'static str> {
    vec![
        "unit01", "unit02", "unit03", "unit04", "unit06", "unit10", "unit12", "unit15",
    ]
}

#[test]
fn suite_units_patch_and_verify() {
    for unit in contest_suite() {
        if !fast_subset().contains(&unit.spec.name.as_str()) {
            continue;
        }
        let inst = unit.instance().expect("valid instance");
        let result = EcoEngine::new(inst, EcoOptions::default())
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", unit.spec.name));
        common::assert_patched_equals_golden(&unit.faulty, &unit.golden, &result);
    }
}

#[test]
fn difficult_units_beat_baseline_on_cost_and_size() {
    for unit in contest_suite() {
        if !unit.spec.difficult {
            continue;
        }
        let inst = unit.instance().expect("valid instance");
        let ours = EcoEngine::new(inst.clone(), EcoOptions::default())
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", unit.spec.name));
        let baseline = EcoEngine::new(inst, EcoOptions::baseline())
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", unit.spec.name));
        common::assert_patched_equals_golden(&unit.faulty, &unit.golden, &baseline);
        assert!(
            ours.cost * 2 <= baseline.cost,
            "{}: ours {} vs baseline {} — expected a decisive cost win on a difficult unit",
            unit.spec.name,
            ours.cost,
            baseline.cost
        );
        assert!(
            ours.size <= baseline.size,
            "{}: patch size {} vs baseline {}",
            unit.spec.name,
            ours.size,
            baseline.size
        );
    }
}

#[test]
fn baseline_is_also_sound() {
    for unit in contest_suite() {
        if !matches!(unit.spec.name.as_str(), "unit01" | "unit05" | "unit09") {
            continue;
        }
        let inst = unit.instance().expect("valid instance");
        let result = EcoEngine::new(inst, EcoOptions::baseline())
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", unit.spec.name));
        common::assert_patched_equals_golden(&unit.faulty, &unit.golden, &result);
    }
}

/// Regression: unit17's shape (many targets, no localization, adaptive
/// interpolation kicking in) once produced an unsound interpolant through
/// over-eager conflict-clause minimization. Pin the whole path.
#[test]
fn many_target_unlocalized_adaptive_interpolation_is_sound() {
    let unit = contest_suite()
        .into_iter()
        .find(|u| u.spec.name == "unit17")
        .expect("unit17");
    let inst = unit.instance().expect("valid");
    let baseline = EcoEngine::new(inst, EcoOptions::baseline())
        .run()
        .expect("rectifiable by construction");
    common::assert_patched_equals_golden(&unit.faulty, &unit.golden, &baseline);
}

/// Stress units (bigger multiplier/shifter/datapath workloads) all patch
/// and verify under the default configuration.
#[test]
#[ignore = "heavier workloads; run with `cargo test -- --ignored`"]
fn stress_suite_patches_and_verifies() {
    for unit in eco::workgen::stress_suite() {
        let inst = unit.instance().expect("valid instance");
        let result = EcoEngine::new(inst, EcoOptions::default())
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", unit.spec.name));
        common::assert_patched_equals_golden(&unit.faulty, &unit.golden, &result);
    }
}

/// The cheapest stress unit runs un-ignored as a smoke check.
#[test]
fn stress_smoke_unit() {
    let unit = eco::workgen::stress_suite()
        .into_iter()
        .find(|u| u.spec.name == "stress05")
        .expect("stress05");
    let inst = unit.instance().expect("valid instance");
    let result = EcoEngine::new(inst, EcoOptions::default())
        .run()
        .expect("rectifiable");
    common::assert_patched_equals_golden(&unit.faulty, &unit.golden, &result);
}
