//! Benches for the Eq.-12 rebasing machinery (Fig. 3): query
//! construction, feasibility checks, and full base selection.

use eco_bench::Bench;
use eco_core::{on_off_sets, select_base, BaseSelectOptions, EcoInstance, RebaseQuery, Workspace};
use eco_workgen::{assign_weights, cut_targets, WeightProfile};

fn setup() -> (Workspace, eco_aig::Lit, eco_aig::Lit, Vec<usize>) {
    let golden = eco_workgen::circuits::shared_datapath(8);
    let target = golden.wires.last().expect("wires").clone();
    let faulty = cut_targets(&golden, std::slice::from_ref(&target)).expect("target is driven");
    let weights = assign_weights(&faulty, WeightProfile::CheapWires { pi: 50, wire: 2 }, 3);
    let inst = EcoInstance::from_netlists("bench", &faulty, &golden, vec![target], &weights)
        .expect("valid");
    let mut ws = Workspace::new(&inst);
    let t = ws.target_vars[0];
    let (f, g) = (ws.f_outs.clone(), ws.g_outs.clone());
    let onoff = on_off_sets(&mut ws.mgr, &f, &g, t);
    // Pool: the 32 cheapest candidates.
    let mut pool: Vec<usize> = (0..ws.cands.len()).collect();
    pool.sort_by_key(|&i| (ws.cands[i].weight, ws.cands[i].name.clone()));
    pool.truncate(32);
    (ws, onoff.on, onoff.off, pool)
}

fn main() {
    let (ws, on, off, pool) = setup();

    let mut bench = Bench::from_env();
    bench.run("rebase/query_construction", || {
        RebaseQuery::new(&ws, on, off, pool.clone())
    });

    let mut q = RebaseQuery::new(&ws, on, off, pool.clone());
    bench.run("rebase/feasibility_sweep", || {
        for k in 1..pool.len().min(12) {
            let base: Vec<usize> = (0..k).collect();
            std::hint::black_box(q.feasible(&base, 100_000));
        }
    });

    bench.run("rebase/select_base_full", || {
        let mut q = RebaseQuery::new(&ws, on, off, pool.clone());
        let full: Vec<usize> = (0..pool.len()).collect();
        if q.feasible(&full, 100_000) == Some(true) {
            std::hint::black_box(select_base(
                &ws,
                &mut q,
                &full,
                &BaseSelectOptions::default(),
            ));
        }
    });
    bench.finish();
}
