// Needs the external `proptest` crate; compiled out by default so the
// workspace builds offline. Enable with `--features proptest` (see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for the AIG package.

use eco_aig::{Aig, IncrementalSim, Lit};
use proptest::prelude::*;

/// A recipe: sequence of (op, operand indices, complement flags).
type Recipe = Vec<(u8, usize, usize, bool, bool)>;

/// One step of the incremental-simulation append protocol.
#[derive(Clone, Debug)]
enum Append {
    /// A single 1-bit stimulus pattern (one bool per input).
    Pattern(Vec<bool>),
    /// A whole 64-pattern word column (one word per input).
    Column(Vec<u64>),
}

fn build(n_inputs: usize, recipe: &Recipe) -> (Aig, Vec<Lit>) {
    let mut aig = Aig::new();
    let mut nets: Vec<Lit> = (0..n_inputs)
        .map(|i| aig.add_input(format!("x{i}")))
        .collect();
    for &(op, i, j, ci, cj) in recipe {
        let a = nets[i % nets.len()].xor_complement(ci);
        let b = nets[j % nets.len()].xor_complement(cj);
        let w = match op % 4 {
            0 => aig.and(a, b),
            1 => aig.or(a, b),
            2 => aig.xor(a, b),
            _ => aig.mux(a, b, nets[(i + j) % nets.len()]),
        };
        nets.push(w);
    }
    (aig, nets)
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop::collection::vec(
        (
            any::<u8>(),
            0..64usize,
            0..64usize,
            any::<bool>(),
            any::<bool>(),
        ),
        1..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Structural hashing is commutative: and(a, b) == and(b, a).
    #[test]
    fn and_is_commutative(recipe in recipe_strategy(), ci in any::<bool>(), cj in any::<bool>()) {
        let (mut aig, nets) = build(4, &recipe);
        let a = nets[nets.len() / 2].xor_complement(ci);
        let b = nets[nets.len() - 1].xor_complement(cj);
        prop_assert_eq!(aig.and(a, b), aig.and(b, a));
    }

    /// eval and 64-way simulate agree on every node.
    #[test]
    fn simulate_agrees_with_eval(recipe in recipe_strategy()) {
        let (mut aig, nets) = build(5, &recipe);
        let root = *nets.last().expect("non-empty");
        aig.add_output("f", root);
        // 32 exhaustive patterns in one word.
        let patterns: Vec<Vec<u64>> = (0..5)
            .map(|i| {
                let mut w = 0u64;
                for p in 0..32u32 {
                    if p >> i & 1 == 1 {
                        w |= 1 << p;
                    }
                }
                vec![w]
            })
            .collect();
        let sim = aig.simulate(&patterns);
        for p in 0..32usize {
            let vals: Vec<bool> = (0..5).map(|i| p >> i & 1 == 1).collect();
            prop_assert_eq!(sim.lit_bit(root, p), aig.eval_lit(root, &vals));
        }
    }

    /// compact() preserves output functions and never grows the AIG.
    #[test]
    fn compact_preserves_semantics(recipe in recipe_strategy()) {
        let (mut aig, nets) = build(5, &recipe);
        let root = *nets.last().expect("non-empty");
        aig.add_output("f", root);
        let compacted = aig.compact();
        prop_assert!(compacted.num_ands() <= aig.num_ands());
        for bits in 0u32..32 {
            let vals: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(aig.eval(&vals), compacted.eval(&vals));
        }
    }

    /// Substituting an input with a constant equals cofactoring, and both
    /// equal direct evaluation with that input fixed.
    #[test]
    fn cofactor_fixes_the_input(recipe in recipe_strategy(), pick in 0..5usize, value in any::<bool>()) {
        let (mut aig, nets) = build(5, &recipe);
        let root = *nets.last().expect("non-empty");
        let x = aig.input_var(pick);
        let cof = aig.cofactor(&[root], x, value)[0];
        // The cofactor no longer depends on x.
        prop_assert!(!aig.support(&[cof]).contains(&x));
        for bits in 0u32..32 {
            let mut vals: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let cof_val = aig.eval_lit(cof, &vals);
            vals[pick] = value;
            prop_assert_eq!(cof_val, aig.eval_lit(root, &vals));
        }
    }

    /// Import into a fresh manager is semantics-preserving.
    #[test]
    fn import_round_trip(recipe in recipe_strategy()) {
        let (src, nets) = build(4, &recipe);
        let root = *nets.last().expect("non-empty");
        let mut dst = Aig::new();
        let mut map = std::collections::HashMap::new();
        for (i, &v) in src.inputs().iter().enumerate() {
            map.insert(v, dst.add_input(format!("y{i}")));
        }
        let imported = dst.import(&src, &[root], &map).expect("all inputs mapped")[0];
        for bits in 0u32..16 {
            let vals: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(src.eval_lit(root, &vals), dst.eval_lit(imported, &vals));
        }
    }

    /// Incremental column-append re-simulation is bit-identical to one
    /// full simulate over the concatenated stimulus, for any mix of
    /// single-pattern and whole-word-column appends.
    #[test]
    fn incremental_resimulation_matches_full(
        recipe in recipe_strategy(),
        base in prop::collection::vec(prop::collection::vec(any::<u64>(), 3), 4),
        appends in prop::collection::vec(
            prop_oneof![
                prop::collection::vec(any::<bool>(), 4).prop_map(Append::Pattern),
                prop::collection::vec(any::<u64>(), 4).prop_map(Append::Column),
            ],
            0..12,
        )
    ) {
        let (mut aig, nets) = build(4, &recipe);
        let root = *nets.last().expect("non-empty");
        aig.add_output("f", root);

        let mut isim = IncrementalSim::new(&aig, &base);
        // Reference stimulus: base columns, then replay the append
        // protocol (patterns pack 64-to-a-column; a whole column closes
        // the open pattern column).
        let mut full: Vec<Vec<u64>> = base.clone();
        let mut slots_free = 0usize;
        for ap in &appends {
            match ap {
                Append::Pattern(bits) => {
                    isim.append_pattern(&aig, bits);
                    if slots_free == 0 {
                        for row in &mut full {
                            row.push(0);
                        }
                        slots_free = 64;
                    }
                    let bit = 64 - slots_free;
                    for (pos, row) in full.iter_mut().enumerate() {
                        if bits[pos] {
                            *row.last_mut().expect("open column") |= 1u64 << bit;
                        }
                    }
                    slots_free -= 1;
                }
                Append::Column(words) => {
                    isim.append_word_column(&aig, words);
                    for (pos, row) in full.iter_mut().enumerate() {
                        row.push(words[pos]);
                    }
                    slots_free = 0;
                }
            }
        }
        isim.resimulate(&aig);
        let reference = aig.simulate(&full);
        prop_assert_eq!(isim.words(), reference.words());
        for &net in &nets {
            prop_assert_eq!(
                isim.vectors().lit_words(net),
                reference.lit_words(net),
                "node {:?} diverged", net
            );
        }
    }

    /// Cone counting is consistent: |cone(f ∪ g)| <= |cone f| + |cone g|,
    /// and support ⊆ cone.
    #[test]
    fn cone_arithmetic(recipe in recipe_strategy()) {
        let (aig, nets) = build(4, &recipe);
        let f = nets[nets.len() / 2];
        let g = *nets.last().expect("non-empty");
        let cf = aig.count_cone_ands(&[f]);
        let cg = aig.count_cone_ands(&[g]);
        let cfg = aig.count_cone_ands(&[f, g]);
        prop_assert!(cfg <= cf + cg);
        prop_assert!(cfg >= cf.max(cg));
        let sup = aig.support(&[g]);
        let cone = aig.cone_vars(&[g]);
        for v in sup {
            prop_assert!(cone.contains(&v));
        }
    }
}

/// An order-of-magnitude-simpler reference AIG builder with the same
/// contract as [`Aig::and`]: constant/trivial folding, canonical
/// `fan0 <= fan1` ordering, and a (hash-map) structural hash. The real
/// core stores all of this in flat SoA columns with an open-addressed
/// table; the reference keeps explicit tuples, so any divergence in the
/// returned literals pins a bug in the compact representation.
mod reference {
    use eco_aig::Lit;
    use std::collections::HashMap;

    pub struct RefAig {
        /// `(fan0, fan1)` per AND var, `None` for inputs; index 0 is the
        /// constant.
        pub nodes: Vec<Option<(Lit, Lit)>>,
        strash: HashMap<(Lit, Lit), u32>,
    }

    impl RefAig {
        pub fn new() -> Self {
            RefAig {
                nodes: vec![None],
                strash: HashMap::new(),
            }
        }

        fn lit(index: u32, complement: bool) -> Lit {
            let mut l = Lit::from_code(index * 2);
            if complement {
                l = !l;
            }
            l
        }

        pub fn add_input(&mut self) -> Lit {
            self.nodes.push(None);
            Self::lit(self.nodes.len() as u32 - 1, false)
        }

        pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
            if a == Lit::FALSE || b == Lit::FALSE || a == !b {
                return Lit::FALSE;
            }
            if a == Lit::TRUE {
                return b;
            }
            if b == Lit::TRUE || a == b {
                return a;
            }
            let (fan0, fan1) = if a <= b { (a, b) } else { (b, a) };
            if let Some(&v) = self.strash.get(&(fan0, fan1)) {
                return Self::lit(v, false);
            }
            self.nodes.push(Some((fan0, fan1)));
            let v = self.nodes.len() as u32 - 1;
            self.strash.insert((fan0, fan1), v);
            Self::lit(v, false)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The SoA core returns literal-for-literal the same results as the
    /// reference builder, and its flat arrays uphold the structural
    /// invariants: canonical `fan0 <= fan1`, strictly topological fanins,
    /// and a strash with no duplicate fanin pairs.
    #[test]
    fn soa_core_matches_reference_builder(recipe in recipe_strategy()) {
        let mut aig = Aig::new();
        let mut reference = reference::RefAig::new();
        let mut nets: Vec<Lit> = Vec::new();
        for i in 0..4 {
            let a = aig.add_input(format!("x{i}"));
            let r = reference.add_input();
            prop_assert_eq!(a, r, "input {} numbering diverged", i);
            nets.push(a);
        }
        for &(op, i, j, ci, cj) in &recipe {
            // Only raw ANDs: or/xor/mux are compositions of and() and
            // would re-test the same code path with extra noise.
            let _ = op;
            let a = nets[i % nets.len()].xor_complement(ci);
            let b = nets[j % nets.len()].xor_complement(cj);
            let got = aig.and(a, b);
            let want = reference.and(a, b);
            prop_assert_eq!(got, want, "and({:?}, {:?}) diverged", a, b);
            nets.push(got);
        }
        prop_assert_eq!(aig.len(), reference.nodes.len());
        prop_assert_eq!(
            aig.num_ands(),
            reference.nodes.iter().filter(|n| n.is_some()).count()
        );
        let mut seen = std::collections::HashSet::new();
        for (v, fan0, fan1) in aig.iter_ands() {
            prop_assert!(fan0 <= fan1, "canonical order violated at {:?}", v);
            prop_assert!(
                fan1.var() < v && fan0.var() < v,
                "fanins of {:?} not strictly earlier", v
            );
            prop_assert!(seen.insert((fan0, fan1)), "duplicate strash pair at {:?}", v);
            prop_assert_eq!(Some((fan0, fan1)), aig.and_fanins(v));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AIGER round trips (both formats) preserve semantics and names.
    #[test]
    fn aiger_round_trips(recipe in recipe_strategy()) {
        let (mut aig, nets) = build(5, &recipe);
        let root = *nets.last().expect("non-empty");
        let half = nets[nets.len() / 2];
        aig.add_output("f", root);
        aig.add_output("g", !half);

        let ascii = eco_aig::parse_aiger_ascii(&eco_aig::write_aiger_ascii(&aig))
            .expect("ascii parses");
        let binary = eco_aig::parse_aiger_binary(&eco_aig::write_aiger_binary(&aig))
            .expect("binary parses");
        prop_assert_eq!(ascii.input_name(0), "x0");
        prop_assert_eq!(&binary.outputs()[1].name, "g");
        for bits in 0u32..32 {
            let vals: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let want = aig.eval(&vals);
            prop_assert_eq!(&ascii.eval(&vals), &want);
            prop_assert_eq!(&binary.eval(&vals), &want);
        }
    }

    /// Write → parse → write is a fixpoint: the parsed AIG is already in
    /// AIGER order (inputs first, cone ANDs topological), so re-emitting
    /// it reproduces the exact bytes. Pins down the varint codec and the
    /// renumbering pass: any asymmetry shows up as a byte diff.
    #[test]
    fn aiger_rewrite_is_identity(recipe in recipe_strategy()) {
        let (mut aig, nets) = build(5, &recipe);
        aig.add_output("f", *nets.last().expect("non-empty"));
        aig.add_output("g", !nets[nets.len() / 2]);

        let text = eco_aig::write_aiger_ascii(&aig);
        let reparsed = eco_aig::parse_aiger_ascii(&text).expect("ascii parses");
        prop_assert_eq!(eco_aig::write_aiger_ascii(&reparsed), text);

        let bytes = eco_aig::write_aiger_binary(&aig);
        let reparsed = eco_aig::parse_aiger_binary(&bytes).expect("binary parses");
        prop_assert_eq!(eco_aig::write_aiger_binary(&reparsed), bytes);
    }
}
