//! Bench for the FRAIG stage (step 1 of the Fig.-1 flow).

use eco_bench::Bench;
use eco_core::{EcoInstance, Workspace};
use eco_fraig::{fraig_classes, FraigOptions};
use eco_workgen::{assign_weights, cut_targets, WeightProfile};

fn main() {
    // A combined faulty+golden workspace like the engine builds.
    let golden = eco_workgen::circuits::shared_datapath(10);
    let target = golden.wires.last().expect("wires").clone();
    let faulty = cut_targets(&golden, std::slice::from_ref(&target));
    let weights = assign_weights(&faulty, WeightProfile::Unit, 1);
    let inst = EcoInstance::from_netlists("bench", &faulty, &golden, vec![target], &weights)
        .expect("valid");
    let ws = Workspace::new(&inst);

    let mut bench = Bench::from_env();
    bench.run("fraig/classes/datapath10_combined", || {
        fraig_classes(&ws.mgr, &FraigOptions::default())
    });
    let opts = FraigOptions {
        sim_words: 2,
        ..Default::default()
    };
    bench.run("fraig/classes/fewer_sim_words", || {
        fraig_classes(&ws.mgr, &opts)
    });
    bench.finish();
}
