//! Bench for Ablation A: the localization stage's effect on end-to-end
//! runtime on a difficult unit (§5 of the paper).

use eco_bench::Bench;
use eco_core::{EcoEngine, EcoOptions};
use eco_workgen::contest_suite;

fn main() {
    let unit = contest_suite()
        .into_iter()
        .find(|u| u.spec.name == "unit10")
        .expect("unit10 exists");
    let inst = unit.instance().expect("valid");

    let mut bench = Bench::from_env();
    bench.run("localization/unit10/with", || {
        EcoEngine::new(inst.clone(), EcoOptions::default())
            .run()
            .expect("rectifiable")
    });
    let opts = EcoOptions {
        localization: false,
        ..Default::default()
    };
    bench.run("localization/unit10/without", || {
        EcoEngine::new(inst.clone(), opts.clone())
            .run()
            .expect("rectifiable")
    });
    bench.finish();
}
