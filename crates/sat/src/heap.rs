//! Indexed max-heap over variables ordered by VSIDS activity.

use crate::Var;

/// A binary max-heap of variables keyed by an external activity array,
/// supporting `decrease`-free updates via [`VarHeap::bump`] and O(log n)
/// membership-aware insertion.
#[derive(Clone, Debug, Default)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// Position of each var in `heap`, or `usize::MAX` when absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures capacity for variables up to `n - 1`.
    pub fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    /// Returns `true` if `v` is currently in the heap.
    pub fn contains(&self, v: Var) -> bool {
        self.pos
            .get(v.index() as usize)
            .is_some_and(|&p| p != ABSENT)
    }

    /// Inserts `v` (no-op if already present).
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow(v.index() as usize + 1);
        if self.contains(v) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(v);
        self.pos[v.index() as usize] = i;
        self.sift_up(i, activity);
    }

    /// Restores heap order after `v`'s activity increased (no-op if absent).
    pub fn bump(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v.index() as usize) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    /// Removes and returns the variable with maximal activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top.index() as usize] = ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index() as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index() as usize] <= act[self.heap[parent].index() as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && act[self.heap[l].index() as usize] > act[self.heap[best].index() as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && act[self.heap[r].index() as usize] > act[self.heap[best].index() as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i].index() as usize] = i;
        self.pos[self.heap[j].index() as usize] = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = VarHeap::new();
        for i in 0..5 {
            h.insert(Var::new(i), &act);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop(&act).map(|v| v.index())).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let act = vec![1.0, 2.0];
        let mut h = VarHeap::new();
        h.insert(Var::new(1), &act);
        h.insert(Var::new(1), &act);
        assert_eq!(h.pop(&act), Some(Var::new(1)));
        assert_eq!(h.pop(&act), None);
    }

    #[test]
    fn bump_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        for i in 0..3 {
            h.insert(Var::new(i), &act);
        }
        act[0] = 10.0;
        h.bump(Var::new(0), &act);
        assert_eq!(h.pop(&act), Some(Var::new(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let act = vec![1.0];
        let mut h = VarHeap::new();
        assert!(!h.contains(Var::new(0)));
        h.insert(Var::new(0), &act);
        assert!(h.contains(Var::new(0)));
        h.pop(&act);
        assert!(!h.contains(Var::new(0)));
    }
}
