//! Criterion bench for the FRAIG stage (step 1 of the Fig.-1 flow).

use criterion::{criterion_group, criterion_main, Criterion};
use eco_core::{EcoInstance, Workspace};
use eco_fraig::{fraig_classes, FraigOptions};
use eco_workgen::{assign_weights, cut_targets, WeightProfile};

fn bench_fraig(c: &mut Criterion) {
    // A combined faulty+golden workspace like the engine builds.
    let golden = eco_workgen::circuits::shared_datapath(10);
    let target = golden.wires.last().expect("wires").clone();
    let faulty = cut_targets(&golden, std::slice::from_ref(&target));
    let weights = assign_weights(&faulty, WeightProfile::Unit, 1);
    let inst = EcoInstance::from_netlists("bench", &faulty, &golden, vec![target], &weights)
        .expect("valid");
    let ws = Workspace::new(&inst);

    let mut group = c.benchmark_group("fraig");
    group.sample_size(20);
    group.bench_function("classes/datapath10_combined", |b| {
        b.iter(|| std::hint::black_box(fraig_classes(&ws.mgr, &FraigOptions::default())));
    });
    group.bench_function("classes/fewer_sim_words", |b| {
        let opts = FraigOptions {
            sim_words: 2,
            ..Default::default()
        };
        b.iter(|| std::hint::black_box(fraig_classes(&ws.mgr, &opts)));
    });
    group.finish();
}

criterion_group!(benches, bench_fraig);
criterion_main!(benches);
