#![warn(missing_docs)]
//! # eco-sat — CDCL SAT solving with Craig interpolation
//!
//! A from-scratch MiniSat-style CDCL [`Solver`] plus the two capabilities
//! the ECO flow needs and generic SAT crates rarely expose:
//!
//! * **Craig interpolation** ([`ItpSolver`]): clauses are partitioned into
//!   `(A, B)`; an UNSAT answer yields an [`Interpolant`] in McMillan's
//!   labeling system, built during conflict analysis and emitted directly
//!   as an [`eco_aig::Aig`] over the shared variables.
//! * **Incremental assumptions with final-conflict cores**
//!   ([`Solver::solve`], [`Solver::unsat_core`]): the mechanism behind the
//!   paper's Eq. (12) base-feasibility queries.
//!
//! [`encode_cone`] provides Tseitin encoding of AIG cones into either kind
//! of solver, and [`parse_dimacs`]/[`write_dimacs`] handle CNF interop.
//!
//! # Examples
//!
//! ```
//! use eco_sat::{ClauseLabel, ItpSolver};
//!
//! // A forces y through x; B forbids y through z: the interpolant is y.
//! let mut q = ItpSolver::new();
//! let (x, y, z) = (q.new_var(), q.new_var(), q.new_var());
//! q.add_clause(&[x.pos()], ClauseLabel::A);
//! q.add_clause(&[x.neg(), y.pos()], ClauseLabel::A);
//! q.add_clause(&[y.neg(), z.pos()], ClauseLabel::B);
//! q.add_clause(&[z.neg()], ClauseLabel::B);
//! let outcome = q.solve_limited().expect("default budget is unlimited");
//! let itp = outcome.into_interpolant().expect("unsat");
//! assert_eq!(itp.inputs, vec![y]);
//! ```

mod dimacs;
mod heap;
mod interpolate;
mod lit;
mod portfolio;
mod solver;
mod tseitin;

pub use crate::dimacs::{parse_dimacs, write_dimacs, DimacsProblem, ParseDimacsError};
pub use crate::interpolate::{Interpolant, ItpOutcome, ItpSolver};
pub use crate::lit::{LBool, Lit, Var};
pub use crate::portfolio::{
    race, ArtifactPolicy, MemberCtl, MemberOutcome, PortfolioSpec, RaceOutcome,
};
pub use crate::solver::{ClauseLabel, SolveCtl, Solver, SolverConfig, SolverStats};
pub use crate::tseitin::{assert_lit, encode_cone, ClauseSink, LabeledSink};
