//! One-shot Craig interpolation queries.
//!
//! [`ItpSolver`] collects clauses partitioned into `A` and `B`, then solves
//! `A ∧ B`. If the conjunction is unsatisfiable, it returns a Craig
//! [`Interpolant`] `I` with `A → I`, `I ∧ B` unsatisfiable, and
//! `vars(I) ⊆ vars(A) ∩ vars(B)` (Theorem 1 of the paper), constructed from
//! the solver's resolution proof in McMillan's labeling system and emitted
//! directly as an [`Aig`].

use eco_aig::{Aig, Lit as ALit};

use crate::{ClauseLabel, LBool, Lit, SolveCtl, Solver, SolverConfig, SolverStats, Var};

/// A Craig interpolant represented as an AIG over shared variables.
#[derive(Clone, Debug)]
pub struct Interpolant {
    /// The interpolant circuit; its inputs correspond 1:1 to [`Interpolant::inputs`].
    pub aig: Aig,
    /// Root literal of the interpolant within [`Interpolant::aig`].
    pub root: ALit,
    /// The shared SAT variables, in AIG-input order.
    pub inputs: Vec<Var>,
}

impl Interpolant {
    /// Evaluates the interpolant under a total assignment to the SAT
    /// variables (indexed by variable index).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the largest shared variable
    /// index.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        let inputs: Vec<bool> = self
            .inputs
            .iter()
            .map(|v| assignment[v.index() as usize])
            .collect();
        self.aig.eval_lit(self.root, &inputs)
    }

    /// Number of AND gates in the interpolant cone.
    pub fn size(&self) -> usize {
        self.aig.count_cone_ands(&[self.root])
    }
}

/// Outcome of an interpolation query.
#[derive(Clone, Debug)]
pub enum ItpOutcome {
    /// `A ∧ B` is satisfiable; the witness model is given per variable.
    Sat(Vec<LBool>),
    /// `A ∧ B` is unsatisfiable; a Craig interpolant was derived.
    Unsat(Interpolant),
}

impl ItpOutcome {
    /// Returns the interpolant if the query was unsatisfiable.
    pub fn into_interpolant(self) -> Option<Interpolant> {
        match self {
            ItpOutcome::Unsat(i) => Some(i),
            ItpOutcome::Sat(_) => None,
        }
    }

    /// Returns `true` for the [`ItpOutcome::Sat`] variant.
    pub fn is_sat(&self) -> bool {
        matches!(self, ItpOutcome::Sat(_))
    }
}

/// Collects an `(A, B)` clause partition and solves it with interpolant
/// tracking.
///
/// # Examples
///
/// ```
/// use eco_sat::{ClauseLabel, ItpSolver};
///
/// // A: x & (x -> y)    B: (y -> z) & !z     shared: y
/// let mut q = ItpSolver::new();
/// let x = q.new_var();
/// let y = q.new_var();
/// let z = q.new_var();
/// q.add_clause(&[x.pos()], ClauseLabel::A);
/// q.add_clause(&[x.neg(), y.pos()], ClauseLabel::A);
/// q.add_clause(&[y.neg(), z.pos()], ClauseLabel::B);
/// q.add_clause(&[z.neg()], ClauseLabel::B);
/// let outcome = q.solve_limited().expect("default budget is unlimited");
/// let itp = outcome.into_interpolant().expect("unsat");
/// assert_eq!(itp.inputs, vec![y]);
/// // The interpolant must be exactly `y` here (A forces y, B forbids it).
/// assert!(itp.eval(&[false, true, false]));
/// assert!(!itp.eval(&[false, false, false]));
/// ```
#[derive(Default)]
pub struct ItpSolver {
    n_vars: u32,
    clauses: Vec<(Vec<Lit>, ClauseLabel)>,
    max_conflicts: u64,
    reduce_db_threshold: Option<usize>,
    ctl: SolveCtl,
    config: Option<SolverConfig>,
    last_stats: std::cell::Cell<SolverStats>,
}

impl ItpSolver {
    /// Creates an empty query.
    pub fn new() -> Self {
        ItpSolver {
            n_vars: 0,
            clauses: Vec::new(),
            max_conflicts: u64::MAX,
            reduce_db_threshold: None,
            ctl: SolveCtl::default(),
            config: None,
            last_stats: std::cell::Cell::default(),
        }
    }

    /// Uses `config` for the inner solver of every subsequent solve (e.g.
    /// a diversified portfolio member). Interpolation-incompatible
    /// inprocessing techniques (vivification, variable elimination) are
    /// skipped automatically by the inner solver; subsumption and
    /// self-subsumption stay on and are interpolant-sound.
    pub fn set_config(&mut self, config: SolverConfig) {
        self.config = Some(config);
    }

    /// Search statistics of the most recent [`ItpSolver::solve_limited`]
    /// call (zeroed before any solve).
    pub fn last_stats(&self) -> SolverStats {
        self.last_stats.get()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.n_vars);
        self.n_vars += 1;
        v
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.n_vars as usize
    }

    /// Adds a clause to partition `label`.
    pub fn add_clause(&mut self, lits: &[Lit], label: ClauseLabel) {
        for l in lits {
            assert!(l.var().index() < self.n_vars, "undeclared variable {l:?}");
        }
        self.clauses.push((lits.to_vec(), label));
    }

    /// Sets a conflict budget; [`ItpSolver::solve_limited`] returns `None`
    /// when exceeded.
    pub fn set_conflict_budget(&mut self, max_conflicts: u64) {
        self.max_conflicts = max_conflicts;
    }

    /// Forwards a reduce-DB threshold to the inner solver (see
    /// [`Solver::set_reduce_db_threshold`]).
    pub fn set_reduce_db_threshold(&mut self, max_learnts: usize) {
        self.reduce_db_threshold = Some(max_learnts);
    }

    /// Installs governor controls (deadline / cancellation flag) forwarded
    /// to the inner solver of every subsequent solve (see
    /// [`Solver::set_ctl`]).
    pub fn set_ctl(&mut self, ctl: SolveCtl) {
        self.ctl = ctl;
    }

    /// Variables occurring in both partitions, in index order.
    pub fn shared_vars(&self) -> Vec<Var> {
        let (in_a, in_b) = self.occurrence_flags();
        (0..self.n_vars)
            .filter(|&i| in_a[i as usize] && in_b[i as usize])
            .map(Var::new)
            .collect()
    }

    fn occurrence_flags(&self) -> (Vec<bool>, Vec<bool>) {
        let mut in_a = vec![false; self.n_vars as usize];
        let mut in_b = vec![false; self.n_vars as usize];
        for (lits, label) in &self.clauses {
            let flags = match label {
                ClauseLabel::A => &mut in_a,
                ClauseLabel::B => &mut in_b,
            };
            for l in lits {
                flags[l.var().index() as usize] = true;
            }
        }
        (in_a, in_b)
    }

    /// Solves the query under the configured conflict budget and governor
    /// controls; `None` when the budget is exhausted, the deadline passes,
    /// or the cancellation flag fires. This is the only solve entry point:
    /// with the default unlimited budget and no controls it always returns
    /// `Some`.
    pub fn solve_limited(&self) -> Option<ItpOutcome> {
        let (_, in_b) = self.occurrence_flags();
        let shared = self.shared_vars();
        let mut solver = match &self.config {
            Some(cfg) => Solver::with_config(cfg.clone()),
            None => Solver::new(),
        };
        if let Some(k) = self.reduce_db_threshold {
            solver.set_reduce_db_threshold(k);
        }
        solver.set_ctl(&self.ctl);
        solver.enable_interpolation(in_b, &shared);
        for _ in 0..self.n_vars {
            solver.new_var();
        }
        for (lits, label) in &self.clauses {
            if !solver.add_clause_labeled(lits, *label) {
                break;
            }
        }
        let solved = solver.solve_limited(&[], self.max_conflicts);
        self.last_stats.set(solver.stats());
        match solved? {
            true => {
                let model = (0..self.n_vars)
                    .map(|i| solver.model_value(Var::new(i).pos()))
                    .collect();
                Some(ItpOutcome::Sat(model))
            }
            false => {
                let (aig, root) = solver.interpolant().expect("unsat in itp mode");
                Some(ItpOutcome::Unsat(Interpolant {
                    aig: aig.clone(),
                    root,
                    inputs: shared,
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(q: &ItpSolver) -> ItpOutcome {
        q.solve_limited().expect("unbounded solve completes")
    }

    fn check_interpolant(n_vars: usize, clauses: &[(Vec<Lit>, ClauseLabel)], itp: &Interpolant) {
        // Exhaustively verify: A -> I, and I & B unsat; support containment
        // holds by construction (inputs are the shared vars).
        assert!(n_vars <= 16, "exhaustive check only for small n");
        for bits in 0u32..1 << n_vars {
            let assignment: Vec<bool> = (0..n_vars).map(|i| bits >> i & 1 == 1).collect();
            let sat_side = |label: ClauseLabel| {
                clauses.iter().filter(|(_, l)| *l == label).all(|(c, _)| {
                    c.iter()
                        .any(|l| assignment[l.var().index() as usize] != l.is_negated())
                })
            };
            let i_val = itp.eval(&assignment);
            if sat_side(ClauseLabel::A) {
                assert!(i_val, "A holds but I fails at {assignment:?}");
            }
            if sat_side(ClauseLabel::B) {
                assert!(!i_val, "I & B both hold at {assignment:?}");
            }
        }
    }

    #[test]
    fn implication_chain_interpolant() {
        let mut q = ItpSolver::new();
        let x = q.new_var();
        let y = q.new_var();
        let z = q.new_var();
        q.add_clause(&[x.pos()], ClauseLabel::A);
        q.add_clause(&[x.neg(), y.pos()], ClauseLabel::A);
        q.add_clause(&[y.neg(), z.pos()], ClauseLabel::B);
        q.add_clause(&[z.neg()], ClauseLabel::B);
        let clauses = q.clauses.clone();
        let itp = solve(&q).into_interpolant().expect("unsat");
        assert_eq!(itp.inputs, vec![y]);
        check_interpolant(3, &clauses, &itp);
    }

    #[test]
    fn a_alone_unsat_gives_false() {
        let mut q = ItpSolver::new();
        let x = q.new_var();
        let y = q.new_var();
        q.add_clause(&[x.pos()], ClauseLabel::A);
        q.add_clause(&[x.neg()], ClauseLabel::A);
        q.add_clause(&[y.pos()], ClauseLabel::B);
        let clauses = q.clauses.clone();
        let itp = solve(&q).into_interpolant().expect("unsat");
        check_interpolant(2, &clauses, &itp);
        // I must be constant-false-equivalent: B is satisfiable, so there
        // is an assignment where B holds, hence I must be 0 there; and A
        // never holds. Check I is false everywhere.
        for bits in 0u32..4 {
            let assignment: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            assert!(!itp.eval(&assignment));
        }
    }

    #[test]
    fn b_alone_unsat_gives_true() {
        let mut q = ItpSolver::new();
        let x = q.new_var();
        let y = q.new_var();
        q.add_clause(&[x.pos()], ClauseLabel::A);
        q.add_clause(&[y.pos()], ClauseLabel::B);
        q.add_clause(&[y.neg()], ClauseLabel::B);
        let clauses = q.clauses.clone();
        let itp = solve(&q).into_interpolant().expect("unsat");
        check_interpolant(2, &clauses, &itp);
        for bits in 0u32..4 {
            let assignment: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            assert!(itp.eval(&assignment));
        }
    }

    #[test]
    fn sat_query_returns_model() {
        let mut q = ItpSolver::new();
        let x = q.new_var();
        let y = q.new_var();
        q.add_clause(&[x.pos(), y.pos()], ClauseLabel::A);
        q.add_clause(&[x.neg(), y.neg()], ClauseLabel::B);
        match solve(&q) {
            ItpOutcome::Sat(model) => {
                let xv = model[0].as_bool().expect("assigned");
                let yv = model[1].as_bool().expect("assigned");
                assert!(xv || yv);
                assert!(!xv || !yv);
            }
            ItpOutcome::Unsat(_) => panic!("should be sat"),
        }
    }

    #[test]
    fn random_unsat_partitions_yield_valid_interpolants() {
        let mut state = 0xdeadbeef12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut unsat_seen = 0;
        for _ in 0..400 {
            let n = 4 + (next() % 5) as usize; // 4..8 vars
            let m = 6 + (next() % (4 * n as u64)) as usize;
            let mut q = ItpSolver::new();
            for _ in 0..n {
                q.new_var();
            }
            for _ in 0..m {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Var::new((next() % n as u64) as u32).lit(next() & 1 == 1))
                    .collect();
                let label = if next() & 1 == 1 {
                    ClauseLabel::A
                } else {
                    ClauseLabel::B
                };
                q.add_clause(&lits, label);
            }
            let clauses = q.clauses.clone();
            if let ItpOutcome::Unsat(itp) = solve(&q) {
                unsat_seen += 1;
                check_interpolant(n, &clauses, &itp);
            }
        }
        assert!(unsat_seen > 30, "want many unsat samples, got {unsat_seen}");
    }

    #[test]
    fn interpolants_stay_valid_with_inprocessing_forced_on() {
        // Force inprocessing to fire on every solve with no size gate and
        // every technique requested: in interpolation mode the solver must
        // keep only the label-sound ones (subsumption with tracked
        // partial interpolants; vivification and BVE auto-skip), so the
        // Craig contract must hold on every UNSAT sample.
        let config = SolverConfig {
            inprocess_first_solve: 0,
            inprocess_min_clauses: 0,
            inprocess_solve_interval: 1,
            inprocess_conflict_interval: 20,
            bve: true,
            ..SolverConfig::default()
        };
        let mut state = 0x0123456789abcdefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut unsat_seen = 0;
        let mut inprocessed = 0u64;
        for _ in 0..400 {
            let n = 4 + (next() % 5) as usize; // 4..8 vars
            let m = 6 + (next() % (4 * n as u64)) as usize;
            let mut q = ItpSolver::new();
            q.set_config(config.clone());
            for _ in 0..n {
                q.new_var();
            }
            for _ in 0..m {
                let len = 1 + (next() % 3) as usize;
                let lits: Vec<Lit> = (0..len)
                    .map(|_| Var::new((next() % n as u64) as u32).lit(next() & 1 == 1))
                    .collect();
                let label = if next() & 1 == 1 {
                    ClauseLabel::A
                } else {
                    ClauseLabel::B
                };
                q.add_clause(&lits, label);
            }
            let clauses = q.clauses.clone();
            if let ItpOutcome::Unsat(itp) = solve(&q) {
                unsat_seen += 1;
                check_interpolant(n, &clauses, &itp);
            }
            let stats = q.last_stats();
            inprocessed += stats.subsumed_clauses;
            assert_eq!(stats.vivified_clauses, 0, "vivification must skip itp mode");
            assert_eq!(stats.eliminated_vars, 0, "BVE must skip itp mode");
        }
        assert!(unsat_seen > 30, "want many unsat samples, got {unsat_seen}");
        assert!(
            inprocessed > 0,
            "subsumption never fired across 400 samples"
        );
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // Pigeonhole 6->5 split across partitions with a 1-conflict budget.
        let mut q = ItpSolver::new();
        let n = 6u32;
        let h = 5u32;
        let vars: Vec<Var> = (0..n * h).map(|_| q.new_var()).collect();
        let p = |i: u32, j: u32| vars[(i * h + j) as usize];
        for i in 0..n {
            let row: Vec<Lit> = (0..h).map(|j| p(i, j).pos()).collect();
            q.add_clause(&row, ClauseLabel::A);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    q.add_clause(&[p(i1, j).neg(), p(i2, j).neg()], ClauseLabel::B);
                }
            }
        }
        q.set_conflict_budget(1);
        assert!(q.solve_limited().is_none());
    }
}
