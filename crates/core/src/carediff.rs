//! Care-set / diff-set construction (§2.3) and the per-target on/off sets
//! of Eqs. (5)–(8).

use eco_aig::{Aig, Lit, Var};

/// The on-set and off-set circuits of a target-variable-dependent patch
/// function `p'_k` (Eqs. 7 and 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OnOff {
    /// Minterms where the patch must output 1.
    pub on: Lit,
    /// Minterms where the patch must output 0.
    pub off: Lit,
}

/// Builds the multi-output on/off sets for target `t` given the *current*
/// working outputs `f_cur` (earlier targets already substituted) and the
/// golden outputs `g_outs`:
///
/// ```text
/// on  = ⋁_j care_j^t ∧ diff_j|t=0      off = ⋁_j care_j^t ∧ diff_j|t=1
/// care_j^t = f_j|t=0 ⊕ f_j|t=1         diff_j|t=e = f_j|t=e ⊕ g_j
/// ```
///
/// # Panics
///
/// Panics if `f_cur` and `g_outs` have different lengths.
pub fn on_off_sets(mgr: &mut Aig, f_cur: &[Lit], g_outs: &[Lit], t: Var) -> OnOff {
    assert_eq!(f_cur.len(), g_outs.len(), "output arity mismatch");
    let f0 = mgr.cofactor(f_cur, t, false);
    let f1 = mgr.cofactor(f_cur, t, true);
    let mut on_terms = Vec::with_capacity(f_cur.len());
    let mut off_terms = Vec::with_capacity(f_cur.len());
    for j in 0..f_cur.len() {
        let care = mgr.xor(f0[j], f1[j]);
        let d0 = mgr.xor(f0[j], g_outs[j]);
        let d1 = mgr.xor(f1[j], g_outs[j]);
        on_terms.push(mgr.and(care, d0));
        off_terms.push(mgr.and(care, d1));
    }
    OnOff {
        on: mgr.or_many(&on_terms),
        off: mgr.or_many(&off_terms),
    }
}

/// Builds the *exact* determinization on/off sets from the equivalence
/// relation `R(X, T) = ⋀_j (f_j ≡ g_j)`:
///
/// ```text
/// on  = ¬R|t=0 ∧ R|t=1        off = R|t=0 ∧ ¬R|t=1
/// ```
///
/// Unlike the per-output union of Eqs. (7)/(8), these sets are disjoint
/// *by construction*, so Craig interpolation between them can never hit
/// the §4.3 multi-output conflict. The price is a smaller don't-care set
/// (conflict points are forced instead of free), which is why the paper
/// prefers Eqs. (7)/(8) when they work; the engine uses this form as the
/// guaranteed-applicable fallback.
pub fn exact_on_off_sets(mgr: &mut Aig, f_cur: &[Lit], g_outs: &[Lit], t: Var) -> OnOff {
    assert_eq!(f_cur.len(), g_outs.len(), "output arity mismatch");
    let eqs: Vec<Lit> = f_cur
        .iter()
        .zip(g_outs)
        .map(|(&f, &g)| mgr.xnor(f, g))
        .collect();
    let r = mgr.and_many(&eqs);
    let r0 = mgr.cofactor(&[r], t, false)[0];
    let r1 = mgr.cofactor(&[r], t, true)[0];
    OnOff {
        on: mgr.and(!r0, r1),
        off: mgr.and(r0, !r1),
    }
}

/// Builds the diff-set `⋁_j f_j ⊕ g_j` (the error-minterm characteristic
/// function over the current inputs).
pub fn diff_set(mgr: &mut Aig, f_outs: &[Lit], g_outs: &[Lit]) -> Lit {
    assert_eq!(f_outs.len(), g_outs.len(), "output arity mismatch");
    let xors: Vec<Lit> = f_outs
        .iter()
        .zip(g_outs)
        .map(|(&f, &g)| mgr.xor(f, g))
        .collect();
    mgr.or_many(&xors)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single-output sanity: F = t ^ c, G = (a & b) ^ c.
    /// care^t = 1 (t always observable), diff|t=0 = c ^ ((a&b)^c) = a&b,
    /// diff|t=1 = !(a&b). So on = a&b, off = !(a&b).
    #[test]
    fn single_output_on_off() {
        let mut mgr = Aig::new();
        let a = mgr.add_input("a");
        let b = mgr.add_input("b");
        let c = mgr.add_input("c");
        let t = mgr.add_input("t");
        let f = mgr.xor(t, c);
        let ab = mgr.and(a, b);
        let g = mgr.xor(ab, c);
        let onoff = on_off_sets(&mut mgr, &[f], &[g], t.var());
        mgr.add_output("on", onoff.on);
        mgr.add_output("off", onoff.off);
        for bits in 0u32..16 {
            let vals: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let expect_on = vals[0] && vals[1];
            let out = mgr.eval(&vals);
            assert_eq!(out[0], expect_on, "on at {vals:?}");
            assert_eq!(out[1], !expect_on, "off at {vals:?}");
        }
    }

    /// Output insensitive to t contributes nothing (care = 0).
    #[test]
    fn insensitive_output_contributes_nothing() {
        let mut mgr = Aig::new();
        let a = mgr.add_input("a");
        let t = mgr.add_input("t");
        let f = mgr.and(a, a); // = a, independent of t
        let g = !a;
        let onoff = on_off_sets(&mut mgr, &[f], &[g], t.var());
        // care = 0 → both sets empty even though f != g.
        assert_eq!(onoff.on, Lit::FALSE);
        assert_eq!(onoff.off, Lit::FALSE);
    }

    /// Multi-output union: conflicting requirements make on and off
    /// overlap (the §4.3 interpolation-failure scenario).
    #[test]
    fn multi_output_conflict_overlaps() {
        let mut mgr = Aig::new();
        let t = mgr.add_input("t");
        // f1 = t must equal g1 = 1 → on-set everywhere.
        // f2 = t must equal g2 = 0 → off-set everywhere.
        let f1 = t;
        let f2 = t;
        let g1 = Lit::TRUE;
        let g2 = Lit::FALSE;
        let onoff = on_off_sets(&mut mgr, &[f1, f2], &[g1, g2], t.var());
        assert_eq!(onoff.on, Lit::TRUE);
        assert_eq!(onoff.off, Lit::TRUE);
    }

    /// Exact determinization sets are always disjoint, even in the
    /// multi-output conflict scenario where Eqs. (7)/(8) overlap.
    #[test]
    fn exact_sets_are_disjoint_under_conflict() {
        let mut mgr = Aig::new();
        let t = mgr.add_input("t");
        let f1 = t;
        let f2 = t;
        let g1 = Lit::TRUE;
        let g2 = Lit::FALSE;
        let exact = exact_on_off_sets(&mut mgr, &[f1, f2], &[g1, g2], t.var());
        let overlap = mgr.and(exact.on, exact.off);
        assert_eq!(overlap, Lit::FALSE);
    }

    /// On a conflict-free instance the exact sets agree with Eqs. (7)/(8)
    /// where both are defined (single output: identical).
    #[test]
    fn exact_matches_union_single_output() {
        let mut mgr = Aig::new();
        let a = mgr.add_input("a");
        let b = mgr.add_input("b");
        let c = mgr.add_input("c");
        let t = mgr.add_input("t");
        let f = mgr.xor(t, c);
        let ab = mgr.and(a, b);
        let g = mgr.xor(ab, c);
        let union = on_off_sets(&mut mgr, &[f], &[g], t.var());
        let exact = exact_on_off_sets(&mut mgr, &[f], &[g], t.var());
        mgr.add_output("u_on", union.on);
        mgr.add_output("e_on", exact.on);
        mgr.add_output("u_off", union.off);
        mgr.add_output("e_off", exact.off);
        for bits in 0u32..16 {
            let vals: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let out = mgr.eval(&vals);
            assert_eq!(out[0], out[1], "on at {vals:?}");
            assert_eq!(out[2], out[3], "off at {vals:?}");
        }
    }

    #[test]
    fn diff_set_detects_disagreement() {
        let mut mgr = Aig::new();
        let a = mgr.add_input("a");
        let b = mgr.add_input("b");
        let d = diff_set(&mut mgr, &[a, b], &[a, !b]);
        // Outputs differ exactly on the second pair → diff = 1 always.
        assert_eq!(d, Lit::TRUE);
        let d2 = diff_set(&mut mgr, &[a, b], &[a, b]);
        assert_eq!(d2, Lit::FALSE);
    }
}
