#![warn(missing_docs)]
//! # eco-core — cost-aware multi-target ECO patch generation
//!
//! A complete implementation of *"Cost-Aware Patch Generation for
//! Multi-Target Function Rectification of Engineering Change Orders"*
//! (Zhang & Jiang, DAC 2018): given a faulty circuit `F(X, T)` whose
//! pre-specified target signals `T` float as pseudo-inputs, a golden
//! circuit `G(X)`, and per-signal weights, the [`EcoEngine`] synthesizes
//! patch functions over existing (weighted) signals of `F` that make the
//! patched circuit equivalent to `G`, minimizing base cost and patch size.
//!
//! The flow (Fig. 1 of the paper):
//!
//! 1. **FRAIG** ([`eco_fraig`]) detects shared equivalent signals between
//!    `F` and `G` in one combined [`Workspace`] manager.
//! 2. **Clustering** ([`cluster_targets`]) groups targets sharing output
//!    cones (Fig. 2) so groups rectify independently.
//! 3. **Localization** ([`TapMap`], [`Cut`]; Alg. 2 / Thm. 2) cuts all
//!    reasoning at the first tapped signal along every path.
//! 4. **Patch generation** ([`generate_group_patches`]; Alg. 1) derives
//!    target-dependent patches from the care/diff on/off sets
//!    (Eqs. 5–8) and back-substitutes to eliminate target variables;
//!    [`synthesize_patch`] realizes each function by interpolation or the
//!    on-set (§4.3).
//! 5. **Cost optimization** ([`optimize_patches`]; §6) rebases patches
//!    with the Eq.-12 functional-dependency formula ([`RebaseQuery`]),
//!    Watch/Hold/CPB base selection ([`select_base`]), and
//!    counterexample enumeration ([`enumerate_cex`], Table 1).
//! 6. **Verification** ([`check_equivalence`]) proves the patched circuit
//!    equivalent to the golden one; localized runs that fail fall back to
//!    an unlocalized derivation for completeness.
//!
//! # Examples
//!
//! ```
//! use eco_core::{EcoEngine, EcoInstance, EcoOptions};
//! use eco_netlist::{parse_verilog, WeightTable};
//!
//! // Faulty: the AND driving the XOR was cut out as target `t`.
//! let faulty = parse_verilog(
//!     "module f (a, b, c, t, y); input a, b, c, t; output y;
//!      xor g1 (y, t, c); endmodule",
//! )?;
//! let golden = parse_verilog(
//!     "module g (a, b, c, y); input a, b, c; output y;
//!      wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
//! )?;
//! let inst = EcoInstance::from_netlists(
//!     "demo", &faulty, &golden, vec!["t".into()], &WeightTable::new(1),
//! )?;
//! let result = EcoEngine::new(inst, EcoOptions::default()).run()?;
//! assert_eq!(result.patches[0].target, "t");
//! assert!(result.size >= 1); // the patch rebuilds a & b
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod assemble;
mod baseselect;
mod carediff;
mod cexenum;
mod cluster;
mod engine;
mod error;
/// Deterministic fault-injection registry (public module: consult sites
/// live across the workspace).
pub mod faultpoint;
mod govern;
mod instance;
mod localize;
mod memo;
mod memo_store;
mod optimize;
mod patchgen;
mod rebase;
mod rectifiable;
mod report;
mod sizeopt;
mod synth;
mod telemetry;
mod verify;
mod workspace;

pub use crate::assemble::splice_patch;
pub use crate::baseselect::{select_base, BaseSelectOptions, SelectedBase};
pub use crate::carediff::{diff_set, exact_on_off_sets, on_off_sets, OnOff};
pub use crate::cexenum::{enumerate_cex, enumerate_cex_capped, CexSet};
pub use crate::cluster::{cluster_targets, Clustering, TargetCluster};
pub use crate::engine::{
    EcoEngine, EcoOptions, EcoOutcome, EcoResult, PartialResult, StageTimes, TargetPatch,
};
pub use crate::error::EcoError;
pub use crate::faultpoint::{parse_chaos_spec, ChaosSpec, FaultStats};
pub use crate::govern::{Budget, BudgetOptions, ClusterDiagnosis, ClusterReport, ConflictMeter};
pub use crate::instance::{BaseCandidate, EcoInstance};
pub use crate::localize::{Cut, CutSignal, TapMap};
pub use crate::memo::{patch_memo_key, rect_memo_key, MemoCache, MemoStats};
pub use crate::memo_store::{
    crc32, read_log, LogStats, LogWriter, MemoLoadStats, MemoStore, MEMO_MAGIC,
};
pub use crate::optimize::{optimize_patches, total_cost, OptimizeOptions, OptimizeStats};
pub use crate::patchgen::{
    extract_patch_aig, generate_group_patches, GroupPatches, PatchFn, PatchGenOptions,
};
pub use crate::rebase::{resynthesize, RebaseQuery};
pub use crate::rectifiable::{
    check_rect_cex, check_rect_cex_portfolio, check_rectifiable, check_rectifiable_portfolio,
    Rectifiability,
};
pub use crate::report::{PartialReport, Report};
pub use crate::sizeopt::{reduce_patch_sizes, SizeOptOptions, SizeOptStats};
pub use crate::synth::{synthesize_patch, InitialPatchKind, SynthOutcome};
pub use crate::telemetry::{
    json_escape, peak_rss_bytes, JsonObj, SatTotals, Stage, SweepTotals, Telemetry, TelemetryEvent,
    TelemetrySnapshot,
};
pub use crate::verify::{
    check_equivalence, check_equivalence_ctl, check_equivalence_portfolio, check_equivalence_stats,
    VerifyOutcome,
};
pub use crate::workspace::{Workspace, WsCandidate};
