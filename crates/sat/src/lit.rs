//! SAT variables, literals, and the three-valued assignment type.

use std::fmt;

/// A SAT variable (0-based index).
///
/// # Examples
///
/// ```
/// use eco_sat::Var;
/// let v = Var::new(4);
/// assert_eq!(v.pos().var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Var(index)
    }

    /// Returns the variable index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Positive literal of this variable.
    #[inline]
    pub const fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// Negative literal of this variable.
    #[inline]
    pub const fn neg(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Literal of this variable with explicit sign (`true` = negated).
    #[inline]
    pub const fn lit(self, negated: bool) -> Lit {
        Lit(self.0 << 1 | negated as u32)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A SAT literal: a variable with a sign, encoded as `2*var + sign`.
///
/// # Examples
///
/// ```
/// use eco_sat::{Lit, Var};
/// let l = Var::new(2).pos();
/// assert_eq!(!l, Var::new(2).neg());
/// assert!(!l.is_negated());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from its raw `2*var + sign` code.
    #[inline]
    pub const fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Returns the raw code.
    #[inline]
    pub const fn code(self) -> u32 {
        self.0
    }

    /// Returns the underlying variable.
    #[inline]
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if the literal is negated.
    #[inline]
    pub const fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Creates a literal from a DIMACS-style signed integer (non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `dimacs == 0`.
    pub fn from_dimacs(dimacs: i32) -> Self {
        assert!(dimacs != 0, "DIMACS literal must be non-zero");
        let var = Var::new(dimacs.unsigned_abs() - 1);
        var.lit(dimacs < 0)
    }

    /// Converts to a DIMACS-style signed integer.
    pub fn to_dimacs(self) -> i32 {
        let v = self.var().index() as i32 + 1;
        if self.is_negated() {
            -v
        } else {
            v
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "!x{}", self.var().index())
        } else {
            write!(f, "x{}", self.var().index())
        }
    }
}

/// Three-valued assignment: true, false, or unassigned.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts from a concrete boolean.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Returns the concrete value, if assigned.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Negation (`Undef` stays `Undef`).
    #[inline]
    pub fn negate(self) -> Self {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// XOR with a boolean (`Undef` stays `Undef`).
    #[inline]
    pub fn xor(self, b: bool) -> Self {
        if b {
            self.negate()
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_round_trips() {
        let v = Var::new(7);
        assert_eq!(v.pos().var(), v);
        assert!(!v.pos().is_negated());
        assert!(v.neg().is_negated());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(v.lit(true), v.neg());
    }

    #[test]
    fn dimacs_conversion() {
        assert_eq!(Lit::from_dimacs(1), Var::new(0).pos());
        assert_eq!(Lit::from_dimacs(-3), Var::new(2).neg());
        assert_eq!(Lit::from_dimacs(-3).to_dimacs(), -3);
        assert_eq!(Lit::from_dimacs(42).to_dimacs(), 42);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_algebra() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::True.xor(true), LBool::False);
        assert_eq!(LBool::False.xor(false), LBool::False);
        assert_eq!(LBool::True.as_bool(), Some(true));
        assert_eq!(LBool::Undef.as_bool(), None);
    }
}
