#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite.
# Run from anywhere; operates on the workspace root.
#
# --bench-smoke additionally runs the simulation and FRAIG-sweep benches
# with a single sample each, so hot-path regressions (a bench that panics,
# an accidental O(n^2) blowup) fail fast without the cost of a real
# measurement run.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_smoke=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    *) echo "usage: $0 [--bench-smoke]" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q --workspace

if [ "$bench_smoke" -eq 1 ]; then
  echo "== bench smoke (1 sample): sim_throughput"
  ECO_BENCH_SAMPLES=1 cargo bench -p eco-bench --bench sim_throughput
  echo "== bench smoke (1 sample): fraig_sweep"
  ECO_BENCH_SAMPLES=1 cargo bench -p eco-bench --bench fraig_sweep
fi

echo "all checks passed"
