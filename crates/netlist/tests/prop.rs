// Needs the external `proptest` crate; compiled out by default so the
// workspace builds offline. Enable with `--features proptest` (see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests: writer/parser round trips and elaboration
//! semantics on randomly generated netlists.

use eco_netlist::{elaborate, parse_verilog, write_verilog, Gate, GateKind, NetRef, Netlist};
use proptest::prelude::*;

/// A random flat netlist recipe: gate kinds and operand picks.
type Recipe = Vec<(u8, usize, usize)>;

fn build(n_inputs: usize, recipe: &Recipe) -> Netlist {
    let mut nl = Netlist::new("m");
    let mut nets: Vec<String> = (0..n_inputs).map(|i| format!("i{i}")).collect();
    nl.inputs = nets.clone();
    for (k, &(kind, a, b)) in recipe.iter().enumerate() {
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Xor,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xnor,
            GateKind::Not,
            GateKind::Buf,
        ];
        let kind = kinds[kind as usize % kinds.len()];
        let out = format!("w{k}");
        let mut inputs = vec![NetRef::named(nets[a % nets.len()].clone())];
        if !matches!(kind, GateKind::Not | GateKind::Buf) {
            inputs.push(NetRef::named(nets[b % nets.len()].clone()));
        }
        nl.wires.push(out.clone());
        nl.gates.push(Gate {
            kind,
            name: None,
            output: out.clone(),
            inputs,
        });
        nets.push(out);
    }
    let last = nets.last().expect("non-empty").clone();
    nl.outputs.push("y".into());
    nl.gates.push(Gate {
        kind: GateKind::Buf,
        name: None,
        output: "y".into(),
        inputs: vec![NetRef::named(last)],
    });
    nl
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop::collection::vec((any::<u8>(), 0..64usize, 0..64usize), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// write → parse is the identity on semantics.
    #[test]
    fn write_parse_round_trip(recipe in recipe_strategy()) {
        let nl = build(5, &recipe);
        let text = write_verilog(&nl);
        let back = parse_verilog(&text).expect("written netlist parses");
        let e1 = elaborate(&nl).expect("original elaborates");
        let e2 = elaborate(&back).expect("round trip elaborates");
        for bits in 0u32..32 {
            let vals: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(e1.aig.eval(&vals), e2.aig.eval(&vals));
        }
    }

    /// netlist → AIG → netlist preserves semantics.
    #[test]
    fn aig_round_trip(recipe in recipe_strategy()) {
        let nl = build(5, &recipe);
        let e1 = elaborate(&nl).expect("elaborates");
        let back = eco_netlist::netlist_from_aig(&e1.aig, "rt");
        let e2 = elaborate(&back).expect("round trip elaborates");
        for bits in 0u32..32 {
            let vals: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(e1.aig.eval(&vals), e2.aig.eval(&vals));
        }
    }

    /// Every named net's literal evaluates consistently with a rebuilt
    /// output on that net.
    #[test]
    fn net_lits_are_consistent(recipe in recipe_strategy(), pick in 0..40usize) {
        let nl = build(4, &recipe);
        let e = elaborate(&nl).expect("elaborates");
        let wire = &nl.wires[pick % nl.wires.len()];
        let lit = e.net_lits[wire.as_str()];
        // Re-elaborate with that wire promoted to an output.
        let mut nl2 = nl.clone();
        nl2.outputs.push("probe".into());
        nl2.gates.push(Gate {
            kind: GateKind::Buf,
            name: None,
            output: "probe".into(),
            inputs: vec![NetRef::named(wire.clone())],
        });
        let e2 = elaborate(&nl2).expect("elaborates");
        let probe = e2.aig.find_output("probe").expect("probe output");
        for bits in 0u32..16 {
            let vals: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(
                e.aig.eval_lit(lit, &vals),
                e2.aig.eval(&vals)[probe],
                "wire {} at {:?}", wire, vals
            );
        }
    }
}
