//! Batch manifest loading.
//!
//! A manifest is a declarative list of ECO jobs. Two equivalent on-disk
//! encodings are accepted, chosen by file extension:
//!
//! * **TOML subset** (any extension other than `.json`): one `[[job]]`
//!   table per job with `key = value` lines, where a value is a quoted
//!   string, an unsigned integer, or a list of quoted strings. Blank
//!   lines and `#` comments are ignored.
//!
//!   ```toml
//!   [[job]]
//!   name = "unit00"
//!   faulty = "unit00_faulty.v"
//!   golden = "unit00_golden.v"
//!   weights = "unit00.weights"
//!   targets = ["t_0", "t_1"]
//!   budget = 200000
//!   ```
//!
//! * **JSON subset** (`.json`): either `{"jobs": [ {...}, ... ]}` or a
//!   bare top-level array of job objects with the same keys.
//!
//! `faulty` and `golden` are required; `name` defaults to the stem of the
//! faulty path, `weights` to unit weights, `targets` to the instance
//! default (every `t_`-prefixed input), and `budget` (a per-job SAT
//! conflict allowance) to the batch-wide apportionment. Relative paths
//! are resolved against the directory containing the manifest so a suite
//! directory can be moved wholesale.

use std::fmt;
use std::path::{Path, PathBuf};

/// One ECO job entry from a batch manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Display name for reports; defaults to the faulty file stem.
    pub name: String,
    /// Path to the faulty circuit (`.v` or `.blif`).
    pub faulty: PathBuf,
    /// Path to the golden circuit (`.v` or `.blif`).
    pub golden: PathBuf,
    /// Optional path to a `signal weight` table; `None` = unit weights.
    pub weights: Option<PathBuf>,
    /// Explicit target names; empty = every `t_`-prefixed faulty input.
    pub targets: Vec<String>,
    /// Optional per-job SAT conflict allowance overriding the batch-wide
    /// apportionment (the smaller of the two wins).
    pub budget: Option<u64>,
}

/// A parsed batch manifest: an ordered list of jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Jobs in manifest order; report lines keep this order.
    pub jobs: Vec<JobSpec>,
}

/// Error produced while reading or parsing a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError(pub String);

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest error: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ManifestError> {
    Err(ManifestError(msg.into()))
}

impl Manifest {
    /// Reads and parses a manifest file, resolving relative job paths
    /// against the manifest's directory.
    pub fn load(path: &Path) -> Result<Manifest, ManifestError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ManifestError(format!("cannot read {}: {e}", path.display())))?;
        let mut manifest = if path.extension().is_some_and(|e| e == "json") {
            Manifest::parse_json(&text)?
        } else {
            Manifest::parse_toml(&text)?
        };
        if let Some(dir) = path.parent() {
            manifest.resolve_relative_to(dir);
        }
        Ok(manifest)
    }

    /// Rewrites every relative job path to be relative to `dir`.
    pub fn resolve_relative_to(&mut self, dir: &Path) {
        let resolve = |p: &mut PathBuf| {
            if p.is_relative() {
                *p = dir.join(&*p);
            }
        };
        for job in &mut self.jobs {
            resolve(&mut job.faulty);
            resolve(&mut job.golden);
            if let Some(w) = &mut job.weights {
                resolve(w);
            }
        }
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse_toml(text: &str) -> Result<Manifest, ManifestError> {
        let mut jobs: Vec<RawJob> = Vec::new();
        for (lineno, raw_line) in text.lines().enumerate() {
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[job]]" {
                jobs.push(RawJob::default());
                continue;
            }
            if line.starts_with('[') {
                return err(format!("line {}: unknown table {line}", lineno + 1));
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(format!("line {}: expected `key = value`", lineno + 1));
            };
            let Some(job) = jobs.last_mut() else {
                return err(format!(
                    "line {}: key outside any [[job]] table",
                    lineno + 1
                ));
            };
            let key = key.trim();
            let value = parse_toml_value(value.trim())
                .map_err(|m| ManifestError(format!("line {}: {m}", lineno + 1)))?;
            job.set(key, value)
                .map_err(|m| ManifestError(format!("line {}: {m}", lineno + 1)))?;
        }
        finish(jobs)
    }

    /// Parses the JSON subset described in the module docs.
    pub fn parse_json(text: &str) -> Result<Manifest, ManifestError> {
        let value = json::parse(text).map_err(ManifestError)?;
        let entries = match value {
            json::Value::Arr(items) => items,
            json::Value::Obj(fields) => {
                let Some((_, jobs)) = fields.into_iter().find(|(k, _)| k == "jobs") else {
                    return err("top-level object is missing the \"jobs\" array");
                };
                match jobs {
                    json::Value::Arr(items) => items,
                    _ => return err("\"jobs\" must be an array"),
                }
            }
            _ => return err("expected a top-level array or {\"jobs\": [...]}"),
        };
        let mut jobs = Vec::new();
        for (i, entry) in entries.into_iter().enumerate() {
            let json::Value::Obj(fields) = entry else {
                return err(format!("job {i}: expected an object"));
            };
            let mut job = RawJob::default();
            for (key, value) in fields {
                let value = match value {
                    json::Value::Str(s) => Value::Str(s),
                    json::Value::Int(n) => Value::Int(n),
                    json::Value::Arr(items) => {
                        let mut list = Vec::new();
                        for item in items {
                            match item {
                                json::Value::Str(s) => list.push(s),
                                _ => return err(format!("job {i}: {key}: expected strings")),
                            }
                        }
                        Value::List(list)
                    }
                    _ => return err(format!("job {i}: {key}: unsupported value type")),
                };
                job.set(&key, value)
                    .map_err(|m| ManifestError(format!("job {i}: {m}")))?;
            }
            jobs.push(job);
        }
        finish(jobs)
    }
}

/// A scalar or list value from either encoding.
enum Value {
    Str(String),
    Int(u64),
    List(Vec<String>),
}

#[derive(Default)]
struct RawJob {
    name: Option<String>,
    faulty: Option<String>,
    golden: Option<String>,
    weights: Option<String>,
    targets: Vec<String>,
    budget: Option<u64>,
}

impl RawJob {
    fn set(&mut self, key: &str, value: Value) -> Result<(), String> {
        let expect_str = |v: Value| match v {
            Value::Str(s) => Ok(s),
            _ => Err(format!("{key}: expected a string")),
        };
        match key {
            "name" => self.name = Some(expect_str(value)?),
            "faulty" => self.faulty = Some(expect_str(value)?),
            "golden" => self.golden = Some(expect_str(value)?),
            "weights" => self.weights = Some(expect_str(value)?),
            "targets" => match value {
                Value::List(list) => self.targets = list,
                _ => return Err("targets: expected a list of strings".into()),
            },
            "budget" => match value {
                Value::Int(n) => self.budget = Some(n),
                _ => return Err("budget: expected an unsigned integer".into()),
            },
            other => return Err(format!("unknown key `{other}`")),
        }
        Ok(())
    }
}

fn finish(raw: Vec<RawJob>) -> Result<Manifest, ManifestError> {
    let mut jobs = Vec::with_capacity(raw.len());
    for (i, job) in raw.into_iter().enumerate() {
        let Some(faulty) = job.faulty else {
            return err(format!("job {i}: missing required key `faulty`"));
        };
        let Some(golden) = job.golden else {
            return err(format!("job {i}: missing required key `golden`"));
        };
        let faulty = PathBuf::from(faulty);
        let name = job.name.unwrap_or_else(|| {
            faulty
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| format!("job{i}"))
        });
        jobs.push(JobSpec {
            name,
            faulty,
            golden: PathBuf::from(golden),
            weights: job.weights.map(PathBuf::from),
            targets: job.targets,
            budget: job.budget,
        });
    }
    if jobs.is_empty() {
        return err("manifest contains no jobs");
    }
    Ok(Manifest { jobs })
}

/// Strips a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_toml_value(text: &str) -> Result<Value, String> {
    if let Some(rest) = text.strip_prefix('[') {
        let Some(body) = rest.strip_suffix(']') else {
            return Err("unterminated list".into());
        };
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_toml_value(part)? {
                Value::Str(s) => items.push(s),
                _ => return Err("lists may only contain strings".into()),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err("unterminated string".into());
        };
        return Ok(Value::Str(unescape(body)?));
    }
    let digits: String = text.chars().filter(|c| *c != '_').collect();
    digits
        .parse::<u64>()
        .map(Value::Int)
        .map_err(|_| format!("cannot parse value `{text}`"))
}

/// Splits on commas that are not inside a quoted string.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in text.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    parts.push(&text[start..]);
    parts
}

fn unescape(body: &str) -> Result<String, String> {
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => return Err(format!("unsupported escape `\\{other}`")),
            None => return Err("dangling backslash".into()),
        }
    }
    Ok(out)
}

/// A minimal recursive-descent JSON parser — just enough for manifests.
mod json {
    pub enum Value {
        Null,
        Bool,
        Int(u64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {pos}", c as char))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_obj(bytes, pos),
            Some(b'[') => parse_arr(bytes, pos),
            Some(b'"') => parse_str(bytes, pos).map(Value::Str),
            Some(b't') => parse_lit(bytes, pos, "true").map(|()| Value::Bool),
            Some(b'f') => parse_lit(bytes, pos, "false").map(|()| Value::Bool),
            Some(b'n') => parse_lit(bytes, pos, "null").map(|()| Value::Null),
            Some(c) if c.is_ascii_digit() => parse_int(bytes, pos),
            _ => Err(format!("unexpected input at byte {pos}")),
        }
    }

    fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn parse_int(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Value::Int)
            .ok_or_else(|| format!("bad integer at byte {start}"))
    }

    fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        debug_assert_eq!(bytes[*pos], b'"');
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        _ => return Err(format!("unsupported escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&bytes[*pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {pos}")),
            }
        }
    }

    fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b'"') {
                return Err(format!("expected a key string at byte {pos}"));
            }
            let key = parse_str(bytes, pos)?;
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = r#"
# suite manifest
[[job]]
name = "unit00"
faulty = "unit00_faulty.v"   # inline comment
golden = "unit00_golden.v"
weights = "unit00.weights"
targets = ["t_0", "t_1"]
budget = 200_000

[[job]]
faulty = "unit01_faulty.v"
golden = "unit01_golden.v"
"#;

    #[test]
    fn toml_subset_round_trips_all_fields() {
        let m = Manifest::parse_toml(TOML).unwrap();
        assert_eq!(m.jobs.len(), 2);
        let j = &m.jobs[0];
        assert_eq!(j.name, "unit00");
        assert_eq!(j.faulty, PathBuf::from("unit00_faulty.v"));
        assert_eq!(j.golden, PathBuf::from("unit00_golden.v"));
        assert_eq!(j.weights, Some(PathBuf::from("unit00.weights")));
        assert_eq!(j.targets, vec!["t_0".to_string(), "t_1".to_string()]);
        assert_eq!(j.budget, Some(200_000));
        // Defaults: name from faulty stem, no weights/targets/budget.
        let j = &m.jobs[1];
        assert_eq!(j.name, "unit01_faulty");
        assert_eq!(j.weights, None);
        assert!(j.targets.is_empty());
        assert_eq!(j.budget, None);
    }

    #[test]
    fn json_object_and_bare_array_forms_agree() {
        let obj = r#"{"jobs": [
            {"name": "u", "faulty": "f.v", "golden": "g.v",
             "targets": ["t_0"], "budget": 500}
        ]}"#;
        let arr = r#"[
            {"name": "u", "faulty": "f.v", "golden": "g.v",
             "targets": ["t_0"], "budget": 500}
        ]"#;
        let a = Manifest::parse_json(obj).unwrap();
        let b = Manifest::parse_json(arr).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.jobs[0].budget, Some(500));
    }

    #[test]
    fn missing_required_keys_and_unknown_keys_are_rejected() {
        assert!(Manifest::parse_toml("[[job]]\nname = \"x\"\n").is_err());
        assert!(
            Manifest::parse_toml("[[job]]\nfaulty = \"f\"\ngolden = \"g\"\nbogus = 1\n").is_err()
        );
        assert!(Manifest::parse_toml("faulty = \"f\"\n").is_err()); // key before [[job]]
        assert!(Manifest::parse_toml("# only comments\n").is_err()); // no jobs
        assert!(Manifest::parse_json(r#"{"jobs": []}"#).is_err());
    }

    #[test]
    fn relative_paths_resolve_against_manifest_dir() {
        let mut m = Manifest::parse_toml(
            "[[job]]\nfaulty = \"a.v\"\ngolden = \"/abs/g.v\"\nweights = \"w.txt\"\n",
        )
        .unwrap();
        m.resolve_relative_to(Path::new("/suite"));
        assert_eq!(m.jobs[0].faulty, PathBuf::from("/suite/a.v"));
        assert_eq!(m.jobs[0].golden, PathBuf::from("/abs/g.v")); // absolute untouched
        assert_eq!(m.jobs[0].weights, Some(PathBuf::from("/suite/w.txt")));
    }

    #[test]
    fn comment_stripping_respects_quoted_hashes() {
        let m =
            Manifest::parse_toml("[[job]]\nfaulty = \"a#b.v\" # real comment\ngolden = \"g.v\"\n")
                .unwrap();
        assert_eq!(m.jobs[0].faulty, PathBuf::from("a#b.v"));
    }
}
