//! Counterexample enumeration over Watch variables (§6.2.1, Table 1).
//!
//! With the Hold signals (plus one probe candidate) selected in the Eq.-12
//! formula, every satisfying assignment is a *counterexample*: an on-set
//! point and an off-set point that the selected signals fail to
//! distinguish. Counterexamples are projected onto the Watch signals of
//! the on-copy and blocked one projection at a time with clauses guarded
//! by fresh control variables — the controls are simply not assumed in
//! later enumerations, deactivating the blocks without solver surgery.

use crate::rebase::RebaseQuery;

/// The counterexample projections seen for one probe: each entry is a
/// bitmask over the Watch list (bit `i` = value of the on-copy literal of
/// `watch[i]`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CexSet {
    /// Distinct projections in discovery order.
    pub masks: Vec<u32>,
}

impl CexSet {
    /// Returns `true` if no counterexample exists (the probed selection is
    /// feasible).
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Number of distinct projections.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Counts projections in `self` that are absent from `other` — the
    /// "newly blocked" quantity in the CPB score (Eq. 13).
    pub fn count_not_in(&self, other: &CexSet) -> usize {
        self.masks
            .iter()
            .filter(|m| !other.masks.contains(m))
            .count()
    }

    /// Set union (used to accumulate the candidate pool's projections).
    pub fn union_with(&mut self, other: &CexSet) {
        for &m in &other.masks {
            if !self.masks.contains(&m) {
                self.masks.push(m);
            }
        }
    }

    /// Set intersection (projections still unblocked).
    pub fn intersect_with(&mut self, other: &CexSet) {
        self.masks.retain(|m| other.masks.contains(m));
    }
}

/// Enumerates counterexample projections onto `watch` (pool indices)
/// with `hold ∪ probe` selected (all pool indices), up to `max_cex`
/// projections (a runtime knob on top of the paper's `2^|watch|` bound).
///
/// Returns `None` when the conflict budget is exhausted mid-enumeration.
/// Each found projection is blocked through a fresh control literal that
/// subsequent calls leave unassumed.
///
/// # Panics
///
/// Panics if `watch.len() > 31`.
pub fn enumerate_cex(
    q: &mut RebaseQuery,
    hold: &[usize],
    probe: Option<usize>,
    watch: &[usize],
    conflict_budget: u64,
) -> Option<CexSet> {
    enumerate_cex_capped(q, hold, probe, watch, conflict_budget, usize::MAX)
}

/// [`enumerate_cex`] with an explicit projection cap.
pub fn enumerate_cex_capped(
    q: &mut RebaseQuery,
    hold: &[usize],
    probe: Option<usize>,
    watch: &[usize],
    conflict_budget: u64,
    max_cex: usize,
) -> Option<CexSet> {
    assert!(watch.len() <= 31, "watch windows beyond 31 are impractical");
    let mut assumptions: Vec<eco_sat::Lit> = hold.iter().map(|&i| q.sel_lits()[i]).collect();
    if let Some(p) = probe {
        assumptions.push(q.sel_lits()[p]);
    }
    let watch_b1: Vec<eco_sat::Lit> = watch.iter().map(|&i| q.b1_lits()[i]).collect();

    let mut set = CexSet::default();
    let mut local_controls: Vec<eco_sat::Lit> = Vec::new();
    let mut exhausted = false;
    while set.masks.len() < max_cex {
        let mut assume = assumptions.clone();
        assume.extend(&local_controls);
        match q.solver_mut().solve_limited(&assume, conflict_budget) {
            None => {
                exhausted = true;
                break;
            }
            Some(false) => break,
            Some(true) => {
                let mut mask = 0u32;
                let mut block: Vec<eco_sat::Lit> = Vec::new();
                let c = q.solver_mut().new_var().pos();
                // The control variable is assumed by later enumeration
                // calls, so it must never be eliminated by inprocessing.
                q.solver_mut().freeze_var(c.var());
                block.push(!c);
                for (i, &wl) in watch_b1.iter().enumerate() {
                    let val = q.solver_mut().model_value(wl) == eco_sat::LBool::True;
                    if val {
                        mask |= 1 << i;
                    }
                    // Block this on-copy projection: at least one watch
                    // literal must differ next time (Table 1's
                    // `c → a ∨ ¬b` pattern).
                    block.push(if val { !wl } else { wl });
                }
                if watch_b1.is_empty() {
                    // Nothing to project on: one counterexample suffices.
                    set.masks.push(0);
                    break;
                }
                debug_assert!(!set.masks.contains(&mask), "projection repeated");
                set.masks.push(mask);
                q.solver_mut().add_clause(&block);
                local_controls.push(c);
            }
        }
    }
    // The controls are never assumed again once this call returns, so
    // retire them for good: the unit clause fixes each control false at
    // the top level (exactly the value every later solve would have
    // branched to anyway — they occur only negatively), which takes the
    // dead blocking clauses out of the search and stops retired controls
    // from costing one decision per future solve on this query.
    for c in local_controls {
        q.solver_mut().add_clause(&[!c]);
    }
    if exhausted {
        return None;
    }
    Some(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carediff::on_off_sets;
    use crate::{EcoInstance, RebaseQuery, Workspace};
    use eco_netlist::{parse_verilog, WeightTable};

    /// The paper's Table-1 setting: patch p = a ⊕ b over base {a, b}.
    /// With no base selected, the on-copy projections on (a, b) are
    /// exactly the on-set rows {01, 10}; two blocking clauses end the
    /// enumeration (§6.2.1's worked example).
    fn xor_query() -> (Workspace, RebaseQuery, usize, usize) {
        let faulty = parse_verilog(
            "module f (a, b, t, y); input a, b, t; output y; buf g (y, t); endmodule",
        )
        .expect("faulty");
        let golden =
            parse_verilog("module g (a, b, y); input a, b; output y; xor g (y, a, b); endmodule")
                .expect("golden");
        let inst = EcoInstance::from_netlists(
            "t1",
            &faulty,
            &golden,
            vec!["t".into()],
            &WeightTable::new(1),
        )
        .expect("instance");
        let mut ws = Workspace::new(&inst);
        let t = ws.target_vars[0];
        let f_outs = ws.f_outs.clone();
        let g_outs = ws.g_outs.clone();
        let onoff = on_off_sets(&mut ws.mgr, &f_outs, &g_outs, t);
        let pool: Vec<usize> = (0..ws.cands.len()).collect();
        let a = pool
            .iter()
            .position(|&i| ws.cands[i].name == "a")
            .expect("a");
        let b = pool
            .iter()
            .position(|&i| ws.cands[i].name == "b")
            .expect("b");
        let q = RebaseQuery::new(&ws, onoff.on, onoff.off, pool);
        (ws, q, a, b)
    }

    #[test]
    fn table1_xor_enumeration() {
        let (_ws, mut q, a, b) = xor_query();
        // Watch (a, b); nothing selected. On-set of a⊕b = {01, 10}.
        let cex = enumerate_cex(&mut q, &[], None, &[a, b], 1 << 20).expect("in budget");
        let mut masks = cex.masks.clone();
        masks.sort_unstable();
        // bit0 = a, bit1 = b: {a=1,b=0} = 0b01, {a=0,b=1} = 0b10.
        assert_eq!(masks, vec![0b01, 0b10]);
    }

    #[test]
    fn selecting_the_base_removes_all_cex() {
        let (_ws, mut q, a, b) = xor_query();
        let cex = enumerate_cex(&mut q, &[a], Some(b), &[a, b], 1 << 20).expect("in budget");
        assert!(cex.is_empty(), "base {{a,b}} distinguishes everything");
        // And the blocked clauses from earlier runs don't leak: a fresh
        // unconstrained enumeration still sees both projections.
        let again = enumerate_cex(&mut q, &[], None, &[a, b], 1 << 20).expect("in budget");
        assert_eq!(again.len(), 2);
    }

    #[test]
    fn partial_base_leaves_cex() {
        let (_ws, mut q, a, b) = xor_query();
        // Selecting only a: on/off points still collide when they agree on
        // a but differ on b.
        let cex = enumerate_cex(&mut q, &[], Some(a), &[a, b], 1 << 20).expect("in budget");
        assert!(!cex.is_empty());
        let _ = b;
    }

    #[test]
    fn cexset_algebra() {
        let s1 = CexSet {
            masks: vec![1, 2, 3],
        };
        let s2 = CexSet { masks: vec![2, 4] };
        assert_eq!(s1.count_not_in(&s2), 2);
        let mut u = s1.clone();
        u.union_with(&s2);
        assert_eq!(u.len(), 4);
        let mut i = s1.clone();
        i.intersect_with(&s2);
        assert_eq!(i.masks, vec![2]);
        assert!(!i.is_empty());
    }
}
