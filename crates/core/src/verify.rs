//! SAT-based equivalence verification of the patched circuit.

use std::collections::HashMap;

use eco_aig::{Aig, Lit, Var};
use eco_sat::{
    encode_cone, race, ArtifactPolicy, LBool, MemberOutcome, PortfolioSpec, SolveCtl, Solver,
    SolverStats,
};

use crate::telemetry::Telemetry;

/// Outcome of an equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// All output pairs agree for every input assignment.
    Equivalent,
    /// A distinguishing input assignment, per free (non-target) input
    /// variable of the checked cones, as `(input name, value)`.
    Counterexample(Vec<(String, bool)>),
    /// The conflict budget ran out.
    Unknown,
}

impl VerifyOutcome {
    /// `true` for [`VerifyOutcome::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        *self == VerifyOutcome::Equivalent
    }
}

/// Checks `⋁_j (a_j ⊕ b_j)` for unsatisfiability over the cone inputs.
///
/// Every input reached by the cones becomes a free SAT variable; a SAT
/// answer yields the input assignment as a counterexample. Builds miter
/// nodes in `mgr` (scratch growth is harmless — cones are shared).
pub fn check_equivalence(
    mgr: &mut Aig,
    pairs: &[(Lit, Lit)],
    conflict_budget: u64,
) -> VerifyOutcome {
    check_equivalence_stats(mgr, pairs, conflict_budget).0
}

/// Like [`check_equivalence`], but also returns the verification solver's
/// final statistics (all zero when structural hashing short-circuits the
/// check before any SAT call), for telemetry aggregation.
pub fn check_equivalence_stats(
    mgr: &mut Aig,
    pairs: &[(Lit, Lit)],
    conflict_budget: u64,
) -> (VerifyOutcome, SolverStats) {
    check_equivalence_ctl(mgr, pairs, conflict_budget, &SolveCtl::unlimited())
}

/// Like [`check_equivalence_stats`], with the verification solver enrolled
/// in a governor control block: a fired deadline or cancellation flag ends
/// the check with [`VerifyOutcome::Unknown`] at the next Luby restart.
pub fn check_equivalence_ctl(
    mgr: &mut Aig,
    pairs: &[(Lit, Lit)],
    conflict_budget: u64,
    ctl: &SolveCtl,
) -> (VerifyOutcome, SolverStats) {
    let xors: Vec<Lit> = pairs.iter().map(|&(a, b)| mgr.xor(a, b)).collect();
    let miter = mgr.or_many(&xors);
    if miter == Lit::FALSE {
        return (VerifyOutcome::Equivalent, SolverStats::default());
    }
    solve_miter(mgr, miter, conflict_budget, ctl)
}

/// Solves one prepared miter literal with a single default-configuration
/// solver (the `--portfolio 1` path, byte-for-byte).
fn solve_miter(
    mgr: &Aig,
    miter: Lit,
    conflict_budget: u64,
    ctl: &SolveCtl,
) -> (VerifyOutcome, SolverStats) {
    let mut solver = Solver::new();
    if !ctl.is_unlimited() {
        solver.set_ctl(ctl);
    }
    let mut map: HashMap<Var, eco_sat::Lit> = HashMap::new();
    let roots = encode_cone(mgr, &[miter], &mut map, &mut solver);
    solver.add_clause(&[roots[0]]);
    let solved = solver.solve_limited(&[], conflict_budget);
    let stats = solver.stats();
    let outcome = match solved {
        Some(false) => VerifyOutcome::Equivalent,
        None => VerifyOutcome::Unknown,
        Some(true) => VerifyOutcome::Counterexample(model_cex(mgr, &map, &solver)),
    };
    (outcome, stats)
}

/// Projects a SAT model onto the cone's primary inputs, sorted by name.
fn model_cex(mgr: &Aig, map: &HashMap<Var, eco_sat::Lit>, solver: &Solver) -> Vec<(String, bool)> {
    let mut cex = Vec::new();
    for (&v, &sl) in map {
        if let Some(pos) = mgr.input_pos(v) {
            let val = solver.model_value(sl) == LBool::True;
            cex.push((mgr.input_name(pos).to_owned(), val));
        }
    }
    cex.sort();
    cex
}

/// [`check_equivalence_ctl`] with an optional deterministic solver
/// portfolio: when `spec` enables racing *and* the conflict budget is
/// unlimited, the miter is raced by the diversified configurations
/// (first answer wins, counterexamples pinned to configuration 0 so the
/// result is byte-identical to a single-configuration run). Finite
/// budgets and single-member specs fall through to the plain path
/// unchanged. Solver statistics and race outcomes are folded into `tel`.
pub fn check_equivalence_portfolio(
    mgr: &mut Aig,
    pairs: &[(Lit, Lit)],
    conflict_budget: u64,
    ctl: &SolveCtl,
    spec: &PortfolioSpec,
    tel: &Telemetry,
) -> VerifyOutcome {
    let xors: Vec<Lit> = pairs.iter().map(|&(a, b)| mgr.xor(a, b)).collect();
    let miter = mgr.or_many(&xors);
    if miter == Lit::FALSE {
        return VerifyOutcome::Equivalent;
    }
    if !spec.enabled() || conflict_budget != u64::MAX {
        let (outcome, stats) = solve_miter(mgr, miter, conflict_budget, ctl);
        tel.record_solver(&stats);
        return outcome;
    }
    let mgr: &Aig = mgr;
    let won = race(spec, ArtifactPolicy::PinSat, ctl, |_, cfg, member| {
        let mut solver = Solver::with_config(cfg);
        solver.set_ctl(&member.ctl);
        solver.set_progress(member.progress);
        let mut map: HashMap<Var, eco_sat::Lit> = HashMap::new();
        let roots = encode_cone(mgr, &[miter], &mut map, &mut solver);
        solver.add_clause(&[roots[0]]);
        let answer = solver.solve_limited(&[], u64::MAX);
        let artifact = if answer == Some(true) {
            model_cex(mgr, &map, &solver)
        } else {
            Vec::new()
        };
        MemberOutcome {
            answer,
            artifact,
            stats: solver.stats(),
        }
    });
    tel.record_solver(&won.stats);
    tel.record_portfolio(won.answer.map(|_| won.winner));
    match won.answer {
        Some(false) => VerifyOutcome::Equivalent,
        None => VerifyOutcome::Unknown,
        Some(true) => VerifyOutcome::Counterexample(won.artifact.unwrap_or_default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_pairs_pass() {
        let mut mgr = Aig::new();
        let a = mgr.add_input("a");
        let b = mgr.add_input("b");
        let f = mgr.and(a, b);
        // Same function built differently: !( !a | !b )
        let t = mgr.or(!a, !b);
        let g = !t;
        assert!(check_equivalence(&mut mgr, &[(f, g)], 1 << 20).is_equivalent());
    }

    #[test]
    fn inequivalent_pairs_give_cex() {
        let mut mgr = Aig::new();
        let a = mgr.add_input("a");
        let b = mgr.add_input("b");
        let f = mgr.and(a, b);
        let g = mgr.or(a, b);
        match check_equivalence(&mut mgr, &[(f, g)], 1 << 20) {
            VerifyOutcome::Counterexample(cex) => {
                // The cex must distinguish AND from OR: exactly one of a, b.
                let a_v = cex.iter().find(|(n, _)| n == "a").expect("a").1;
                let b_v = cex.iter().find(|(n, _)| n == "b").expect("b").1;
                assert_ne!(a_v, b_v, "cex {cex:?}");
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn multiple_pairs_all_checked() {
        let mut mgr = Aig::new();
        let a = mgr.add_input("a");
        let b = mgr.add_input("b");
        let pairs = [(a, a), (b, b)];
        assert!(check_equivalence(&mut mgr, &pairs, 1 << 20).is_equivalent());
        let bad = [(a, a), (b, !b)];
        assert!(!check_equivalence(&mut mgr, &bad, 1 << 20).is_equivalent());
    }

    #[test]
    fn fired_ctl_reports_unknown() {
        let mut mgr = Aig::new();
        let a = mgr.add_input("a");
        let b = mgr.add_input("b");
        let c = mgr.add_input("c");
        // Equivalent but associated differently, so the miter does not
        // fold structurally and a SAT call is required.
        let ab = mgr.and(a, b);
        let f = mgr.and(ab, c);
        let bc = mgr.and(b, c);
        let g = mgr.and(a, bc);
        let ctl = SolveCtl {
            deadline: None,
            cancel: Some(std::sync::Arc::new(std::sync::atomic::AtomicBool::new(
                true,
            ))),
        };
        let (outcome, _) = check_equivalence_ctl(&mut mgr, &[(f, g)], 1 << 20, &ctl);
        assert_eq!(outcome, VerifyOutcome::Unknown);
    }

    #[test]
    fn structurally_equal_short_circuits() {
        let mut mgr = Aig::new();
        let a = mgr.add_input("a");
        // No SAT call needed: xor folds to constant false.
        assert_eq!(
            check_equivalence(&mut mgr, &[(a, a)], 0),
            VerifyOutcome::Equivalent
        );
    }
}
