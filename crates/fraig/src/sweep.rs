//! Simulation-guided SAT sweeping: the FRAIG equivalence-class engine.

use std::collections::HashMap;

use eco_aig::{Aig, Lit as ALit, Var as AVar};
use eco_sat::{encode_cone, LBool, Lit as SLit, Solver, SolverStats};

use crate::uf::ParityUnionFind;

/// Knobs for the sweeping loop.
#[derive(Clone, Debug)]
pub struct FraigOptions {
    /// 64-pattern words of random stimulus per round.
    pub sim_words: usize,
    /// Seed for the deterministic stimulus generator.
    pub seed: u64,
    /// Maximum refine/verify rounds.
    pub max_rounds: usize,
    /// Conflict budget per equivalence query (timeouts count as
    /// "not proven", which is sound).
    pub conflict_budget: u64,
}

impl Default for FraigOptions {
    fn default() -> Self {
        FraigOptions {
            sim_words: 8,
            seed: 0x5eed_cafe,
            max_rounds: 16,
            conflict_budget: 10_000,
        }
    }
}

/// One proven equivalence class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivClass {
    /// Class representative (the lowest, hence topologically earliest, var).
    pub repr: AVar,
    /// All members with their phase relative to `repr`
    /// (`true` = complemented). Includes `repr` itself with phase `false`.
    pub members: Vec<(AVar, bool)>,
}

/// The result of a FRAIG sweep: SAT-proven equivalence classes.
#[derive(Clone, Debug, Default)]
pub struct EquivClasses {
    /// Non-trivial classes (at least two members), ordered by representative.
    pub classes: Vec<EquivClass>,
    repr_of: HashMap<AVar, (AVar, bool)>,
}

impl EquivClasses {
    /// Returns `(repr, phase)` for `v` — `v ≡ repr ^ phase` — if `v`
    /// belongs to a non-trivial class.
    pub fn repr(&self, v: AVar) -> Option<(AVar, bool)> {
        self.repr_of.get(&v).copied()
    }

    /// Returns `Some(phase)` if `a ≡ b ^ phase` is proven.
    pub fn equivalent(&self, a: AVar, b: AVar) -> Option<bool> {
        if a == b {
            return Some(false);
        }
        let (ra, pa) = self.repr_of.get(&a).copied()?;
        let (rb, pb) = self.repr_of.get(&b).copied()?;
        (ra == rb).then_some(pa ^ pb)
    }

    /// Number of non-trivial classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if no non-trivial class was found.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// Counters describing one FRAIG sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepStats {
    /// Refine/verify rounds executed.
    pub rounds: usize,
    /// SAT equivalence queries issued.
    pub sat_calls: u64,
    /// Queries proven (pair merged into a class).
    pub proven: u64,
    /// Queries disproven by a counterexample.
    pub disproved: u64,
    /// Queries abandoned at the conflict budget (left unproven).
    pub budgeted_out: u64,
    /// Counterexample patterns fed back into simulation.
    pub cex_patterns: u64,
    /// Non-trivial classes in the final result.
    pub classes: usize,
    /// Total members across those classes.
    pub class_members: usize,
    /// Aggregated search statistics of the sweep's SAT solver.
    pub sat: SolverStats,
}

/// Runs simulation-guided SAT sweeping over the cones of all outputs of
/// `aig` and returns the proven equivalence classes.
///
/// The loop alternates (a) hashing nodes by canonical simulation signature
/// into candidate classes and (b) SAT-verifying candidates against their
/// class representative; counterexamples are fed back as new simulation
/// patterns, splitting spurious candidates in the next round.
///
/// Only *proven* equivalences are reported, so the result is sound even
/// when the per-query conflict budget truncates verification.
pub fn fraig_classes(aig: &Aig, opts: &FraigOptions) -> EquivClasses {
    fraig_classes_stats(aig, opts).0
}

/// Like [`fraig_classes`], additionally returning [`SweepStats`] counters
/// for telemetry.
pub fn fraig_classes_stats(aig: &Aig, opts: &FraigOptions) -> (EquivClasses, SweepStats) {
    let mut stats = SweepStats::default();
    let roots: Vec<ALit> = aig.outputs().iter().map(|o| o.lit).collect();
    let mut nodes = aig.cone_vars(&roots);
    if !nodes.contains(&AVar::CONST) {
        nodes.insert(0, AVar::CONST);
    }

    // One incremental solver over the whole cone.
    let mut solver = Solver::new();
    let mut map: HashMap<AVar, SLit> = HashMap::new();
    encode_cone(aig, &roots, &mut map, &mut solver);
    if !map.contains_key(&AVar::CONST) {
        // Outputs may not mention the constant; force-encode it.
        encode_cone(aig, &[ALit::FALSE], &mut map, &mut solver);
    }

    // Stimulus: random base plus counterexample patterns (packed).
    let mut base_patterns = random_patterns(aig.num_inputs(), opts.sim_words, opts.seed);
    let mut cex_bits: Vec<Vec<bool>> = Vec::new();

    let mut uf = ParityUnionFind::new(aig.len());
    let mut disproved: HashMap<(AVar, AVar), ()> = HashMap::new();

    for _round in 0..opts.max_rounds {
        stats.rounds += 1;
        let patterns = merge_patterns(&base_patterns, &cex_bits);
        let sim = aig.simulate(&patterns);

        // Candidate classes by canonical signature.
        let mut buckets: HashMap<Vec<u64>, Vec<AVar>> = HashMap::new();
        for &v in &nodes {
            let (sig, _) = sim.signature(v.pos());
            buckets.entry(sig).or_default().push(v);
        }
        // Fix the query order (HashMap iteration is randomized): nodes are
        // topologically ordered and each occurs in exactly one bucket, so
        // the first member gives a deterministic total order. Query order
        // feeds counterexample patterns back into simulation, so without
        // this the sweep — and everything downstream — varies run to run.
        let mut ordered: Vec<&Vec<AVar>> = buckets.values().collect();
        ordered.sort_by_key(|members| members[0].index());

        let mut new_cex = 0usize;
        for members in ordered {
            if members.len() < 2 {
                continue;
            }
            let repr = members[0];
            let (_, repr_phase) = sim.signature(repr.pos());
            for &m in &members[1..] {
                if uf
                    .related(repr.index() as usize, m.index() as usize)
                    .is_some()
                {
                    continue;
                }
                if disproved.contains_key(&(repr, m)) {
                    continue;
                }
                let (_, m_phase) = sim.signature(m.pos());
                let phase = repr_phase ^ m_phase;
                // Query: repr != (m ^ phase) — i.e. the XOR is satisfiable?
                let lr = map[&repr];
                let lm = if phase { !map[&m] } else { map[&m] };
                let act = solver.new_var().pos();
                solver.add_clause(&[!act, lr, lm]);
                solver.add_clause(&[!act, !lr, !lm]);
                stats.sat_calls += 1;
                match solver.solve_limited(&[act], opts.conflict_budget) {
                    Some(false) => {
                        stats.proven += 1;
                        uf.union(repr.index() as usize, m.index() as usize, phase);
                    }
                    Some(true) => {
                        let bits: Vec<bool> = aig
                            .inputs()
                            .iter()
                            .map(|iv| {
                                map.get(iv)
                                    .map(|&sl| solver.model_value(sl) == LBool::True)
                                    .unwrap_or(false)
                            })
                            .collect();
                        cex_bits.push(bits);
                        disproved.insert((repr, m), ());
                        stats.disproved += 1;
                        new_cex += 1;
                    }
                    None => {
                        // Budget exhausted: treat as unproven.
                        disproved.insert((repr, m), ());
                        stats.budgeted_out += 1;
                    }
                }
            }
        }
        stats.cex_patterns += new_cex as u64;
        if new_cex == 0 {
            break;
        }
        // Extra random diversity each round.
        base_patterns = random_patterns(
            aig.num_inputs(),
            opts.sim_words,
            opts.seed.wrapping_add(new_cex as u64),
        );
    }

    // Materialize classes from the union-find.
    let mut groups: HashMap<usize, Vec<(AVar, bool)>> = HashMap::new();
    for &v in &nodes {
        let (root, phase) = uf.find(v.index() as usize);
        groups.entry(root).or_default().push((v, phase));
    }
    let mut classes = Vec::new();
    let mut repr_of = HashMap::new();
    for (_, mut members) in groups {
        if members.len() < 2 {
            continue;
        }
        members.sort_by_key(|(v, _)| v.index());
        let (repr, repr_phase) = members[0];
        let members: Vec<(AVar, bool)> = members
            .into_iter()
            .map(|(v, ph)| (v, ph ^ repr_phase))
            .collect();
        for &(v, ph) in &members {
            repr_of.insert(v, (repr, ph));
        }
        classes.push(EquivClass { repr, members });
    }
    classes.sort_by_key(|c| c.repr.index());
    stats.classes = classes.len();
    stats.class_members = classes.iter().map(|c| c.members.len()).sum();
    stats.sat = solver.stats();
    (EquivClasses { classes, repr_of }, stats)
}

/// Rebuilds `aig` with every class member replaced by its representative,
/// returning the functionally reduced AIG (outputs preserved by name).
pub fn fraig_reduce(aig: &Aig, classes: &EquivClasses) -> Aig {
    let mut new = Aig::new();
    let mut cache: HashMap<AVar, ALit> = HashMap::new();
    cache.insert(AVar::CONST, ALit::FALSE);
    for (pos, &v) in aig.inputs().iter().enumerate() {
        let lit = new.add_input(aig.input_name(pos).to_owned());
        cache.insert(v, lit);
    }
    let roots: Vec<ALit> = aig.outputs().iter().map(|o| o.lit).collect();
    for v in aig.cone_vars(&roots) {
        if cache.contains_key(&v) {
            continue;
        }
        // If v is equivalent to an earlier representative, reuse its lit.
        let lit = if let Some((r, ph)) = classes.repr(v) {
            if r != v && cache.contains_key(&r) {
                cache[&r].xor_complement(ph)
            } else {
                rebuild(aig, &mut new, &cache, v)
            }
        } else {
            rebuild(aig, &mut new, &cache, v)
        };
        cache.insert(v, lit);
    }
    for out in aig.outputs() {
        let lit = cache[&out.lit.var()].xor_complement(out.lit.is_complement());
        new.add_output(out.name.clone(), lit);
    }
    new
}

fn rebuild(aig: &Aig, new: &mut Aig, cache: &HashMap<AVar, ALit>, v: AVar) -> ALit {
    match aig.node(v) {
        eco_aig::Node::Constant => ALit::FALSE,
        eco_aig::Node::Input { .. } => cache[&v],
        eco_aig::Node::And { fan0, fan1 } => {
            let n0 = cache[&fan0.var()].xor_complement(fan0.is_complement());
            let n1 = cache[&fan1.var()].xor_complement(fan1.is_complement());
            new.and(n0, n1)
        }
    }
}

fn random_patterns(n_inputs: usize, words: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n_inputs)
        .map(|_| (0..words).map(|_| next()).collect())
        .collect()
}

fn merge_patterns(base: &[Vec<u64>], cex: &[Vec<bool>]) -> Vec<Vec<u64>> {
    let extra_words = cex.len().div_ceil(64);
    base.iter()
        .enumerate()
        .map(|(pos, row)| {
            let mut row = row.clone();
            for w in 0..extra_words {
                let mut word = 0u64;
                for b in 0..64 {
                    let idx = w * 64 + b;
                    if idx < cex.len() && cex[idx].get(pos).copied().unwrap_or(false) {
                        word |= 1 << b;
                    }
                }
                row.push(word);
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_structurally_distinct_equivalence() {
        // f1 = a & b; f2 = !(!a | !b): strash merges these, so build the
        // second form with extra redundancy: f2 = (a & b) & (a | b).
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f1 = aig.and(a, b);
        let a_or_b = aig.or(a, b);
        let f2 = aig.and(f1, a_or_b); // == a & b
        aig.add_output("f1", f1);
        aig.add_output("f2", f2);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        assert_eq!(classes.equivalent(f1.var(), f2.var()), Some(false));
    }

    #[test]
    fn detects_complement_equivalence() {
        // g = a ^ b, h = !(a ^ b) built as xnor via fresh structure.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.xor(a, b);
        // xnor = (a&b) | (!a&!b): different structure from !xor.
        let t0 = aig.and(a, b);
        let t1 = aig.and(!a, !b);
        let h = aig.or(t0, t1);
        aig.add_output("g", g);
        aig.add_output("h", h);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        assert_eq!(classes.equivalent(g.var(), h.var()), Some(true));
    }

    #[test]
    fn detects_constant_nodes() {
        // z = (a & b) & (a & !b) == 0, structurally hidden.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let t0 = aig.and(a, b);
        let t1 = aig.and(a, !b);
        let z = aig.and(t0, t1);
        aig.add_output("z", z);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        assert_eq!(classes.equivalent(z.var(), AVar::CONST), Some(false));
    }

    #[test]
    fn inequivalent_nodes_stay_separate() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let f = aig.and(a, b);
        let g = aig.and(a, c);
        aig.add_output("f", f);
        aig.add_output("g", g);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        assert_eq!(classes.equivalent(f.var(), g.var()), None);
    }

    #[test]
    fn reduce_merges_equivalent_logic() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f1 = aig.and(a, b);
        let a_or_b = aig.or(a, b);
        let f2 = aig.and(f1, a_or_b);
        aig.add_output("f1", f1);
        aig.add_output("f2", f2);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        let reduced = fraig_reduce(&aig, &classes);
        assert!(reduced.num_ands() < aig.num_ands());
        // Semantics preserved.
        for bits in 0u32..4 {
            let vals: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(aig.eval(&vals), reduced.eval(&vals));
        }
    }

    #[test]
    fn cross_circuit_sharing_detected() {
        // Two copies of a 3-input majority over the same inputs, built with
        // different decompositions, inside one manager.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        // maj1 = ab | bc | ca
        let ab = aig.and(a, b);
        let bc = aig.and(b, c);
        let ca = aig.and(c, a);
        let t = aig.or(ab, bc);
        let maj1 = aig.or(t, ca);
        // maj2 = mux(a, b|c, b&c)
        let b_or_c = aig.or(b, c);
        let b_and_c = aig.and(b, c);
        let maj2 = aig.mux(a, b_or_c, b_and_c);
        aig.add_output("maj1", maj1);
        aig.add_output("maj2", maj2);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        assert_eq!(classes.equivalent(maj1.var(), maj2.var()), Some(false));
    }
}
