//! Structural transformations: cofactoring, substitution, cross-AIG import,
//! cone extraction against a cut, and compaction.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{Aig, Lit, Node, Var};

/// Error produced by cone-walking transforms when the provided mapping or
/// cut does not cover every leaf the cone reaches.
///
/// These used to be panics; they are typed so pipelines fed untrusted or
/// generated circuits (the fuzzer, CLI assembly) can surface them as
/// ordinary errors instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// [`Aig::import`]/[`Aig::import_map`] reached a cone input of the
    /// source AIG that has no entry in `input_map`. Carries the input
    /// name (or a `Var` debug rendering for unnamed variables).
    UnmappedInput(String),
    /// [`Aig::extract_cone`] reached a cone leaf (input) that is not
    /// listed in the cut. Carries the input name.
    InputNotInCut(String),
    /// [`Aig::extract_cone`] was called with `cut.len() != cut_names.len()`.
    CutArityMismatch {
        /// Number of cut variables.
        cut: usize,
        /// Number of cut names.
        names: usize,
    },
    /// A node-creating builder ran out of index space: the AIG is capped
    /// at 2^31 - 1 nodes so packed fanin words stay clear of the SoA
    /// sentinel range. Raised by [`Aig::try_and`] and the `Result`-returning
    /// transforms instead of silently wrapping the index.
    TooManyNodes,
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::UnmappedInput(n) => {
                write!(f, "import: cone input `{n}` has no mapping")
            }
            TransformError::InputNotInCut(n) => {
                write!(f, "extract_cone: input `{n}` not in cut")
            }
            TransformError::CutArityMismatch { cut, names } => {
                write!(f, "extract_cone: {cut} cut vars but {names} names")
            }
            TransformError::TooManyNodes => {
                write!(f, "AIG node limit exceeded (2^31 - 1 nodes)")
            }
        }
    }
}

impl Error for TransformError {}

impl Aig {
    /// Rebuilds the cones of `roots` with each variable in `map` replaced by
    /// the given literal, returning the new root literals.
    ///
    /// The mapped variables may be inputs *or* internal nodes: the cone is
    /// rewritten bottom-up and the replacement literal is used wherever a
    /// mapped variable occurs. New nodes are created in `self` (structural
    /// hashing keeps sharing). Replacement literals must not transitively
    /// depend on the mapped variables themselves (no cyclic substitution).
    pub fn substitute(&mut self, roots: &[Lit], map: &HashMap<Var, Lit>) -> Vec<Lit> {
        let mut cache: HashMap<Var, Lit> = map.clone();
        cache.insert(Var::CONST, Lit::FALSE);
        let cone = self.cone_vars_to_cut(roots, &map.keys().copied().collect());
        for v in cone {
            if cache.contains_key(&v) {
                continue;
            }
            let new_lit = match self.node(v) {
                Node::Constant => Lit::FALSE,
                Node::Input { .. } => v.pos(),
                Node::And { fan0, fan1 } => {
                    let n0 = cache
                        .get(&fan0.var())
                        .map_or(fan0, |l| l.xor_complement(fan0.is_complement()));
                    let n1 = cache
                        .get(&fan1.var())
                        .map_or(fan1, |l| l.xor_complement(fan1.is_complement()));
                    self.and(n0, n1)
                }
            };
            cache.insert(v, new_lit);
        }
        roots
            .iter()
            .map(|&r| {
                cache
                    .get(&r.var())
                    .map_or(r, |l| l.xor_complement(r.is_complement()))
            })
            .collect()
    }

    /// Returns the cofactor of each root with variable `var` fixed to
    /// `value`.
    pub fn cofactor(&mut self, roots: &[Lit], var: Var, value: bool) -> Vec<Lit> {
        let mut map = HashMap::new();
        map.insert(var, if value { Lit::TRUE } else { Lit::FALSE });
        self.substitute(roots, &map)
    }

    /// Copies the cones of `roots` from `other` into `self`.
    ///
    /// `input_map` gives, for every input position of `other` that occurs in
    /// the cones, the literal in `self` it maps to. Returns the imported
    /// root literals, or [`TransformError::UnmappedInput`] if a cone input
    /// of `other` has no entry in `input_map`.
    pub fn import(
        &mut self,
        other: &Aig,
        roots: &[Lit],
        input_map: &HashMap<Var, Lit>,
    ) -> Result<Vec<Lit>, TransformError> {
        Ok(self.import_map(other, roots, input_map)?.0)
    }

    /// Like [`Aig::import`], but also returns the full translation map
    /// from every cone variable of `other` to its literal in `self`, so
    /// callers can relocate auxiliary per-node data (e.g. cut node maps)
    /// alongside the imported logic.
    ///
    /// Errors with [`TransformError::UnmappedInput`] if a cone input of
    /// `other` has no entry in `input_map`. The destination may already
    /// contain some imported nodes when an error is returned; they are
    /// dangling and harmless (a later [`Aig::compact`] drops them).
    pub fn import_map(
        &mut self,
        other: &Aig,
        roots: &[Lit],
        input_map: &HashMap<Var, Lit>,
    ) -> Result<(Vec<Lit>, HashMap<Var, Lit>), TransformError> {
        let mut cache: HashMap<Var, Lit> = HashMap::new();
        cache.insert(Var::CONST, Lit::FALSE);
        for v in other.cone_vars(roots) {
            let new_lit = match other.node(v) {
                Node::Constant => Lit::FALSE,
                Node::Input { pos } => *input_map.get(&v).ok_or_else(|| {
                    TransformError::UnmappedInput(other.input_name(pos as usize).to_owned())
                })?,
                Node::And { fan0, fan1 } => {
                    let n0 = cache[&fan0.var()].xor_complement(fan0.is_complement());
                    let n1 = cache[&fan1.var()].xor_complement(fan1.is_complement());
                    self.try_and(n0, n1)?
                }
            };
            cache.insert(v, new_lit);
        }
        let out = roots
            .iter()
            .map(|&r| cache[&r.var()].xor_complement(r.is_complement()))
            .collect();
        Ok((out, cache))
    }

    /// Extracts the cones of `roots` into a fresh AIG whose inputs are the
    /// `cut` variables (in the given order, named by `cut_names`).
    ///
    /// Traversal stops at cut variables; any non-cut input reached must also
    /// be listed in `cut`, otherwise [`TransformError::InputNotInCut`] is
    /// returned ([`TransformError::CutArityMismatch`] if `cut.len() !=
    /// cut_names.len()`). Returns the new AIG and the root literals within
    /// it.
    pub fn extract_cone(
        &self,
        roots: &[Lit],
        cut: &[Var],
        cut_names: &[String],
    ) -> Result<(Aig, Vec<Lit>), TransformError> {
        if cut.len() != cut_names.len() {
            return Err(TransformError::CutArityMismatch {
                cut: cut.len(),
                names: cut_names.len(),
            });
        }
        let mut new = Aig::new();
        let mut cache: HashMap<Var, Lit> = HashMap::new();
        cache.insert(Var::CONST, Lit::FALSE);
        for (v, name) in cut.iter().zip(cut_names) {
            let lit = new.add_input(name.clone());
            cache.insert(*v, lit);
        }
        let cut_set = cut.iter().copied().collect();
        for v in self.cone_vars_to_cut(roots, &cut_set) {
            if cache.contains_key(&v) {
                continue;
            }
            let new_lit = match self.node(v) {
                Node::Constant => Lit::FALSE,
                Node::Input { pos } => {
                    return Err(TransformError::InputNotInCut(
                        self.input_name(pos as usize).to_owned(),
                    ))
                }
                Node::And { fan0, fan1 } => {
                    let n0 = cache[&fan0.var()].xor_complement(fan0.is_complement());
                    let n1 = cache[&fan1.var()].xor_complement(fan1.is_complement());
                    new.try_and(n0, n1)?
                }
            };
            cache.insert(v, new_lit);
        }
        let new_roots = roots
            .iter()
            .map(|&r| cache[&r.var()].xor_complement(r.is_complement()))
            .collect();
        Ok((new, new_roots))
    }

    /// Returns a compacted copy containing only the logic reachable from the
    /// outputs, with all inputs retained (so input positions are stable).
    pub fn compact(&self) -> Aig {
        let mut new = Aig::new();
        let mut cache: HashMap<Var, Lit> = HashMap::new();
        cache.insert(Var::CONST, Lit::FALSE);
        for (pos, &v) in self.inputs().iter().enumerate() {
            let lit = new.add_input(self.input_name(pos).to_owned());
            cache.insert(v, lit);
        }
        let roots: Vec<Lit> = self.outputs().iter().map(|o| o.lit).collect();
        for v in self.cone_vars(&roots) {
            if cache.contains_key(&v) {
                continue;
            }
            if let Node::And { fan0, fan1 } = self.node(v) {
                let n0 = cache[&fan0.var()].xor_complement(fan0.is_complement());
                let n1 = cache[&fan1.var()].xor_complement(fan1.is_complement());
                let lit = new.and(n0, n1);
                cache.insert(v, lit);
            }
        }
        for out in self.outputs() {
            let lit = cache[&out.lit.var()].xor_complement(out.lit.is_complement());
            new.add_output(out.name.clone(), lit);
        }
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cofactor_shannon_expansion() {
        // f = a ? b : c; f|a=1 = b, f|a=0 = c.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let f = aig.mux(a, b, c);
        let f1 = aig.cofactor(&[f], a.var(), true)[0];
        let f0 = aig.cofactor(&[f], a.var(), false)[0];
        assert_eq!(f1, b);
        assert_eq!(f0, c);
    }

    #[test]
    fn substitute_internal_node() {
        // f = (a&b) | c. Replace the internal node (a&b) with input d.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let f = aig.or(ab, c);
        let d = aig.add_input("d");
        let mut map = HashMap::new();
        map.insert(ab.var(), d);
        let f2 = aig.substitute(&[f], &map)[0];
        aig.add_output("f2", f2);
        // f2 = d | c for all assignments.
        for pat in 0u32..16 {
            let bits: Vec<bool> = (0..4).map(|i| pat >> i & 1 == 1).collect();
            let expect = bits[3] || bits[2];
            assert_eq!(aig.eval(&bits)[0], expect);
        }
    }

    #[test]
    fn substitute_complemented_use() {
        // f = !t & a; replace t with (a ^ b): f2 = !(a ^ b) & a = a & b.
        let mut aig = Aig::new();
        let t = aig.add_input("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(!t, a);
        let rep = aig.xor(a, b);
        let mut map = HashMap::new();
        map.insert(t.var(), rep);
        let f2 = aig.substitute(&[f], &map)[0];
        aig.add_output("f2", f2);
        for pat in 0u32..8 {
            let bits: Vec<bool> = (0..3).map(|i| pat >> i & 1 == 1).collect();
            let expect = bits[1] && bits[2];
            assert_eq!(aig.eval(&bits)[0], expect, "pattern {bits:?}");
        }
    }

    #[test]
    fn import_across_aigs() {
        let mut src = Aig::new();
        let x = src.add_input("x");
        let y = src.add_input("y");
        let g = src.xor(x, y);

        let mut dst = Aig::new();
        let p = dst.add_input("p");
        let q = dst.add_input("q");
        let pq = dst.and(p, q);
        let mut map = HashMap::new();
        map.insert(x.var(), pq);
        map.insert(y.var(), !p);
        let g2 = dst.import(&src, &[g], &map).expect("inputs mapped")[0];
        dst.add_output("g2", g2);
        for pat in 0u32..4 {
            let bits: Vec<bool> = (0..2).map(|i| pat >> i & 1 == 1).collect();
            let expect = (bits[0] && bits[1]) ^ !bits[0];
            assert_eq!(dst.eval(&bits)[0], expect);
        }
    }

    #[test]
    fn extract_cone_over_cut() {
        // h = (a&b) ^ c; cut at m = a&b and c.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let m = aig.and(a, b);
        let h = aig.xor(m, c);
        let (sub, roots) = aig
            .extract_cone(&[h], &[m.var(), c.var()], &["m".into(), "c".into()])
            .expect("cut covers cone");
        assert_eq!(sub.num_inputs(), 2);
        let mut sub = sub;
        sub.add_output("h", roots[0]);
        for pat in 0u32..4 {
            let bits: Vec<bool> = (0..2).map(|i| pat >> i & 1 == 1).collect();
            assert_eq!(sub.eval(&bits)[0], bits[0] ^ bits[1]);
        }
    }

    #[test]
    fn extract_cone_missing_cut_is_typed_error() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        let err = aig
            .extract_cone(&[f], &[a.var()], &["a".into()])
            .expect_err("b is outside the cut");
        assert_eq!(err, TransformError::InputNotInCut("b".into()));
        assert!(err.to_string().contains("not in cut"));
    }

    #[test]
    fn extract_cone_arity_mismatch_is_typed_error() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        let err = aig
            .extract_cone(&[f], &[a.var(), b.var()], &["a".into()])
            .expect_err("one name for two cut vars");
        assert_eq!(err, TransformError::CutArityMismatch { cut: 2, names: 1 });
    }

    #[test]
    fn import_unmapped_input_is_typed_error() {
        let mut src = Aig::new();
        let x = src.add_input("x");
        let y = src.add_input("y");
        let g = src.xor(x, y);

        let mut dst = Aig::new();
        let p = dst.add_input("p");
        let mut map = HashMap::new();
        map.insert(x.var(), p);
        let err = dst.import(&src, &[g], &map).expect_err("y is not mapped");
        assert_eq!(err, TransformError::UnmappedInput("y".into()));
        assert!(err.to_string().contains("no mapping"));
    }

    #[test]
    fn compact_drops_dangling_logic() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let keep = aig.and(a, b);
        let _dangling = aig.xor(a, b);
        aig.add_output("keep", keep);
        let compacted = aig.compact();
        assert_eq!(compacted.num_ands(), 1);
        assert_eq!(compacted.num_inputs(), 2);
        assert_eq!(compacted.eval(&[true, true]), vec![true]);
        assert_eq!(compacted.eval(&[true, false]), vec![false]);
    }
}
