//! Error type for the ECO engine.

use std::error::Error;
use std::fmt;

/// Errors reported by instance construction and patch generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcoError {
    /// A golden-circuit input has no same-named faulty-circuit input.
    MissingInput(String),
    /// A declared target is not a (pseudo-)input of the faulty circuit.
    UnknownTarget(String),
    /// The circuits' primary output name sets differ.
    OutputMismatch(String),
    /// No patch over the given targets can rectify the faulty circuit.
    Unrectifiable(String),
    /// A configured resource budget was exhausted.
    ResourceLimit(String),
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::MissingInput(n) => {
                write!(f, "golden input `{n}` has no matching faulty input")
            }
            EcoError::UnknownTarget(n) => {
                write!(f, "target `{n}` is not an input of the faulty circuit")
            }
            EcoError::OutputMismatch(n) => {
                write!(f, "output `{n}` is not present in both circuits")
            }
            EcoError::Unrectifiable(why) => write!(f, "instance is not rectifiable: {why}"),
            EcoError::ResourceLimit(what) => write!(f, "resource limit exhausted: {what}"),
        }
    }
}

impl Error for EcoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EcoError::MissingInput("a".into())
            .to_string()
            .contains("`a`"));
        assert!(EcoError::UnknownTarget("t".into())
            .to_string()
            .contains("`t`"));
        assert!(EcoError::OutputMismatch("y".into())
            .to_string()
            .contains("`y`"));
        assert!(EcoError::Unrectifiable("x".into())
            .to_string()
            .contains("x"));
        assert!(EcoError::ResourceLimit("sat".into())
            .to_string()
            .contains("sat"));
    }
}
