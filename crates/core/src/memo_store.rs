//! Durable [`MemoCache`] persistence: snapshot + append-only journal,
//! with a checksummed record log shared by every WAL in the workspace.
//!
//! # Record log format
//!
//! A log file is an 8-byte magic followed by length-prefixed records:
//!
//! ```text
//! [magic: 8 bytes] ([len: u32 LE] [crc32: u32 LE] [payload: len bytes])*
//! ```
//!
//! Every record carries a CRC-32 (IEEE) of its payload, so loading
//! tolerates exactly the failures a crash can produce: a torn tail
//! (partial last record after a kill mid-write) or a flipped byte. The
//! reader stops at the first frame whose length or checksum doesn't
//! hold and reports how much it discarded — an append-only log has no
//! trustworthy data past its first bad frame. The same framing backs
//! the serve request journal and the batch WAL ([`LogWriter`] /
//! [`read_log`] are public for that reason).
//!
//! # What the memo store persists
//!
//! [`MemoStore`] journals **rectifiability verdicts** and **complete
//! patch results** as they are inserted (via the crate-internal cache
//! sink) and compacts them into a snapshot on graceful shutdown. Sweep
//! entries are deliberately *not* persisted: they are per-cluster
//! derived artifacts that are cheap relative to the patch results that
//! subsume them, and their payload (equivalence-class tables) does not
//! have a stable serial form. Patch circuits travel as binary AIGER
//! ([`eco_aig::write_aiger_binary`]), which round-trips input/output
//! names exactly.
//!
//! # Why a corrupt-but-checksum-valid entry is still safe
//!
//! Durability never weakens the cache's soundness contract: a loaded
//! patch entry is SAT re-verified against the live instance on every
//! hit (see [`crate::MemoCache`]), and counterexample verdicts are
//! audited with a fresh B-check. The checksums exist to keep *recovery*
//! clean and counted — correctness never depends on them.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use eco_aig::{parse_aiger_binary, write_aiger_binary};

use crate::engine::{EcoResult, TargetPatch};
use crate::faultpoint;
use crate::memo::{Entry, EntrySink, MemoCache};
use crate::rectifiable::Rectifiability;

/// Magic prefix of memo snapshot and journal files.
pub const MEMO_MAGIC: [u8; 8] = *b"ECOMEMO1";

/// Upper bound on a single record payload; longer length prefixes are
/// treated as corruption (a flipped length byte must not trigger a
/// gigabyte allocation).
const MAX_RECORD_LEN: u32 = 256 * 1024 * 1024;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), byte-at-a-time with a const-built table.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data` — the per-record checksum of every log.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Framed record log.

/// Append handle on a framed record log (see the [module docs](self)).
#[derive(Debug)]
pub struct LogWriter {
    file: File,
}

impl LogWriter {
    /// Creates (truncating) a log at `path` with the given magic.
    pub fn create(path: &Path, magic: &[u8; 8]) -> std::io::Result<LogWriter> {
        let mut file = File::create(path)?;
        file.write_all(magic)?;
        Ok(LogWriter { file })
    }

    /// Opens a log for appending, creating it (with magic) if missing or
    /// empty. Rejects a file that exists with a different magic.
    pub fn open_append(path: &Path, magic: &[u8; 8]) -> std::io::Result<LogWriter> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(magic)?;
        } else {
            let mut head = [0u8; 8];
            let n = file.read(&mut head)?;
            if n < 8 || head != *magic {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: not a record log (bad magic)", path.display()),
                ));
            }
        }
        Ok(LogWriter { file })
    }

    /// Appends one framed record. Consults the `io.write` fault point.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        faultpoint::inject_io("io.write")?;
        // One write_all for the whole frame: a crash can still tear it,
        // but only at the tail the reader is built to discard.
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)
    }

    /// Flushes file data to disk. Consults the `io.fsync` fault point.
    pub fn sync(&mut self) -> std::io::Result<()> {
        faultpoint::inject_io("io.fsync")?;
        self.file.sync_data()
    }
}

/// What [`read_log`] found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Records read intact.
    pub records: u64,
    /// Corrupt or torn frames hit (at most 1: reading stops there).
    pub skipped_frames: u64,
    /// Bytes discarded from the first bad frame to end-of-file.
    pub discarded_bytes: u64,
}

/// Reads every intact record of the log at `path`. A missing file is an
/// empty log; a file with the wrong magic yields no records and counts
/// one skipped frame. Reading stops at the first torn or corrupt frame
/// (append-only logs have no trustworthy data past it).
pub fn read_log(path: &Path, magic: &[u8; 8]) -> std::io::Result<(Vec<Vec<u8>>, LogStats)> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), LogStats::default()))
        }
        Err(e) => return Err(e),
    };
    let mut stats = LogStats::default();
    if data.len() < 8 || data[..8] != *magic {
        stats.skipped_frames = 1;
        stats.discarded_bytes = data.len() as u64;
        return Ok((Vec::new(), stats));
    }
    let mut records = Vec::new();
    let mut pos = 8usize;
    while pos < data.len() {
        let rest = &data[pos..];
        if rest.len() < 8 {
            break; // torn frame header
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN || rest.len() < 8 + len as usize {
            break; // implausible length or torn payload
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            break; // flipped bytes
        }
        records.push(payload.to_vec());
        stats.records += 1;
        pos += 8 + len as usize;
    }
    if pos < data.len() {
        stats.skipped_frames = 1;
        stats.discarded_bytes = (data.len() - pos) as u64;
    }
    Ok((records, stats))
}

// ---------------------------------------------------------------------------
// Entry codec.

const TAG_RECT: u8 = 1;
const TAG_PATCH: u8 = 2;

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct Dec<'a>(&'a [u8]);

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }
    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }
    fn bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
    fn str(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?.to_vec()).ok()
    }
}

/// Serializes a cache entry, or `None` for kinds the store skips
/// (sweeps — see the [module docs](self)).
pub(crate) fn encode_memo_entry(key: u128, entry: &Entry) -> Option<Vec<u8>> {
    let mut e = Enc(Vec::new());
    match entry {
        Entry::Sweep { .. } => return None,
        Entry::Rect { check, verdict } => {
            e.u8(TAG_RECT);
            e.u128(key);
            e.u128(*check);
            match verdict {
                Rectifiability::Rectifiable => e.u8(0),
                Rectifiability::Counterexample(cex) => {
                    e.u8(1);
                    e.u32(cex.len() as u32);
                    for (name, value) in cex {
                        e.str(name);
                        e.u8(u8::from(*value));
                    }
                }
                // Never stored (store_rect debug-asserts); skip defensively.
                Rectifiability::Unknown => return None,
            }
        }
        Entry::Patch { check, result } => {
            e.u8(TAG_PATCH);
            e.u128(key);
            e.u128(*check);
            e.u64(result.cost);
            e.u64(result.size as u64);
            e.u8(u8::from(result.localization_fallback));
            e.u64(result.interpolation_fallbacks as u64);
            e.u64(result.optimize_delta.0);
            e.u64(result.optimize_delta.1);
            e.u32(result.patches.len() as u32);
            for patch in &result.patches {
                e.str(&patch.target);
                e.u32(patch.base.len() as u32);
                for b in &patch.base {
                    e.str(b);
                }
                e.u64(patch.size as u64);
            }
            e.bytes(&write_aiger_binary(&result.patch_aig));
        }
    }
    Some(e.0)
}

/// Deserializes one journaled entry; `None` means the payload is
/// structurally invalid (counted as skipped by the loader).
pub(crate) fn decode_memo_entry(payload: &[u8]) -> Option<(u128, Entry)> {
    let mut d = Dec(payload);
    match d.u8()? {
        TAG_RECT => {
            let key = d.u128()?;
            let check = d.u128()?;
            let verdict = match d.u8()? {
                0 => Rectifiability::Rectifiable,
                1 => {
                    let n = d.u32()? as usize;
                    let mut cex = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        let name = d.str()?;
                        let value = match d.u8()? {
                            0 => false,
                            1 => true,
                            _ => return None,
                        };
                        cex.push((name, value));
                    }
                    Rectifiability::Counterexample(cex)
                }
                _ => return None,
            };
            Some((key, Entry::Rect { check, verdict }))
        }
        TAG_PATCH => {
            let key = d.u128()?;
            let check = d.u128()?;
            let cost = d.u64()?;
            let size = d.u64()? as usize;
            let localization_fallback = d.u8()? != 0;
            let interpolation_fallbacks = d.u64()? as usize;
            let optimize_delta = (d.u64()?, d.u64()?);
            let n = d.u32()? as usize;
            let mut patches = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let target = d.str()?;
                let nb = d.u32()? as usize;
                let mut base = Vec::with_capacity(nb.min(4096));
                for _ in 0..nb {
                    base.push(d.str()?);
                }
                let psize = d.u64()? as usize;
                patches.push(TargetPatch {
                    target,
                    base,
                    size: psize,
                });
            }
            let patch_aig = parse_aiger_binary(d.bytes()?).ok()?;
            let result = EcoResult {
                patches,
                patch_aig,
                cost,
                size,
                // Telemetry/stage times describe a producing run, never a
                // cached value; store_patch already strips them.
                stage_times: Default::default(),
                localization_fallback,
                interpolation_fallbacks,
                optimize_delta,
                telemetry: Default::default(),
            };
            Some((
                key,
                Entry::Patch {
                    check,
                    result: Box::new(result),
                },
            ))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The durable store.

/// What a [`MemoStore::load_into`] pass recovered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoLoadStats {
    /// Entries decoded and inserted into the cache.
    pub loaded: u64,
    /// Records skipped: torn/corrupt frames, undecodable payloads, and
    /// `memo.load` fault injections.
    pub skipped: u64,
    /// Bytes discarded at torn tails (snapshot + journal).
    pub discarded_bytes: u64,
}

/// Durable backing for a [`MemoCache`]: `memo.snap` (compacted
/// snapshot) plus `memo.wal` (append-only journal of inserts since the
/// snapshot), both in the state directory handed to [`MemoStore::open`].
///
/// Lifecycle: `open` → [`MemoStore::load_into`] (recover) →
/// [`MemoStore::attach`] (journal new inserts) → serve →
/// [`MemoStore::snapshot`] on graceful drain (compact + truncate the
/// journal). Append failures degrade durability, never serving: they
/// are counted ([`MemoStore::append_errors`]) and the entry stays
/// cached in memory.
#[derive(Debug)]
pub struct MemoStore {
    snap_path: PathBuf,
    wal_path: PathBuf,
    wal: Mutex<Option<LogWriter>>,
    appended: AtomicU64,
    append_errors: AtomicU64,
}

impl MemoStore {
    /// Opens (creating if needed) the store in `dir`.
    pub fn open(dir: &Path) -> std::io::Result<Arc<MemoStore>> {
        std::fs::create_dir_all(dir)?;
        let snap_path = dir.join("memo.snap");
        let wal_path = dir.join("memo.wal");
        let wal = LogWriter::open_append(&wal_path, &MEMO_MAGIC)?;
        Ok(Arc::new(MemoStore {
            snap_path,
            wal_path,
            wal: Mutex::new(Some(wal)),
            appended: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
        }))
    }

    /// Replays the snapshot, then the journal, into `cache`. Corrupt,
    /// torn, or undecodable records are skipped and counted — recovery
    /// never fails, it only recovers less. Call before [`MemoStore::attach`]
    /// so the replay is not re-journaled. Each record also consults the
    /// `memo.load` fault point (injected hit ⇒ treated as corrupt).
    pub fn load_into(&self, cache: &MemoCache) -> MemoLoadStats {
        let mut stats = MemoLoadStats::default();
        for path in [&self.snap_path, &self.wal_path] {
            let (records, log) = match read_log(path, &MEMO_MAGIC) {
                Ok(r) => r,
                Err(_) => {
                    stats.skipped += 1;
                    continue;
                }
            };
            stats.skipped += log.skipped_frames;
            stats.discarded_bytes += log.discarded_bytes;
            for payload in records {
                if faultpoint::should_fail("memo.load") {
                    stats.skipped += 1;
                    continue;
                }
                match decode_memo_entry(&payload) {
                    Some((key, entry)) => {
                        cache.import(key, entry);
                        stats.loaded += 1;
                    }
                    None => stats.skipped += 1,
                }
            }
        }
        stats
    }

    /// Attaches this store as the cache's insert journal.
    pub fn attach(self: &Arc<Self>, cache: &MemoCache) {
        cache.set_sink(self.clone());
    }

    /// Compacts every resident entry of `cache` into a fresh snapshot
    /// (written to a temp file, fsynced, renamed over `memo.snap`) and
    /// truncates the journal. Returns the number of entries written.
    pub fn snapshot(&self, cache: &MemoCache) -> std::io::Result<u64> {
        let tmp_path = self.snap_path.with_extension("snap.tmp");
        let mut tmp = LogWriter::create(&tmp_path, &MEMO_MAGIC)?;
        let mut written = 0u64;
        for (key, entry) in cache.export_entries() {
            if let Some(bytes) = encode_memo_entry(key, &entry) {
                tmp.append(&bytes)?;
                written += 1;
            }
        }
        tmp.sync()?;
        std::fs::rename(&tmp_path, &self.snap_path)?;
        // Everything journaled so far is now in the snapshot.
        let fresh = LogWriter::create(&self.wal_path, &MEMO_MAGIC)?;
        *self.lock_wal() = Some(fresh);
        Ok(written)
    }

    /// Journal records appended since open.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Journal appends that failed (durability degraded, serving
    /// continued).
    pub fn append_errors(&self) -> u64 {
        self.append_errors.load(Ordering::Relaxed)
    }

    fn lock_wal(&self) -> std::sync::MutexGuard<'_, Option<LogWriter>> {
        // A panic mid-append leaves at worst a torn tail, which the
        // loader discards; the writer handle itself is always valid.
        self.wal.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl EntrySink for MemoStore {
    fn encode(&self, key: u128, entry: &Entry) -> Option<Vec<u8>> {
        encode_memo_entry(key, entry)
    }

    fn append(&self, bytes: &[u8]) {
        let mut guard = self.lock_wal();
        let result = match guard.as_mut() {
            Some(wal) => wal.append(bytes),
            None => return,
        };
        drop(guard);
        match result {
            Ok(()) => {
                self.appended.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EcoEngine, EcoOptions};
    use crate::instance::EcoInstance;
    use crate::memo::patch_memo_key;
    use eco_netlist::{parse_verilog, WeightTable};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eco_memo_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmpdir");
        dir
    }

    fn instance() -> EcoInstance {
        EcoInstance::from_netlists(
            "store-test",
            &parse_verilog(
                "module f (a, b, c, t, y); input a, b, c, t; output y; \
                 xor g1 (y, t, c); endmodule",
            )
            .expect("faulty"),
            &parse_verilog(
                "module g (a, b, c, y); input a, b, c; output y; \
                 wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
            )
            .expect("golden"),
            vec!["t".into()],
            &WeightTable::new(1),
        )
        .expect("instance")
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn log_round_trips_and_missing_file_is_empty() {
        let dir = tmpdir("log");
        let path = dir.join("t.log");
        let (records, stats) = read_log(&path, &MEMO_MAGIC).expect("missing ok");
        assert!(records.is_empty());
        assert_eq!(stats, LogStats::default());
        let mut w = LogWriter::create(&path, &MEMO_MAGIC).expect("create");
        w.append(b"alpha").expect("a");
        w.append(b"").expect("empty payload is a valid record");
        w.append(b"gamma").expect("g");
        w.sync().expect("sync");
        let (records, stats) = read_log(&path, &MEMO_MAGIC).expect("read");
        assert_eq!(
            records,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma".to_vec()]
        );
        assert_eq!(stats.records, 3);
        assert_eq!(stats.skipped_frames, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_discarded_and_counted() {
        let dir = tmpdir("torn");
        let path = dir.join("t.log");
        let mut w = LogWriter::create(&path, &MEMO_MAGIC).expect("create");
        w.append(b"first").expect("a");
        w.append(b"second-record").expect("b");
        drop(w);
        let full = std::fs::read(&path).expect("read file");
        // Tear mid-way through the second record's payload.
        std::fs::write(&path, &full[..full.len() - 4]).expect("tear");
        let (records, stats) = read_log(&path, &MEMO_MAGIC).expect("read");
        assert_eq!(records, vec![b"first".to_vec()]);
        assert_eq!(stats.records, 1);
        assert_eq!(stats.skipped_frames, 1);
        assert!(stats.discarded_bytes > 0);
        // Appending after the tear still works (open_append), and the
        // reader keeps stopping at the tear: no data past it is trusted.
        let mut w = LogWriter::open_append(&path, &MEMO_MAGIC).expect("reopen");
        w.append(b"third").expect("c");
        let (records, _) = read_log(&path, &MEMO_MAGIC).expect("read");
        assert_eq!(records, vec![b"first".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_stops_the_read() {
        let dir = tmpdir("flip");
        let path = dir.join("t.log");
        let mut w = LogWriter::create(&path, &MEMO_MAGIC).expect("create");
        w.append(b"aaaa").expect("a");
        w.append(b"bbbb").expect("b");
        w.append(b"cccc").expect("c");
        drop(w);
        let mut data = std::fs::read(&path).expect("read");
        // Flip one payload byte of the middle record.
        let mid = 8 + (8 + 4) + 8 + 1;
        data[mid] ^= 0x40;
        std::fs::write(&path, &data).expect("write");
        let (records, stats) = read_log(&path, &MEMO_MAGIC).expect("read");
        assert_eq!(records, vec![b"aaaa".to_vec()]);
        assert_eq!(stats.skipped_frames, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_magic_yields_no_records() {
        let dir = tmpdir("magic");
        let path = dir.join("t.log");
        std::fs::write(&path, b"NOTALOG!junkjunkjunk").expect("write");
        let (records, stats) = read_log(&path, &MEMO_MAGIC).expect("read");
        assert!(records.is_empty());
        assert_eq!(stats.skipped_frames, 1);
        assert!(LogWriter::open_append(&path, &MEMO_MAGIC).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rect_entries_round_trip_through_snapshot() {
        let dir = tmpdir("rect");
        let store = MemoStore::open(&dir).expect("open");
        let cache = MemoCache::new();
        cache.store_rect(11, 101, &Rectifiability::Rectifiable);
        cache.store_rect(
            12,
            102,
            &Rectifiability::Counterexample(vec![("a".into(), true), ("b".into(), false)]),
        );
        assert_eq!(store.snapshot(&cache).expect("snapshot"), 2);
        let fresh = MemoCache::new();
        let stats = store.load_into(&fresh);
        assert_eq!(stats.loaded, 2);
        assert_eq!(stats.skipped, 0);
        assert_eq!(
            fresh.lookup_rect(11, 101),
            Some(Rectifiability::Rectifiable)
        );
        assert_eq!(
            fresh.lookup_rect(12, 102),
            Some(Rectifiability::Counterexample(vec![
                ("a".into(), true),
                ("b".into(), false)
            ]))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attached_sink_journals_inserts_for_the_next_process() {
        let dir = tmpdir("sink");
        let inst = instance();
        let opts = EcoOptions::default();
        let (key, check) = patch_memo_key(&inst, &opts);
        let result = EcoEngine::new(inst, opts)
            .run()
            .expect("doc example rectifies");
        {
            let store = MemoStore::open(&dir).expect("open");
            let cache = MemoCache::new();
            store.attach(&cache);
            cache.store_patch(key, check, &result);
            cache.store_rect(5, 6, &Rectifiability::Rectifiable);
            assert_eq!(store.appended(), 2);
            assert_eq!(store.append_errors(), 0);
            // No snapshot: simulate a crash (journal only).
        }
        let store = MemoStore::open(&dir).expect("reopen");
        let cache = MemoCache::new();
        let stats = store.load_into(&cache);
        assert_eq!(stats.loaded, 2);
        let cached = cache.lookup_patch(key, check).expect("patch recovered");
        assert_eq!(cached.cost, result.cost);
        assert_eq!(cached.size, result.size);
        assert_eq!(cached.patches.len(), result.patches.len());
        assert_eq!(cached.patches[0].target, result.patches[0].target);
        assert_eq!(cached.patches[0].base, result.patches[0].base);
        assert_eq!(
            cached.patch_aig.structural_fingerprint(),
            result.patch_aig.structural_fingerprint(),
            "patch circuit must round-trip structurally intact"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_entries_are_not_persisted() {
        let dir = tmpdir("sweep");
        let store = MemoStore::open(&dir).expect("open");
        let cache = MemoCache::new();
        store.attach(&cache);
        use eco_fraig::SweepMemo;
        cache.store_sweep(1, 2, &Default::default(), &Default::default());
        assert_eq!(store.appended(), 0, "sweep inserts are not journaled");
        assert_eq!(store.snapshot(&cache).expect("snapshot"), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undecodable_journal_record_is_skipped_not_fatal() {
        let dir = tmpdir("undecodable");
        let store = MemoStore::open(&dir).expect("open");
        {
            let mut wal = LogWriter::open_append(&dir.join("memo.wal"), &MEMO_MAGIC).expect("wal");
            wal.append(b"\xffgarbage-payload").expect("append");
        }
        let cache = MemoCache::new();
        let cache_stats_before = cache.stats();
        let stats = store.load_into(&cache);
        assert_eq!(stats.loaded, 0);
        assert_eq!(stats.skipped, 1);
        assert_eq!(cache.stats().entries, cache_stats_before.entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_truncates_the_journal() {
        let dir = tmpdir("truncate");
        let store = MemoStore::open(&dir).expect("open");
        let cache = MemoCache::new();
        store.attach(&cache);
        cache.store_rect(1, 2, &Rectifiability::Rectifiable);
        assert_eq!(store.appended(), 1);
        store.snapshot(&cache).expect("snapshot");
        let (wal_records, _) = read_log(&dir.join("memo.wal"), &MEMO_MAGIC).expect("read");
        assert!(wal_records.is_empty(), "journal compacted into snapshot");
        let fresh = MemoCache::new();
        assert_eq!(store.load_into(&fresh).loaded, 1, "entry survives in snap");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
