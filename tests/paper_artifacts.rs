//! Reproductions of the paper's in-text artifacts: Table 1 (§6.2.1) and
//! the Fig.-2 clustering example, as executable tests.

mod common;

use eco::core::{
    cluster_targets, enumerate_cex, on_off_sets, EcoEngine, EcoInstance, EcoOptions, RebaseQuery,
    Workspace,
};
use eco::netlist::{parse_verilog, WeightTable};

/// Table 1: the counterexample enumeration of p(a, b) = a ⊕ b discovers
/// exactly the two on-set configurations and needs exactly two blocking
/// clauses (observable as two enumeration iterations).
#[test]
fn table1_xor_counterexamples() {
    let faulty =
        parse_verilog("module f (a, b, t, y); input a, b, t; output y; buf g (y, t); endmodule")
            .expect("faulty");
    let golden =
        parse_verilog("module g (a, b, y); input a, b; output y; xor g (y, a, b); endmodule")
            .expect("golden");
    let inst = EcoInstance::from_netlists(
        "table1",
        &faulty,
        &golden,
        vec!["t".into()],
        &WeightTable::new(1),
    )
    .expect("instance");
    let mut ws = Workspace::new(&inst);
    let t = ws.target_vars[0];
    let (f, g) = (ws.f_outs.clone(), ws.g_outs.clone());
    let onoff = on_off_sets(&mut ws.mgr, &f, &g, t);
    let pool: Vec<usize> = (0..ws.cands.len()).collect();
    let a = pool
        .iter()
        .position(|&i| ws.cands[i].name == "a")
        .expect("a");
    let b = pool
        .iter()
        .position(|&i| ws.cands[i].name == "b")
        .expect("b");
    let mut q = RebaseQuery::new(&ws, onoff.on, onoff.off, pool);

    let cex = enumerate_cex(&mut q, &[], None, &[a, b], 1 << 20).expect("in budget");
    let mut masks = cex.masks.clone();
    masks.sort_unstable();
    assert_eq!(masks, vec![0b01, 0b10], "on-set rows of a XOR b");

    // Selecting {a, b} leaves no counterexample (the base is feasible).
    assert_eq!(q.feasible(&[a, b], 1 << 20), Some(true));
}

/// Fig. 2: targets t1, t2, t3 share outputs pairwise and land in one
/// cluster; the cluster covers all three outputs.
#[test]
fn fig2_clustering_topology() {
    let faulty = parse_verilog(
        "module f (a, b, t1, t2, t3, o1, o2, o3); \
         input a, b, t1, t2, t3; output o1, o2, o3; \
         buf g1 (o1, t1); and g2 (o2, t1, t2); or g3 (o3, t2, t3); endmodule",
    )
    .expect("faulty");
    let golden = parse_verilog(
        "module g (a, b, o1, o2, o3); input a, b; output o1, o2, o3; \
         wire ab, axb; and g0 (ab, a, b); xor g4 (axb, a, b); \
         not g1 (o1, ab); buf g2 (o2, axb); or g3 (o3, ab, axb); endmodule",
    )
    .expect("golden");
    let inst = EcoInstance::from_netlists(
        "fig2",
        &faulty,
        &golden,
        vec!["t1".into(), "t2".into(), "t3".into()],
        &WeightTable::new(1),
    )
    .expect("instance");

    let ws = Workspace::new(&inst);
    let clustering = cluster_targets(&ws);
    assert_eq!(clustering.clusters.len(), 1);
    assert_eq!(clustering.clusters[0].targets, vec![0, 1, 2]);
    assert_eq!(clustering.clusters[0].outputs.len(), 3);

    // And the grouped rectification succeeds end-to-end.
    let result = EcoEngine::new(inst, EcoOptions::default())
        .run()
        .expect("rectifiable");
    common::assert_patched_equals_golden(&faulty, &golden, &result);
}

/// Eq. (9) failure mode (§4.3): a multi-output conflict makes `on ∧ off`
/// satisfiable, interpolation is skipped, and the on-set fallback still
/// rectifies the instance when it is rectifiable.
#[test]
fn multi_output_interpolation_conflict_recovers() {
    // o1 wants t = a for x-values where o2 wants t = !b; still rectifiable
    // overall because the requirements only conflict at unobservable
    // points... here we build a genuinely rectifiable case:
    // F: o1 = t & a, o2 = t | b. G: o1 = a, o2 = 1.
    // t = 1 fixes both. on/off overlap at (a=0, b=0)? on = care1&diff1|0 ∨
    // care2&diff2|0; off similar — overlap occurs when one output errs at
    // t=0 and the other at t=1 for the same X.
    let faulty = parse_verilog(
        "module f (a, b, t, o1, o2); input a, b, t; output o1, o2; \
         and g1 (o1, t, a); or g2 (o2, t, b); endmodule",
    )
    .expect("faulty");
    let golden = parse_verilog(
        "module g (a, b, o1, o2); input a, b; output o1, o2; \
         wire nb, one; buf g1 (o1, a); not g0 (nb, b); or g2 (one, b, nb); \
         buf g3 (o2, one); endmodule",
    )
    .expect("golden");
    let inst = EcoInstance::from_netlists(
        "conflict",
        &faulty,
        &golden,
        vec!["t".into()],
        &WeightTable::new(1),
    )
    .expect("instance");
    let result = EcoEngine::new(
        inst,
        EcoOptions {
            initial_patch: eco::core::InitialPatchKind::Interpolant,
            ..Default::default()
        },
    )
    .run()
    .expect("rectifiable with t = 1");
    common::assert_patched_equals_golden(&faulty, &golden, &result);
}
