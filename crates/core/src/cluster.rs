//! Target clustering (Fig. 2 of the paper).
//!
//! Two targets belong to one group when they share a primary output in
//! their transitive fanout cones; groups sharing a target are merged
//! iteratively. Rectification then proceeds one group at a time, which
//! bounds the cone sizes of every downstream SAT query.

use eco_fraig::ParityUnionFind;

use crate::Workspace;

/// One group of targets and the outputs they can influence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TargetCluster {
    /// Indices into `instance.targets` / `workspace.target_vars`.
    pub targets: Vec<usize>,
    /// Indices of the primary outputs reachable from these targets.
    pub outputs: Vec<usize>,
}

/// Result of the clustering stage.
#[derive(Clone, Debug, Default)]
pub struct Clustering {
    /// Groups in ascending order of their smallest target index.
    pub clusters: Vec<TargetCluster>,
    /// Outputs not reachable from any target. These cannot be influenced
    /// by any patch, so they must already match the golden circuit
    /// (checked during verification).
    pub untouched_outputs: Vec<usize>,
    /// Targets that reach no output at all; their patch is arbitrary (the
    /// engine ties them to constant false).
    pub dead_targets: Vec<usize>,
}

/// Clusters the targets of `ws` by shared-output reachability.
pub fn cluster_targets(ws: &Workspace) -> Clustering {
    let n_targets = ws.target_vars.len();
    let m = ws.num_outputs();

    // targets_of[j] = targets in the support of output j.
    let mut targets_of: Vec<Vec<usize>> = Vec::with_capacity(m);
    for j in 0..m {
        let sup = ws.mgr.support(&[ws.f_outs[j]]);
        let ts: Vec<usize> = (0..n_targets)
            .filter(|&k| sup.contains(&ws.target_vars[k]))
            .collect();
        targets_of.push(ts);
    }

    let mut uf = ParityUnionFind::new(n_targets);
    for ts in &targets_of {
        for w in ts.windows(2) {
            uf.union(w[0], w[1], false);
        }
    }

    let mut cluster_of_root: std::collections::HashMap<usize, usize> = Default::default();
    let mut clusters: Vec<TargetCluster> = Vec::new();
    let mut dead_targets = Vec::new();
    let reachable: Vec<bool> = (0..n_targets)
        .map(|k| targets_of.iter().any(|ts| ts.contains(&k)))
        .collect();
    for (k, &is_reachable) in reachable.iter().enumerate() {
        if !is_reachable {
            dead_targets.push(k);
            continue;
        }
        let (root, _) = uf.find(k);
        let idx = *cluster_of_root.entry(root).or_insert_with(|| {
            clusters.push(TargetCluster {
                targets: Vec::new(),
                outputs: Vec::new(),
            });
            clusters.len() - 1
        });
        clusters[idx].targets.push(k);
    }
    let mut untouched_outputs = Vec::new();
    for (j, ts) in targets_of.iter().enumerate() {
        match ts.first() {
            None => untouched_outputs.push(j),
            Some(&t) => {
                let (root, _) = uf.find(t);
                let idx = cluster_of_root[&root];
                clusters[idx].outputs.push(j);
            }
        }
    }
    clusters.sort_by_key(|c| c.targets[0]);
    Clustering {
        clusters,
        untouched_outputs,
        dead_targets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EcoInstance;
    use eco_netlist::{parse_verilog, WeightTable};

    fn make(faulty: &str, golden: &str, targets: &[&str]) -> Clustering {
        let f = parse_verilog(faulty).expect("faulty");
        let g = parse_verilog(golden).expect("golden");
        let inst = EcoInstance::from_netlists(
            "c",
            &f,
            &g,
            targets.iter().map(|s| s.to_string()).collect(),
            &WeightTable::new(1),
        )
        .expect("instance");
        cluster_targets(&Workspace::new(&inst))
    }

    #[test]
    fn fig2_topology_single_group() {
        // Fig. 2 of the paper: t1 feeds o1 and o2 (with t2), t2 also feeds
        // o3 with t3 — all three land in one group.
        let clustering = make(
            "module f (a, t1, t2, t3, o1, o2, o3); input a, t1, t2, t3; \
             output o1, o2, o3; \
             buf g1 (o1, t1); and g2 (o2, t1, t2); or g3 (o3, t2, t3); endmodule",
            "module g (a, o1, o2, o3); input a; output o1, o2, o3; \
             buf g1 (o1, a); buf g2 (o2, a); buf g3 (o3, a); endmodule",
            &["t1", "t2", "t3"],
        );
        assert_eq!(clustering.clusters.len(), 1);
        assert_eq!(clustering.clusters[0].targets, vec![0, 1, 2]);
        assert_eq!(clustering.clusters[0].outputs, vec![0, 1, 2]);
        assert!(clustering.untouched_outputs.is_empty());
    }

    #[test]
    fn disjoint_targets_get_separate_groups() {
        let clustering = make(
            "module f (a, t1, t2, o1, o2, o3); input a, t1, t2; \
             output o1, o2, o3; \
             buf g1 (o1, t1); buf g2 (o2, t2); buf g3 (o3, a); endmodule",
            "module g (a, o1, o2, o3); input a; output o1, o2, o3; \
             not g1 (o1, a); buf g2 (o2, a); buf g3 (o3, a); endmodule",
            &["t1", "t2"],
        );
        assert_eq!(clustering.clusters.len(), 2);
        assert_eq!(clustering.clusters[0].targets, vec![0]);
        assert_eq!(clustering.clusters[0].outputs, vec![0]);
        assert_eq!(clustering.clusters[1].targets, vec![1]);
        assert_eq!(clustering.clusters[1].outputs, vec![1]);
        assert_eq!(clustering.untouched_outputs, vec![2]);
    }

    #[test]
    fn transitive_merge_through_shared_target() {
        // o1: {t1, t2}, o2: {t2, t3} — one group via t2.
        let clustering = make(
            "module f (t1, t2, t3, o1, o2); input t1, t2, t3; output o1, o2; \
             and g1 (o1, t1, t2); or g2 (o2, t2, t3); endmodule",
            "module g (o1, o2); output o1, o2; \
             assign o1 = 1'b0; assign o2 = 1'b1; endmodule",
            &["t1", "t2", "t3"],
        );
        assert_eq!(clustering.clusters.len(), 1);
        assert_eq!(clustering.clusters[0].targets, vec![0, 1, 2]);
    }

    #[test]
    fn dead_target_reported() {
        let clustering = make(
            "module f (a, t1, t2, o1); input a, t1, t2; output o1; \
             buf g1 (o1, t1); endmodule",
            "module g (a, o1); input a; output o1; buf g1 (o1, a); endmodule",
            &["t1", "t2"],
        );
        assert_eq!(clustering.dead_targets, vec![1]);
        assert_eq!(clustering.clusters.len(), 1);
    }
}
