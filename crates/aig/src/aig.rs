//! The And-Inverter Graph container and its structural-hashing builders.

use std::collections::HashMap;
use std::fmt;

use crate::{Lit, Node, Var};

/// A named primary output of an [`Aig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Output {
    /// Output name (unique within the AIG by convention, not enforced).
    pub name: String,
    /// Literal driving the output.
    pub lit: Lit,
}

/// A combinational And-Inverter Graph with structural hashing.
///
/// Nodes are append-only, so node indices form a topological order:
/// the fanins of an AND always have smaller indices than the AND itself.
/// All builder methods ([`and`](Aig::and), [`or`](Aig::or),
/// [`xor`](Aig::xor), ...) constant-fold and hash structurally, so
/// syntactically identical subgraphs are shared.
///
/// # Examples
///
/// ```
/// use eco_aig::Aig;
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let f = aig.xor(a, b);
/// aig.add_output("f", f);
/// assert_eq!(aig.num_inputs(), 2);
/// assert_eq!(aig.eval(&[true, false])[0], true);
/// ```
#[derive(Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(Lit, Lit), Var>,
    inputs: Vec<Var>,
    input_names: Vec<String>,
    outputs: Vec<Output>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::Constant],
            strash: HashMap::new(),
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Total number of nodes, including the constant and all inputs.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the AIG contains only the constant node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of primary (and pseudo-primary) inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of AND nodes currently allocated (including dangling ones).
    pub fn num_ands(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_and()).count()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Returns the node stored at `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of bounds.
    #[inline]
    pub fn node(&self, var: Var) -> Node {
        self.nodes[var.index() as usize]
    }

    /// Returns all input variables in creation order.
    #[inline]
    pub fn inputs(&self) -> &[Var] {
        &self.inputs
    }

    /// Returns the name of the input at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of bounds.
    #[inline]
    pub fn input_name(&self, pos: usize) -> &str {
        &self.input_names[pos]
    }

    /// Returns the input variable at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of bounds.
    #[inline]
    pub fn input_var(&self, pos: usize) -> Var {
        self.inputs[pos]
    }

    /// Returns the input position of `var`, or `None` if it is not an input.
    pub fn input_pos(&self, var: Var) -> Option<usize> {
        match self.node(var) {
            Node::Input { pos } => Some(pos as usize),
            _ => None,
        }
    }

    /// Finds an input variable by name.
    pub fn find_input(&self, name: &str) -> Option<Var> {
        self.input_names
            .iter()
            .position(|n| n == name)
            .map(|p| self.inputs[p])
    }

    /// Returns the primary outputs.
    #[inline]
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Returns the literal driving output `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn output_lit(&self, idx: usize) -> Lit {
        self.outputs[idx].lit
    }

    /// Finds an output index by name.
    pub fn find_output(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|o| o.name == name)
    }

    /// Appends a fresh primary input and returns its positive literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> Lit {
        let var = Var::new(self.nodes.len() as u32);
        self.nodes.push(Node::Input {
            pos: self.inputs.len() as u32,
        });
        self.inputs.push(var);
        self.input_names.push(name.into());
        var.pos()
    }

    /// Registers `lit` as a named primary output and returns its index.
    pub fn add_output(&mut self, name: impl Into<String>, lit: Lit) -> usize {
        self.outputs.push(Output {
            name: name.into(),
            lit,
        });
        self.outputs.len() - 1
    }

    /// Replaces the literal driving output `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn set_output(&mut self, idx: usize, lit: Lit) {
        self.outputs[idx].lit = lit;
    }

    /// Removes all outputs (the logic itself is retained).
    pub fn clear_outputs(&mut self) {
        self.outputs.clear();
    }

    /// Builds the AND of two literals with constant folding and structural
    /// hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant and trivial folding.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        let (fan0, fan1) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&v) = self.strash.get(&(fan0, fan1)) {
            return v.pos();
        }
        let var = Var::new(self.nodes.len() as u32);
        self.nodes.push(Node::And { fan0, fan1 });
        self.strash.insert((fan0, fan1), var);
        var.pos()
    }

    /// Builds the OR of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Builds the XOR of two literals.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let t0 = self.and(a, !b);
        let t1 = self.and(!a, b);
        self.or(t0, t1)
    }

    /// Builds the XNOR (equivalence) of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Builds the implication `a -> b`.
    pub fn implies(&mut self, a: Lit, b: Lit) -> Lit {
        self.or(!a, b)
    }

    /// Builds the multiplexer `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let on = self.and(sel, t);
        let off = self.and(!sel, e);
        self.or(on, off)
    }

    /// Builds the AND of an arbitrary number of literals (balanced tree).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::TRUE, Self::and)
    }

    /// Builds the OR of an arbitrary number of literals (balanced tree).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::or)
    }

    /// Builds the XOR of an arbitrary number of literals (balanced tree).
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::xor)
    }

    fn reduce_balanced(
        &mut self,
        lits: &[Lit],
        unit: Lit,
        op: fn(&mut Self, Lit, Lit) -> Lit,
    ) -> Lit {
        match lits.len() {
            0 => unit,
            1 => lits[0],
            _ => {
                let mid = lits.len() / 2;
                let l = self.reduce_balanced(&lits[..mid], unit, op);
                let r = self.reduce_balanced(&lits[mid..], unit, op);
                op(self, l, r)
            }
        }
    }

    /// Evaluates all outputs for a single input assignment.
    ///
    /// `inputs[pos]` gives the value of the input at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs(), "input arity mismatch");
        let values = self.eval_all(inputs);
        self.outputs
            .iter()
            .map(|o| values[o.lit.var().index() as usize] ^ o.lit.is_complement())
            .collect()
    }

    /// Evaluates a single literal for a single input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval_lit(&self, lit: Lit, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.num_inputs(), "input arity mismatch");
        let values = self.eval_all(inputs);
        values[lit.var().index() as usize] ^ lit.is_complement()
    }

    fn eval_all(&self, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match *node {
                Node::Constant => false,
                Node::Input { pos } => inputs[pos as usize],
                Node::And { fan0, fan1 } => {
                    let v0 = values[fan0.var().index() as usize] ^ fan0.is_complement();
                    let v1 = values[fan1.var().index() as usize] ^ fan1.is_complement();
                    v0 && v1
                }
            };
        }
        values
    }

    /// Iterates over all `(Var, Node)` pairs in topological (index) order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (Var, Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| (Var::new(i as u32), n))
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig {{ nodes: {}, inputs: {}, ands: {}, outputs: {} }}",
            self.len(),
            self.num_inputs(),
            self.num_ands(),
            self.num_outputs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_rules() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(Lit::FALSE, a), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(Lit::TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        // No AND node was created by any of the above.
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn xor_truth_table() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f = g.xor(a, b);
        g.add_output("f", f);
        assert_eq!(g.eval(&[false, false]), vec![false]);
        assert_eq!(g.eval(&[false, true]), vec![true]);
        assert_eq!(g.eval(&[true, false]), vec![true]);
        assert_eq!(g.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn mux_truth_table() {
        let mut g = Aig::new();
        let s = g.add_input("s");
        let t = g.add_input("t");
        let e = g.add_input("e");
        let f = g.mux(s, t, e);
        g.add_output("f", f);
        for s_v in [false, true] {
            for t_v in [false, true] {
                for e_v in [false, true] {
                    let expect = if s_v { t_v } else { e_v };
                    assert_eq!(g.eval(&[s_v, t_v, e_v]), vec![expect]);
                }
            }
        }
    }

    #[test]
    fn many_input_gates() {
        let mut g = Aig::new();
        let ins: Vec<Lit> = (0..5).map(|i| g.add_input(format!("i{i}"))).collect();
        let and_all = g.and_many(&ins);
        let or_all = g.or_many(&ins);
        let xor_all = g.xor_many(&ins);
        g.add_output("and", and_all);
        g.add_output("or", or_all);
        g.add_output("xor", xor_all);
        for pattern in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| pattern >> i & 1 == 1).collect();
            let ones = bits.iter().filter(|&&b| b).count();
            let out = g.eval(&bits);
            assert_eq!(out[0], ones == 5);
            assert_eq!(out[1], ones > 0);
            assert_eq!(out[2], ones % 2 == 1);
        }
    }

    #[test]
    fn empty_reductions_yield_units() {
        let mut g = Aig::new();
        assert_eq!(g.and_many(&[]), Lit::TRUE);
        assert_eq!(g.or_many(&[]), Lit::FALSE);
        assert_eq!(g.xor_many(&[]), Lit::FALSE);
    }

    #[test]
    fn output_management() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f = g.or(a, b);
        let idx = g.add_output("f", f);
        assert_eq!(g.find_output("f"), Some(idx));
        assert_eq!(g.output_lit(idx), f);
        g.set_output(idx, !f);
        assert_eq!(g.output_lit(idx), !f);
        assert_eq!(g.find_output("nope"), None);
    }

    #[test]
    fn find_input_by_name() {
        let mut g = Aig::new();
        let a = g.add_input("alpha");
        let _ = g.add_input("beta");
        assert_eq!(g.find_input("alpha"), Some(a.var()));
        assert_eq!(g.find_input("gamma"), None);
        assert_eq!(g.input_name(0), "alpha");
        assert_eq!(g.input_pos(a.var()), Some(0));
    }
}
