//! Quickstart: patch a single floating target so a faulty circuit matches
//! its golden specification.
//!
//! Run with `cargo run --example quickstart`.

use eco::core::{EcoEngine, EcoInstance, EcoOptions};
use eco::netlist::{netlist_from_aig, parse_verilog, write_verilog, WeightTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The faulty design: the logic that should drive `t` was ripped out by
    // the ECO, leaving `t` floating as a pseudo-primary-input.
    let faulty = parse_verilog(
        "module faulty (a, b, c, t, y);
           input a, b, c, t;
           output y;
           xor g1 (y, t, c);
         endmodule",
    )?;

    // The golden specification the design must now implement.
    let golden = parse_verilog(
        "module golden (a, b, c, y);
           input a, b, c;
           output y;
           wire w;
           and g1 (w, a, b);
           xor g2 (y, w, c);
         endmodule",
    )?;

    // Every faulty signal has a tap cost (here: flat 3 per signal).
    let weights = WeightTable::new(3);

    let instance =
        EcoInstance::from_netlists("quickstart", &faulty, &golden, vec!["t".into()], &weights)?;
    let result = EcoEngine::new(instance, EcoOptions::default()).run()?;

    println!(
        "patched {} target(s): cost = {}, size = {} AND gates",
        result.patches.len(),
        result.cost,
        result.size
    );
    for patch in &result.patches {
        println!(
            "  {} <- f({})   [{} gates]",
            patch.target,
            patch.base.join(", "),
            patch.size
        );
    }
    println!(
        "\npatch netlist:\n{}",
        write_verilog(&netlist_from_aig(&result.patch_aig, "patch"))
    );
    Ok(())
}
