//! A minimal recursive-descent JSON parser — just enough for batch
//! manifests and `eco-serve` protocol lines.
//!
//! The subset covers objects, arrays, strings (with the common escapes),
//! unsigned integers, and the `true` / `false` / `null` literals. Every
//! malformed or truncated input — including a string that ends in a lone
//! backslash — returns a typed error; the parser never panics on
//! untrusted bytes (regression-tested in [`tests`]).

use std::fmt;

/// A parsed JSON value from the subset grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// The `null` literal.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// An unsigned integer (the only number form manifests use).
    Int(u64),
    /// A string with escapes resolved.
    Str(String),
    /// An array of values.
    Arr(Vec<Value>),
    /// An object as an ordered key/value list (duplicate keys are kept;
    /// callers decide which wins).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// One-word name of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Renders the value back as compact JSON (used to echo request ids).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "\"{}\"", eco_core::json_escape(s)),
            Value::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "\"{}\": {v}", eco_core::json_escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null").map(|()| Value::Null),
        Some(c) if c.is_ascii_digit() => parse_int(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_int(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Value::Int)
        .ok_or_else(|| format!("bad integer at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    // A string ending in a lone backslash lands here; it
                    // must be a parse error, never a panic.
                    None => return Err(format!("truncated escape at byte {pos}")),
                    Some(_) => return Err(format!("unsupported escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, not one byte. The slice is
                // non-empty here, but stay panic-free on principle: any
                // decode surprise is a typed error.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let Some(c) = rest.chars().next() else {
                    return Err(format!("truncated string at byte {pos}"));
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a key string at byte {pos}"));
        }
        let key = parse_str(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_subset() {
        let v = parse(r#"{"a": [1, "x", true, false, null], "b": "y"}"#).unwrap();
        let Value::Obj(fields) = v else { panic!() };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "a");
        assert_eq!(
            fields[0].1,
            Value::Arr(vec![
                Value::Int(1),
                Value::Str("x".into()),
                Value::Bool(true),
                Value::Bool(false),
                Value::Null,
            ])
        );
    }

    #[test]
    fn display_round_trips() {
        let text = r#"{"op": "run", "id": 7, "job": {"name": "a\"b", "t": [1, null]}}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    /// Every truncated or malformed input must be a typed error, never a
    /// panic — this is the regression net for the lone-backslash crash.
    #[test]
    fn truncated_and_malformed_inputs_error_instead_of_panicking() {
        for bad in [
            "\"abc\\",              // string ending in a lone backslash
            "\"abc\\\"",            // escape eats the closing quote
            "\"abc",                // unterminated string
            "\"\\x\"",              // unsupported escape
            "{\"k\\",               // truncated escape inside a key
            "{\"a\": \"\\",         // truncated escape inside a value
            "{",                    // truncated object
            "{\"a\"",               // missing colon
            "{\"a\": 1",            // missing closing brace
            "[1, 2",                // truncated array
            "[1,",                  // dangling comma then EOF
            "tru",                  // truncated literal
            "18446744073709551616", // u64 overflow
            "",                     // empty input
            "\\",                   // bare backslash
            "{\"a\": 1} x",         // trailing garbage
        ] {
            assert!(parse(bad).is_err(), "input {bad:?} must be a parse error");
        }
    }

    /// Byte-level fuzz over truncations of a valid line: every prefix must
    /// parse or error cleanly (no panic, no hang).
    #[test]
    fn every_prefix_of_a_valid_line_is_handled() {
        let line = r#"{"op": "run", "id": "p0-u1", "job": {"faulty": "a\\b.v", "golden": "g.v", "targets": ["t_0"], "budget": 12}}"#;
        for end in 0..=line.len() {
            if !line.is_char_boundary(end) {
                continue;
            }
            let _ = parse(&line[..end]); // Ok or Err — must not panic.
        }
    }

    #[test]
    fn multibyte_scalars_survive_strings() {
        let v = parse("\"α → β\"").unwrap();
        assert_eq!(v, Value::Str("α → β".into()));
    }
}
