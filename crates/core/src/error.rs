//! Error type for the ECO engine.

use std::error::Error;
use std::fmt;

use eco_aig::TransformError;

/// Errors reported by instance construction and patch generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcoError {
    /// A golden-circuit input has no same-named faulty-circuit input.
    MissingInput(String),
    /// A declared target is not a (pseudo-)input of the faulty circuit.
    UnknownTarget(String),
    /// The circuits' primary output name sets differ.
    OutputMismatch(String),
    /// No patch over the given targets can rectify the faulty circuit.
    Unrectifiable(String),
    /// A configured resource budget was exhausted.
    ResourceLimit(String),
    /// A patch names an input net that does not exist in the circuit it is
    /// being spliced into (or that is itself a rectification target).
    UnknownPatchInput(String),
    /// An AIG transform (import / cone extraction) failed while assembling
    /// or extracting a patch — the base set did not cover the patch cone.
    Transform(TransformError),
}

impl fmt::Display for EcoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcoError::MissingInput(n) => {
                write!(f, "golden input `{n}` has no matching faulty input")
            }
            EcoError::UnknownTarget(n) => {
                write!(f, "target `{n}` is not an input of the faulty circuit")
            }
            EcoError::OutputMismatch(n) => {
                write!(f, "output `{n}` is not present in both circuits")
            }
            EcoError::Unrectifiable(why) => write!(f, "instance is not rectifiable: {why}"),
            EcoError::ResourceLimit(what) => write!(f, "resource limit exhausted: {what}"),
            EcoError::UnknownPatchInput(n) => {
                write!(f, "patch input `{n}` is not a net of the patched circuit")
            }
            EcoError::Transform(e) => write!(f, "patch transform failed: {e}"),
        }
    }
}

impl From<TransformError> for EcoError {
    fn from(e: TransformError) -> Self {
        EcoError::Transform(e)
    }
}

impl Error for EcoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EcoError::MissingInput("a".into())
            .to_string()
            .contains("`a`"));
        assert!(EcoError::UnknownTarget("t".into())
            .to_string()
            .contains("`t`"));
        assert!(EcoError::OutputMismatch("y".into())
            .to_string()
            .contains("`y`"));
        assert!(EcoError::Unrectifiable("x".into())
            .to_string()
            .contains("x"));
        assert!(EcoError::ResourceLimit("sat".into())
            .to_string()
            .contains("sat"));
        assert!(EcoError::UnknownPatchInput("w3".into())
            .to_string()
            .contains("`w3`"));
        let e: EcoError = TransformError::UnmappedInput("x".into()).into();
        assert!(e.to_string().contains("`x`"));
    }
}
