//! A harder workload: rectify two cut nets inside a 4×4 array multiplier
//! and inspect the per-stage timing of the flow (Fig. 1 of the paper).
//!
//! Run with `cargo run --release --example multiplier_eco`.

use eco::core::{EcoEngine, EcoInstance, EcoOptions};
use eco::workgen::{assign_weights, build_unit, Family, TargetBias, UnitSpec, WeightProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = UnitSpec {
        name: "mult4_eco".into(),
        family: Family::Multiplier(4),
        n_targets: 2,
        bias: TargetBias::Deep,
        weights: WeightProfile::CheapWires { pi: 40, wire: 2 },
        difficult: true,
        seed: 2026,
    };
    let unit = build_unit(&spec);
    println!(
        "golden: {} gates, faulty floats {:?}",
        unit.golden.num_gates(),
        unit.targets
    );

    let instance: EcoInstance = unit.instance()?;
    let result = EcoEngine::new(instance, EcoOptions::default()).run()?;

    println!("\ncost {}, size {} AND gates", result.cost, result.size);
    for patch in &result.patches {
        println!("  {} <- f({})", patch.target, patch.base.join(", "));
    }
    let t = result.stage_times;
    println!("\nstage times (Fig. 1):");
    println!("  fraig      {:>8.2?}", t.fraig);
    println!("  clustering {:>8.2?}", t.clustering);
    println!("  patchgen   {:>8.2?}", t.patchgen);
    println!("  optimize   {:>8.2?}", t.optimize);
    println!("  verify     {:>8.2?}", t.verify);

    // The weights module is also usable standalone:
    let _ = assign_weights(&unit.faulty, WeightProfile::Unit, 0);
    Ok(())
}
