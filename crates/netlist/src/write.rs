//! Verilog writer for gate-level netlists.

use std::fmt::Write as _;

use crate::ast::{NetRef, Netlist};

/// Formats a net name as a Verilog identifier, escaping it
/// (backslash form) when it contains characters outside
/// `[A-Za-z0-9_$]` or starts with a digit.
fn ident(name: &str) -> String {
    let simple = !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$');
    if simple {
        name.to_string()
    } else {
        format!("\\{name} ")
    }
}

fn netref(r: &NetRef) -> String {
    match r {
        NetRef::Named(n) => ident(n),
        c => c.to_string(),
    }
}

/// Renders a netlist as structural Verilog in the contest subset.
///
/// Net names that are not plain identifiers are emitted in escaped form
/// (`\name `), which [`parse_verilog`](crate::parse_verilog) reads back.
/// The output parses to an equal [`Netlist`] modulo gate instance names.
pub fn write_verilog(netlist: &Netlist) -> String {
    let mut s = String::new();
    let ports: Vec<String> = netlist
        .inputs
        .iter()
        .chain(&netlist.outputs)
        .map(|n| ident(n))
        .collect();
    let _ = writeln!(s, "module {} ({});", ident(&netlist.name), ports.join(", "));
    for (label, nets) in [
        ("input", &netlist.inputs),
        ("output", &netlist.outputs),
        ("wire", &netlist.wires),
    ] {
        for chunk in nets.chunks(16) {
            if !chunk.is_empty() {
                let names: Vec<String> = chunk.iter().map(|n| ident(n)).collect();
                let _ = writeln!(s, "  {label} {};", names.join(", "));
            }
        }
    }
    for (i, g) in netlist.gates.iter().enumerate() {
        let name = g.name.clone().unwrap_or_else(|| format!("g{i}"));
        let inputs: Vec<String> = g.inputs.iter().map(netref).collect();
        let _ = writeln!(
            s,
            "  {} {} ({}, {});",
            g.kind.keyword(),
            name,
            ident(&g.output),
            inputs.join(", ")
        );
    }
    s.push_str("endmodule\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::{elaborate, netlist_from_aig};
    use crate::parse::parse_verilog;

    #[test]
    fn writer_output_reparses() {
        let src = "module m (a, b, c, y); input a, b, c; output y; \
                   wire w; and g1 (w, a, b); xnor g2 (y, w, c, 1'b1); endmodule";
        let n1 = parse_verilog(src).expect("parse");
        let text = write_verilog(&n1);
        let n2 = parse_verilog(&text).expect("re-parse");
        assert_eq!(n1.inputs, n2.inputs);
        assert_eq!(n1.outputs, n2.outputs);
        assert_eq!(n1.num_gates(), n2.num_gates());
        for (a, b) in n1.gates.iter().zip(&n2.gates) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.output, b.output);
            assert_eq!(a.inputs, b.inputs);
        }
    }

    #[test]
    fn full_aig_round_trip_semantics() {
        let src = "module m (a, b, c, y, z); input a, b, c; output y, z; \
                   wire w1, w2; nand g1 (w1, a, b); or g2 (w2, w1, c); \
                   xor g3 (y, w2, a); nor g4 (z, w1, w2); endmodule";
        let e1 = elaborate(&parse_verilog(src).expect("parse")).expect("elab");
        let text = write_verilog(&netlist_from_aig(&e1.aig, "rt"));
        let e2 = elaborate(&parse_verilog(&text).expect("parse2")).expect("elab2");
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(e1.aig.eval(&vals), e2.aig.eval(&vals));
        }
    }

    #[test]
    fn long_declarations_wrap() {
        let mut n = crate::ast::Netlist::new("wide");
        for i in 0..40 {
            n.inputs.push(format!("i{i}"));
        }
        n.outputs.push("y".into());
        n.gates.push(crate::ast::Gate {
            kind: crate::ast::GateKind::Or,
            name: None,
            output: "y".into(),
            inputs: (0..40)
                .map(|i| crate::ast::NetRef::named(format!("i{i}")))
                .collect(),
        });
        let text = write_verilog(&n);
        let n2 = parse_verilog(&text).expect("re-parse");
        assert_eq!(n2.inputs.len(), 40);
        assert_eq!(n2.gates[0].inputs.len(), 40);
    }
}

#[cfg(test)]
mod escaping_tests {
    use super::*;
    use crate::convert::elaborate;
    use crate::parse::parse_verilog;

    #[test]
    fn bus_style_names_round_trip() {
        let mut n = crate::ast::Netlist::new("esc");
        n.inputs = vec!["a[0]".into(), "a[1]".into(), "2weird".into()];
        n.outputs = vec!["y[0]".into()];
        n.gates.push(crate::ast::Gate {
            kind: crate::ast::GateKind::And,
            name: None,
            output: "y[0]".into(),
            inputs: vec![
                crate::ast::NetRef::named("a[0]"),
                crate::ast::NetRef::named("2weird"),
            ],
        });
        let text = write_verilog(&n);
        assert!(text.contains("\\a[0] "), "{text}");
        let back = parse_verilog(&text).expect("escaped output parses");
        assert_eq!(back.inputs, n.inputs);
        let e = elaborate(&back).expect("elaborates");
        assert_eq!(e.aig.eval(&[true, false, true]), vec![true]);
        assert_eq!(e.aig.eval(&[true, false, false]), vec![false]);
    }
}
