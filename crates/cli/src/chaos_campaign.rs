//! The deterministic chaos campaign behind `eco-workgen
//! --chaos-campaign`.
//!
//! Two phases, one differential oracle:
//!
//! * **In-process fault sweep** — alternating batch and serve runs with
//!   the [`eco_core::faultpoint`] registry armed at escalating rates.
//!   Every response must be byte-identical to a fault-free reference or
//!   a *typed degradation* (a contained-panic `error` record, a `busy`
//!   admission shed). Anything else is a wrong answer and fails the
//!   campaign. Each batch iteration also replays its own journal with
//!   `resume`, exercising `memo.load` and the WAL round-trip under
//!   fire.
//! * **Kill-mid-stream** — a real `eco-serve --stdio` daemon is
//!   SIGKILLed partway through a 12-job stream, restarted with
//!   `--resume`, and the union of pre-kill responses and
//!   `recovered.jsonl` must equal the fault-free response set. A final
//!   warm replay over the recovered state must be byte-identical to the
//!   cold reference and must hit the reloaded memo (warm-restart hit
//!   rate > 0).
//!
//! Results (recovery wall time, journal replay rate, store entries
//! recovered/skipped, warm hit rate) are merged into a `BENCH_*.json`
//! file without clobbering rows other benchmarks own.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Cursor, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use eco_batch::{json, records_jsonl, run_batch, BatchJob, BatchOptions};
use eco_core::{faultpoint, ChaosSpec, MemoCache, MemoStore};
use eco_serve::{ServeOptions, Server};
use eco_workgen::{contest_suite, request_stream, write_unit, SuiteUnit};

/// Campaign configuration, filled from `eco-workgen` flags.
pub struct CampaignOptions {
    /// Scratch directory for cases, journals, and state.
    pub out: PathBuf,
    /// Base chaos seed; iteration `i` runs with `seed + i`.
    pub seed: u64,
    /// In-process sweep iterations (the kill drill runs once on top).
    pub iters: u64,
    /// Merge results into this `BENCH_*.json` file when set.
    pub bench_out: Option<PathBuf>,
    /// Suppress the progress/summary lines on stderr.
    pub quiet: bool,
}

/// Injection rates cycled across sweep iterations: rare faults, heavy
/// faults, and the rate-1.0 wall where every consult fires.
const RATES: [f64; 4] = [0.05, 0.25, 0.6, 1.0];

/// Responses read from the doomed daemon before SIGKILL.
const PRE_KILL_READS: usize = 3;

/// Suite prefix sizes: small fixtures for the tight sweep loop, the
/// 12-job stream for the kill drill (matching the serve benchmark).
const SWEEP_UNITS: usize = 3;
const KILL_UNITS: usize = 12;

struct SweepOutcome {
    consults: u64,
    injected: u64,
    degraded: u64,
    wall_ns: u64,
}

struct KillOutcome {
    pre_kill: usize,
    recovered: usize,
    replayed: u64,
    recomputed: u64,
    store_loaded: u64,
    store_skipped: u64,
    recovery_wall_ns: u64,
    warm_loaded: u64,
    warm_hits: u64,
    warm_served: u64,
    warm_wall_ns: u64,
}

/// Runs the full campaign; any crash, wrong answer, or missing warm hit
/// is an `Err`.
pub fn run_campaign(opts: &CampaignOptions) -> Result<(), String> {
    std::fs::create_dir_all(&opts.out).map_err(|e| format!("{}: {e}", opts.out.display()))?;
    let suite = contest_suite();
    let sweep = sweep_phase(opts, &suite)?;
    if !opts.quiet {
        eprintln!(
            "chaos sweep: {} iterations, {} consults, {} injected, {} typed degradations, 0 wrong answers",
            opts.iters, sweep.consults, sweep.injected, sweep.degraded
        );
    }
    let kill = kill_phase(opts, &suite)?;
    if !opts.quiet {
        eprintln!(
            "chaos kill12: {} pre-kill + {} recovered responses ({} replayed, {} recomputed), \
             recovery {:.3}s, warm hit rate {}/{}",
            kill.pre_kill,
            kill.recovered,
            kill.replayed,
            kill.recomputed,
            kill.recovery_wall_ns as f64 / 1e9,
            kill.warm_hits,
            kill.warm_served
        );
    }
    if let Some(path) = &opts.bench_out {
        write_bench(path, opts, &sweep, &kill)?;
        if !opts.quiet {
            eprintln!("chaos bench merged into {}", path.display());
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Phase 1: in-process fault sweep
// ---------------------------------------------------------------------

fn sweep_phase(opts: &CampaignOptions, suite: &[SuiteUnit]) -> Result<SweepOutcome, String> {
    let t0 = Instant::now();
    // Injected `solver.panic` faults are contained by the runners; the
    // default hook would still spray hundreds of backtraces to stderr.
    let _quiet = QuietPanics::install();

    // Batch fixtures: the first few suite units as in-memory jobs, plus
    // a fault-free reference report.
    let jobs: Vec<BatchJob> = suite[..SWEEP_UNITS]
        .iter()
        .map(|u| {
            u.instance()
                .map(|i| BatchJob::from_instance(&u.spec.name, i))
                .map_err(|e| format!("suite unit {}: {e}", u.spec.name))
        })
        .collect::<Result<_, _>>()?;
    let batch_opts = |journal: Option<PathBuf>, resume: bool| BatchOptions {
        jobs: 2,
        journal,
        resume,
        ..Default::default()
    };
    let batch_reference = records_jsonl(&run_batch(&jobs, &batch_opts(None, false)).records);

    // Serve fixtures: the same units on disk, one request stream with
    // absolute paths, and a fault-free reference response per line.
    let case_dir = opts.out.join("sweep_cases");
    std::fs::create_dir_all(&case_dir).map_err(|e| format!("{}: {e}", case_dir.display()))?;
    let case_abs = case_dir
        .canonicalize()
        .map_err(|e| format!("{}: {e}", case_dir.display()))?;
    let entries = suite[..SWEEP_UNITS]
        .iter()
        .map(|u| write_unit(&case_dir, u))
        .collect::<std::io::Result<Vec<_>>>()
        .map_err(|e| format!("{}: {e}", case_dir.display()))?;
    let requests = request_stream(&case_abs, &entries);
    let serve_reference = serve_once(&requests, None).0;

    let mut out = SweepOutcome {
        consults: 0,
        injected: 0,
        degraded: 0,
        wall_ns: 0,
    };
    for i in 0..opts.iters {
        let spec = ChaosSpec {
            seed: opts.seed.wrapping_add(i),
            rate: RATES[(i % RATES.len() as u64) as usize],
        };
        let scratch = opts.out.join(format!("sweep_{i}"));
        let result = if i % 2 == 0 {
            batch_iteration(&jobs, &batch_reference, spec, &scratch, &batch_opts)
        } else {
            serve_iteration(&requests, &serve_reference, spec, &scratch)
        };
        // Never leave the process-global registry armed, least of all on
        // the error path out of the campaign.
        faultpoint::disarm();
        let _ = std::fs::remove_dir_all(&scratch);
        let (stats, degraded) = result.map_err(|e| format!("sweep iteration {i} ({spec}): {e}"))?;
        out.consults += stats.consults;
        out.injected += stats.injected;
        out.degraded += degraded;
    }
    out.wall_ns = t0.elapsed().as_nanos() as u64;
    Ok(out)
}

/// One armed batch run journaling into `dir`, then an armed `--resume`
/// replay of that journal; both reports go through the oracle.
fn batch_iteration(
    jobs: &[BatchJob],
    reference: &str,
    spec: ChaosSpec,
    dir: &Path,
    batch_opts: &dyn Fn(Option<PathBuf>, bool) -> BatchOptions,
) -> Result<(faultpoint::FaultStats, u64), String> {
    faultpoint::arm(spec);
    let chaotic = run_batch(jobs, &batch_opts(Some(dir.to_path_buf()), false));
    let mut stats = faultpoint::disarm();

    // Re-arm with the same spec (fresh per-site counters, deterministic
    // schedule) for the resume leg: replay hits `memo.load` and the WAL
    // decode path under fire.
    faultpoint::arm(spec);
    let resumed = run_batch(jobs, &batch_opts(Some(dir.to_path_buf()), true));
    let leg = faultpoint::disarm();
    stats.consults += leg.consults;
    stats.injected += leg.injected;

    let mut degraded = check_lines(&records_jsonl(&chaotic.records), reference, "chaotic batch")?;
    degraded += check_lines(&records_jsonl(&resumed.records), reference, "resumed batch")?;
    Ok((stats, degraded))
}

/// One armed serve pass with durable state under `state_dir`.
fn serve_iteration(
    requests: &str,
    reference: &[String],
    spec: ChaosSpec,
    state_dir: &Path,
) -> Result<(faultpoint::FaultStats, u64), String> {
    faultpoint::arm(spec);
    let (lines, _) = serve_once(requests, Some(state_dir.to_path_buf()));
    let stats = faultpoint::disarm();
    let reference = reference.join("\n");
    let degraded = check_lines(&lines.join("\n"), &reference, "chaotic serve")?;
    Ok((stats, degraded))
}

/// The differential oracle: line `i` must equal the reference line `i`
/// exactly, or be a typed degradation (contained panic, `busy` shed).
/// Returns the degradation count; anything else is a wrong answer.
fn check_lines(got: &str, want: &str, what: &str) -> Result<u64, String> {
    let got: Vec<&str> = got.lines().collect();
    let want: Vec<&str> = want.lines().collect();
    if got.len() != want.len() {
        return Err(format!(
            "{what}: {} responses, expected {} (a request went unanswered)",
            got.len(),
            want.len()
        ));
    }
    let mut degraded = 0;
    for (g, w) in got.iter().zip(&want) {
        if g == w {
            continue;
        }
        let contained_panic = g.contains("\"status\": \"error\"") && g.contains("panic");
        let busy_shed = g.contains("\"ok\": false") && g.contains("\"error\": \"busy\"");
        if contained_panic || busy_shed {
            degraded += 1;
            continue;
        }
        return Err(format!(
            "{what}: wrong answer under chaos\n     got: {g}\nexpected: {w}"
        ));
    }
    Ok(degraded)
}

/// Serves one request stream in-process and returns the response lines.
fn serve_once(
    requests: &str,
    state_dir: Option<PathBuf>,
) -> (Vec<String>, eco_serve::ServeSummary) {
    let server = Server::new(ServeOptions {
        workers: 2,
        state_dir,
        ..Default::default()
    });
    let sink = SharedBuf::default();
    let summary = server.serve_reader(Cursor::new(requests.to_string()), Box::new(sink.clone()));
    (sink.take().lines().map(String::from).collect(), summary)
}

/// Replaces the panic hook with a no-op for the sweep and restores the
/// previous hook on drop (also on the error path out of the phase).
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;

struct QuietPanics(Option<PanicHook>);

impl QuietPanics {
    fn install() -> Self {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics(Some(prev))
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(hook) = self.0.take() {
            std::panic::set_hook(hook);
        }
    }
}

/// A `Write` sink the campaign can read back after `serve_reader`
/// consumes the box.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> String {
        // A poisoned lock only means a writer panicked mid-append; the
        // bytes are still the best available evidence.
        let buf = self.0.lock().unwrap_or_else(|e| e.into_inner());
        String::from_utf8_lossy(&buf).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Phase 2: kill-mid-stream against the real daemon
// ---------------------------------------------------------------------

fn kill_phase(opts: &CampaignOptions, suite: &[SuiteUnit]) -> Result<KillOutcome, String> {
    let bin = serve_binary()?;
    let case_dir = opts.out.join("kill_cases");
    std::fs::create_dir_all(&case_dir).map_err(|e| format!("{}: {e}", case_dir.display()))?;
    let case_abs = case_dir
        .canonicalize()
        .map_err(|e| format!("{}: {e}", case_dir.display()))?;
    let entries = suite[..KILL_UNITS]
        .iter()
        .map(|u| write_unit(&case_dir, u))
        .collect::<std::io::Result<Vec<_>>>()
        .map_err(|e| format!("{}: {e}", case_dir.display()))?;
    let requests = request_stream(&case_abs, &entries);
    let state = opts.out.join("kill_state");
    let state_arg = state.display().to_string();

    // Fault-free reference: the full stream through a clean daemon.
    let (reference, _) = run_daemon(&bin, &["--stdio", "--jobs", "2"], &requests)?;
    if reference.len() != KILL_UNITS {
        return Err(format!(
            "reference daemon answered {} of {KILL_UNITS} requests",
            reference.len()
        ));
    }

    // Doomed daemon: feed all requests, read a few responses, SIGKILL.
    let mut child = Command::new(&bin)
        .args(["--stdio", "--jobs", "2", "--journal", &state_arg])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("{}: {e}", bin.display()))?;
    // Both pipes were requested two lines up; take() can only yield Some.
    let mut stdin = child.stdin.take().expect("stdin is piped");
    stdin
        .write_all(requests.as_bytes())
        .and_then(|_| stdin.flush())
        .map_err(|e| format!("writing doomed daemon stdin: {e}"))?;
    // Keep stdin open: EOF would start a graceful drain and the daemon
    // would answer everything before we get to kill it.
    let mut reader = BufReader::new(child.stdout.take().expect("stdout is piped"));
    let mut pre_kill = Vec::new();
    for _ in 0..PRE_KILL_READS {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("reading doomed daemon: {e}"))?;
        if line.is_empty() {
            return Err("doomed daemon closed stdout before the kill point".into());
        }
        pre_kill.push(line.trim_end().to_string());
    }
    child
        .kill()
        .and_then(|_| child.wait().map(|_| ()))
        .map_err(|e| format!("killing daemon: {e}"))?;
    drop(stdin);

    // Inspect the torn store before recovery touches it: these are the
    // "entries recovered/skipped" numbers for the bench report.
    let store = MemoStore::open(&state).map_err(|e| format!("{}: {e}", state.display()))?;
    let store_stats = store.load_into(&MemoCache::new());
    drop(store);

    // Recovery: `--resume` replays the journal into recovered.jsonl,
    // then the empty stdin drains the daemon to a clean exit.
    let t0 = Instant::now();
    let output = Command::new(&bin)
        .args(["--resume", &state_arg, "--stdio", "--stats"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .output()
        .map_err(|e| format!("{}: {e}", bin.display()))?;
    let recovery_wall_ns = t0.elapsed().as_nanos() as u64;
    let resume_stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    if !output.status.success() {
        return Err(format!(
            "resume daemon crashed ({}): {resume_stderr}",
            output.status
        ));
    }
    let replayed =
        stderr_u64(&resume_stderr, "replayed").ok_or("resume daemon printed no resume report")?;
    let recomputed = stderr_u64(&resume_stderr, "recomputed").unwrap_or(0);
    let recovered_path = state.join("recovered.jsonl");
    let recovered_text = std::fs::read_to_string(&recovered_path)
        .map_err(|e| format!("{}: {e}", recovered_path.display()))?;
    let recovered: Vec<String> = recovered_text.lines().map(String::from).collect();

    // The crash-recovery oracle: pre-kill ∪ recovered == reference.
    let want: HashSet<&str> = reference.iter().map(String::as_str).collect();
    let mut have: HashSet<&str> = pre_kill.iter().map(String::as_str).collect();
    have.extend(recovered.iter().map(String::as_str));
    if let Some(extra) = have.difference(&want).next() {
        return Err(format!("recovered response not in fault-free run: {extra}"));
    }
    if let Some(missing) = want.difference(&have).next() {
        return Err(format!("response lost across the crash: {missing}"));
    }

    // Warm replay over the recovered state: byte-identical to the cold
    // reference, and it must actually hit the reloaded memo.
    let t1 = Instant::now();
    let (warm, warm_stderr) = run_daemon(
        &bin,
        &["--stdio", "--jobs", "2", "--journal", &state_arg, "--stats"],
        &requests,
    )?;
    let warm_wall_ns = t1.elapsed().as_nanos() as u64;
    if warm != reference {
        return Err("warm replay diverged from the fault-free reference".into());
    }
    let warm_loaded =
        stderr_u64(&warm_stderr, "memo_loaded").ok_or("warm daemon printed no summary")?;
    let warm_served = stderr_u64(&warm_stderr, "served").unwrap_or(0);
    let warm_hits = stderr_u64(&warm_stderr, "hits").unwrap_or(0);
    if warm_loaded == 0 || warm_hits == 0 {
        return Err(format!(
            "warm restart missed the durable memo (loaded {warm_loaded}, hits {warm_hits})"
        ));
    }

    Ok(KillOutcome {
        pre_kill: pre_kill.len(),
        recovered: recovered.len(),
        replayed,
        recomputed,
        store_loaded: store_stats.loaded,
        store_skipped: store_stats.skipped,
        recovery_wall_ns,
        warm_loaded,
        warm_hits,
        warm_served,
        warm_wall_ns,
    })
}

/// The `eco-serve` binary next to the running `eco-workgen`.
fn serve_binary() -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe.parent().ok_or("current_exe has no parent directory")?;
    let bin = dir.join("eco-serve");
    if !bin.exists() {
        return Err(format!(
            "{} not found (build the workspace first; the campaign drives the real daemon)",
            bin.display()
        ));
    }
    Ok(bin)
}

/// Feeds `input` to a daemon, closes stdin (graceful drain), and
/// returns (stdout lines, stderr text). A non-zero exit is a crash.
fn run_daemon(bin: &Path, args: &[&str], input: &str) -> Result<(Vec<String>, String), String> {
    let mut child = Command::new(bin)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("{}: {e}", bin.display()))?;
    {
        // Scoped so stdin drops (EOF) before we wait for the drain.
        let mut stdin = child.stdin.take().expect("stdin is piped");
        stdin
            .write_all(input.as_bytes())
            .map_err(|e| format!("writing daemon stdin: {e}"))?;
    }
    let output = child
        .wait_with_output()
        .map_err(|e| format!("waiting for daemon: {e}"))?;
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    if !output.status.success() {
        return Err(format!("daemon crashed ({}): {stderr}", output.status));
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    Ok((stdout.lines().map(String::from).collect(), stderr))
}

// ---------------------------------------------------------------------
// Bench report
// ---------------------------------------------------------------------

/// Merges campaign rows into `path`: rows named `chaos/...` and notes
/// prefixed `chaos` are replaced, everything else is preserved.
fn write_bench(
    path: &Path,
    opts: &CampaignOptions,
    sweep: &SweepOutcome,
    kill: &KillOutcome,
) -> Result<(), String> {
    let (mut rows, mut notes) = foreign_bench_content(path);
    for (name, ns) in [
        ("chaos/sweep/wall", sweep.wall_ns),
        ("chaos/kill12/recovery_wall", kill.recovery_wall_ns),
        ("chaos/kill12/warm_replay_wall", kill.warm_wall_ns),
    ] {
        rows.push(bench_row(name, ns));
    }
    let replay_rate = (kill.replayed * 100)
        .checked_div(kill.replayed + kill.recomputed)
        .unwrap_or(0);
    let hit_rate = (kill.warm_hits * 100)
        .checked_div(kill.warm_served)
        .unwrap_or(0);
    notes.push(format!(
        "chaos sweep: {} iterations (seed {}), {} consults, {} injected, {} typed degradations, 0 crashes, 0 wrong answers",
        opts.iters, opts.seed, sweep.consults, sweep.injected, sweep.degraded
    ));
    notes.push(format!(
        "chaos kill12: journal replay rate {replay_rate}% ({} replayed, {} recomputed), store recovered {} entries / skipped {}",
        kill.replayed, kill.recomputed, kill.store_loaded, kill.store_skipped
    ));
    notes.push(format!(
        "chaos kill12: warm-restart memo_loaded {}, hit rate {hit_rate}% ({}/{} served)",
        kill.warm_loaded, kill.warm_hits, kill.warm_served
    ));
    let mut out = String::from("{\n  \"benches\": [\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n  \"notes\": [\n");
    let quoted: Vec<String> = notes
        .iter()
        .map(|n| format!("    \"{}\"", n.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    out.push_str(&quoted.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, out).map_err(|e| format!("{}: {e}", path.display()))
}

fn bench_row(name: &str, ns: u64) -> String {
    format!(
        "    {{\"name\": \"{name}\", \"samples\": 1, \"mean_ns\": {ns}, \"median_ns\": {ns}, \
         \"min_ns\": {ns}, \"max_ns\": {ns}}}"
    )
}

/// Reads rows and notes an existing bench file owns that the campaign
/// does not (anything not named/prefixed `chaos`). A missing or
/// unparsable file merges as empty.
fn foreign_bench_content(path: &Path) -> (Vec<String>, Vec<String>) {
    let mut rows = Vec::new();
    let mut notes = Vec::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return (rows, notes);
    };
    let Ok(doc) = json::parse(&text) else {
        return (rows, notes);
    };
    if let Some(json::Value::Arr(benches)) = obj_get(&doc, "benches") {
        for bench in benches {
            let Some(json::Value::Str(name)) = obj_get(bench, "name") else {
                continue;
            };
            if name.starts_with("chaos/") {
                continue;
            }
            // Re-render only the standard integer fields; a row some
            // other tool wrote with a different shape is dropped rather
            // than corrupted.
            let fields: Option<Vec<u64>> = ["samples", "mean_ns", "median_ns", "min_ns", "max_ns"]
                .iter()
                .map(|k| obj_u64(bench, k))
                .collect();
            if let Some(f) = fields {
                rows.push(format!(
                    "    {{\"name\": \"{name}\", \"samples\": {}, \"mean_ns\": {}, \
                     \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                    f[0], f[1], f[2], f[3], f[4]
                ));
            }
        }
    }
    if let Some(json::Value::Arr(existing)) = obj_get(&doc, "notes") {
        for note in existing {
            if let json::Value::Str(s) = note {
                if !s.starts_with("chaos") {
                    notes.push(s.clone());
                }
            }
        }
    }
    (rows, notes)
}

// ---------------------------------------------------------------------
// Tiny JSON helpers over `eco_batch::json`
// ---------------------------------------------------------------------

fn obj_get<'a>(value: &'a json::Value, key: &str) -> Option<&'a json::Value> {
    match value {
        json::Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn obj_u64(value: &json::Value, key: &str) -> Option<u64> {
    match obj_get(value, key) {
        Some(json::Value::Int(n)) => Some(*n),
        _ => None,
    }
}

/// Extracts the first `"key": <int>` occurrence from daemon stderr.
/// (The report/summary lines carry a float `wall_s`, so a full
/// integer-only JSON parse would reject them; a keyed scan is enough
/// for the counters the campaign reads.)
fn stderr_u64(stderr: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    for line in stderr.lines() {
        if let Some(pos) = line.find(&needle) {
            let digits: &str = &line[pos + needle.len()..];
            let end = digits
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(digits.len());
            if end > 0 {
                return digits[..end].parse().ok();
            }
        }
    }
    None
}
