//! Cost-aware base selection (§6.2): the Watch/Hold rotation with
//! cost-per-blocking (CPB) greedy selection.

use crate::cexenum::{enumerate_cex_capped, CexSet};
use crate::rebase::RebaseQuery;
use crate::Workspace;

/// Knobs for base selection.
#[derive(Clone, Debug)]
pub struct BaseSelectOptions {
    /// Watch-window size β (the paper finds β = 5 a good trade-off).
    pub watch_size: usize,
    /// SAT conflict budget per query.
    pub conflict_budget: u64,
    /// Hard cap on rotation rounds (the paper rotates `|B|` times).
    pub max_rounds: usize,
    /// Cap on counterexample projections collected per probe (the paper's
    /// bound is `2^watch_size`; capping trades CPB accuracy for runtime).
    pub max_probe_cex: usize,
    /// Cap on candidates probed per round: the cheapest `max_probes`
    /// non-Hold candidates (the paper probes all of `B' \ Hold`; the cap
    /// bounds the `2^|Watch| × |B'|` SAT-iteration budget).
    pub max_probes: usize,
}

impl Default for BaseSelectOptions {
    fn default() -> Self {
        BaseSelectOptions {
            watch_size: 5,
            conflict_budget: 50_000,
            max_rounds: 6,
            max_probe_cex: 16,
            max_probes: 24,
        }
    }
}

/// Result of base selection.
#[derive(Clone, Debug)]
pub struct SelectedBase {
    /// Pool indices of the best feasible base found.
    pub base: Vec<usize>,
    /// Its total weight.
    pub cost: u64,
    /// Rounds executed.
    pub rounds: usize,
}

fn cost_of(ws: &Workspace, q: &RebaseQuery, base: &[usize]) -> u64 {
    base.iter().map(|&i| ws.cands[q.pool()[i]].weight).sum()
}

/// Runs the §6.2 procedure: starting from a feasible `initial_base`
/// (pool indices), repeatedly watch the β heaviest signals, collect
/// counterexample projections per candidate, greedily re-select signals by
/// minimal CPB until feasible, and keep the cheapest feasible base seen.
///
/// Deviation from the paper, documented here because Eq. (13) is
/// ill-defined for the first pick (`cex_0` is empty): we seed the
/// blocking pool with the union of all candidates' projections, so the
/// first CPB denominator is "projections of the pool that the candidate
/// blocks". This preserves the stated intuition (prefer cheap signals that
/// block many counterexamples).
///
/// # Panics
///
/// Panics if `initial_base` is infeasible for `q`.
pub fn select_base(
    ws: &Workspace,
    q: &mut RebaseQuery,
    initial_base: &[usize],
    opts: &BaseSelectOptions,
) -> SelectedBase {
    debug_assert_eq!(
        q.feasible(initial_base, opts.conflict_budget),
        Some(true),
        "initial base must be feasible"
    );
    let pool_weights: Vec<u64> = q.pool().iter().map(|&i| ws.cands[i].weight).collect();
    let weight = move |i: usize| pool_weights[i];

    let mut best = initial_base.to_vec();
    let mut best_cost = cost_of(ws, q, &best);

    // Step 1: sort by weight, non-increasing; split Watch/Hold.
    let mut sorted = initial_base.to_vec();
    sorted.sort_by(|&a, &b| weight(b).cmp(&weight(a)).then(a.cmp(&b)));
    let beta = opts.watch_size.max(1);
    let mut watch: Vec<usize> = sorted.iter().copied().take(beta).collect();
    let mut hold: Vec<usize> = sorted.iter().copied().skip(beta).collect();

    let total_rounds = initial_base.len().min(opts.max_rounds).max(1);
    let mut rounds = 0;
    for _round in 0..total_rounds {
        rounds += 1;
        // Step 2: per-candidate counterexample projections — cheapest
        // candidates first, capped.
        let pool_size = q.pool().len();
        let mut cex: Vec<Option<CexSet>> = vec![None; pool_size];
        let mut budget_ok = true;
        let mut probe_order: Vec<usize> = (0..pool_size).filter(|b| !hold.contains(b)).collect();
        probe_order.sort_by_key(|&b| (weight(b), b));
        probe_order.truncate(opts.max_probes.max(watch.len() + 1));
        // Watched (tentatively removed) signals must stay probe-able, or
        // the greedy loop could not re-add them.
        for &w in &watch {
            if !probe_order.contains(&w) {
                probe_order.push(w);
            }
        }
        for b in probe_order {
            match enumerate_cex_capped(
                q,
                &hold,
                Some(b),
                &watch,
                opts.conflict_budget,
                opts.max_probe_cex,
            ) {
                Some(set) => cex[b] = Some(set),
                None => {
                    budget_ok = false;
                    break;
                }
            }
        }
        if !budget_ok {
            break;
        }

        // Pool of projections any probe left unblocked.
        let mut pool_cex = CexSet::default();
        for set in cex.iter().flatten() {
            pool_cex.union_with(set);
        }

        // Step 3: greedy CPB until Hold ∪ Γ is feasible.
        let mut gamma: Vec<usize> = Vec::new();
        loop {
            let mut selection: Vec<usize> = hold.clone();
            selection.extend(&gamma);
            match q.feasible(&selection, opts.conflict_budget) {
                Some(true) => break,
                None => {
                    budget_ok = false;
                    break;
                }
                Some(false) => {}
            }
            // Pick min CPB = W(b') / |newly blocked|.
            let mut pick: Option<(usize, f64)> = None;
            for (b, probe_cex) in cex.iter().enumerate() {
                if hold.contains(&b) || gamma.contains(&b) {
                    continue;
                }
                let Some(set) = probe_cex else { continue };
                let blocked = pool_cex.count_not_in(set);
                let score = if blocked == 0 {
                    // Blocks nothing we know of: de-prioritize by weight.
                    f64::INFINITY
                } else {
                    weight(b) as f64 / blocked as f64
                };
                match pick {
                    Some((_, s)) if s <= score => {}
                    _ => pick = Some((b, score)),
                }
            }
            let Some((b, score)) = pick else {
                // Pool exhausted — cannot happen if the initial base is
                // feasible, but guard anyway.
                budget_ok = false;
                break;
            };
            if score.is_infinite() {
                // No candidate blocks a known projection; fall back to the
                // cheapest remaining candidate to guarantee progress.
                let mut fallback: Option<usize> = None;
                for (b2, probe_cex) in cex.iter().enumerate() {
                    if hold.contains(&b2) || gamma.contains(&b2) || probe_cex.is_none() {
                        continue;
                    }
                    match fallback {
                        Some(f) if weight(f) <= weight(b2) => {}
                        _ => fallback = Some(b2),
                    }
                }
                gamma.push(fallback.unwrap_or(b));
            } else {
                gamma.push(b);
            }
            if let Some(&last) = gamma.last() {
                if let Some(set) = &cex[last] {
                    pool_cex.intersect_with(set);
                }
            }
        }
        if !budget_ok {
            break;
        }

        // New base = Hold ∪ Γ; keep the cheapest.
        let mut new_base: Vec<usize> = hold.clone();
        new_base.extend(&gamma);
        let c = cost_of(ws, q, &new_base);
        if c < best_cost {
            best_cost = c;
            best = new_base.clone();
        }

        // Step 4: rotate the watch window.
        hold = new_base;
        hold.sort_by(|&a, &b| weight(b).cmp(&weight(a)).then(a.cmp(&b)));
        let take = beta.min(hold.len());
        watch = hold.drain(..take).collect();
        if watch.is_empty() {
            break;
        }
    }

    SelectedBase {
        base: best,
        cost: best_cost,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carediff::on_off_sets;
    use crate::EcoInstance;
    use eco_netlist::{parse_verilog, WeightTable};

    /// Spec on-set = a & b. Candidates: a (w=9), b (w=9), and the existing
    /// net w = a&b (w=3). Starting from base {a, b} (cost 18), selection
    /// must discover the single-signal base {w} (cost 3).
    fn fixture() -> (crate::Workspace, RebaseQuery, Vec<usize>) {
        let faulty = parse_verilog(
            "module f (a, b, c, t, y, u); input a, b, c, t; output y, u; \
             wire w; and g0 (w, a, b); xor g1 (y, t, c); buf g2 (u, w); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, b, c, y, u); input a, b, c; output y, u; \
             wire w; and g0 (w, a, b); xor g1 (y, w, c); buf g2 (u, w); endmodule",
        )
        .expect("golden");
        let mut weights = WeightTable::new(9);
        weights.set("w", 3);
        let inst = EcoInstance::from_netlists("bs", &faulty, &golden, vec!["t".into()], &weights)
            .expect("instance");
        let mut ws = Workspace::new(&inst);
        let t = ws.target_vars[0];
        let f_outs = ws.f_outs.clone();
        let g_outs = ws.g_outs.clone();
        let onoff = on_off_sets(&mut ws.mgr, &f_outs, &g_outs, t);
        let pool: Vec<usize> = (0..ws.cands.len()).collect();
        let q = RebaseQuery::new(&ws, onoff.on, onoff.off, pool.clone());
        (ws, q, pool)
    }

    fn pool_pos(ws: &crate::Workspace, pool: &[usize], name: &str) -> usize {
        pool.iter()
            .position(|&i| ws.cands[i].name == name)
            .unwrap_or_else(|| panic!("{name} in pool"))
    }

    #[test]
    fn discovers_cheaper_single_signal_base() {
        let (ws, mut q, pool) = fixture();
        let a = pool_pos(&ws, &pool, "a");
        let b = pool_pos(&ws, &pool, "b");
        let w = pool_pos(&ws, &pool, "w");
        let opts = BaseSelectOptions {
            watch_size: 2,
            ..Default::default()
        };
        let got = select_base(&ws, &mut q, &[a, b], &opts);
        assert_eq!(got.cost, 3, "base {:?}", got.base);
        assert_eq!(got.base, vec![w]);
        assert!(got.rounds >= 1);
    }

    #[test]
    fn already_optimal_base_is_kept() {
        let (ws, mut q, pool) = fixture();
        let w = pool_pos(&ws, &pool, "w");
        let got = select_base(&ws, &mut q, &[w], &BaseSelectOptions::default());
        assert_eq!(got.cost, 3);
        assert_eq!(got.base, vec![w]);
    }

    #[test]
    fn watch_window_larger_than_base_is_fine() {
        let (ws, mut q, pool) = fixture();
        let a = pool_pos(&ws, &pool, "a");
        let b = pool_pos(&ws, &pool, "b");
        let opts = BaseSelectOptions {
            watch_size: 8,
            ..Default::default()
        };
        let got = select_base(&ws, &mut q, &[a, b], &opts);
        assert!(got.cost <= 18);
    }
}
