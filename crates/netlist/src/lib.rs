#![warn(missing_docs)]
//! # eco-netlist — contest-format I/O
//!
//! Parsing, elaboration, and writing of the ICCAD 2017 CAD Contest
//! (Problem A) interchange formats:
//!
//! * a structural Verilog subset (`and/or/nand/nor/not/buf/xor/xnor`,
//!   `assign`, `1'b0`/`1'b1` constants) — [`parse_verilog`] /
//!   [`write_verilog`];
//! * elaboration into an [`eco_aig::Aig`] with cycle/driver checking —
//!   [`elaborate`] — and the reverse mapping [`netlist_from_aig`] used to
//!   emit patch netlists;
//! * per-signal weight files — [`parse_weights`] / [`write_weights`];
//! * flat combinational BLIF — [`parse_blif`] / [`write_blif`].
//!
//! # Examples
//!
//! ```
//! use eco_netlist::{elaborate, parse_verilog};
//!
//! let src = "module maj (a, b, c, y); input a, b, c; output y;
//!            wire ab, bc, ca, t;
//!            and g1 (ab, a, b); and g2 (bc, b, c); and g3 (ca, c, a);
//!            or  g4 (t, ab, bc); or g5 (y, t, ca);
//!            endmodule";
//! let elab = elaborate(&parse_verilog(src)?)?;
//! assert_eq!(elab.aig.eval(&[true, true, false]), vec![true]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod ast;
mod blif;
mod convert;
mod parse;
mod weights;
mod write;

pub use crate::ast::{Gate, GateKind, NetRef, Netlist};
pub use crate::blif::{
    parse_blif, parse_blif_seq, write_blif, write_blif_seq, BlifLatch, BlifModel, LatchInit,
    ParseBlifError, SeqBlifModel,
};
pub use crate::convert::{elaborate, netlist_from_aig, ElaborateError, Elaboration};
pub use crate::parse::{parse_verilog, ParseNetlistError};
pub use crate::weights::{parse_weights, write_weights, ParseWeightsError, WeightTable};
pub use crate::write::write_verilog;
