//! JSONL stream report and exit-code policy for batch runs.
//!
//! Each completed job becomes exactly one JSON object on its own line.
//! Records carry only fields that are pure functions of the instance and
//! options — never wall times or cache counters — so the report is
//! byte-identical for any `--jobs` setting and any hit/miss interleaving.
//! Timing and memo statistics are reported separately via [`stats_json`].

use eco_core::{peak_rss_bytes, JsonObj};

use crate::json::{self, Value};
use crate::runner::{BatchOutcome, JobRecord, JobStatus};

/// Renders one job record as a single-line JSON object (no trailing
/// newline).
pub fn record_json(record: &JobRecord) -> String {
    JsonObj::new()
        .u64("pass", record.pass as u64)
        .u64("job", record.index as u64)
        .str("name", &record.name)
        .str("status", record.status.tag())
        .u64("targets", record.targets as u64)
        .u64("patches", record.patches as u64)
        .u64("cost", record.cost)
        .u64("size", record.size)
        .bool("verified", record.verified)
        .str("detail", &record.detail)
        .build()
}

/// Parses a [`record_json`] line back into a [`JobRecord`] — the
/// journal-replay inverse used by `--resume`. Round-trip exact:
/// `record_json(record_from_json(line)?) == line` for every line this
/// module emits.
pub fn record_from_json(line: &str) -> Result<JobRecord, String> {
    let Value::Obj(fields) = json::parse(line)? else {
        return Err("job record: expected a JSON object".into());
    };
    let get = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("job record: missing `{key}`"))
    };
    let as_u64 = |key: &str| match get(key)? {
        Value::Int(n) => Ok(*n),
        other => Err(format!(
            "job record: `{key}` expects a number, got {}",
            other.kind()
        )),
    };
    let as_str = |key: &str| match get(key)? {
        Value::Str(s) => Ok(s.clone()),
        other => Err(format!(
            "job record: `{key}` expects a string, got {}",
            other.kind()
        )),
    };
    let status_tag = as_str("status")?;
    let status = JobStatus::from_tag(&status_tag)
        .ok_or_else(|| format!("job record: unknown status `{status_tag}`"))?;
    let verified = match get("verified")? {
        Value::Bool(b) => *b,
        other => {
            return Err(format!(
                "job record: `verified` expects a bool, got {}",
                other.kind()
            ))
        }
    };
    Ok(JobRecord {
        pass: as_u64("pass")? as usize,
        index: as_u64("job")? as usize,
        name: as_str("name")?,
        status,
        targets: as_u64("targets")? as usize,
        patches: as_u64("patches")? as usize,
        cost: as_u64("cost")?,
        size: as_u64("size")?,
        verified,
        detail: as_str("detail")?,
    })
}

/// Renders records as JSONL in deterministic `(pass, job)` order — one
/// line per record, each newline-terminated.
pub fn records_jsonl(records: &[JobRecord]) -> String {
    let mut sorted: Vec<&JobRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.pass, r.index));
    let mut out = String::new();
    for record in sorted {
        out.push_str(&record_json(record));
        out.push('\n');
    }
    out
}

/// Batch exit code: the most severe job outcome wins, mirroring
/// `eco-patch` (`1` error > `2` unrectifiable > `4` partial > `0`).
pub fn exit_code(records: &[JobRecord]) -> u8 {
    let mut code = 0;
    for record in records {
        let c = match record.status {
            JobStatus::Error => 1,
            JobStatus::Unrectifiable => 2,
            JobStatus::Partial => 4,
            JobStatus::Complete => 0,
        };
        // Severity order, not numeric order.
        let rank = |c: u8| match c {
            1 => 3,
            2 => 2,
            4 => 1,
            _ => 0,
        };
        if rank(c) > rank(code) {
            code = c;
        }
    }
    code
}

/// Renders the non-deterministic run summary (status tallies, per-pass
/// wall times, shared-cache counters) as one JSON object for `--stats`.
pub fn stats_json(outcome: &BatchOutcome) -> String {
    let count = |status: JobStatus| {
        outcome
            .records
            .iter()
            .filter(|r| r.status == status)
            .count() as u64
    };
    let walls: Vec<String> = outcome
        .pass_wall
        .iter()
        .map(|d| format!("{:.6}", d.as_secs_f64()))
        .collect();
    let memo = JsonObj::new()
        .u64("hits", outcome.memo.hits)
        .u64("misses", outcome.memo.misses)
        .u64("insertions", outcome.memo.insertions)
        .u64("evictions", outcome.memo.evictions)
        .u64("fallbacks", outcome.memo.fallbacks)
        .u64("entries", outcome.memo.entries)
        .build();
    let obj = JsonObj::new()
        .u64("passes", outcome.pass_wall.len() as u64)
        .u64(
            "jobs",
            (outcome.records.len() / outcome.pass_wall.len().max(1)) as u64,
        )
        .u64("complete", count(JobStatus::Complete))
        .u64("partial", count(JobStatus::Partial))
        .u64("unrectifiable", count(JobStatus::Unrectifiable))
        .u64("error", count(JobStatus::Error))
        .u64("reused", outcome.reused)
        .u64("memo_loaded", outcome.memo_loaded)
        .u64("persist_errors", outcome.persist_errors)
        .arr("pass_wall_s", &walls)
        .raw("memo", &memo);
    // Like the wall times, peak RSS is part of the non-deterministic
    // summary, never of the per-job records.
    let obj = match peak_rss_bytes() {
        Some(b) => obj.u64("peak_rss_bytes", b),
        None => obj.raw("peak_rss_bytes", "null"),
    };
    obj.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_core::MemoStats;
    use std::time::Duration;

    fn record(pass: usize, index: usize, status: JobStatus) -> JobRecord {
        JobRecord {
            pass,
            index,
            name: format!("job{index}"),
            status,
            targets: 1,
            patches: usize::from(status == JobStatus::Complete),
            cost: 3,
            size: 2,
            verified: status == JobStatus::Complete,
            detail: String::new(),
        }
    }

    #[test]
    fn jsonl_is_sorted_by_pass_then_index() {
        let records = vec![
            record(1, 0, JobStatus::Complete),
            record(0, 1, JobStatus::Complete),
            record(0, 0, JobStatus::Complete),
        ];
        let lines: Vec<String> = records_jsonl(&records)
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"pass\": 0, \"job\": 0"));
        assert!(lines[1].starts_with("{\"pass\": 0, \"job\": 1"));
        assert!(lines[2].starts_with("{\"pass\": 1, \"job\": 0"));
    }

    #[test]
    fn record_json_is_stable() {
        let json = record_json(&record(0, 2, JobStatus::Complete));
        assert_eq!(
            json,
            "{\"pass\": 0, \"job\": 2, \"name\": \"job2\", \"status\": \"complete\", \
             \"targets\": 1, \"patches\": 1, \"cost\": 3, \"size\": 2, \
             \"verified\": true, \"detail\": \"\"}"
        );
    }

    #[test]
    fn record_json_round_trips_through_the_parser() {
        let mut original = record(1, 3, JobStatus::Partial);
        original.detail = "budget: \"deadline\" hit\n2 of 3".into();
        let line = record_json(&original);
        let parsed = record_from_json(&line).expect("parse");
        assert_eq!(parsed, original);
        assert_eq!(record_json(&parsed), line, "byte-identical re-render");
        assert!(record_from_json("[]").is_err());
        assert!(record_from_json("{\"pass\": 0}").is_err(), "missing fields");
        assert!(
            record_from_json(&line.replace("partial", "bogus")).is_err(),
            "unknown status tag"
        );
    }

    #[test]
    fn exit_code_takes_worst_severity() {
        use JobStatus::*;
        let rec = |s| record(0, 0, s);
        assert_eq!(exit_code(&[]), 0);
        assert_eq!(exit_code(&[rec(Complete)]), 0);
        assert_eq!(exit_code(&[rec(Complete), rec(Partial)]), 4);
        assert_eq!(exit_code(&[rec(Partial), rec(Unrectifiable)]), 2);
        assert_eq!(
            exit_code(&[rec(Unrectifiable), rec(Error), rec(Complete)]),
            1
        );
    }

    #[test]
    fn stats_json_has_summary_and_memo_keys() {
        let outcome = BatchOutcome {
            records: vec![
                record(0, 0, JobStatus::Complete),
                record(0, 1, JobStatus::Error),
            ],
            pass_wall: vec![Duration::from_millis(5)],
            memo: MemoStats::default(),
            reused: 0,
            memo_loaded: 0,
            persist_errors: 0,
        };
        let json = stats_json(&outcome);
        for key in [
            "\"passes\"",
            "\"jobs\": 2",
            "\"complete\": 1",
            "\"error\": 1",
            "\"pass_wall_s\"",
            "\"memo\"",
            "\"hits\"",
            "\"peak_rss_bytes\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
