//! Tseitin encoding of AIG cones into CNF.
//!
//! The encoder walks the transitive fanin cone of the requested roots and
//! emits three clauses per AND node. The caller controls variable sharing
//! through the `map` argument: pre-seeding it with existing SAT literals
//! identifies AIG nodes across encodings (e.g. shared cut variables between
//! the A and B copies of an interpolation query).

use std::collections::HashMap;

use eco_aig::{Aig, Lit as ALit, Var as AVar};

use crate::{ClauseLabel, ItpSolver, Lit, Solver, Var};

/// A destination for Tseitin clauses: a plain solver or one side of an
/// interpolation query.
pub trait ClauseSink {
    /// Allocates a fresh SAT variable.
    fn sink_var(&mut self) -> Var;
    /// Adds a clause.
    fn sink_clause(&mut self, lits: &[Lit]);
}

impl ClauseSink for Solver {
    fn sink_var(&mut self) -> Var {
        self.new_var()
    }
    fn sink_clause(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
    }
}

/// Adapter labeling all emitted clauses with one interpolation partition.
pub struct LabeledSink<'a> {
    solver: &'a mut ItpSolver,
    label: ClauseLabel,
}

impl<'a> LabeledSink<'a> {
    /// Wraps `solver` so emitted clauses carry `label`.
    pub fn new(solver: &'a mut ItpSolver, label: ClauseLabel) -> Self {
        LabeledSink { solver, label }
    }
}

impl ClauseSink for LabeledSink<'_> {
    fn sink_var(&mut self) -> Var {
        self.solver.new_var()
    }
    fn sink_clause(&mut self, lits: &[Lit]) {
        self.solver.add_clause(lits, self.label);
    }
}

/// Encodes the cones of `roots` from `aig` into `sink`, returning the SAT
/// literal of each root.
///
/// `map` carries the AIG-variable → SAT-literal correspondence: entries
/// already present (typically inputs) are reused; missing nodes get fresh
/// SAT variables which are recorded back into `map`. The constant node is
/// encoded (once per map) as a fresh variable forced to false.
pub fn encode_cone(
    aig: &Aig,
    roots: &[ALit],
    map: &mut HashMap<AVar, Lit>,
    sink: &mut impl ClauseSink,
) -> Vec<Lit> {
    for v in aig.cone_vars(roots) {
        if map.contains_key(&v) {
            continue;
        }
        if let Some((fan0, fan1)) = aig.and_fanins(v) {
            let sa = map[&fan0.var()].xor_negated(fan0.is_complement());
            let sb = map[&fan1.var()].xor_negated(fan1.is_complement());
            let sv = sink.sink_var().pos();
            sink.sink_clause(&[!sv, sa]);
            sink.sink_clause(&[!sv, sb]);
            sink.sink_clause(&[sv, !sa, !sb]);
            map.insert(v, sv);
        } else if v == AVar::CONST {
            let sv = sink.sink_var().pos();
            sink.sink_clause(&[!sv]);
            map.insert(v, sv);
        } else {
            // Input: a free SAT variable.
            let sv = sink.sink_var().pos();
            map.insert(v, sv);
        }
    }
    roots
        .iter()
        .map(|r| map[&r.var()].xor_negated(r.is_complement()))
        .collect()
}

/// Small helper: conditional negation of a SAT literal.
trait XorNegated {
    fn xor_negated(self, n: bool) -> Self;
}

impl XorNegated for Lit {
    fn xor_negated(self, n: bool) -> Lit {
        if n {
            !self
        } else {
            self
        }
    }
}

/// Asserts `lit` true in the sink (a convenience for miter encodings).
pub fn assert_lit(sink: &mut impl ClauseSink, lit: Lit) {
    sink.sink_clause(&[lit]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LBool;
    use eco_aig::Aig;

    /// Encode an AIG output and check SAT models agree with simulation.
    #[test]
    fn encoding_is_consistent_with_semantics() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let f = {
            let ab = aig.and(a, b);
            aig.xor(ab, c)
        };

        // For every assignment, the CNF with inputs fixed must force the
        // output literal to the simulated value.
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let mut solver = Solver::new();
            let mut map = HashMap::new();
            for (pos, &v) in aig.inputs().iter().enumerate() {
                let sv = solver.new_var().pos();
                map.insert(v, sv);
                let unit = if vals[pos] { sv } else { !sv };
                solver.add_clause(&[unit]);
            }
            let roots = encode_cone(&aig, &[f], &mut map, &mut solver);
            assert_eq!(solver.solve(&[]), Some(true));
            let expect = aig.eval_lit(f, &vals);
            assert_eq!(
                solver.model_value(roots[0]),
                LBool::from_bool(expect),
                "assignment {vals:?}"
            );
        }
    }

    #[test]
    fn constant_node_is_forced_false() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        // f = a & true-branch via mux with constant: f = mux(const0, a, !a) = !a
        let f = aig.mux(ALit::FALSE, a, !a);
        let mut solver = Solver::new();
        let mut map = HashMap::new();
        let roots = encode_cone(&aig, &[f, ALit::TRUE], &mut map, &mut solver);
        // Assert root false AND the constant-true literal: must still be sat
        // only when a = true (f = !a).
        solver.add_clause(&[!roots[0]]);
        solver.add_clause(&[roots[1]]);
        assert_eq!(solver.solve(&[]), Some(true));
        let a_sat = map[&a.var()];
        assert_eq!(solver.model_value(a_sat), LBool::True);
    }

    #[test]
    fn shared_map_reuses_variables() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        let g = aig.or(a, b);
        let mut solver = Solver::new();
        let mut map = HashMap::new();
        let r1 = encode_cone(&aig, &[f], &mut map, &mut solver);
        let n_after_first = solver.num_vars();
        let r2 = encode_cone(&aig, &[g], &mut map, &mut solver);
        // Inputs are shared; only the OR gate is new.
        assert_eq!(solver.num_vars(), n_after_first + 1);
        // f -> g must hold: assert f & !g and expect unsat.
        solver.add_clause(&[r1[0]]);
        solver.add_clause(&[!r2[0]]);
        assert_eq!(solver.solve(&[]), Some(false));
    }

    #[test]
    fn miter_of_equivalent_cones_is_unsat() {
        // f = a&b, g = !(!a | !b) — semantically equal, structurally the
        // same node after hashing; use two separate AIGs to force distinct
        // encodings.
        let mut aig1 = Aig::new();
        let a1 = aig1.add_input("a");
        let b1 = aig1.add_input("b");
        let f1 = aig1.and(a1, b1);

        let mut aig2 = Aig::new();
        let a2 = aig2.add_input("a");
        let b2 = aig2.add_input("b");
        let t = aig2.or(!a2, !b2);
        let f2 = !t;

        let mut solver = Solver::new();
        let sa = solver.new_var().pos();
        let sb = solver.new_var().pos();
        let mut map1 = HashMap::from([(a1.var(), sa), (b1.var(), sb)]);
        let mut map2 = HashMap::from([(a2.var(), sa), (b2.var(), sb)]);
        let r1 = encode_cone(&aig1, &[f1], &mut map1, &mut solver)[0];
        let r2 = encode_cone(&aig2, &[f2], &mut map2, &mut solver)[0];
        // Assert r1 != r2 directly; the miter must be unsat.
        solver.add_clause(&[r1, r2]);
        solver.add_clause(&[!r1, !r2]);
        assert_eq!(solver.solve(&[]), Some(false));
    }
}
