//! The combined AIG manager holding both circuits.
//!
//! All patch-generation arithmetic (care/diff sets, substitution of
//! generated patches, localization cuts) happens inside one structurally
//! hashed manager containing the faulty *and* golden cones over shared `X`
//! inputs plus the target pseudo-inputs. Structural hashing alone already
//! merges identical subcircuits across the two designs; FRAIG sweeping
//! (stage 1 of the flow) extends this to semantic equivalence.

use std::collections::HashMap;

use eco_aig::{Aig, Lit, Var};

use crate::EcoInstance;

/// A base candidate lifted into the workspace manager.
#[derive(Clone, Debug)]
pub struct WsCandidate {
    /// Net name in the faulty circuit.
    pub name: String,
    /// Driving literal in the workspace manager.
    pub lit: Lit,
    /// Tap cost.
    pub weight: u64,
}

/// Both circuits elaborated into one manager.
#[derive(Clone, Debug)]
pub struct Workspace {
    /// The shared manager. Outputs are registered as: faulty outputs
    /// (original names), then golden outputs (`__g__<name>`), then base
    /// candidates (`__c__<index>`) — the latter two groups exist so FRAIG
    /// sweeping covers golden logic and tappable nets.
    pub mgr: Aig,
    /// Primary inputs `X`: `(name, manager literal)`.
    pub x: Vec<(String, Lit)>,
    /// Target pseudo-input variables, aligned with `instance.targets`.
    pub target_vars: Vec<Var>,
    /// Primary output names (faulty order).
    pub out_names: Vec<String>,
    /// Faulty output literals `f_j(X, T)`.
    pub f_outs: Vec<Lit>,
    /// Golden output literals `g_j(X)`, aligned with `f_outs`.
    pub g_outs: Vec<Lit>,
    /// Base candidates with manager literals (each independent of `T`).
    pub cands: Vec<WsCandidate>,
    /// Candidate index of each `X` input variable (cheapest same-named
    /// positive-literal candidate), used to weight cut frontiers that
    /// bottom out at primary inputs.
    pub input_cand: HashMap<Var, usize>,
}

impl Workspace {
    /// Elaborates `instance` into a fresh combined manager.
    ///
    /// # Panics
    ///
    /// Panics if the instance violates the invariants checked by
    /// [`EcoInstance::new`] (construct instances through that API).
    pub fn new(instance: &EcoInstance) -> Self {
        let mut mgr = Aig::new();
        let mut x = Vec::new();

        // X inputs in faulty declaration order.
        let mut faulty_map: HashMap<Var, Lit> = HashMap::new();
        let target_names: Vec<&str> = instance.targets.iter().map(String::as_str).collect();
        for pos in 0..instance.faulty.num_inputs() {
            let name = instance.faulty.input_name(pos);
            if target_names.contains(&name) {
                continue;
            }
            let lit = mgr.add_input(name.to_owned());
            faulty_map.insert(instance.faulty.input_var(pos), lit);
            x.push((name.to_owned(), lit));
        }
        // Target pseudo-inputs.
        let mut target_vars = Vec::new();
        for t in &instance.targets {
            let fv = instance.faulty.find_input(t).expect("validated target");
            let lit = mgr.add_input(t.clone());
            faulty_map.insert(fv, lit);
            target_vars.push(lit.var());
        }

        // Import faulty outputs and candidate nets in one pass (shared cache).
        let mut roots: Vec<Lit> = instance.faulty.outputs().iter().map(|o| o.lit).collect();
        let n_outs = roots.len();
        roots.extend(instance.candidates.iter().map(|c| c.lit));
        let imported = mgr
            .import(&instance.faulty, &roots, &faulty_map)
            .expect("validated instance maps every faulty input");
        let f_outs: Vec<Lit> = imported[..n_outs].to_vec();
        let cands: Vec<WsCandidate> = instance
            .candidates
            .iter()
            .zip(&imported[n_outs..])
            .map(|(c, &lit)| WsCandidate {
                name: c.name.clone(),
                lit,
                weight: c.weight,
            })
            .collect();

        // Import golden outputs (aligned with the faulty output order).
        let mut golden_map: HashMap<Var, Lit> = HashMap::new();
        for pos in 0..instance.golden.num_inputs() {
            let name = instance.golden.input_name(pos);
            let lit = x
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, l)| *l)
                .expect("validated golden input");
            golden_map.insert(instance.golden.input_var(pos), lit);
        }
        let out_names: Vec<String> = instance
            .faulty
            .outputs()
            .iter()
            .map(|o| o.name.clone())
            .collect();
        let g_roots: Vec<Lit> = out_names
            .iter()
            .map(|n| {
                let idx = instance.golden.find_output(n).expect("validated output");
                instance.golden.output_lit(idx)
            })
            .collect();
        let g_outs = mgr
            .import(&instance.golden, &g_roots, &golden_map)
            .expect("validated instance maps every golden input");

        // Register outputs for FRAIG coverage.
        for (name, &lit) in out_names.iter().zip(&f_outs) {
            mgr.add_output(name.clone(), lit);
        }
        for (name, &lit) in out_names.iter().zip(&g_outs) {
            mgr.add_output(format!("__g__{name}"), lit);
        }
        for (i, c) in cands.iter().enumerate() {
            let _ = i;
            mgr.add_output(format!("__c__{}", c.name), c.lit);
        }

        let mut input_cand: HashMap<Var, usize> = HashMap::new();
        for (idx, c) in cands.iter().enumerate() {
            if c.lit.is_complement() || !mgr.is_input(c.lit.var()) {
                continue;
            }
            match input_cand.get(&c.lit.var()) {
                Some(&old) if cands[old].weight <= c.weight => {}
                _ => {
                    input_cand.insert(c.lit.var(), idx);
                }
            }
        }
        Workspace {
            mgr,
            x,
            target_vars,
            out_names,
            f_outs,
            g_outs,
            cands,
            input_cand,
        }
    }

    /// Extracts a self-contained sub-workspace for one target cluster.
    ///
    /// The sub-workspace keeps *all* `X` inputs, target pseudo-inputs, and
    /// base candidates — in the same order, so candidate indices, target
    /// indices, and [`Workspace::input_cand`] keys translate one-to-one —
    /// but imports only the faulty/golden output cones of `cluster` (plus
    /// every candidate cone). Patch generation for the cluster can then
    /// run against the sub-manager without mutating the shared one, which
    /// is what lets clusters rectify on scoped worker threads.
    ///
    /// Returns the sub-workspace and the cluster re-indexed to its output
    /// space (`outputs` become `0..n`; `targets` keep their global
    /// indices, since `target_vars` is carried in full).
    pub fn for_cluster(&self, cluster: &crate::TargetCluster) -> (Workspace, crate::TargetCluster) {
        let mut mgr = Aig::new();
        let mut map: HashMap<Var, Lit> = HashMap::new();
        let mut x = Vec::with_capacity(self.x.len());
        for (name, lit) in &self.x {
            let nl = mgr.add_input(name.clone());
            map.insert(lit.var(), nl);
            x.push((name.clone(), nl));
        }
        let mut target_vars = Vec::with_capacity(self.target_vars.len());
        for &tv in &self.target_vars {
            let pos = self.mgr.input_pos(tv).expect("target is an input");
            let nl = mgr.add_input(self.mgr.input_name(pos).to_owned());
            map.insert(tv, nl);
            target_vars.push(nl.var());
        }

        // One import pass: cluster f cones, cluster g cones, all candidates.
        let n = cluster.outputs.len();
        let mut roots: Vec<Lit> = cluster.outputs.iter().map(|&j| self.f_outs[j]).collect();
        roots.extend(cluster.outputs.iter().map(|&j| self.g_outs[j]));
        roots.extend(self.cands.iter().map(|c| c.lit));
        let imported = mgr
            .import(&self.mgr, &roots, &map)
            .expect("cluster cones reach only X and target inputs");
        let f_outs: Vec<Lit> = imported[..n].to_vec();
        let g_outs: Vec<Lit> = imported[n..2 * n].to_vec();
        let cands: Vec<WsCandidate> = self
            .cands
            .iter()
            .zip(&imported[2 * n..])
            .map(|(c, &lit)| WsCandidate {
                name: c.name.clone(),
                lit,
                weight: c.weight,
            })
            .collect();

        // Same output registration layout as `new`, for FRAIG coverage.
        let out_names: Vec<String> = cluster
            .outputs
            .iter()
            .map(|&j| self.out_names[j].clone())
            .collect();
        for (name, &lit) in out_names.iter().zip(&f_outs) {
            mgr.add_output(name.clone(), lit);
        }
        for (name, &lit) in out_names.iter().zip(&g_outs) {
            mgr.add_output(format!("__g__{name}"), lit);
        }
        for c in &cands {
            mgr.add_output(format!("__c__{}", c.name), c.lit);
        }

        let mut input_cand: HashMap<Var, usize> = HashMap::new();
        for (idx, c) in cands.iter().enumerate() {
            if c.lit.is_complement() || !mgr.is_input(c.lit.var()) {
                continue;
            }
            match input_cand.get(&c.lit.var()) {
                Some(&old) if cands[old].weight <= c.weight => {}
                _ => {
                    input_cand.insert(c.lit.var(), idx);
                }
            }
        }
        let local = crate::TargetCluster {
            targets: cluster.targets.clone(),
            outputs: (0..n).collect(),
        };
        (
            Workspace {
                mgr,
                x,
                target_vars,
                out_names,
                f_outs,
                g_outs,
                cands,
                input_cand,
            },
            local,
        )
    }

    /// Number of primary outputs `m`.
    pub fn num_outputs(&self) -> usize {
        self.f_outs.len()
    }

    /// Looks up an `X` input literal by name.
    pub fn x_lit(&self, name: &str) -> Option<Lit> {
        self.x.iter().find(|(n, _)| n == name).map(|(_, l)| *l)
    }

    /// The set of `X` input variables.
    pub fn x_vars(&self) -> Vec<Var> {
        self.x.iter().map(|(_, l)| l.var()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaseCandidate;
    use eco_netlist::{parse_verilog, WeightTable};

    fn sample_instance() -> EcoInstance {
        let faulty = parse_verilog(
            "module f (a, b, c, t, y, z); input a, b, c, t; output y, z; \
             wire w; or g0 (w, a, b); xor g1 (y, t, c); and g2 (z, w, c); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, b, c, y, z); input a, b, c; output y, z; \
             wire w, v; or g0 (w, a, b); and g1 (v, a, b); xor g2 (y, v, c); \
             and g3 (z, w, c); endmodule",
        )
        .expect("golden");
        EcoInstance::from_netlists(
            "ws",
            &faulty,
            &golden,
            vec!["t".into()],
            &WeightTable::new(2),
        )
        .expect("instance")
    }

    #[test]
    fn workspace_shares_structure() {
        let inst = sample_instance();
        let ws = Workspace::new(&inst);
        assert_eq!(ws.x.len(), 3);
        assert_eq!(ws.target_vars.len(), 1);
        assert_eq!(ws.num_outputs(), 2);
        // z is identical in both circuits: structural hashing must merge it.
        assert_eq!(ws.f_outs[1], ws.g_outs[1]);
        // y differs (depends on t in F).
        assert_ne!(ws.f_outs[0], ws.g_outs[0]);
    }

    #[test]
    fn faulty_semantics_preserved() {
        let inst = sample_instance();
        let ws = Workspace::new(&inst);
        // mgr inputs: a, b, c, t. f_y = t ^ c.
        let mut mgr = ws.mgr.clone();
        mgr.clear_outputs();
        mgr.add_output("fy", ws.f_outs[0]);
        mgr.add_output("gy", ws.g_outs[0]);
        for bits in 0u32..16 {
            let vals: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let (a, b, c, t) = (vals[0], vals[1], vals[2], vals[3]);
            let _ = b;
            let out = mgr.eval(&vals);
            assert_eq!(out[0], t ^ c, "fy at {vals:?}");
            assert_eq!(out[1], (a && vals[1]) ^ c, "gy at {vals:?}");
        }
    }

    #[test]
    fn candidates_are_lifted() {
        let inst = sample_instance();
        let ws = Workspace::new(&inst);
        let w_cand = ws.cands.iter().find(|c| c.name == "w").expect("w");
        assert_eq!(w_cand.weight, 2);
        // w = a | b in the manager.
        let mut mgr = ws.mgr.clone();
        mgr.clear_outputs();
        mgr.add_output("w", w_cand.lit);
        assert_eq!(mgr.eval(&[true, false, false, false]), vec![true]);
        assert_eq!(mgr.eval(&[false, false, true, true]), vec![false]);
    }

    #[test]
    fn workspace_from_direct_instance() {
        // EcoInstance::new path with explicit candidates.
        let faulty =
            parse_verilog("module f (a, t, y); input a, t; output y; and g (y, a, t); endmodule")
                .expect("f");
        let golden = parse_verilog("module g (a, y); input a; output y; buf g (y, a); endmodule")
            .expect("g");
        let fe = eco_netlist::elaborate(&faulty).expect("fe");
        let ge = eco_netlist::elaborate(&golden).expect("ge");
        let cand = BaseCandidate {
            name: "a".into(),
            lit: fe.net_lits["a"],
            weight: 3,
        };
        let inst =
            EcoInstance::new("d", fe.aig, ge.aig, vec!["t".into()], vec![cand]).expect("instance");
        let ws = Workspace::new(&inst);
        assert_eq!(ws.cands.len(), 1);
        assert_eq!(ws.x_lit("a"), Some(ws.x[0].1));
        assert_eq!(ws.x_vars().len(), 1);
    }
}
