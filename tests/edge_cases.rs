//! Edge-case integration tests: budget exhaustion, degenerate circuits,
//! and option corners that the happy-path suites don't reach.

mod common;

use eco::core::{
    Cut, EcoEngine, EcoError, EcoInstance, EcoOptions, InitialPatchKind, TapMap, Workspace,
};
use eco::fraig::{fraig_classes, FraigOptions};
use eco::netlist::{parse_verilog, WeightTable};
use eco::workgen::contest_suite;

fn simple_instance() -> (eco::netlist::Netlist, eco::netlist::Netlist, EcoInstance) {
    let faulty =
        parse_verilog("module f (a, b, t, y); input a, b, t; output y; or g1 (y, t, b); endmodule")
            .expect("faulty");
    let golden = parse_verilog(
        "module g (a, b, y); input a, b; output y; \
         wire w; xor g0 (w, a, b); or g1 (y, w, b); endmodule",
    )
    .expect("golden");
    let inst = EcoInstance::from_netlists(
        "edge",
        &faulty,
        &golden,
        vec!["t".into()],
        &WeightTable::new(2),
    )
    .expect("instance");
    (faulty, golden, inst)
}

/// A tiny verification budget yields ResourceLimit, not a wrong answer.
#[test]
fn exhausted_verify_budget_is_reported() {
    // Big enough that verification actually needs search: a multiplier.
    let unit = eco::workgen::build_unit(&eco::workgen::UnitSpec {
        name: "budget".into(),
        family: eco::workgen::Family::Multiplier(4),
        n_targets: 1,
        bias: eco::workgen::TargetBias::Deep,
        weights: eco::workgen::WeightProfile::Unit,
        difficult: false,
        seed: 5,
    });
    let inst = unit.instance().expect("valid");
    let opts = EcoOptions {
        verify_budget: 1,
        optimize: false,
        ..Default::default()
    };
    match EcoEngine::new(inst, opts).run() {
        Err(EcoError::ResourceLimit(_)) => {}
        // A 1-conflict budget may still suffice if propagation alone
        // decides the miters; accept a verified success too.
        Ok(result) => {
            common::assert_patched_equals_golden(&unit.faulty, &unit.golden, &result);
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
}

/// FRAIG with a zero conflict budget proves nothing — and the engine
/// still succeeds (localization silently degrades to structural sharing).
#[test]
fn fraig_budget_zero_degrades_gracefully() {
    let (faulty, golden, inst) = simple_instance();
    let opts = EcoOptions {
        fraig: FraigOptions {
            conflict_budget: 0,
            ..Default::default()
        },
        ..Default::default()
    };
    let result = EcoEngine::new(inst, opts).run().expect("rectifiable");
    common::assert_patched_equals_golden(&faulty, &golden, &result);
}

/// All-option engine sweep on one difficult unit, splice-checked.
#[test]
fn difficult_unit_option_sweep() {
    let unit = contest_suite()
        .into_iter()
        .find(|u| u.spec.name == "unit06")
        .expect("unit06");
    for initial in [
        InitialPatchKind::OnSet,
        InitialPatchKind::NegOffSet,
        InitialPatchKind::Interpolant,
    ] {
        let inst = unit.instance().expect("valid");
        let opts = EcoOptions {
            initial_patch: initial,
            ..Default::default()
        };
        let result = EcoEngine::new(inst, opts).run().expect("rectifiable");
        common::assert_patched_equals_golden(&unit.faulty, &unit.golden, &result);
    }
}

/// Single-input identity instance: the patch is just a wire.
#[test]
fn wire_only_patch() {
    let faulty = parse_verilog("module f (a, t, y); input a, t; output y; buf g (y, t); endmodule")
        .expect("faulty");
    let golden = parse_verilog("module g (a, y); input a; output y; buf g (y, a); endmodule")
        .expect("golden");
    let inst = EcoInstance::from_netlists(
        "wire",
        &faulty,
        &golden,
        vec!["t".into()],
        &WeightTable::new(4),
    )
    .expect("instance");
    let result = EcoEngine::new(inst, EcoOptions::default())
        .run()
        .expect("ok");
    assert_eq!(result.size, 0, "identity patch needs no gates");
    assert_eq!(result.cost, 4);
    assert_eq!(result.patches[0].base, vec!["a"]);
    common::assert_patched_equals_golden(&faulty, &golden, &result);
}

/// An inverted-wire patch costs one signal and zero AND gates.
#[test]
fn inverter_only_patch() {
    let faulty = parse_verilog("module f (a, t, y); input a, t; output y; buf g (y, t); endmodule")
        .expect("faulty");
    let golden = parse_verilog("module g (a, y); input a; output y; not g (y, a); endmodule")
        .expect("golden");
    let inst = EcoInstance::from_netlists(
        "inv",
        &faulty,
        &golden,
        vec!["t".into()],
        &WeightTable::new(4),
    )
    .expect("instance");
    let result = EcoEngine::new(inst, EcoOptions::default())
        .run()
        .expect("ok");
    assert_eq!(result.size, 0, "inverters are free in the AIG metric");
    common::assert_patched_equals_golden(&faulty, &golden, &result);
}

/// Cut merging dedups signals by name and keeps phases consistent.
#[test]
fn cut_merge_semantics() {
    let (_f, _g, inst) = simple_instance();
    let ws = Workspace::new(&inst);
    let classes = fraig_classes(&ws.mgr, &FraigOptions::default());
    let tap = TapMap::build(&ws, &classes);
    let cut1 = Cut::frontier(&ws, &tap, &[ws.g_outs[0]]);
    let cut2 = Cut::frontier(&ws, &tap, &[ws.f_outs[0]]);
    let merged = Cut::merge([&cut1, &cut2]);
    // No duplicate signal names.
    let mut names: Vec<&str> = merged.signals.iter().map(|s| s.name.as_str()).collect();
    let before = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), before, "merge must dedup by name");
    // Every node's mapping is consistent with one of the source cuts.
    assert!(merged.node_map.len() >= cut1.node_map.len().max(cut2.node_map.len()));
}

/// Identical faulty/golden with zero targets: nothing to do, verified.
#[test]
fn zero_target_instance() {
    let faulty =
        parse_verilog("module f (a, b, y); input a, b; output y; and g (y, a, b); endmodule")
            .expect("faulty");
    let golden =
        parse_verilog("module g (a, b, y); input a, b; output y; and g (y, a, b); endmodule")
            .expect("golden");
    let inst = EcoInstance::from_netlists("zero", &faulty, &golden, vec![], &WeightTable::new(1))
        .expect("instance");
    let result = EcoEngine::new(inst, EcoOptions::default())
        .run()
        .expect("ok");
    assert!(result.patches.is_empty());
    assert_eq!(result.cost, 0);
    assert_eq!(result.size, 0);
}

/// Zero targets with non-equivalent circuits: cleanly unrectifiable.
#[test]
fn zero_target_nonequivalent_is_unrectifiable() {
    let faulty =
        parse_verilog("module f (a, b, y); input a, b; output y; and g (y, a, b); endmodule")
            .expect("faulty");
    let golden =
        parse_verilog("module g (a, b, y); input a, b; output y; or g (y, a, b); endmodule")
            .expect("golden");
    let inst = EcoInstance::from_netlists("zero2", &faulty, &golden, vec![], &WeightTable::new(1))
        .expect("instance");
    let err = EcoEngine::new(inst, EcoOptions::default())
        .run()
        .unwrap_err();
    assert!(matches!(err, EcoError::Unrectifiable(_)));
}

/// Weight overflow resistance: huge weights sum without panicking.
#[test]
fn huge_weights_are_handled() {
    let (faulty, golden, _) = simple_instance();
    let mut weights = WeightTable::new(u64::MAX / 1_000_000);
    weights.set("b", 1);
    let inst = EcoInstance::from_netlists("huge", &faulty, &golden, vec!["t".into()], &weights)
        .expect("instance");
    let result = EcoEngine::new(inst, EcoOptions::default())
        .run()
        .expect("ok");
    assert!(result.cost >= 1);
    common::assert_patched_equals_golden(&faulty, &golden, &result);
}
