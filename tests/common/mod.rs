//! Shared helpers for integration tests: independent end-to-end patch
//! validation that goes through the emitted netlist artifact rather than
//! the engine's internal workspace.

use eco::aig::Aig;
use eco::core::EcoResult;
use eco::netlist::{elaborate, netlist_from_aig, parse_verilog, write_verilog, Netlist};

/// Splices the engine's patch into the faulty netlist via the production
/// assembly API, after round-tripping the patch through the Verilog
/// writer/parser so the test exercises the emitted artifact.
pub fn splice_patch(faulty: &Netlist, result: &EcoResult) -> Netlist {
    let patch_text = write_verilog(&netlist_from_aig(&result.patch_aig, "patch"));
    let patch = parse_verilog(&patch_text).expect("emitted patch parses");
    let patch_aig = elaborate(&patch).expect("emitted patch elaborates").aig;
    eco::core::splice_patch(faulty, &patch_aig).expect("patch splices")
}

/// Exhaustively checks (up to 12 inputs) or randomly samples that the
/// patched faulty netlist equals the golden netlist.
pub fn assert_patched_equals_golden(faulty: &Netlist, golden: &Netlist, result: &EcoResult) {
    let combined = splice_patch(faulty, result);
    let patched = eco::netlist::elaborate(&combined).expect("patched elaborates");
    let gold = eco::netlist::elaborate(golden).expect("golden elaborates");

    // Align inputs by name (patched may have extra dangling inputs).
    let eval_named = |aig: &Aig, assign: &dyn Fn(&str) -> bool| -> Vec<bool> {
        let vals: Vec<bool> = (0..aig.num_inputs())
            .map(|p| assign(aig.input_name(p)))
            .collect();
        let mut by_name: Vec<(String, bool)> = Vec::new();
        for (j, out) in aig.outputs().iter().enumerate() {
            by_name.push((out.name.clone(), aig.eval(&vals)[j]));
        }
        by_name.sort();
        by_name.into_iter().map(|(_, v)| v).collect()
    };

    let n = gold.aig.num_inputs().max(patched.aig.num_inputs());
    if n <= 12 {
        // Exhaustive over the golden inputs; extra faulty-only inputs
        // (dangling nets) get a derived value and must not matter.
        for bits in 0u64..1 << gold.aig.num_inputs() {
            let names: Vec<String> = (0..gold.aig.num_inputs())
                .map(|p| gold.aig.input_name(p).to_string())
                .collect();
            let assign = |name: &str| -> bool {
                names
                    .iter()
                    .position(|x| x == name)
                    .map(|i| bits >> i & 1 == 1)
                    .unwrap_or(bits.count_ones() % 2 == 1)
            };
            assert_eq!(
                eval_named(&patched.aig, &assign),
                eval_named(&gold.aig, &assign),
                "mismatch at assignment {bits:#b}"
            );
        }
    } else {
        // Random sampling for larger instances.
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..512 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let seed = state;
            let assign = |name: &str| -> bool {
                let mut h = seed;
                for b in name.bytes() {
                    h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
                }
                h.count_ones() % 2 == 1
            };
            assert_eq!(
                eval_named(&patched.aig, &assign),
                eval_named(&gold.aig, &assign),
                "mismatch at sampled assignment"
            );
        }
    }
}
