//! End-to-end tests of the `eco-convert` binary.

use std::path::PathBuf;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eco-convert"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-convert-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

const SRC: &str = "module m (a, b, c, y, z);\ninput a, b, c;\noutput y, z;\n\
                   wire w;\nand g1 (w, a, b);\nxor g2 (y, w, c);\nnor g3 (z, a, c);\nendmodule\n";

/// A 2-stage shift register with an AND tap: latch-bearing BLIF.
const SEQ_SRC: &str = ".model sr\n.inputs d\n.outputs q\n\
                       .latch w s0 0\n.latch s0 s1 0\n\
                       .names s0 s1 q\n11 1\n.names d w\n1 1\n.end\n";

fn eval_file(path: &PathBuf, vals: &[bool]) -> Vec<bool> {
    let name = path.to_str().expect("utf8 path");
    let aig = match path.extension().and_then(|e| e.to_str()) {
        Some("v") => {
            let nl = eco_netlist::parse_verilog(&std::fs::read_to_string(path).expect("read"))
                .expect("verilog parses");
            eco_netlist::elaborate(&nl).expect("elaborates").aig
        }
        Some("blif") => {
            eco_netlist::parse_blif(&std::fs::read_to_string(path).expect("read"))
                .expect("blif parses")
                .aig
        }
        Some("aag") => eco_aig::parse_aiger_ascii(&std::fs::read_to_string(path).expect("read"))
            .expect("aag parses"),
        Some("aig") => {
            eco_aig::parse_aiger_binary(&std::fs::read(path).expect("read")).expect("aig parses")
        }
        Some("btor2") => {
            eco_seq::parse_btor2(&std::fs::read_to_string(path).expect("read"))
                .expect("btor2 parses")
                .aig
        }
        other => panic!("unexpected extension {other:?} for {name}"),
    };
    aig.eval(vals)
}

#[test]
fn all_format_chains_preserve_semantics() {
    let dir = tmpdir("chain");
    let v0 = dir.join("m.v");
    std::fs::write(&v0, SRC).expect("write");
    // v -> blif -> aag -> aig -> btor2 -> v
    let chain = [
        dir.join("m.blif"),
        dir.join("m.aag"),
        dir.join("m.aig"),
        dir.join("m.btor2"),
        dir.join("m2.v"),
    ];
    let mut prev = v0.clone();
    for next in &chain {
        let out = bin()
            .args(["-i", prev.to_str().expect("path")])
            .args(["-o", next.to_str().expect("path")])
            .output()
            .expect("run");
        assert!(
            out.status.success(),
            "{prev:?} -> {next:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        prev = next.clone();
    }
    for bits in 0u32..8 {
        let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
        let want = eval_file(&v0, &vals);
        for f in &chain {
            assert_eq!(eval_file(f, &vals), want, "{f:?} at {vals:?}");
        }
    }
}

#[test]
fn sequential_designs_convert_between_latch_formats() {
    let dir = tmpdir("seq");
    let b0 = dir.join("sr.blif");
    std::fs::write(&b0, SEQ_SRC).expect("write");
    // blif -> btor2 -> aag -> aig -> blif, latches preserved throughout.
    let chain = [
        dir.join("sr.btor2"),
        dir.join("sr.aag"),
        dir.join("sr.aig"),
        dir.join("sr2.blif"),
    ];
    let mut prev = b0.clone();
    for next in &chain {
        let out = bin()
            .args(["-i", prev.to_str().expect("path")])
            .args(["-o", next.to_str().expect("path")])
            .output()
            .expect("run");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "{prev:?} -> {next:?}: {stderr}");
        assert!(stderr.contains("2 latches"), "stderr: {stderr}");
        prev = next.clone();
    }
    // Cycle-accurate behavior survives the full chain.
    let d0 = eco_seq::read_design(eco_seq::Format::Blif, &std::fs::read(&b0).expect("read"))
        .expect("parses");
    let d1 = eco_seq::read_design(
        eco_seq::Format::Blif,
        &std::fs::read(&chain[3]).expect("read"),
    )
    .expect("parses");
    for bits in 0u32..64 {
        let stim: Vec<Vec<bool>> = (0..6).map(|f| vec![bits >> f & 1 == 1]).collect();
        assert_eq!(d0.simulate(&stim), d1.simulate(&stim), "{bits:#b}");
    }
}

#[test]
fn sequential_to_verilog_fails_with_typed_error() {
    let dir = tmpdir("seqv");
    let b0 = dir.join("sr.blif");
    std::fs::write(&b0, SEQ_SRC).expect("write");
    let out = bin()
        .args(["-i", b0.to_str().expect("path")])
        .args(["-o", dir.join("sr.v").to_str().expect("path")])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("combinational-only"), "stderr: {stderr}");
    assert!(stderr.contains("latches"), "stderr: {stderr}");
}

#[test]
fn cnf_export_and_no_reimport() {
    let dir = tmpdir("cnf");
    let v0 = dir.join("m.v");
    std::fs::write(&v0, SRC).expect("write");
    let cnf = dir.join("m.cnf");
    let out = bin()
        .args(["-i", v0.to_str().expect("path")])
        .args(["-o", cnf.to_str().expect("path")])
        .output()
        .expect("run");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&cnf).expect("read");
    assert!(text.contains("p cnf "), "missing header: {text}");
    assert!(text.contains("c input a "), "missing input map: {text}");
    assert!(text.contains("c output y "), "missing output map: {text}");
    // CNF cannot be read back.
    let out = bin()
        .args(["-i", cnf.to_str().expect("path")])
        .args(["-o", dir.join("m2.v").to_str().expect("path")])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("export-only"));
}

#[test]
fn stdin_stdout_with_format_overrides() {
    use std::io::Write as _;
    let mut child = bin()
        .args(["-i", "-", "--from", "blif", "-o", "-", "--to", "btor2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(SEQ_SRC.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.starts_with("1 sort bitvec 1"), "stdout: {text}");
    assert!(text.contains(" state 1 "), "stdout: {text}");

    // `-` without --from is a typed error.
    let out = bin()
        .args(["-i", "-", "-o", "x.blif"])
        .stdin(Stdio::null())
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--from"));
}

#[test]
fn reports_stats_on_stderr() {
    let dir = tmpdir("stats");
    let v0 = dir.join("m.v");
    std::fs::write(&v0, SRC).expect("write");
    let out = bin()
        .args(["-i", v0.to_str().expect("path")])
        .args(["-o", dir.join("m.blif").to_str().expect("path")])
        .output()
        .expect("run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("3 inputs, 2 outputs"), "stderr: {stderr}");
    assert!(stderr.contains("0 latches"), "stderr: {stderr}");
}

#[test]
fn bad_usage_and_formats_fail() {
    let out = bin().output().expect("run");
    assert_eq!(out.status.code(), Some(1));

    let dir = tmpdir("bad");
    let v0 = dir.join("m.v");
    std::fs::write(&v0, SRC).expect("write");
    // Unknown extension: the error names the path, the extension, and
    // the supported set.
    let out = bin()
        .args(["-i", v0.to_str().expect("path")])
        .args(["-o", dir.join("m.xyz").to_str().expect("path")])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown extension `.xyz`"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains(".btor2"), "stderr: {stderr}");
    assert!(stderr.contains("--from/--to"), "stderr: {stderr}");

    // Unknown --to name lists the supported formats.
    let out = bin()
        .args(["-i", v0.to_str().expect("path")])
        .args(["-o", dir.join("m.out").to_str().expect("path")])
        .args(["--to", "edif"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown format `edif`"), "stderr: {stderr}");

    // --to overrides a wrong extension.
    let out = bin()
        .args(["-i", v0.to_str().expect("path")])
        .args(["-o", dir.join("m.out").to_str().expect("path")])
        .args(["--to", "aag"])
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(std::fs::read_to_string(dir.join("m.out"))
        .expect("read")
        .starts_with("aag "));

    let out = bin()
        .args([
            "-i",
            "/nonexistent.v",
            "-o",
            dir.join("x.blif").to_str().expect("path"),
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
}
