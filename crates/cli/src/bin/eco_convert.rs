//! `eco-convert`: translate between the workspace's circuit formats.
//!
//! ```text
//! eco-convert -i design.v -o design.blif
//! eco-convert -i design.aag -o design.v
//! ```
//!
//! Formats are inferred from file extensions: `.v` (structural Verilog
//! subset), `.blif`, `.aag` (ASCII AIGER), `.aig` (binary AIGER). All
//! conversions go through an AIG, so the output is always flat
//! AND-inverter logic.

use std::process::ExitCode;

use eco_aig::Aig;
use eco_netlist::{
    elaborate, netlist_from_aig, parse_blif, parse_verilog, write_blif, write_verilog,
};

const USAGE: &str =
    "usage: eco-convert -i <in.{v,blif,aag,aig}> -o <out.{v,blif,aag,aig}> [--name <module>]";

fn ext(path: &str) -> Option<&str> {
    std::path::Path::new(path).extension()?.to_str()
}

fn read_aig(path: &str) -> Result<Aig, String> {
    let fmt = ext(path).ok_or_else(|| format!("{path}: no file extension"))?;
    match fmt {
        "v" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let nl = parse_verilog(&text).map_err(|e| format!("{path}: {e}"))?;
            Ok(elaborate(&nl).map_err(|e| format!("{path}: {e}"))?.aig)
        }
        "blif" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(parse_blif(&text).map_err(|e| format!("{path}: {e}"))?.aig)
        }
        "aag" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            eco_aig::parse_aiger_ascii(&text).map_err(|e| format!("{path}: {e}"))
        }
        "aig" => {
            let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            eco_aig::parse_aiger_binary(&data).map_err(|e| format!("{path}: {e}"))
        }
        other => Err(format!("{path}: unsupported input format `.{other}`")),
    }
}

fn write_aig(path: &str, aig: &Aig, name: &str) -> Result<(), String> {
    let fmt = ext(path).ok_or_else(|| format!("{path}: no file extension"))?;
    let bytes: Vec<u8> = match fmt {
        "v" => write_verilog(&netlist_from_aig(aig, name)).into_bytes(),
        "blif" => write_blif(aig, name).into_bytes(),
        "aag" => eco_aig::write_aiger_ascii(aig).into_bytes(),
        "aig" => eco_aig::write_aiger_binary(aig),
        other => return Err(format!("{path}: unsupported output format `.{other}`")),
    };
    std::fs::write(path, bytes).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let mut input = None;
    let mut output = None;
    let mut name = "top".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-i" | "--input" => input = args.next(),
            "-o" | "--output" => output = args.next(),
            "--name" => name = args.next().unwrap_or(name),
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(1);
            }
        }
    }
    let (Some(input), Some(output)) = (input, output) else {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    };
    let result = read_aig(&input).and_then(|aig| {
        eprintln!(
            "{}: {} inputs, {} outputs, {} AND gates",
            input,
            aig.num_inputs(),
            aig.num_outputs(),
            aig.compact().num_ands()
        );
        write_aig(&output, &aig.compact(), &name)
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
