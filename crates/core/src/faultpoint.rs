//! Deterministic fault-injection registry for chaos testing.
//!
//! Production code consults *named fault points* at the places where the
//! real world can fail — disk writes, fsync, cache loads, admission,
//! worker scheduling — and the registry decides, from a seeded schedule,
//! whether to inject a failure there. Disarmed (the default), a consult
//! is a single relaxed atomic load and nothing else, so shipping the
//! consult sites costs nothing; armed, decisions are a pure function of
//! `(seed, site name, per-site consult counter)`, so a campaign replays
//! the same injection schedule per site on every run with the same seed.
//!
//! The registered site names (see [`SITES`]):
//!
//! | site | consulted where | injected failure |
//! |------|-----------------|------------------|
//! | `io.write` | record-log appends ([`crate::memo_store`]) | `io::Error` |
//! | `io.fsync` | record-log syncs | `io::Error` |
//! | `memo.load` | memo-store load, per record | record treated as corrupt |
//! | `solver.panic` | job execution (batch/serve workers) | `panic!` |
//! | `queue.admit` | serve admission control | shed as `busy` |
//! | `worker.stall` | serve worker loop, per job | bounded sleep |
//!
//! Arm the registry with [`arm`] (CLI `--chaos seed=N,rate=P`) or
//! [`arm_from_env`] (`ECO_CHAOS=seed=N,rate=P`). Injection never
//! compromises soundness: every consult site sits on a path that already
//! has a typed degradation (skip + count, error record, refusal), which
//! is exactly the property the chaos campaign verifies.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Every registered fault-point name (documentation and campaign
/// sweeps; consulting an unlisted name works but won't be swept).
pub const SITES: &[&str] = &[
    "io.write",
    "io.fsync",
    "memo.load",
    "solver.panic",
    "queue.admit",
    "worker.stall",
];

/// A parsed `--chaos` specification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosSpec {
    /// Schedule seed; the same seed replays the same per-site decisions.
    pub seed: u64,
    /// Injection probability per consult, in `[0, 1]`.
    pub rate: f64,
}

impl fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={},rate={}", self.seed, self.rate)
    }
}

/// Parses `seed=N,rate=P` (either key optional, any order; defaults
/// seed 1, rate 0.05).
pub fn parse_chaos_spec(text: &str) -> Result<ChaosSpec, String> {
    let mut spec = ChaosSpec {
        seed: 1,
        rate: 0.05,
    };
    for part in text.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some((key, value)) = part.split_once('=') else {
            return Err(format!("chaos spec: expected key=value, got `{part}`"));
        };
        match key.trim() {
            "seed" => {
                spec.seed = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("chaos spec: seed expects a number, got `{value}`"))?;
            }
            "rate" => {
                let rate: f64 = value.trim().parse().map_err(|_| {
                    format!("chaos spec: rate expects a probability, got `{value}`")
                })?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("chaos spec: rate must be in [0, 1], got `{value}`"));
                }
                spec.rate = rate;
            }
            other => return Err(format!("chaos spec: unknown key `{other}`")),
        }
    }
    Ok(spec)
}

/// Cumulative counters of the armed registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Consults answered while armed.
    pub consults: u64,
    /// Consults that injected a failure.
    pub injected: u64,
}

struct ChaosState {
    spec: ChaosSpec,
    counters: HashMap<String, u64>,
    stats: FaultStats,
}

/// Fast-path gate: disarmed consults never touch the mutex.
static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<ChaosState>> = Mutex::new(None);

fn lock_state() -> std::sync::MutexGuard<'static, Option<ChaosState>> {
    // The state is a plain map + counters, valid at every unwind point.
    STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arms every fault point with a seeded schedule. Re-arming resets the
/// per-site counters, so a campaign iteration always starts from the
/// same schedule position.
pub fn arm(spec: ChaosSpec) {
    *lock_state() = Some(ChaosState {
        spec,
        counters: HashMap::new(),
        stats: FaultStats::default(),
    });
    ARMED.store(true, Ordering::Release);
}

/// Disarms the registry and returns the stats of the armed period
/// (zeroes if it was never armed).
pub fn disarm() -> FaultStats {
    ARMED.store(false, Ordering::Release);
    lock_state().take().map(|s| s.stats).unwrap_or_default()
}

/// `true` while the registry is armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms from the `ECO_CHAOS` environment variable (`seed=N,rate=P`) if
/// set; returns the spec used, or an error for a malformed value.
pub fn arm_from_env() -> Result<Option<ChaosSpec>, String> {
    match std::env::var("ECO_CHAOS") {
        Ok(text) => {
            let spec = parse_chaos_spec(&text)?;
            arm(spec);
            Ok(Some(spec))
        }
        Err(_) => Ok(None),
    }
}

/// Counters snapshot of the currently armed registry.
pub fn stats() -> FaultStats {
    lock_state().as_ref().map(|s| s.stats).unwrap_or_default()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Consults fault point `site`: `true` means the caller must inject its
/// failure now. Disarmed, this is one relaxed atomic load. Armed, the
/// decision is `splitmix64(seed ^ fnv(site) ^ n)` thresholded by the
/// rate, where `n` counts this site's consults since arming — the
/// per-site schedule is deterministic whatever other sites do.
pub fn should_fail(site: &str) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let mut guard = lock_state();
    let Some(state) = guard.as_mut() else {
        return false;
    };
    let n = state.counters.entry(site.to_string()).or_insert(0);
    let draw = splitmix64(state.spec.seed ^ fnv64(site) ^ *n);
    *n += 1;
    state.stats.consults += 1;
    // Top 53 bits → uniform in [0, 1).
    let uniform = (draw >> 11) as f64 / (1u64 << 53) as f64;
    let inject = uniform < state.spec.rate;
    if inject {
        state.stats.injected += 1;
    }
    inject
}

/// IO-flavored consult: `Err` with a recognizable message when the site
/// fires, `Ok(())` otherwise.
pub fn inject_io(site: &str) -> std::io::Result<()> {
    if should_fail(site) {
        return Err(std::io::Error::other(format!(
            "chaos: injected {site} fault"
        )));
    }
    Ok(())
}

/// Panic-flavored consult (the `solver.panic` site): detonates inside
/// the caller's `catch_unwind` when the site fires.
pub fn maybe_panic(site: &str) {
    if should_fail(site) {
        panic!("chaos: injected panic at {site}");
    }
}

/// Stall-flavored consult (the `worker.stall` site): sleeps `dur` when
/// the site fires — long enough to reorder worker scheduling, bounded so
/// campaigns terminate.
pub fn stall(site: &str, dur: Duration) {
    if should_fail(site) {
        std::thread::sleep(dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that arm the global registry.
    static GATE: Mutex<()> = Mutex::new(());

    fn gate() -> std::sync::MutexGuard<'static, ()> {
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disarmed_consults_never_fire_and_cost_no_state() {
        let _g = gate();
        disarm();
        for _ in 0..100 {
            assert!(!should_fail("io.write"));
        }
        assert_eq!(stats(), FaultStats::default());
        assert!(inject_io("io.fsync").is_ok());
        maybe_panic("solver.panic"); // must not panic
    }

    #[test]
    fn armed_schedule_is_deterministic_per_site() {
        let _g = gate();
        let run = || -> Vec<bool> {
            arm(ChaosSpec {
                seed: 42,
                rate: 0.3,
            });
            let seq: Vec<bool> = (0..64).map(|_| should_fail("io.write")).collect();
            disarm();
            seq
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert!(a.iter().any(|&x| x), "rate 0.3 over 64 draws must fire");
        assert!(!a.iter().all(|&x| x), "rate 0.3 must not always fire");
    }

    #[test]
    fn sites_draw_independent_schedules() {
        let _g = gate();
        arm(ChaosSpec { seed: 7, rate: 0.5 });
        let a: Vec<bool> = (0..64).map(|_| should_fail("io.write")).collect();
        let b: Vec<bool> = (0..64).map(|_| should_fail("memo.load")).collect();
        disarm();
        assert_ne!(a, b, "distinct sites must not share one schedule");
    }

    #[test]
    fn rate_bounds_are_exact() {
        let _g = gate();
        arm(ChaosSpec { seed: 3, rate: 1.0 });
        assert!((0..32).all(|_| should_fail("queue.admit")));
        disarm();
        arm(ChaosSpec { seed: 3, rate: 0.0 });
        assert!((0..32).all(|_| !should_fail("queue.admit")));
        let s = disarm();
        assert_eq!(s.consults, 32);
        assert_eq!(s.injected, 0);
    }

    #[test]
    fn inject_io_reports_the_site() {
        let _g = gate();
        arm(ChaosSpec { seed: 1, rate: 1.0 });
        let err = inject_io("io.write").unwrap_err();
        assert!(err.to_string().contains("io.write"), "{err}");
        disarm();
    }

    #[test]
    fn spec_parsing_accepts_partial_and_rejects_junk() {
        assert_eq!(
            parse_chaos_spec("seed=9,rate=0.25"),
            Ok(ChaosSpec {
                seed: 9,
                rate: 0.25
            })
        );
        assert_eq!(parse_chaos_spec("rate=1").map(|s| s.seed), Ok(1));
        assert_eq!(parse_chaos_spec("").map(|s| s.rate), Ok(0.05));
        assert!(parse_chaos_spec("rate=2").is_err());
        assert!(parse_chaos_spec("seed=x").is_err());
        assert!(parse_chaos_spec("bogus=1").is_err());
        assert!(parse_chaos_spec("seed").is_err());
    }
}
