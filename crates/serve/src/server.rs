//! The daemon core: admission control, the worker pool, response
//! sequencing, and graceful drain.
//!
//! A [`Server`] owns one process-lifetime [`MemoCache`] shared by every
//! request it ever serves — the "always-warm" property: a structurally
//! identical job arriving minutes later hits the cache that the first
//! occurrence filled, across connections and across clients.
//!
//! # Architecture
//!
//! ```text
//!  conn readers ──try_push──▶ BoundedQueue ──pop──▶ worker pool
//!   (1/conn)        │ Full → "busy"                  (N threads)
//!                   │ Closed → "draining"              │ execute_job
//!                   ▼                                  ▼
//!            refusal via ConnOut  ◀──seq-ordered── run response
//! ```
//!
//! * **Admission control** — run requests go through a
//!   [`BoundedQueue`]: beyond capacity the push comes straight back and
//!   the client gets a typed `busy` refusal instead of unbounded queue
//!   growth; after drain starts the queue is closed and refusals say
//!   `draining`.
//! * **Determinism** — each connection's responses pass through a
//!   sequencer ([`ConnOut`]) that writes them in *request* order no
//!   matter which worker finishes first, and run responses carry only
//!   scheduling-independent record fields, so a replayed request stream
//!   produces byte-identical response bytes for any worker count.
//! * **Graceful drain** — a `shutdown` request (or SIGTERM via the
//!   caller's flag, or stdin EOF in stdio mode) latches the draining
//!   flag: the accept loop stops taking connections, the queue closes
//!   (new pushes refused, admitted jobs still pop), workers finish
//!   in-flight work, and the scope join guarantees every admitted job's
//!   response was written before the daemon exits.
//! * **Panic containment** — a panicking job becomes one `error`-status
//!   run response; the worker thread survives. Combined with the
//!   poison-recovering locks in [`eco_batch::executor`] and
//!   `eco_core::memo`, no single poisoned request can abort the daemon.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use eco_batch::{
    execute_job, load_job_instance, BoundedQueue, JobRecord, JobSpec, JobStatus, PushError,
};
use eco_core::{
    faultpoint, Budget, BudgetOptions, EcoOptions, JsonObj, MemoCache, MemoStats, MemoStore,
};

use crate::journal::{load_request_journal, request_fingerprint, RequestJournal};
use crate::proto::{self, Request, StatsView};
use eco_batch::json;

/// How often blocked unix-socket reads and the accept loop re-check the
/// draining flag.
const READ_POLL: Duration = Duration::from_millis(100);
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Knobs for a daemon instance.
#[derive(Clone, Debug, Default)]
pub struct ServeOptions {
    /// Worker threads popping the admission queue; `0` = one per core.
    pub workers: usize,
    /// Admission-queue capacity; pushes beyond it are shed with `busy`
    /// (`0` = the default of 64).
    pub queue_capacity: usize,
    /// Per-request governor budget. The clock starts when the job is
    /// dequeued, and a request's own `budget` field tightens the
    /// conflict allowance via [`Budget::child`]. Leave unlimited for the
    /// memo cache to be consulted (governed runs bypass it).
    pub request_budget: BudgetOptions,
    /// Base engine options for every request (`jobs` and `memo` are
    /// overridden per job, as in the batch runner).
    pub eco: EcoOptions,
    /// Durable state directory (memo snapshot + journal, request WAL).
    /// `None` = in-memory only, the pre-durability behavior.
    pub state_dir: Option<PathBuf>,
    /// Resume quarantine threshold: a journaled job whose re-execution
    /// has already been attempted this many times is refused with a
    /// typed `quarantined` error instead of recrashing the daemon
    /// forever (`0` = the default of 3).
    pub quarantine_after: u32,
}

/// What a serve run did, for the operator's exit summary.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Run jobs executed to a response (including error records).
    pub served: u64,
    /// Run requests shed with a `busy` refusal.
    pub busy: u64,
    /// Run requests refused because the daemon was draining.
    pub refused_draining: u64,
    /// Lines answered with `bad-request`.
    pub bad_requests: u64,
    /// Final shared-cache counters.
    pub memo: MemoStats,
    /// Worker threads used.
    pub workers: usize,
    /// Worker threads restarted by the supervisor after an escaped
    /// panic.
    pub worker_restarts: u64,
    /// Memo entries loaded from the durable store at startup (warm
    /// restart).
    pub memo_loaded: u64,
    /// Journal/store records appended this run.
    pub journal_appended: u64,
    /// Persistence appends or checkpoints that failed (durability
    /// degraded; serving continued).
    pub persist_errors: u64,
    /// Wall-clock time the serve loop ran.
    pub wall: Duration,
}

/// Renders a [`ServeSummary`] as one JSON object (the daemon's exit
/// report on stderr under `--stats`).
pub fn summary_json(s: &ServeSummary) -> String {
    let memo = JsonObj::new()
        .u64("hits", s.memo.hits)
        .u64("misses", s.memo.misses)
        .u64("insertions", s.memo.insertions)
        .u64("evictions", s.memo.evictions)
        .u64("fallbacks", s.memo.fallbacks)
        .u64("entries", s.memo.entries)
        .build();
    JsonObj::new()
        .u64("served", s.served)
        .u64("busy", s.busy)
        .u64("refused_draining", s.refused_draining)
        .u64("bad_requests", s.bad_requests)
        .u64("workers", s.workers as u64)
        .u64("worker_restarts", s.worker_restarts)
        .u64("memo_loaded", s.memo_loaded)
        .u64("journal_appended", s.journal_appended)
        .u64("persist_errors", s.persist_errors)
        .raw("wall_s", &format!("{:.6}", s.wall.as_secs_f64()))
        .raw("memo", &memo)
        .build()
}

/// What a `--resume` replay recovered (see
/// [`Server::resume_from_journal`]).
#[derive(Clone, Debug, Default)]
pub struct ResumeReport {
    /// Completed responses replayed verbatim from the journal.
    pub replayed: u64,
    /// Unfinished admitted jobs re-executed to a fresh response.
    pub recomputed: u64,
    /// Jobs refused with `quarantined` after too many failed attempts.
    pub quarantined: u64,
    /// Admitted lines that no longer parse as run requests (skipped).
    pub skipped: u64,
    /// Intact journal records read.
    pub journal_records: u64,
    /// Torn/corrupt frames and undecodable payloads discarded.
    pub journal_skipped: u64,
    /// Wall-clock time of the replay.
    pub wall: Duration,
}

/// Renders a [`ResumeReport`] as one JSON object (the daemon's resume
/// line on stderr).
pub fn resume_report_json(r: &ResumeReport) -> String {
    JsonObj::new()
        .u64("replayed", r.replayed)
        .u64("recomputed", r.recomputed)
        .u64("quarantined", r.quarantined)
        .u64("skipped", r.skipped)
        .u64("journal_records", r.journal_records)
        .u64("journal_skipped", r.journal_skipped)
        .raw("wall_s", &format!("{:.6}", r.wall.as_secs_f64()))
        .build()
}

/// Locks a mutex, recovering from poisoning — same policy as the
/// executor: the sequencer state is a plain map valid at every unwind
/// point, so a panicking sibling must not abort the connection.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-connection response sequencer. Workers finish in any order, but
/// responses are written strictly in request (sequence) order: an
/// out-of-order response parks in `pending` until its predecessors
/// flush. This is what makes a serve session's response bytes identical
/// for any worker count.
pub(crate) struct ConnOut {
    inner: Mutex<SeqState>,
}

struct SeqState {
    next: u64,
    pending: BTreeMap<u64, String>,
    sink: Box<dyn Write + Send>,
}

impl ConnOut {
    fn new(sink: Box<dyn Write + Send>) -> Self {
        ConnOut {
            inner: Mutex::new(SeqState {
                next: 0,
                pending: BTreeMap::new(),
                sink,
            }),
        }
    }

    /// Queues response line `seq` and flushes every contiguous response
    /// from `next` upward. Write errors are ignored (the client is
    /// gone); sequencing state still advances so the session drains.
    fn send(&self, seq: u64, line: String) {
        let mut guard = lock_recovering(&self.inner);
        let state = &mut *guard;
        state.pending.insert(seq, line);
        while let Some(line) = state.pending.remove(&state.next) {
            state.next += 1;
            let _ = writeln!(state.sink, "{line}");
        }
        let _ = state.sink.flush();
    }
}

/// A run request admitted to the worker queue.
struct QueuedJob {
    conn: Arc<ConnOut>,
    seq: u64,
    id: json::Value,
    spec: JobSpec,
    /// Journal key, when a request journal is attached.
    fp: Option<u128>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LineOutcome {
    Continue,
    Shutdown,
}

/// The daemon: one shared memo cache, one draining flag, and the
/// counters behind `stats` responses. Serve loops ([`Server::serve_unix`],
/// [`Server::serve_reader`]) borrow it; the cache outlives them all, so
/// a second serve loop on the same `Server` starts warm.
pub struct Server {
    opts: ServeOptions,
    workers: usize,
    cache: Arc<MemoCache>,
    store: Option<Arc<MemoStore>>,
    journal: Option<RequestJournal>,
    memo_loaded: u64,
    state_error: Option<String>,
    draining: AtomicBool,
    served: AtomicU64,
    busy: AtomicU64,
    refused_draining: AtomicU64,
    bad_requests: AtomicU64,
    worker_restarts: AtomicU64,
    persist_errors: AtomicU64,
}

impl Server {
    /// A daemon with a process-lifetime memo cache. With
    /// [`ServeOptions::state_dir`] set, the cache is pre-warmed from the
    /// durable memo store and every insertion is journaled; a state
    /// directory that fails to open degrades to in-memory serving (the
    /// error is kept in [`Server::state_error`]) — availability over
    /// durability.
    pub fn new(opts: ServeOptions) -> Self {
        let workers = if opts.workers != 0 {
            opts.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let cache = Arc::new(MemoCache::new());
        let mut store = None;
        let mut journal = None;
        let mut memo_loaded = 0;
        let mut state_error = None;
        if let Some(dir) = &opts.state_dir {
            match MemoStore::open(dir) {
                Ok(s) => {
                    // Load before attach, so replayed entries are not
                    // re-journaled.
                    memo_loaded = s.load_into(&cache).loaded;
                    s.attach(&cache);
                    store = Some(s);
                }
                Err(e) => state_error = Some(format!("memo store: {e}")),
            }
            match RequestJournal::open(dir) {
                Ok(j) => journal = Some(j),
                Err(e) => state_error = Some(format!("request journal: {e}")),
            }
        }
        Server {
            opts,
            workers,
            cache,
            store,
            journal,
            memo_loaded,
            state_error,
            draining: AtomicBool::new(false),
            served: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            refused_draining: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            persist_errors: AtomicU64::new(0),
        }
    }

    /// Why the durable state failed to open, if it did (the daemon is
    /// serving in-memory).
    pub fn state_error(&self) -> Option<&str> {
        self.state_error.as_deref()
    }

    fn queue_capacity(&self) -> usize {
        if self.opts.queue_capacity != 0 {
            self.opts.queue_capacity
        } else {
            64
        }
    }

    fn quarantine_after(&self) -> u32 {
        if self.opts.quarantine_after != 0 {
            self.opts.quarantine_after
        } else {
            3
        }
    }

    /// `true` once drain has begun (no new run requests are admitted).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Latches the draining flag: in-flight and already-admitted jobs
    /// finish, new run requests are refused with `draining`.
    pub fn request_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Current counters (what a `stats` response reports).
    fn stats_view(&self, queued: usize) -> StatsView {
        StatsView {
            memo: self.cache.stats(),
            queued,
            served: self.served.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            workers: self.workers,
        }
    }

    fn summary(&self, wall: Duration) -> ServeSummary {
        let journal_appended = self.journal.as_ref().map_or(0, |j| j.appended())
            + self.store.as_ref().map_or(0, |s| s.appended());
        let persist_errors = self.persist_errors.load(Ordering::Relaxed)
            + self.journal.as_ref().map_or(0, |j| j.append_errors())
            + self.store.as_ref().map_or(0, |s| s.append_errors());
        ServeSummary {
            served: self.served.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            refused_draining: self.refused_draining.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            memo: self.cache.stats(),
            workers: self.workers,
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            memo_loaded: self.memo_loaded,
            journal_appended,
            persist_errors,
            wall,
        }
    }

    /// Handles one request line: inline ops (`ping`, `stats`,
    /// `shutdown`, refusals) respond immediately through the sequencer;
    /// `run` is pushed to the admission queue for a worker.
    fn handle_line(
        &self,
        line: &str,
        seq: u64,
        conn: &Arc<ConnOut>,
        queue: &BoundedQueue<QueuedJob>,
    ) -> LineOutcome {
        match proto::parse_request(line) {
            Err(msg) => {
                self.bad_requests.fetch_add(1, Ordering::Relaxed);
                conn.send(seq, proto::refusal(&json::Value::Null, "bad-request", &msg));
                LineOutcome::Continue
            }
            Ok(Request::Ping { id }) => {
                conn.send(seq, proto::ping_response(&id));
                LineOutcome::Continue
            }
            Ok(Request::Stats { id }) => {
                let view = self.stats_view(queue.len());
                conn.send(seq, proto::stats_response(&id, &view));
                LineOutcome::Continue
            }
            Ok(Request::Shutdown { id }) => {
                self.request_drain();
                // The ack is sequenced behind every earlier response of
                // this connection: when the client reads it, all of its
                // admitted work is done.
                conn.send(seq, proto::shutdown_response(&id));
                LineOutcome::Shutdown
            }
            Ok(Request::Run { id, spec }) => {
                if self.is_draining() {
                    self.refused_draining.fetch_add(1, Ordering::Relaxed);
                    conn.send(
                        seq,
                        proto::refusal(&id, "draining", "daemon is draining; no new work"),
                    );
                    return LineOutcome::Continue;
                }
                // Chaos site `queue.admit`: an injected shed takes the
                // same typed-busy path an overloaded queue would.
                if faultpoint::should_fail("queue.admit") {
                    self.busy.fetch_add(1, Ordering::Relaxed);
                    conn.send(
                        seq,
                        proto::refusal(&id, "busy", "chaos: injected admission shed"),
                    );
                    return LineOutcome::Continue;
                }
                // Write-ahead: the admit record lands before the job can
                // run, so a crash never loses an admitted request.
                let fp = self.journal.as_ref().map(|journal| {
                    let fp = request_fingerprint(line);
                    journal.admit(fp, line);
                    fp
                });
                let job = QueuedJob {
                    conn: Arc::clone(conn),
                    seq,
                    id,
                    spec,
                    fp,
                };
                match queue.try_push(job) {
                    Ok(()) => {}
                    Err((job, PushError::Full)) => {
                        self.busy.fetch_add(1, Ordering::Relaxed);
                        self.journal_refused(job.fp);
                        let detail =
                            format!("admission queue full ({} jobs)", self.queue_capacity());
                        job.conn
                            .send(job.seq, proto::refusal(&job.id, "busy", &detail));
                    }
                    Err((job, PushError::Closed)) => {
                        self.refused_draining.fetch_add(1, Ordering::Relaxed);
                        self.journal_refused(job.fp);
                        job.conn.send(
                            job.seq,
                            proto::refusal(&job.id, "draining", "daemon is draining; no new work"),
                        );
                    }
                }
                LineOutcome::Continue
            }
        }
    }

    /// Appends a refused record for an admitted-then-shed request, so a
    /// resume does not re-execute work whose client got a typed refusal.
    fn journal_refused(&self, fp: Option<u128>) {
        if let (Some(journal), Some(fp)) = (&self.journal, fp) {
            journal.refused(fp);
        }
    }

    /// Executes one job spec to a record — the shared core of the worker
    /// loop and the resume replay. The job gets a fresh per-request
    /// [`Budget`] (clock starts now) tightened by the request's own
    /// allowance via [`Budget::child`] — the batch runner's
    /// apportioning, at request granularity. A panicking job becomes one
    /// `error` record.
    fn run_spec(&self, spec: &JobSpec) -> JobRecord {
        let allowance = match (self.opts.request_budget.cluster_conflicts, spec.budget) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let budget = Budget::new(&self.opts.request_budget).child(allowance);
        catch_unwind(AssertUnwindSafe(|| {
            #[cfg(test)]
            test_panic_injection(spec);
            let source = load_job_instance(spec);
            execute_job(&spec.name, &source, &self.opts.eco, &budget, &self.cache)
        }))
        .unwrap_or_else(|_| JobRecord {
            pass: 0,
            index: 0,
            name: spec.name.clone(),
            status: JobStatus::Error,
            targets: 0,
            patches: 0,
            cost: 0,
            size: 0,
            verified: false,
            detail: "job worker panicked".into(),
        })
    }

    /// One worker: pop admitted jobs until the queue closes and drains.
    /// The response line is journaled *before* it is written to the
    /// client, so every response a client ever saw survives a crash.
    fn worker_loop(&self, queue: &BoundedQueue<QueuedJob>) {
        while let Some(job) = queue.pop() {
            // Chaos site `worker.stall`: a bounded sleep that reorders
            // worker scheduling without changing any response bytes.
            faultpoint::stall("worker.stall", Duration::from_millis(5));
            let record = self.run_spec(&job.spec);
            let response = proto::run_response(&job.id, &record);
            if let (Some(journal), Some(fp)) = (&self.journal, job.fp) {
                journal.done(fp, &response);
            }
            self.served.fetch_add(1, Ordering::Relaxed);
            job.conn.send(job.seq, response);
        }
    }

    /// Runs [`Server::worker_loop`] under a supervisor: a panic that
    /// escapes the per-job containment (nothing known does, but chaos
    /// and future bugs exist) restarts the loop after a bounded
    /// exponential backoff instead of silently shrinking the pool. The
    /// restart cap keeps a deterministic crash from spinning forever;
    /// the scope join still guarantees the queue drains, because the
    /// remaining workers keep popping.
    fn supervised_worker(&self, queue: &BoundedQueue<QueuedJob>) {
        const MAX_RESTARTS: u32 = 8;
        let mut restarts: u32 = 0;
        loop {
            if catch_unwind(AssertUnwindSafe(|| self.worker_loop(queue))).is_ok() {
                return; // queue closed and drained
            }
            self.worker_restarts.fetch_add(1, Ordering::Relaxed);
            restarts += 1;
            if restarts > MAX_RESTARTS {
                return;
            }
            // 10ms, 20ms, 40ms, ... capped at 500ms.
            let backoff = (10u64 << (restarts - 1).min(6)).min(500);
            std::thread::sleep(Duration::from_millis(backoff));
        }
    }

    /// Durability checkpoint after a drained serve loop: compact the
    /// memo store (snapshot + truncated journal) and truncate the
    /// request WAL — once the worker scope has joined, every admitted
    /// job's response has been journaled and written. Failures are
    /// counted, never fatal.
    fn checkpoint(&self) {
        if let Some(store) = &self.store {
            if store.snapshot(&self.cache).is_err() {
                self.persist_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(journal) = &self.journal {
            journal.reset();
        }
    }

    /// Replays the request journal after a crash, writing recovered
    /// response lines to `out`: responses journaled before the crash
    /// are replayed verbatim; admitted-but-unanswered jobs are
    /// re-executed in admit order. Each re-execution is journaled as an
    /// attempt first, so a job that keeps killing the daemon is refused
    /// with a typed `quarantined` error after
    /// [`ServeOptions::quarantine_after`] attempts instead of recrashing
    /// forever. The union of pre-crash client-visible responses and
    /// `out` is byte-identical to an uninterrupted run (the engine is
    /// deterministic and cached patches are SAT re-verified).
    pub fn resume_from_journal(&self, out: &mut dyn Write) -> io::Result<ResumeReport> {
        let t0 = Instant::now();
        let mut report = ResumeReport::default();
        let Some(dir) = self.opts.state_dir.clone() else {
            return Ok(report);
        };
        let state = load_request_journal(&dir)?;
        report.journal_records = state.log.records;
        report.journal_skipped = state.log.skipped_frames + state.bad_records;
        for (fp, line) in &state.admits {
            if state.refused.contains(fp) {
                continue; // the client already got a typed refusal
            }
            if let Some(response) = state.done.get(fp) {
                writeln!(out, "{response}")?;
                report.replayed += 1;
                continue;
            }
            let (id, spec) = match proto::parse_request(line) {
                Ok(Request::Run { id, spec }) => (id, spec),
                _ => {
                    report.skipped += 1;
                    continue;
                }
            };
            let attempts = state.attempts.get(fp).copied().unwrap_or(0);
            if attempts >= self.quarantine_after() {
                let refusal = proto::refusal(
                    &id,
                    "quarantined",
                    &format!("job failed {attempts} resume attempts; quarantined"),
                );
                // Journaled as this request's final answer: a later
                // resume replays the refusal instead of retrying.
                if let Some(journal) = &self.journal {
                    journal.done(*fp, &refusal);
                }
                writeln!(out, "{refusal}")?;
                report.quarantined += 1;
                continue;
            }
            if let Some(journal) = &self.journal {
                journal.attempt(*fp);
            }
            let record = self.run_spec(&spec);
            let response = proto::run_response(&id, &record);
            if let Some(journal) = &self.journal {
                journal.done(*fp, &response);
            }
            self.served.fetch_add(1, Ordering::Relaxed);
            writeln!(out, "{response}")?;
            report.recomputed += 1;
        }
        out.flush()?;
        report.wall = t0.elapsed();
        Ok(report)
    }

    /// Serves one request stream from any buffered reader, writing
    /// sequenced responses to `sink` — the stdio transport and the test
    /// harness. EOF ends the stream (a `shutdown` request additionally
    /// latches the daemon-wide drain flag); either way the call returns
    /// only after every admitted job's response was written. The memo
    /// cache belongs to the `Server`, so a later stream on the same
    /// daemon starts warm.
    pub fn serve_reader<R: BufRead>(&self, input: R, sink: Box<dyn Write + Send>) -> ServeSummary {
        let t0 = Instant::now();
        let queue = BoundedQueue::new(self.queue_capacity());
        let conn = Arc::new(ConnOut::new(sink));
        std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|| self.supervised_worker(&queue));
            }
            let mut seq = 0u64;
            for line in input.lines() {
                let Ok(line) = line else { break };
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let outcome = self.handle_line(line, seq, &conn, &queue);
                seq += 1;
                if outcome == LineOutcome::Shutdown {
                    break;
                }
            }
            queue.close();
        });
        self.checkpoint();
        self.summary(t0.elapsed())
    }

    /// Serves stdin → stdout (the `--stdio` transport: same protocol,
    /// no socket — handy for tests and one-shot pipelines).
    pub fn serve_stdio(&self) -> ServeSummary {
        self.serve_reader(io::stdin().lock(), Box::new(io::stdout()))
    }

    /// Binds `path` and serves connections until drain is requested —
    /// by a `shutdown` request on any connection or by the caller's
    /// `shutdown` flag (the CLI wires SIGTERM/SIGINT to it). Any stale
    /// socket file at `path` is replaced; the file is removed on exit.
    pub fn serve_unix(&self, path: &Path, shutdown: &AtomicBool) -> io::Result<ServeSummary> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let t0 = Instant::now();
        let queue = BoundedQueue::new(self.queue_capacity());
        std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|| self.supervised_worker(&queue));
            }
            loop {
                if shutdown.load(Ordering::Relaxed) {
                    self.request_drain();
                }
                if self.is_draining() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let queue = &queue;
                        s.spawn(move || self.handle_unix_conn(stream, queue));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    // Transient accept errors (e.g. a connection reset
                    // before accept): keep serving.
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            // Drain the accept backlog once: a connection established
            // before the drain latched still gets typed `draining`
            // refusals instead of a connection reset when the listener
            // drops.
            while let Ok((stream, _)) = listener.accept() {
                let queue = &queue;
                s.spawn(move || self.handle_unix_conn(stream, queue));
            }
            // Close admission; workers drain what was admitted, reader
            // threads notice the flag within READ_POLL and exit. The
            // scope join is the drain barrier.
            queue.close();
        });
        let _ = std::fs::remove_file(path);
        self.checkpoint();
        Ok(self.summary(t0.elapsed()))
    }

    /// One connection's reader: short read timeouts so drain is noticed
    /// even on an idle connection; responses go through the write half.
    fn handle_unix_conn(&self, stream: UnixStream, queue: &BoundedQueue<QueuedJob>) {
        let Ok(writer) = stream.try_clone() else {
            return;
        };
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let conn = Arc::new(ConnOut::new(Box::new(writer)));
        let mut reader = BufReader::new(stream);
        let mut seq = 0u64;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => break, // EOF
                Ok(_) => {
                    if buf.last() != Some(&b'\n') {
                        // Unterminated data: EOF follows on the next read.
                        continue;
                    }
                    if self.process_line_bytes(&mut buf, &mut seq, &conn, queue)
                        == LineOutcome::Shutdown
                    {
                        return;
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // `read_until` keeps partial bytes in `buf` across
                    // timeouts, so slow writers are reassembled intact.
                    if self.is_draining() {
                        return;
                    }
                }
                Err(_) => break,
            }
        }
        // A final line without a trailing newline still gets an answer.
        if !buf.is_empty() {
            self.process_line_bytes(&mut buf, &mut seq, &conn, queue);
        }
    }

    /// Decodes and handles one buffered line, consuming the buffer.
    /// Blank lines are skipped without using up a sequence number.
    fn process_line_bytes(
        &self,
        buf: &mut Vec<u8>,
        seq: &mut u64,
        conn: &Arc<ConnOut>,
        queue: &BoundedQueue<QueuedJob>,
    ) -> LineOutcome {
        let text = String::from_utf8_lossy(buf).into_owned();
        buf.clear();
        let line = text.trim();
        if line.is_empty() {
            return LineOutcome::Continue;
        }
        let outcome = self.handle_line(line, *seq, conn, queue);
        *seq += 1;
        outcome
    }
}

/// Unit tests can't make the hardened load/engine path panic from the
/// outside (that's the point of this PR), so containment is exercised
/// by a magic job name that detonates inside the worker's
/// `catch_unwind`.
#[cfg(test)]
fn test_panic_injection(spec: &JobSpec) {
    if spec.name == "panic-inject" {
        panic!("injected panic for containment tests");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A `Write` sink tests can read back after the server is done.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn take(&self) -> String {
            String::from_utf8(lock_recovering(&self.0).clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            lock_recovering(&self.0).extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn serve(opts: ServeOptions, input: &str) -> (String, ServeSummary) {
        let server = Server::new(opts);
        let sink = SharedBuf::default();
        let summary = server.serve_reader(Cursor::new(input.to_string()), Box::new(sink.clone()));
        (sink.take(), summary)
    }

    fn opts(workers: usize) -> ServeOptions {
        ServeOptions {
            workers,
            ..ServeOptions::default()
        }
    }

    /// Writes the doc example's patchable pair to a temp dir and returns
    /// `(dir, run-request line)` for job `name`.
    fn case_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("eco_serve_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("f.v"),
            "module f (a, b, t_0, y); input a, b, t_0; output y;\n\
             xor g1 (y, t_0, b); endmodule\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("g.v"),
            "module g (a, b, y); input a, b; output y; wire w;\n\
             and g1 (w, a, b); xor g2 (y, w, b); endmodule\n",
        )
        .unwrap();
        dir
    }

    fn run_line(dir: &Path, id: &str, name: &str) -> String {
        format!(
            r#"{{"op": "run", "id": "{id}", "job": {{"name": "{name}", "faulty": "{f}", "golden": "{g}"}}}}"#,
            f = dir.join("f.v").display(),
            g = dir.join("g.v").display(),
        )
    }

    #[test]
    fn inline_ops_respond_in_order() {
        let input = "{\"op\": \"ping\", \"id\": 1}\n\
                     not json\n\
                     {\"op\": \"ping\", \"id\": 2}\n";
        let (out, summary) = serve(opts(2), input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "{\"id\": 1, \"ok\": true, \"op\": \"ping\"}");
        assert!(lines[1].contains("\"error\": \"bad-request\""));
        assert_eq!(lines[2], "{\"id\": 2, \"ok\": true, \"op\": \"ping\"}");
        assert_eq!(summary.bad_requests, 1);
        assert_eq!(summary.served, 0);
    }

    #[test]
    fn run_responses_are_byte_identical_across_worker_counts() {
        let dir = case_dir("det");
        let mut input = String::new();
        for i in 0..6 {
            input.push_str(&run_line(&dir, &format!("r{i}"), &format!("job{i}")));
            input.push('\n');
        }
        // A missing-file job mid-stream must yield a deterministic error
        // record, not disturb its neighbors.
        input.push_str(
            r#"{"op": "run", "id": "gone", "job": {"name": "gone", "faulty": "/nonexistent/f.v", "golden": "/nonexistent/g.v"}}"#,
        );
        input.push('\n');
        let (out1, s1) = serve(opts(1), &input);
        let (out4, s4) = serve(opts(4), &input);
        assert_eq!(out1, out4, "responses must not depend on worker count");
        assert_eq!(s1.served, 7);
        assert_eq!(s4.served, 7);
        assert!(out1.contains("\"id\": \"r0\", \"ok\": true, \"op\": \"run\""));
        assert!(out1.contains("\"status\": \"complete\""));
        assert!(out1
            .lines()
            .nth(6)
            .unwrap()
            .contains("\"status\": \"error\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_cache_stays_warm_across_requests_and_serve_loops() {
        let dir = case_dir("warm");
        let server = Server::new(opts(1));
        // Two structurally identical instances: the second hits the
        // cache the first filled.
        let mut input = String::new();
        input.push_str(&run_line(&dir, "a", "one"));
        input.push('\n');
        input.push_str(&run_line(&dir, "b", "two"));
        input.push('\n');
        let sink = SharedBuf::default();
        let summary = server.serve_reader(Cursor::new(input), Box::new(sink.clone()));
        assert!(summary.memo.hits > 0, "second identical job must hit");
        // The cache belongs to the Server, not the serve loop: a later
        // stream on the same daemon sees the warm counters.
        let sink2 = SharedBuf::default();
        server.serve_reader(
            Cursor::new("{\"op\": \"stats\", \"id\": \"s\"}\n".to_string()),
            Box::new(sink2.clone()),
        );
        let stats_line = sink2.take();
        assert!(stats_line.contains("\"op\": \"stats\""), "{stats_line}");
        assert!(
            !stats_line.contains("\"hits\": 0,"),
            "stats echoes warm hits: {stats_line}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_ack_is_sequenced_after_all_admitted_work() {
        let dir = case_dir("drain");
        let mut input = String::new();
        for i in 0..3 {
            input.push_str(&run_line(&dir, &format!("r{i}"), &format!("job{i}")));
            input.push('\n');
        }
        input.push_str("{\"op\": \"shutdown\", \"id\": \"bye\"}\n");
        // Lines after shutdown are never read (the session ended).
        input.push_str("{\"op\": \"ping\", \"id\": \"late\"}\n");
        let (out, summary) = serve(opts(2), &input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "3 runs + ack, nothing after: {out}");
        assert!(lines[3].contains("\"op\": \"shutdown\""));
        assert!(lines[3].contains("\"draining\": true"));
        assert_eq!(summary.served, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_server_refuses_new_runs_with_typed_error() {
        let dir = case_dir("refuse");
        let server = Server::new(opts(2));
        server.request_drain();
        let sink = SharedBuf::default();
        let input = format!("{}\n", run_line(&dir, "x", "late"));
        let summary = server.serve_reader(Cursor::new(input), Box::new(sink.clone()));
        let out = sink.take();
        assert!(out.contains("\"error\": \"draining\""), "{out}");
        assert_eq!(summary.refused_draining, 1);
        assert_eq!(summary.served, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_queue_sheds_load_with_busy_and_sequences_the_refusal() {
        // Drive handle_line directly against an unserviced queue so the
        // overflow is deterministic: request 0 is admitted, request 1
        // overflows capacity 1 and is refused.
        let server = Server::new(ServeOptions {
            workers: 1,
            queue_capacity: 1,
            ..ServeOptions::default()
        });
        let queue: BoundedQueue<QueuedJob> = BoundedQueue::new(1);
        let sink = SharedBuf::default();
        let conn = Arc::new(ConnOut::new(Box::new(sink.clone())));
        let line =
            r#"{"op": "run", "id": 1, "job": {"name": "j", "faulty": "f.v", "golden": "g.v"}}"#;
        assert_eq!(
            server.handle_line(line, 0, &conn, &queue),
            LineOutcome::Continue
        );
        assert_eq!(
            server.handle_line(line, 1, &conn, &queue),
            LineOutcome::Continue
        );
        assert_eq!(server.busy.load(Ordering::Relaxed), 1);
        assert_eq!(queue.len(), 1, "first job stays admitted");
        // The refusal is *decided* immediately but *written* in request
        // order: it parks behind request 0 until a worker answers it.
        assert!(sink.take().is_empty(), "refusal held until seq 0 flushes");
        queue.close();
        std::thread::scope(|s| {
            s.spawn(|| server.worker_loop(&queue));
        });
        let out = sink.take();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        // f.v doesn't exist, so request 0 is a deterministic error
        // record — and its flush releases the parked busy refusal.
        assert!(lines[0].contains("\"status\": \"error\""), "{out}");
        assert!(lines[1].contains("\"error\": \"busy\""), "{out}");
    }

    /// The serve-session half of the panic regression: a job that
    /// panics inside a worker becomes one `error` response while the
    /// session keeps serving — the worker thread, its queue, and the
    /// response sequencer all survive.
    #[test]
    fn panicking_job_yields_error_response_and_session_continues() {
        let dir = case_dir("panic");
        for workers in [1, 4] {
            let mut input = String::new();
            input.push_str(&run_line(&dir, "ok1", "first"));
            input.push('\n');
            input.push_str(
                r#"{"op": "run", "id": "boom", "job": {"name": "panic-inject", "faulty": "f.v", "golden": "g.v"}}"#,
            );
            input.push('\n');
            input.push_str(&run_line(&dir, "ok2", "second"));
            input.push('\n');
            let (out, summary) = serve(opts(workers), &input);
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines.len(), 3, "workers={workers}: {out}");
            assert!(lines[0].contains("\"status\": \"complete\""), "{out}");
            assert!(
                lines[1].contains("\"status\": \"error\"")
                    && lines[1].contains("job worker panicked"),
                "{out}"
            );
            assert!(lines[2].contains("\"status\": \"complete\""), "{out}");
            assert_eq!(summary.served, 3, "panicked job still counts as served");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A panic while holding the sequencer lock must not abort the
    /// connection: later sends recover the state and flush in order.
    #[test]
    fn poisoned_sequencer_recovers_and_still_flushes_in_order() {
        let sink = SharedBuf::default();
        let conn = Arc::new(ConnOut::new(Box::new(sink.clone())));
        let poisoner = Arc::clone(&conn);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("die holding the sequencer lock");
        })
        .join();
        assert!(conn.inner.lock().is_err(), "lock must actually be poisoned");
        conn.send(1, "second".into());
        conn.send(0, "first".into());
        assert_eq!(sink.take(), "first\nsecond\n");
    }

    /// The crash-recovery core property, without a real SIGKILL (the
    /// chaos campaign covers that): a journal holding one answered and
    /// one unanswered admit resumes to exactly the missing responses,
    /// and the union is byte-identical to an uninterrupted run.
    #[test]
    fn resume_replays_done_and_recomputes_unfinished_byte_identically() {
        let dir = case_dir("resume");
        let state_dir = dir.join("state");
        let line0 = run_line(&dir, "r0", "job0");
        let line1 = run_line(&dir, "r1", "job1");
        // Uninterrupted in-memory reference run.
        let (reference, _) = serve(opts(1), &format!("{line0}\n{line1}\n"));
        let reference: Vec<&str> = reference.lines().collect();
        assert_eq!(reference.len(), 2);
        // Forge the crash: job0 was admitted and answered (its response
        // journaled before the client saw it), job1 was admitted and
        // then the daemon died — no checkpoint ever ran.
        {
            let journal = crate::journal::RequestJournal::open(&state_dir).unwrap();
            let fp0 = request_fingerprint(&line0);
            journal.admit(fp0, &line0);
            journal.done(fp0, reference[0]);
            journal.admit(request_fingerprint(&line1), &line1);
        }
        let server = Server::new(ServeOptions {
            workers: 1,
            state_dir: Some(state_dir.clone()),
            ..ServeOptions::default()
        });
        let mut out = Vec::new();
        let report = server.resume_from_journal(&mut out).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.recomputed, 1);
        assert_eq!(report.quarantined, 0);
        let recovered = String::from_utf8(out).unwrap();
        let recovered: Vec<&str> = recovered.lines().collect();
        assert_eq!(
            recovered, reference,
            "replayed + recomputed responses must equal the fault-free run"
        );
        // A second resume replays both verbatim (the recomputation was
        // journaled as done) and recomputes nothing.
        let server2 = Server::new(ServeOptions {
            workers: 1,
            state_dir: Some(state_dir),
            ..ServeOptions::default()
        });
        let mut out2 = Vec::new();
        let report2 = server2.resume_from_journal(&mut out2).unwrap();
        assert_eq!(report2.replayed, 2);
        assert_eq!(report2.recomputed, 0);
        assert_eq!(String::from_utf8(out2).unwrap().lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A job that keeps killing the daemon is quarantined with a typed
    /// refusal after the attempt budget, instead of recrashing forever.
    #[test]
    fn resume_quarantines_repeat_offenders() {
        let dir = case_dir("quarantine");
        let state_dir = dir.join("state");
        let killer = r#"{"op": "run", "id": "k", "job": {"name": "killer", "faulty": "f.v", "golden": "g.v"}}"#;
        let fp = request_fingerprint(killer);
        {
            let journal = crate::journal::RequestJournal::open(&state_dir).unwrap();
            journal.admit(fp, killer);
            for _ in 0..3 {
                journal.attempt(fp); // three resumes died mid-attempt
            }
        }
        let server = Server::new(ServeOptions {
            workers: 1,
            state_dir: Some(state_dir),
            ..ServeOptions::default()
        });
        let mut out = Vec::new();
        let report = server.resume_from_journal(&mut out).unwrap();
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.recomputed, 0);
        let line = String::from_utf8(out).unwrap();
        assert!(line.contains("\"error\": \"quarantined\""), "{line}");
        assert!(line.contains("\"id\": \"k\""), "{line}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Warm restart: a drained serve loop checkpoints the memo store,
    /// and a fresh daemon on the same state directory loads it — the
    /// repeated job is a cache hit with byte-identical responses.
    #[test]
    fn memo_store_survives_restart_and_stays_byte_identical() {
        let dir = case_dir("durable");
        let state_dir = dir.join("state");
        let input = format!("{}\n", run_line(&dir, "a", "one"));
        let serve_with_state = || {
            let server = Server::new(ServeOptions {
                workers: 1,
                state_dir: Some(state_dir.clone()),
                ..ServeOptions::default()
            });
            assert!(server.state_error().is_none(), "{:?}", server.state_error());
            let sink = SharedBuf::default();
            let summary = server.serve_reader(Cursor::new(input.clone()), Box::new(sink.clone()));
            (sink.take(), summary)
        };
        let (out1, s1) = serve_with_state();
        assert_eq!(s1.memo_loaded, 0, "first run starts cold");
        assert!(s1.journal_appended > 0, "memo entries + requests journaled");
        assert_eq!(s1.persist_errors, 0);
        let (out2, s2) = serve_with_state();
        assert!(s2.memo_loaded > 0, "restart loads the snapshot");
        assert!(
            s2.memo.hits > 0,
            "restarted daemon answers the repeat from the loaded store"
        );
        assert_eq!(out1, out2, "durability must not change response bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unix_socket_round_trip_with_drain() {
        let dir = case_dir("unix");
        let sock = dir.join("eco.sock");
        let server = Arc::new(Server::new(opts(2)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let server = Arc::clone(&server);
            let sock = sock.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || server.serve_unix(&sock, &shutdown).unwrap())
        };
        // Wait for the socket to appear.
        let mut stream = loop {
            match UnixStream::connect(&sock) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        let mut req = run_line(&dir, "u1", "unixjob");
        req.push('\n');
        req.push_str("{\"op\": \"shutdown\", \"id\": \"bye\"}\n");
        stream.write_all(req.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"id\": \"u1\""), "{line}");
        assert!(line.contains("\"status\": \"complete\""), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"op\": \"shutdown\""), "{line}");
        let summary = handle.join().unwrap();
        assert_eq!(summary.served, 1);
        assert!(!sock.exists(), "socket file removed on exit");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
