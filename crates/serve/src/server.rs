//! The daemon core: admission control, the worker pool, response
//! sequencing, and graceful drain.
//!
//! A [`Server`] owns one process-lifetime [`MemoCache`] shared by every
//! request it ever serves — the "always-warm" property: a structurally
//! identical job arriving minutes later hits the cache that the first
//! occurrence filled, across connections and across clients.
//!
//! # Architecture
//!
//! ```text
//!  conn readers ──try_push──▶ BoundedQueue ──pop──▶ worker pool
//!   (1/conn)        │ Full → "busy"                  (N threads)
//!                   │ Closed → "draining"              │ execute_job
//!                   ▼                                  ▼
//!            refusal via ConnOut  ◀──seq-ordered── run response
//! ```
//!
//! * **Admission control** — run requests go through a
//!   [`BoundedQueue`]: beyond capacity the push comes straight back and
//!   the client gets a typed `busy` refusal instead of unbounded queue
//!   growth; after drain starts the queue is closed and refusals say
//!   `draining`.
//! * **Determinism** — each connection's responses pass through a
//!   sequencer ([`ConnOut`]) that writes them in *request* order no
//!   matter which worker finishes first, and run responses carry only
//!   scheduling-independent record fields, so a replayed request stream
//!   produces byte-identical response bytes for any worker count.
//! * **Graceful drain** — a `shutdown` request (or SIGTERM via the
//!   caller's flag, or stdin EOF in stdio mode) latches the draining
//!   flag: the accept loop stops taking connections, the queue closes
//!   (new pushes refused, admitted jobs still pop), workers finish
//!   in-flight work, and the scope join guarantees every admitted job's
//!   response was written before the daemon exits.
//! * **Panic containment** — a panicking job becomes one `error`-status
//!   run response; the worker thread survives. Combined with the
//!   poison-recovering locks in [`eco_batch::executor`] and
//!   `eco_core::memo`, no single poisoned request can abort the daemon.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use eco_batch::{
    execute_job, load_job_instance, BoundedQueue, JobRecord, JobSpec, JobStatus, PushError,
};
use eco_core::{Budget, BudgetOptions, EcoOptions, JsonObj, MemoCache, MemoStats};

use crate::proto::{self, Request, StatsView};
use eco_batch::json;

/// How often blocked unix-socket reads and the accept loop re-check the
/// draining flag.
const READ_POLL: Duration = Duration::from_millis(100);
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Knobs for a daemon instance.
#[derive(Clone, Debug, Default)]
pub struct ServeOptions {
    /// Worker threads popping the admission queue; `0` = one per core.
    pub workers: usize,
    /// Admission-queue capacity; pushes beyond it are shed with `busy`
    /// (`0` = the default of 64).
    pub queue_capacity: usize,
    /// Per-request governor budget. The clock starts when the job is
    /// dequeued, and a request's own `budget` field tightens the
    /// conflict allowance via [`Budget::child`]. Leave unlimited for the
    /// memo cache to be consulted (governed runs bypass it).
    pub request_budget: BudgetOptions,
    /// Base engine options for every request (`jobs` and `memo` are
    /// overridden per job, as in the batch runner).
    pub eco: EcoOptions,
}

/// What a serve run did, for the operator's exit summary.
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Run jobs executed to a response (including error records).
    pub served: u64,
    /// Run requests shed with a `busy` refusal.
    pub busy: u64,
    /// Run requests refused because the daemon was draining.
    pub refused_draining: u64,
    /// Lines answered with `bad-request`.
    pub bad_requests: u64,
    /// Final shared-cache counters.
    pub memo: MemoStats,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time the serve loop ran.
    pub wall: Duration,
}

/// Renders a [`ServeSummary`] as one JSON object (the daemon's exit
/// report on stderr under `--stats`).
pub fn summary_json(s: &ServeSummary) -> String {
    let memo = JsonObj::new()
        .u64("hits", s.memo.hits)
        .u64("misses", s.memo.misses)
        .u64("insertions", s.memo.insertions)
        .u64("evictions", s.memo.evictions)
        .u64("fallbacks", s.memo.fallbacks)
        .u64("entries", s.memo.entries)
        .build();
    JsonObj::new()
        .u64("served", s.served)
        .u64("busy", s.busy)
        .u64("refused_draining", s.refused_draining)
        .u64("bad_requests", s.bad_requests)
        .u64("workers", s.workers as u64)
        .raw("wall_s", &format!("{:.6}", s.wall.as_secs_f64()))
        .raw("memo", &memo)
        .build()
}

/// Locks a mutex, recovering from poisoning — same policy as the
/// executor: the sequencer state is a plain map valid at every unwind
/// point, so a panicking sibling must not abort the connection.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-connection response sequencer. Workers finish in any order, but
/// responses are written strictly in request (sequence) order: an
/// out-of-order response parks in `pending` until its predecessors
/// flush. This is what makes a serve session's response bytes identical
/// for any worker count.
pub(crate) struct ConnOut {
    inner: Mutex<SeqState>,
}

struct SeqState {
    next: u64,
    pending: BTreeMap<u64, String>,
    sink: Box<dyn Write + Send>,
}

impl ConnOut {
    fn new(sink: Box<dyn Write + Send>) -> Self {
        ConnOut {
            inner: Mutex::new(SeqState {
                next: 0,
                pending: BTreeMap::new(),
                sink,
            }),
        }
    }

    /// Queues response line `seq` and flushes every contiguous response
    /// from `next` upward. Write errors are ignored (the client is
    /// gone); sequencing state still advances so the session drains.
    fn send(&self, seq: u64, line: String) {
        let mut guard = lock_recovering(&self.inner);
        let state = &mut *guard;
        state.pending.insert(seq, line);
        while let Some(line) = state.pending.remove(&state.next) {
            state.next += 1;
            let _ = writeln!(state.sink, "{line}");
        }
        let _ = state.sink.flush();
    }
}

/// A run request admitted to the worker queue.
struct QueuedJob {
    conn: Arc<ConnOut>,
    seq: u64,
    id: json::Value,
    spec: JobSpec,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LineOutcome {
    Continue,
    Shutdown,
}

/// The daemon: one shared memo cache, one draining flag, and the
/// counters behind `stats` responses. Serve loops ([`Server::serve_unix`],
/// [`Server::serve_reader`]) borrow it; the cache outlives them all, so
/// a second serve loop on the same `Server` starts warm.
pub struct Server {
    opts: ServeOptions,
    workers: usize,
    cache: Arc<MemoCache>,
    draining: AtomicBool,
    served: AtomicU64,
    busy: AtomicU64,
    refused_draining: AtomicU64,
    bad_requests: AtomicU64,
}

impl Server {
    /// A daemon with a fresh process-lifetime memo cache.
    pub fn new(opts: ServeOptions) -> Self {
        let workers = if opts.workers != 0 {
            opts.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        Server {
            opts,
            workers,
            cache: Arc::new(MemoCache::new()),
            draining: AtomicBool::new(false),
            served: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            refused_draining: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
        }
    }

    fn queue_capacity(&self) -> usize {
        if self.opts.queue_capacity != 0 {
            self.opts.queue_capacity
        } else {
            64
        }
    }

    /// `true` once drain has begun (no new run requests are admitted).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Latches the draining flag: in-flight and already-admitted jobs
    /// finish, new run requests are refused with `draining`.
    pub fn request_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Current counters (what a `stats` response reports).
    fn stats_view(&self, queued: usize) -> StatsView {
        StatsView {
            memo: self.cache.stats(),
            queued,
            served: self.served.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            workers: self.workers,
        }
    }

    fn summary(&self, wall: Duration) -> ServeSummary {
        ServeSummary {
            served: self.served.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            refused_draining: self.refused_draining.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            memo: self.cache.stats(),
            workers: self.workers,
            wall,
        }
    }

    /// Handles one request line: inline ops (`ping`, `stats`,
    /// `shutdown`, refusals) respond immediately through the sequencer;
    /// `run` is pushed to the admission queue for a worker.
    fn handle_line(
        &self,
        line: &str,
        seq: u64,
        conn: &Arc<ConnOut>,
        queue: &BoundedQueue<QueuedJob>,
    ) -> LineOutcome {
        match proto::parse_request(line) {
            Err(msg) => {
                self.bad_requests.fetch_add(1, Ordering::Relaxed);
                conn.send(seq, proto::refusal(&json::Value::Null, "bad-request", &msg));
                LineOutcome::Continue
            }
            Ok(Request::Ping { id }) => {
                conn.send(seq, proto::ping_response(&id));
                LineOutcome::Continue
            }
            Ok(Request::Stats { id }) => {
                let view = self.stats_view(queue.len());
                conn.send(seq, proto::stats_response(&id, &view));
                LineOutcome::Continue
            }
            Ok(Request::Shutdown { id }) => {
                self.request_drain();
                // The ack is sequenced behind every earlier response of
                // this connection: when the client reads it, all of its
                // admitted work is done.
                conn.send(seq, proto::shutdown_response(&id));
                LineOutcome::Shutdown
            }
            Ok(Request::Run { id, spec }) => {
                if self.is_draining() {
                    self.refused_draining.fetch_add(1, Ordering::Relaxed);
                    conn.send(
                        seq,
                        proto::refusal(&id, "draining", "daemon is draining; no new work"),
                    );
                    return LineOutcome::Continue;
                }
                let job = QueuedJob {
                    conn: Arc::clone(conn),
                    seq,
                    id,
                    spec,
                };
                match queue.try_push(job) {
                    Ok(()) => {}
                    Err((job, PushError::Full)) => {
                        self.busy.fetch_add(1, Ordering::Relaxed);
                        let detail =
                            format!("admission queue full ({} jobs)", self.queue_capacity());
                        job.conn
                            .send(job.seq, proto::refusal(&job.id, "busy", &detail));
                    }
                    Err((job, PushError::Closed)) => {
                        self.refused_draining.fetch_add(1, Ordering::Relaxed);
                        job.conn.send(
                            job.seq,
                            proto::refusal(&job.id, "draining", "daemon is draining; no new work"),
                        );
                    }
                }
                LineOutcome::Continue
            }
        }
    }

    /// One worker: pop admitted jobs until the queue closes and drains.
    /// Each job gets a fresh per-request [`Budget`] (clock starts now)
    /// tightened by the request's own allowance via [`Budget::child`] —
    /// the batch runner's apportioning, at request granularity. A
    /// panicking job becomes one `error` response; the worker survives.
    fn worker_loop(&self, queue: &BoundedQueue<QueuedJob>) {
        while let Some(job) = queue.pop() {
            let allowance = match (self.opts.request_budget.cluster_conflicts, job.spec.budget) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let budget = Budget::new(&self.opts.request_budget).child(allowance);
            let record = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(test)]
                test_panic_injection(&job.spec);
                let source = load_job_instance(&job.spec);
                execute_job(
                    &job.spec.name,
                    &source,
                    &self.opts.eco,
                    &budget,
                    &self.cache,
                )
            }))
            .unwrap_or_else(|_| JobRecord {
                pass: 0,
                index: 0,
                name: job.spec.name.clone(),
                status: JobStatus::Error,
                targets: 0,
                patches: 0,
                cost: 0,
                size: 0,
                verified: false,
                detail: "job worker panicked".into(),
            });
            self.served.fetch_add(1, Ordering::Relaxed);
            job.conn
                .send(job.seq, proto::run_response(&job.id, &record));
        }
    }

    /// Serves one request stream from any buffered reader, writing
    /// sequenced responses to `sink` — the stdio transport and the test
    /// harness. EOF ends the stream (a `shutdown` request additionally
    /// latches the daemon-wide drain flag); either way the call returns
    /// only after every admitted job's response was written. The memo
    /// cache belongs to the `Server`, so a later stream on the same
    /// daemon starts warm.
    pub fn serve_reader<R: BufRead>(&self, input: R, sink: Box<dyn Write + Send>) -> ServeSummary {
        let t0 = Instant::now();
        let queue = BoundedQueue::new(self.queue_capacity());
        let conn = Arc::new(ConnOut::new(sink));
        std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|| self.worker_loop(&queue));
            }
            let mut seq = 0u64;
            for line in input.lines() {
                let Ok(line) = line else { break };
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let outcome = self.handle_line(line, seq, &conn, &queue);
                seq += 1;
                if outcome == LineOutcome::Shutdown {
                    break;
                }
            }
            queue.close();
        });
        self.summary(t0.elapsed())
    }

    /// Serves stdin → stdout (the `--stdio` transport: same protocol,
    /// no socket — handy for tests and one-shot pipelines).
    pub fn serve_stdio(&self) -> ServeSummary {
        self.serve_reader(io::stdin().lock(), Box::new(io::stdout()))
    }

    /// Binds `path` and serves connections until drain is requested —
    /// by a `shutdown` request on any connection or by the caller's
    /// `shutdown` flag (the CLI wires SIGTERM/SIGINT to it). Any stale
    /// socket file at `path` is replaced; the file is removed on exit.
    pub fn serve_unix(&self, path: &Path, shutdown: &AtomicBool) -> io::Result<ServeSummary> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let t0 = Instant::now();
        let queue = BoundedQueue::new(self.queue_capacity());
        std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|| self.worker_loop(&queue));
            }
            loop {
                if shutdown.load(Ordering::Relaxed) {
                    self.request_drain();
                }
                if self.is_draining() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let queue = &queue;
                        s.spawn(move || self.handle_unix_conn(stream, queue));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    // Transient accept errors (e.g. a connection reset
                    // before accept): keep serving.
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            // Close admission; workers drain what was admitted, reader
            // threads notice the flag within READ_POLL and exit. The
            // scope join is the drain barrier.
            queue.close();
        });
        let _ = std::fs::remove_file(path);
        Ok(self.summary(t0.elapsed()))
    }

    /// One connection's reader: short read timeouts so drain is noticed
    /// even on an idle connection; responses go through the write half.
    fn handle_unix_conn(&self, stream: UnixStream, queue: &BoundedQueue<QueuedJob>) {
        let Ok(writer) = stream.try_clone() else {
            return;
        };
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let conn = Arc::new(ConnOut::new(Box::new(writer)));
        let mut reader = BufReader::new(stream);
        let mut seq = 0u64;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => break, // EOF
                Ok(_) => {
                    if buf.last() != Some(&b'\n') {
                        // Unterminated data: EOF follows on the next read.
                        continue;
                    }
                    if self.process_line_bytes(&mut buf, &mut seq, &conn, queue)
                        == LineOutcome::Shutdown
                    {
                        return;
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // `read_until` keeps partial bytes in `buf` across
                    // timeouts, so slow writers are reassembled intact.
                    if self.is_draining() {
                        return;
                    }
                }
                Err(_) => break,
            }
        }
        // A final line without a trailing newline still gets an answer.
        if !buf.is_empty() {
            self.process_line_bytes(&mut buf, &mut seq, &conn, queue);
        }
    }

    /// Decodes and handles one buffered line, consuming the buffer.
    /// Blank lines are skipped without using up a sequence number.
    fn process_line_bytes(
        &self,
        buf: &mut Vec<u8>,
        seq: &mut u64,
        conn: &Arc<ConnOut>,
        queue: &BoundedQueue<QueuedJob>,
    ) -> LineOutcome {
        let text = String::from_utf8_lossy(buf).into_owned();
        buf.clear();
        let line = text.trim();
        if line.is_empty() {
            return LineOutcome::Continue;
        }
        let outcome = self.handle_line(line, *seq, conn, queue);
        *seq += 1;
        outcome
    }
}

/// Unit tests can't make the hardened load/engine path panic from the
/// outside (that's the point of this PR), so containment is exercised
/// by a magic job name that detonates inside the worker's
/// `catch_unwind`.
#[cfg(test)]
fn test_panic_injection(spec: &JobSpec) {
    if spec.name == "panic-inject" {
        panic!("injected panic for containment tests");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A `Write` sink tests can read back after the server is done.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn take(&self) -> String {
            String::from_utf8(lock_recovering(&self.0).clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            lock_recovering(&self.0).extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn serve(opts: ServeOptions, input: &str) -> (String, ServeSummary) {
        let server = Server::new(opts);
        let sink = SharedBuf::default();
        let summary = server.serve_reader(Cursor::new(input.to_string()), Box::new(sink.clone()));
        (sink.take(), summary)
    }

    fn opts(workers: usize) -> ServeOptions {
        ServeOptions {
            workers,
            ..ServeOptions::default()
        }
    }

    /// Writes the doc example's patchable pair to a temp dir and returns
    /// `(dir, run-request line)` for job `name`.
    fn case_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("eco_serve_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("f.v"),
            "module f (a, b, t_0, y); input a, b, t_0; output y;\n\
             xor g1 (y, t_0, b); endmodule\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("g.v"),
            "module g (a, b, y); input a, b; output y; wire w;\n\
             and g1 (w, a, b); xor g2 (y, w, b); endmodule\n",
        )
        .unwrap();
        dir
    }

    fn run_line(dir: &Path, id: &str, name: &str) -> String {
        format!(
            r#"{{"op": "run", "id": "{id}", "job": {{"name": "{name}", "faulty": "{f}", "golden": "{g}"}}}}"#,
            f = dir.join("f.v").display(),
            g = dir.join("g.v").display(),
        )
    }

    #[test]
    fn inline_ops_respond_in_order() {
        let input = "{\"op\": \"ping\", \"id\": 1}\n\
                     not json\n\
                     {\"op\": \"ping\", \"id\": 2}\n";
        let (out, summary) = serve(opts(2), input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "{\"id\": 1, \"ok\": true, \"op\": \"ping\"}");
        assert!(lines[1].contains("\"error\": \"bad-request\""));
        assert_eq!(lines[2], "{\"id\": 2, \"ok\": true, \"op\": \"ping\"}");
        assert_eq!(summary.bad_requests, 1);
        assert_eq!(summary.served, 0);
    }

    #[test]
    fn run_responses_are_byte_identical_across_worker_counts() {
        let dir = case_dir("det");
        let mut input = String::new();
        for i in 0..6 {
            input.push_str(&run_line(&dir, &format!("r{i}"), &format!("job{i}")));
            input.push('\n');
        }
        // A missing-file job mid-stream must yield a deterministic error
        // record, not disturb its neighbors.
        input.push_str(
            r#"{"op": "run", "id": "gone", "job": {"name": "gone", "faulty": "/nonexistent/f.v", "golden": "/nonexistent/g.v"}}"#,
        );
        input.push('\n');
        let (out1, s1) = serve(opts(1), &input);
        let (out4, s4) = serve(opts(4), &input);
        assert_eq!(out1, out4, "responses must not depend on worker count");
        assert_eq!(s1.served, 7);
        assert_eq!(s4.served, 7);
        assert!(out1.contains("\"id\": \"r0\", \"ok\": true, \"op\": \"run\""));
        assert!(out1.contains("\"status\": \"complete\""));
        assert!(out1
            .lines()
            .nth(6)
            .unwrap()
            .contains("\"status\": \"error\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_cache_stays_warm_across_requests_and_serve_loops() {
        let dir = case_dir("warm");
        let server = Server::new(opts(1));
        // Two structurally identical instances: the second hits the
        // cache the first filled.
        let mut input = String::new();
        input.push_str(&run_line(&dir, "a", "one"));
        input.push('\n');
        input.push_str(&run_line(&dir, "b", "two"));
        input.push('\n');
        let sink = SharedBuf::default();
        let summary = server.serve_reader(Cursor::new(input), Box::new(sink.clone()));
        assert!(summary.memo.hits > 0, "second identical job must hit");
        // The cache belongs to the Server, not the serve loop: a later
        // stream on the same daemon sees the warm counters.
        let sink2 = SharedBuf::default();
        server.serve_reader(
            Cursor::new("{\"op\": \"stats\", \"id\": \"s\"}\n".to_string()),
            Box::new(sink2.clone()),
        );
        let stats_line = sink2.take();
        assert!(stats_line.contains("\"op\": \"stats\""), "{stats_line}");
        assert!(
            !stats_line.contains("\"hits\": 0,"),
            "stats echoes warm hits: {stats_line}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_ack_is_sequenced_after_all_admitted_work() {
        let dir = case_dir("drain");
        let mut input = String::new();
        for i in 0..3 {
            input.push_str(&run_line(&dir, &format!("r{i}"), &format!("job{i}")));
            input.push('\n');
        }
        input.push_str("{\"op\": \"shutdown\", \"id\": \"bye\"}\n");
        // Lines after shutdown are never read (the session ended).
        input.push_str("{\"op\": \"ping\", \"id\": \"late\"}\n");
        let (out, summary) = serve(opts(2), &input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "3 runs + ack, nothing after: {out}");
        assert!(lines[3].contains("\"op\": \"shutdown\""));
        assert!(lines[3].contains("\"draining\": true"));
        assert_eq!(summary.served, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_server_refuses_new_runs_with_typed_error() {
        let dir = case_dir("refuse");
        let server = Server::new(opts(2));
        server.request_drain();
        let sink = SharedBuf::default();
        let input = format!("{}\n", run_line(&dir, "x", "late"));
        let summary = server.serve_reader(Cursor::new(input), Box::new(sink.clone()));
        let out = sink.take();
        assert!(out.contains("\"error\": \"draining\""), "{out}");
        assert_eq!(summary.refused_draining, 1);
        assert_eq!(summary.served, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_queue_sheds_load_with_busy_and_sequences_the_refusal() {
        // Drive handle_line directly against an unserviced queue so the
        // overflow is deterministic: request 0 is admitted, request 1
        // overflows capacity 1 and is refused.
        let server = Server::new(ServeOptions {
            workers: 1,
            queue_capacity: 1,
            ..ServeOptions::default()
        });
        let queue: BoundedQueue<QueuedJob> = BoundedQueue::new(1);
        let sink = SharedBuf::default();
        let conn = Arc::new(ConnOut::new(Box::new(sink.clone())));
        let line =
            r#"{"op": "run", "id": 1, "job": {"name": "j", "faulty": "f.v", "golden": "g.v"}}"#;
        assert_eq!(
            server.handle_line(line, 0, &conn, &queue),
            LineOutcome::Continue
        );
        assert_eq!(
            server.handle_line(line, 1, &conn, &queue),
            LineOutcome::Continue
        );
        assert_eq!(server.busy.load(Ordering::Relaxed), 1);
        assert_eq!(queue.len(), 1, "first job stays admitted");
        // The refusal is *decided* immediately but *written* in request
        // order: it parks behind request 0 until a worker answers it.
        assert!(sink.take().is_empty(), "refusal held until seq 0 flushes");
        queue.close();
        std::thread::scope(|s| {
            s.spawn(|| server.worker_loop(&queue));
        });
        let out = sink.take();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        // f.v doesn't exist, so request 0 is a deterministic error
        // record — and its flush releases the parked busy refusal.
        assert!(lines[0].contains("\"status\": \"error\""), "{out}");
        assert!(lines[1].contains("\"error\": \"busy\""), "{out}");
    }

    /// The serve-session half of the panic regression: a job that
    /// panics inside a worker becomes one `error` response while the
    /// session keeps serving — the worker thread, its queue, and the
    /// response sequencer all survive.
    #[test]
    fn panicking_job_yields_error_response_and_session_continues() {
        let dir = case_dir("panic");
        for workers in [1, 4] {
            let mut input = String::new();
            input.push_str(&run_line(&dir, "ok1", "first"));
            input.push('\n');
            input.push_str(
                r#"{"op": "run", "id": "boom", "job": {"name": "panic-inject", "faulty": "f.v", "golden": "g.v"}}"#,
            );
            input.push('\n');
            input.push_str(&run_line(&dir, "ok2", "second"));
            input.push('\n');
            let (out, summary) = serve(opts(workers), &input);
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines.len(), 3, "workers={workers}: {out}");
            assert!(lines[0].contains("\"status\": \"complete\""), "{out}");
            assert!(
                lines[1].contains("\"status\": \"error\"")
                    && lines[1].contains("job worker panicked"),
                "{out}"
            );
            assert!(lines[2].contains("\"status\": \"complete\""), "{out}");
            assert_eq!(summary.served, 3, "panicked job still counts as served");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A panic while holding the sequencer lock must not abort the
    /// connection: later sends recover the state and flush in order.
    #[test]
    fn poisoned_sequencer_recovers_and_still_flushes_in_order() {
        let sink = SharedBuf::default();
        let conn = Arc::new(ConnOut::new(Box::new(sink.clone())));
        let poisoner = Arc::clone(&conn);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("die holding the sequencer lock");
        })
        .join();
        assert!(conn.inner.lock().is_err(), "lock must actually be poisoned");
        conn.send(1, "second".into());
        conn.send(0, "first".into());
        assert_eq!(sink.take(), "first\nsecond\n");
    }

    #[test]
    fn unix_socket_round_trip_with_drain() {
        let dir = case_dir("unix");
        let sock = dir.join("eco.sock");
        let server = Arc::new(Server::new(opts(2)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let server = Arc::clone(&server);
            let sock = sock.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || server.serve_unix(&sock, &shutdown).unwrap())
        };
        // Wait for the socket to appear.
        let mut stream = loop {
            match UnixStream::connect(&sock) {
                Ok(s) => break s,
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        let mut req = run_line(&dir, "u1", "unixjob");
        req.push('\n');
        req.push_str("{\"op\": \"shutdown\", \"id\": \"bye\"}\n");
        stream.write_all(req.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"id\": \"u1\""), "{line}");
        assert!(line.contains("\"status\": \"complete\""), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"op\": \"shutdown\""), "{line}");
        let summary = handle.join().unwrap();
        assert_eq!(summary.served, 1);
        assert!(!sock.exists(), "socket file removed on exit");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
