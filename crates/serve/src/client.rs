//! The synchronous request/response client and its latency report —
//! the load-measurement half of `eco-serve`.
//!
//! [`run_client`] replays a request stream (one JSON request per line,
//! as emitted by `eco-workgen --requests`) against a connected server,
//! one request at a time: send a line, wait for its response line, echo
//! it to `out`, and record the round-trip latency. Optional pacing
//! (`rate`) spaces sends at a target requests/second; the stream still
//! never overlaps requests, so measured latencies are pure round trips.
//! The transport is any `BufRead`/`Write` pair, so the same code drives
//! a unix socket or an in-memory test harness.

use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

use eco_batch::json;
use eco_core::JsonObj;

/// First retry delay; doubles per attempt (jitter-free, so replays are
/// deterministic) up to [`RETRY_BACKOFF_CAP`].
const RETRY_BACKOFF_BASE: Duration = Duration::from_millis(25);
const RETRY_BACKOFF_CAP: Duration = Duration::from_millis(1000);

/// Client knobs.
#[derive(Clone, Debug, Default)]
pub struct ClientOptions {
    /// Target send rate in requests/second (`None` = as fast as the
    /// round trips allow).
    pub rate: Option<f64>,
    /// Append a `shutdown` request after the stream and wait for the
    /// ack (which the server sequences behind all admitted work).
    pub shutdown: bool,
    /// Resend a request refused with the typed `busy` error up to this
    /// many times, backing off exponentially (jitter-free: 25ms, 50ms,
    /// … capped at 1s). `0` (the default) echoes the refusal like any
    /// other response.
    pub retries: u32,
}

/// The backoff before retry number `attempt` (1-based).
pub fn retry_backoff(attempt: u32) -> Duration {
    let base = RETRY_BACKOFF_BASE.as_millis() as u64;
    Duration::from_millis((base << (attempt - 1).min(10)).min(RETRY_BACKOFF_CAP.as_millis() as u64))
}

/// What one client run measured.
#[derive(Clone, Debug)]
pub struct ClientSummary {
    /// Requests sent from the input stream (excluding the optional
    /// trailing shutdown).
    pub requests: u64,
    /// `busy` refusals that were retried (resends beyond the first
    /// attempt).
    pub retried: u64,
    /// Wall-clock time of the whole replay.
    pub wall: Duration,
    /// Per-request round-trip latencies, in send order (microseconds).
    /// A retried request's latency spans first send → accepted
    /// response, backoffs included.
    pub latencies_us: Vec<u64>,
}

/// Replays `input` against a server reachable via `server_tx` /
/// `server_rx`, echoing each response line to `out`. Blank input lines
/// are skipped. Errors out if the server closes mid-stream.
pub fn run_client(
    server_rx: &mut dyn BufRead,
    server_tx: &mut dyn Write,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
    opts: &ClientOptions,
) -> io::Result<ClientSummary> {
    let start = Instant::now();
    let interval = opts
        .rate
        .filter(|r| *r > 0.0)
        .map(|r| Duration::from_secs_f64(1.0 / r));
    let mut latencies = Vec::new();
    let mut sent: u64 = 0;
    let mut retried: u64 = 0;
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            break;
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        if let Some(interval) = interval {
            // Pace against the schedule, not the previous send, so a
            // slow response doesn't permanently shift the grid.
            let due = start + interval.mul_f64(sent as f64);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let t0 = Instant::now();
        let mut attempt: u32 = 0;
        let response = loop {
            writeln!(server_tx, "{request}")?;
            server_tx.flush()?;
            let mut response = String::new();
            if server_rx.read_line(&mut response)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-stream",
                ));
            }
            if attempt < opts.retries && is_busy_refusal(&response) {
                attempt += 1;
                retried += 1;
                std::thread::sleep(retry_backoff(attempt));
                continue;
            }
            break response;
        };
        latencies.push(t0.elapsed().as_micros() as u64);
        sent += 1;
        out.write_all(response.as_bytes())?;
    }
    if opts.shutdown {
        server_tx.write_all(b"{\"op\": \"shutdown\", \"id\": \"client\"}\n")?;
        server_tx.flush()?;
        let mut ack = String::new();
        server_rx.read_line(&mut ack)?;
        out.write_all(ack.as_bytes())?;
    }
    out.flush()?;
    Ok(ClientSummary {
        requests: sent,
        retried,
        wall: start.elapsed(),
        latencies_us: latencies,
    })
}

/// `true` for a typed `busy` refusal (`{"ok": false, "error": "busy"}`)
/// — the only response the retry loop resends on.
fn is_busy_refusal(line: &str) -> bool {
    let Ok(json::Value::Obj(fields)) = json::parse(line.trim()) else {
        return false;
    };
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    matches!(get("ok"), Some(json::Value::Bool(false)))
        && matches!(get("error"), Some(json::Value::Str(e)) if e == "busy")
}

/// The `p`-th percentile (nearest-rank on a sorted slice); 0 if empty.
pub fn percentile_us(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// Renders the client's timing summary as one JSON object:
/// `{"requests", "wall_s", "rps", "p50_us", "p99_us"}` — the numbers
/// `BENCH_serve.json` records for cold vs warm streams.
pub fn timing_json(summary: &ClientSummary) -> String {
    let mut sorted = summary.latencies_us.clone();
    sorted.sort_unstable();
    let wall = summary.wall.as_secs_f64();
    let rps = if wall > 0.0 {
        summary.requests as f64 / wall
    } else {
        0.0
    };
    JsonObj::new()
        .u64("requests", summary.requests)
        .u64("retried", summary.retried)
        .raw("wall_s", &format!("{wall:.6}"))
        .raw("rps", &format!("{rps:.3}"))
        .u64("p50_us", percentile_us(&sorted, 50))
        .u64("p99_us", percentile_us(&sorted, 99))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn replays_requests_and_collects_latencies() {
        let responses = "{\"id\": 1, \"ok\": true}\n{\"id\": 2, \"ok\": true}\n";
        let mut rx = Cursor::new(responses.as_bytes().to_vec());
        let mut tx = Vec::new();
        let mut input =
            Cursor::new("{\"op\": \"ping\", \"id\": 1}\n\n{\"op\": \"ping\", \"id\": 2}\n");
        let mut out = Vec::new();
        let summary = run_client(
            &mut rx,
            &mut tx,
            &mut input,
            &mut out,
            &ClientOptions::default(),
        )
        .unwrap();
        assert_eq!(summary.requests, 2);
        assert_eq!(summary.latencies_us.len(), 2);
        assert_eq!(String::from_utf8(out).unwrap(), responses);
        let sent = String::from_utf8(tx).unwrap();
        assert_eq!(sent.lines().count(), 2, "blank input line is skipped");
    }

    #[test]
    fn shutdown_option_appends_request_and_echoes_ack() {
        let mut rx = Cursor::new(b"{\"ok\": true, \"op\": \"shutdown\"}\n".to_vec());
        let mut tx = Vec::new();
        let mut input = Cursor::new("");
        let mut out = Vec::new();
        let opts = ClientOptions {
            shutdown: true,
            ..ClientOptions::default()
        };
        let summary = run_client(&mut rx, &mut tx, &mut input, &mut out, &opts).unwrap();
        assert_eq!(summary.requests, 0);
        assert!(String::from_utf8(tx)
            .unwrap()
            .contains("\"op\": \"shutdown\""));
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("\"op\": \"shutdown\""));
    }

    #[test]
    fn busy_refusals_are_retried_up_to_the_budget() {
        // Server script: busy, busy, then accepted.
        let responses = "{\"id\": 1, \"ok\": false, \"error\": \"busy\", \"detail\": \"full\"}\n\
                         {\"id\": 1, \"ok\": false, \"error\": \"busy\", \"detail\": \"full\"}\n\
                         {\"id\": 1, \"ok\": true, \"op\": \"run\"}\n";
        let mut rx = Cursor::new(responses.as_bytes().to_vec());
        let mut tx = Vec::new();
        let mut input = Cursor::new("{\"op\": \"run\", \"id\": 1}\n");
        let mut out = Vec::new();
        let opts = ClientOptions {
            retries: 5,
            ..ClientOptions::default()
        };
        let summary = run_client(&mut rx, &mut tx, &mut input, &mut out, &opts).unwrap();
        assert_eq!(summary.requests, 1);
        assert_eq!(summary.retried, 2);
        assert_eq!(summary.latencies_us.len(), 1, "one latency for the request");
        let sent = String::from_utf8(tx).unwrap();
        assert_eq!(sent.lines().count(), 3, "request resent per retry");
        let echoed = String::from_utf8(out).unwrap();
        assert_eq!(
            echoed.lines().count(),
            1,
            "only the accepted response is echoed"
        );
        assert!(echoed.contains("\"ok\": true"), "{echoed}");
    }

    #[test]
    fn exhausted_retries_echo_the_refusal_and_zero_retries_never_resend() {
        let busy = "{\"id\": 1, \"ok\": false, \"error\": \"busy\", \"detail\": \"full\"}\n";
        // retries=1: resend once, then surface the second refusal.
        let mut rx = Cursor::new(busy.repeat(2).into_bytes());
        let mut tx = Vec::new();
        let mut input = Cursor::new("{\"op\": \"run\", \"id\": 1}\n");
        let mut out = Vec::new();
        let opts = ClientOptions {
            retries: 1,
            ..ClientOptions::default()
        };
        let summary = run_client(&mut rx, &mut tx, &mut input, &mut out, &opts).unwrap();
        assert_eq!(summary.retried, 1);
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("\"error\": \"busy\""));
        // Default retries=0: the refusal comes straight back, one send.
        let mut rx = Cursor::new(busy.as_bytes().to_vec());
        let mut tx = Vec::new();
        let mut input = Cursor::new("{\"op\": \"run\", \"id\": 1}\n");
        let mut out = Vec::new();
        let summary = run_client(
            &mut rx,
            &mut tx,
            &mut input,
            &mut out,
            &ClientOptions::default(),
        )
        .unwrap();
        assert_eq!(summary.retried, 0);
        assert_eq!(String::from_utf8(tx).unwrap().lines().count(), 1);
    }

    #[test]
    fn retry_backoff_is_exponential_and_capped() {
        assert_eq!(retry_backoff(1), Duration::from_millis(25));
        assert_eq!(retry_backoff(2), Duration::from_millis(50));
        assert_eq!(retry_backoff(3), Duration::from_millis(100));
        assert_eq!(retry_backoff(6), Duration::from_millis(800));
        assert_eq!(retry_backoff(7), Duration::from_millis(1000), "capped");
        assert_eq!(
            retry_backoff(60),
            Duration::from_millis(1000),
            "no overflow"
        );
    }

    #[test]
    fn server_eof_mid_stream_is_an_error() {
        let mut rx = Cursor::new(Vec::new()); // no response coming
        let mut tx = Vec::new();
        let mut input = Cursor::new("{\"op\": \"ping\"}\n");
        let mut out = Vec::new();
        let err = run_client(
            &mut rx,
            &mut tx,
            &mut input,
            &mut out,
            &ClientOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn timing_json_reports_percentiles() {
        let summary = ClientSummary {
            requests: 4,
            retried: 0,
            wall: Duration::from_millis(100),
            latencies_us: vec![40, 10, 30, 20],
        };
        let json = timing_json(&summary);
        assert!(json.contains("\"requests\": 4"), "{json}");
        assert!(json.contains("\"wall_s\": 0.100000"), "{json}");
        assert!(json.contains("\"p50_us\": 20"), "{json}");
        assert!(json.contains("\"p99_us\": 30"), "{json}");
        assert_eq!(percentile_us(&[], 99), 0);
        assert_eq!(percentile_us(&[7], 50), 7);
    }
}
