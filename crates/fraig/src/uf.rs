//! Union-find with parity (phase) tracking.
//!
//! Each element carries a phase bit relative to its parent, so the
//! structure can represent equivalences of the form `u ≡ v` *and*
//! `u ≡ ¬v` uniformly — exactly what FRAIG equivalence classes need.

/// A disjoint-set forest where every union records whether the two
/// elements are equal or complementary.
#[derive(Clone, Debug, Default)]
pub struct ParityUnionFind {
    parent: Vec<u32>,
    /// Phase relative to parent: `true` means complemented.
    phase: Vec<bool>,
    rank: Vec<u8>,
}

impl ParityUnionFind {
    /// Creates a structure over `n` elements, each its own class.
    pub fn new(n: usize) -> Self {
        ParityUnionFind {
            parent: (0..n as u32).collect(),
            phase: vec![false; n],
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds `(root, phase)`: the class representative and the phase of
    /// `x` relative to it (`true` = complemented).
    pub fn find(&mut self, x: usize) -> (usize, bool) {
        let p = self.parent[x] as usize;
        if p == x {
            return (x, false);
        }
        let (root, p_phase) = self.find(p);
        self.parent[x] = root as u32;
        self.phase[x] ^= p_phase;
        (root, self.phase[x])
    }

    /// Records `x ≡ y ^ phase`. Returns `false` if this contradicts an
    /// existing relation (i.e. the classes were already joined with the
    /// opposite parity).
    pub fn union(&mut self, x: usize, y: usize, phase: bool) -> bool {
        let (rx, px) = self.find(x);
        let (ry, py) = self.find(y);
        if rx == ry {
            return px ^ py == phase;
        }
        // Phase of ry relative to rx so that x == y ^ phase holds.
        let link_phase = px ^ py ^ phase;
        let (child, parent, child_phase) = if self.rank[rx] < self.rank[ry] {
            (rx, ry, link_phase)
        } else {
            if self.rank[rx] == self.rank[ry] {
                self.rank[rx] += 1;
            }
            (ry, rx, link_phase)
        };
        self.parent[child] = parent as u32;
        self.phase[child] = child_phase;
        true
    }

    /// Returns `Some(phase)` if `x` and `y` are known related
    /// (`x ≡ y ^ phase`), else `None`.
    pub fn related(&mut self, x: usize, y: usize) -> Option<bool> {
        let (rx, px) = self.find(x);
        let (ry, py) = self.find(y);
        (rx == ry).then_some(px ^ py)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_classes() {
        let mut uf = ParityUnionFind::new(3);
        assert_eq!(uf.find(0), (0, false));
        assert_eq!(uf.related(0, 1), None);
    }

    #[test]
    fn union_with_positive_phase() {
        let mut uf = ParityUnionFind::new(4);
        assert!(uf.union(0, 1, false));
        assert_eq!(uf.related(0, 1), Some(false));
    }

    #[test]
    fn union_with_negative_phase_propagates() {
        let mut uf = ParityUnionFind::new(4);
        // 0 == !1, 1 == 2  =>  0 == !2
        assert!(uf.union(0, 1, true));
        assert!(uf.union(1, 2, false));
        assert_eq!(uf.related(0, 2), Some(true));
        assert_eq!(uf.related(1, 2), Some(false));
    }

    #[test]
    fn contradiction_is_reported() {
        let mut uf = ParityUnionFind::new(3);
        assert!(uf.union(0, 1, false));
        assert!(!uf.union(0, 1, true));
        // Existing relation is untouched.
        assert_eq!(uf.related(0, 1), Some(false));
    }

    #[test]
    fn long_chain_parity() {
        let n = 64;
        let mut uf = ParityUnionFind::new(n);
        for i in 0..n - 1 {
            assert!(uf.union(i, i + 1, true));
        }
        // Phase between 0 and k is parity of k.
        for k in 1..n {
            assert_eq!(uf.related(0, k), Some(k % 2 == 1), "k={k}");
        }
    }
}
