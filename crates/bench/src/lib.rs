//! Benchmark harnesses for the eco workspace; see `src/bin/*` and `benches/*`.
//!
//! The `benches/*` targets use the small std-only [`Bench`] harness below
//! (all are `harness = false`), so the workspace carries no external
//! benchmarking dependency and builds offline. Run them with
//! `cargo bench -p eco-bench`; each accepts `--json <path>` (or the
//! `ECO_BENCH_JSON` env var) to dump machine-readable results, and
//! `ECO_BENCH_SAMPLES` to override the per-bench sample count.

use std::time::Instant;

pub use eco_core::peak_rss_bytes;

/// Timing summary for one named benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name, e.g. `table2/ours/unit06`.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Mean wall time per sample, nanoseconds.
    pub mean_ns: u128,
    /// Median wall time per sample, nanoseconds.
    pub median_ns: u128,
    /// Fastest sample, nanoseconds.
    pub min_ns: u128,
    /// Slowest sample, nanoseconds.
    pub max_ns: u128,
}

/// Minimal fixed-sample benchmark runner: one warm-up iteration, then
/// `samples` timed iterations per benchmark, reported as a table and
/// optionally as JSON.
pub struct Bench {
    samples: usize,
    warmup: bool,
    results: Vec<BenchResult>,
    notes: Vec<String>,
}

impl Bench {
    /// Runner with an explicit per-benchmark sample count.
    pub fn with_samples(samples: usize) -> Self {
        Bench {
            samples: samples.max(1),
            warmup: true,
            results: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Runner configured from the environment. `cargo bench` invokes
    /// bench targets with a `--bench` argument; `cargo test` runs them
    /// without it, in which case a single un-warmed sample is taken so
    /// the test suite smoke-tests every bench path without the cost of
    /// real measurement. `ECO_BENCH_SAMPLES` overrides the count.
    pub fn from_env() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let samples = std::env::var("ECO_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(if bench_mode { 10 } else { 1 });
        let mut bench = Self::with_samples(samples);
        bench.warmup = bench_mode;
        bench
    }

    /// Times `f`: one warm-up call (in bench mode), then the configured
    /// number of samples.
    pub fn run<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if self.warmup {
            std::hint::black_box(f());
        }
        let mut times: Vec<u128> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed().as_nanos()
            })
            .collect();
        times.sort_unstable();
        let result = BenchResult {
            name: name.to_string(),
            samples: self.samples,
            mean_ns: times.iter().sum::<u128>() / times.len() as u128,
            median_ns: times[times.len() / 2],
            min_ns: times[0],
            max_ns: times[times.len() - 1],
        };
        eprintln!(
            "{:<44} {:>12} median {:>12} mean ({} samples)",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.mean_ns),
            result.samples
        );
        self.results.push(result);
    }

    /// Results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Attaches a free-form annotation (methodology, before/after
    /// context) carried into the JSON dump under `"notes"`.
    pub fn note(&mut self, text: &str) {
        eprintln!("note: {text}");
        self.notes.push(text.to_string());
    }

    /// JSON dump of all results (hand-rolled; names are plain ASCII).
    pub fn json(&self) -> String {
        let rows: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                format!(
                    "  {{\"name\": \"{}\", \"samples\": {}, \"mean_ns\": {}, \
                     \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                    r.name.replace('"', "\\\""),
                    r.samples,
                    r.mean_ns,
                    r.median_ns,
                    r.min_ns,
                    r.max_ns
                )
            })
            .collect();
        let notes = if self.notes.is_empty() {
            String::new()
        } else {
            let items: Vec<String> = self
                .notes
                .iter()
                .map(|n| format!("  \"{}\"", n.replace('\\', "\\\\").replace('"', "\\\"")))
                .collect();
            format!(",\n \"notes\": [\n{}\n]", items.join(",\n"))
        };
        format!("{{\"benches\": [\n{}\n]{notes}}}\n", rows.join(",\n"))
    }

    /// Prints the summary table and honors `--json <path>` /
    /// `ECO_BENCH_JSON` for a machine-readable dump.
    pub fn finish(self) {
        let mut json_path = std::env::var("ECO_BENCH_JSON").ok();
        let args: Vec<String> = std::env::args().collect();
        if let Some(i) = args.iter().position(|a| a == "--json") {
            json_path = args.get(i + 1).cloned();
        }
        if let Some(path) = json_path {
            match std::fs::write(&path, self.json()) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_serializes() {
        let mut b = Bench::with_samples(3);
        b.run("noop", || 1 + 1);
        assert_eq!(b.results().len(), 1);
        let r = &b.results()[0];
        assert_eq!(r.samples, 3);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        let js = b.json();
        assert!(js.contains("\"name\": \"noop\""));
        assert!(js.contains("\"median_ns\""));
        assert!(!js.contains("\"notes\""), "no notes key when unannotated");
        b.note("methodology \"quoted\"");
        assert!(b
            .json()
            .contains("\"notes\": [\n  \"methodology \\\"quoted\\\"\"\n]"));
    }
}
