//! Batch-layer regressions: the JSONL stream report must be
//! byte-identical for any `--jobs` setting (work stealing may interleave
//! jobs arbitrarily, but records carry only scheduling-independent
//! fields and merge in manifest order), warm passes over the shared memo
//! cache must reproduce the cold pass exactly while actually hitting the
//! cache, and a poisoned cache entry must never reach the output — the
//! fresh SAT re-verification of every cached patch has to reject it and
//! fall back to a full run.

mod common;

use std::path::PathBuf;

use eco::batch::{
    exit_code, load_jobs, records_jsonl, run_batch, BatchJob, BatchOptions, JobStatus, Manifest,
};
use eco::core::{patch_memo_key, BudgetOptions, EcoEngine, EcoOptions, MemoCache};
use eco::workgen::{contest_suite, manifest_toml, write_unit, SuiteUnit};

/// Small, fast suite units (skips the difficult datapath ones).
fn fast_units(n: usize) -> Vec<SuiteUnit> {
    contest_suite()
        .into_iter()
        .filter(|u| !u.spec.difficult)
        .take(n)
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco_batch_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// End to end through the manifest layer: emit a workgen suite to disk,
/// load it back, and require byte-identical JSONL for jobs=1 vs jobs=4.
#[test]
fn jsonl_is_byte_identical_across_jobs_settings() {
    let dir = temp_dir("jobs");
    let entries: Vec<_> = fast_units(5)
        .iter()
        .map(|u| write_unit(&dir, u).expect("write unit"))
        .collect();
    let manifest_path = dir.join("manifest.toml");
    std::fs::write(&manifest_path, manifest_toml(&entries)).expect("write manifest");

    let manifest = Manifest::load(&manifest_path).expect("load manifest");
    assert_eq!(manifest.jobs.len(), 5);
    let jobs = load_jobs(&manifest);

    let run = |workers: usize| {
        let outcome = run_batch(
            &jobs,
            &BatchOptions {
                jobs: workers,
                ..Default::default()
            },
        );
        (records_jsonl(&outcome.records), outcome)
    };
    let (seq_jsonl, seq) = run(1);
    let (par_jsonl, _) = run(4);
    assert_eq!(seq_jsonl, par_jsonl, "JSONL must not depend on --jobs");
    assert!(
        seq.records.iter().all(|r| r.status == JobStatus::Complete),
        "suite units are rectifiable by construction: {seq_jsonl}"
    );
    assert_eq!(exit_code(&seq.records), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A warm pass over the shared cache must reproduce the cold pass
/// byte-for-byte (modulo the pass number) while reporting real hits.
#[test]
fn warm_pass_reuses_cache_without_changing_results() {
    let jobs: Vec<BatchJob> = fast_units(4)
        .iter()
        .map(|u| BatchJob::from_instance(u.spec.name.clone(), u.instance().expect("valid")))
        .collect();
    let outcome = run_batch(
        &jobs,
        &BatchOptions {
            jobs: 4,
            repeat: 2,
            ..Default::default()
        },
    );
    assert_eq!(outcome.records.len(), 8);
    assert!(outcome.memo.hits > 0, "warm pass must hit the cache");
    assert_eq!(outcome.memo.fallbacks, 0);
    let line = |r| {
        format!("{:?}", r)
            .replacen("pass: 0", "pass: N", 1)
            .replacen("pass: 1", "pass: N", 1)
    };
    for i in 0..4 {
        assert_eq!(
            line(&outcome.records[i]),
            line(&outcome.records[i + 4]),
            "warm record {i} diverged from cold"
        );
        assert!(
            outcome.records[i].verified,
            "cached patches are re-verified"
        );
    }
}

/// Poisoning defense: a wrong patch planted under an instance's true
/// memo key must be rejected by the fresh SAT re-verification, counted
/// as a fallback, and replaced by the full computation's result.
#[test]
fn poisoned_memo_entry_falls_back_to_full_sat_check() {
    let units = fast_units(2);
    let victim = units[0].instance().expect("valid");
    let donor = units[1].instance().expect("valid");

    // The donor's (correct, verified) result is a wrong patch for the
    // victim — its outputs drive the donor's targets, not the victim's.
    let donor_result = EcoEngine::new(donor, EcoOptions::default())
        .run()
        .expect("donor rectifiable");

    let cache = std::sync::Arc::new(MemoCache::new());
    let options = EcoOptions {
        jobs: 1,
        memo: Some(std::sync::Arc::clone(&cache)),
        ..Default::default()
    };
    let (key, check) = patch_memo_key(&victim, &options);
    cache.store_patch(key, check, &donor_result);

    let fresh = EcoEngine::new(victim.clone(), EcoOptions::default())
        .run()
        .expect("victim rectifiable");
    let engine = EcoEngine::new(victim, options);
    let poisoned_run = match engine.run_governed().expect("victim rectifiable") {
        eco::core::EcoOutcome::Complete(r) => r,
        other => panic!("expected complete outcome, got {other:?}"),
    };

    let stats = cache.stats();
    assert!(stats.fallbacks > 0, "poisoned entry must be refuted");
    assert_eq!(
        poisoned_run.cost, fresh.cost,
        "fallback must match fresh run"
    );
    assert_eq!(poisoned_run.size, fresh.size);
    assert_eq!(
        format!("{:?}", poisoned_run.patch_aig),
        format!("{:?}", fresh.patch_aig),
        "fallback patch must be the fresh patch, not the planted one"
    );
    common::assert_patched_equals_golden(&units[0].faulty, &units[0].golden, &poisoned_run);
}

/// A starved batch degrades to per-job outcomes instead of erroring:
/// with a zero deadline every job must still produce a well-formed
/// `complete` or `partial` record, and the exit code reflects it.
#[test]
fn starved_batch_degrades_to_partial_records() {
    let jobs: Vec<BatchJob> = fast_units(3)
        .iter()
        .map(|u| BatchJob::from_instance(u.spec.name.clone(), u.instance().expect("valid")))
        .collect();
    let outcome = run_batch(
        &jobs,
        &BatchOptions {
            jobs: 2,
            budget: BudgetOptions {
                timeout: Some(std::time::Duration::ZERO),
                cluster_conflicts: Some(3),
            },
            ..Default::default()
        },
    );
    for record in &outcome.records {
        assert!(
            matches!(record.status, JobStatus::Complete | JobStatus::Partial),
            "starvation must degrade, not error: {record:?}"
        );
    }
    let code = exit_code(&outcome.records);
    assert!(code == 0 || code == 4, "unexpected exit code {code}");
    // Limited budgets bypass the memo cache entirely.
    assert_eq!(outcome.memo.hits + outcome.memo.misses, 0);
}
