//! `SynthesizePatch` (§4.2/§4.3): realize a patch function from its on/off
//! sets, by interpolation or by taking the on-set / negated off-set.

use std::collections::HashMap;

use eco_aig::{Lit, Var};
use eco_sat::{ClauseLabel, ItpOutcome, ItpSolver, LabeledSink, Lit as SLit};

use crate::carediff::OnOff;
use crate::localize::Cut;
use crate::Workspace;

/// How the initial patch function is realized from the on/off pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InitialPatchKind {
    /// Take the on-set circuit directly (the paper's choice, §4.3
    /// option 2 — cheap and always applicable).
    #[default]
    OnSet,
    /// Take the negated off-set circuit.
    NegOffSet,
    /// Try Craig interpolation between on and off (smaller patches when it
    /// succeeds); falls back to the on-set when `on ∧ off` is satisfiable
    /// (the multi-output conflict of §4.3) or the budget is exhausted.
    Interpolant,
}

/// Result of one `SynthesizePatch` call.
#[derive(Clone, Copy, Debug)]
pub struct SynthOutcome {
    /// The patch function `p'_k` as a manager literal (over cut signals and
    /// the remaining target variables).
    pub lit: Lit,
    /// `true` if the result came from a successful interpolation.
    pub interpolated: bool,
    /// `true` if interpolation was requested but failed (satisfiable
    /// overlap or budget), triggering the on-set fallback.
    pub fallback: bool,
}

/// Synthesizes `p'_k` from its on/off sets over the cut `C_d` and the
/// remaining targets `T_k` (Theorem 2).
///
/// For [`InitialPatchKind::Interpolant`], the A-side encodes the on-set
/// cone and the B-side the off-set cone, cut at `C_d ∪ T_k`; the shared
/// variables are exactly the cut signals and remaining targets, so the
/// interpolant — imported back into the manager — is a valid patch
/// whenever `on ∧ off` is unsatisfiable.
pub fn synthesize_patch(
    ws: &mut Workspace,
    onoff: OnOff,
    cut: &Cut,
    kind: InitialPatchKind,
    conflict_budget: u64,
    tel: &crate::Telemetry,
) -> SynthOutcome {
    match kind {
        InitialPatchKind::OnSet => SynthOutcome {
            lit: onoff.on,
            interpolated: false,
            fallback: false,
        },
        InitialPatchKind::NegOffSet => SynthOutcome {
            lit: !onoff.off,
            interpolated: false,
            fallback: false,
        },
        InitialPatchKind::Interpolant => {
            match try_interpolate(ws, onoff, cut, conflict_budget, tel) {
                Some(lit) => SynthOutcome {
                    lit,
                    interpolated: true,
                    fallback: false,
                },
                None => SynthOutcome {
                    lit: onoff.on,
                    interpolated: false,
                    fallback: true,
                },
            }
        }
    }
}

fn try_interpolate(
    ws: &mut Workspace,
    onoff: OnOff,
    cut: &Cut,
    conflict_budget: u64,
    tel: &crate::Telemetry,
) -> Option<Lit> {
    let mut q = ItpSolver::new();

    // Shared variables: one per cut signal, one per frontier target.
    let sig_sat: Vec<SLit> = cut.signals.iter().map(|_| q.new_var().pos()).collect();
    let tgt_sat: HashMap<Var, SLit> = cut
        .targets
        .iter()
        .map(|&k| (ws.target_vars[k], q.new_var().pos()))
        .collect();

    // Seed map shared by both copies: frontier nodes and targets.
    let mut seed: HashMap<Var, SLit> = HashMap::new();
    for (&v, &(sig, phase)) in &cut.node_map {
        let sl = sig_sat[sig];
        seed.insert(v, if phase { !sl } else { sl });
    }
    for (&v, &sl) in &tgt_sat {
        seed.insert(v, sl);
    }

    // A: on-set asserted; B: off-set asserted. Separate maps above the cut.
    {
        let mut map_a = seed.clone();
        let mut sink = LabeledSink::new(&mut q, ClauseLabel::A);
        let roots = eco_sat::encode_cone(&ws.mgr, &[onoff.on], &mut map_a, &mut sink);
        sink.sink_clause(&[roots[0]]);
    }
    {
        let mut map_b = seed.clone();
        let mut sink = LabeledSink::new(&mut q, ClauseLabel::B);
        let roots = eco_sat::encode_cone(&ws.mgr, &[onoff.off], &mut map_b, &mut sink);
        sink.sink_clause(&[roots[0]]);
    }

    q.set_conflict_budget(conflict_budget);
    let solved = q.solve_limited();
    tel.record_solver(&q.last_stats());
    let itp = match solved? {
        ItpOutcome::Unsat(itp) => itp,
        ItpOutcome::Sat(_) => return None,
    };

    // Import the interpolant into the manager: map its inputs (shared SAT
    // vars) back to the corresponding manager literals.
    let mut input_map: HashMap<Var, Lit> = HashMap::new();
    for (i, &sv) in itp.inputs.iter().enumerate() {
        let mgr_lit = sig_sat
            .iter()
            .position(|sl| sl.var() == sv)
            .map(|sig| cut.signals[sig].lit)
            .or_else(|| {
                tgt_sat
                    .iter()
                    .find(|(_, sl)| sl.var() == sv)
                    .map(|(&tv, _)| tv.pos())
            })
            .expect("shared var maps to a cut signal or target");
        input_map.insert(itp.aig.input_var(i), mgr_lit);
    }
    Some(
        ws.mgr
            .import(&itp.aig, &[itp.root], &input_map)
            .expect("interpolant inputs are fully mapped")[0],
    )
}

// `LabeledSink` needs `ClauseSink` in scope for `sink_clause`.
use eco_sat::ClauseSink as _;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carediff::on_off_sets;
    use crate::localize::TapMap;
    use crate::EcoInstance;
    use eco_netlist::{parse_verilog, WeightTable};

    fn tel() -> crate::Telemetry {
        crate::Telemetry::new()
    }

    fn xor_instance() -> (EcoInstance, Workspace) {
        // F: y = t ^ c (target t). G: y = (a & b) ^ c. Patch must be a & b.
        let faulty = parse_verilog(
            "module f (a, b, c, t, y); input a, b, c, t; output y; \
             xor g1 (y, t, c); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, b, c, y); input a, b, c; output y; \
             wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
        )
        .expect("golden");
        let inst = EcoInstance::from_netlists(
            "x",
            &faulty,
            &golden,
            vec!["t".into()],
            &WeightTable::new(1),
        )
        .expect("instance");
        let ws = Workspace::new(&inst);
        (inst, ws)
    }

    fn check_patch_semantics(ws: &Workspace, patch: Lit) {
        // Patch must equal a & b for every X assignment (T irrelevant here).
        let mut mgr = ws.mgr.clone();
        mgr.clear_outputs();
        mgr.add_output("p", patch);
        for bits in 0u32..16 {
            let vals: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(mgr.eval(&vals)[0], vals[0] && vals[1], "patch at {vals:?}");
        }
    }

    #[test]
    fn onset_patch_is_correct() {
        let (_i, mut ws) = xor_instance();
        let t = ws.target_vars[0];
        let onoff = on_off_sets(&mut ws.mgr, &ws.f_outs.clone(), &ws.g_outs.clone(), t);
        let cut = Cut::frontier(&ws, &TapMap::empty(), &[onoff.on, onoff.off]);
        let got = synthesize_patch(
            &mut ws,
            onoff,
            &cut,
            InitialPatchKind::OnSet,
            1 << 20,
            &tel(),
        );
        assert!(!got.interpolated && !got.fallback);
        check_patch_semantics(&ws, got.lit);
    }

    #[test]
    fn neg_offset_patch_is_correct() {
        let (_i, mut ws) = xor_instance();
        let t = ws.target_vars[0];
        let onoff = on_off_sets(&mut ws.mgr, &ws.f_outs.clone(), &ws.g_outs.clone(), t);
        let cut = Cut::frontier(&ws, &TapMap::empty(), &[onoff.on, onoff.off]);
        let got = synthesize_patch(
            &mut ws,
            onoff,
            &cut,
            InitialPatchKind::NegOffSet,
            1 << 20,
            &tel(),
        );
        check_patch_semantics(&ws, got.lit);
    }

    #[test]
    fn interpolant_patch_is_correct_and_flagged() {
        let (_i, mut ws) = xor_instance();
        let t = ws.target_vars[0];
        let onoff = on_off_sets(&mut ws.mgr, &ws.f_outs.clone(), &ws.g_outs.clone(), t);
        let cut = Cut::frontier(&ws, &TapMap::empty(), &[onoff.on, onoff.off]);
        let got = synthesize_patch(
            &mut ws,
            onoff,
            &cut,
            InitialPatchKind::Interpolant,
            1 << 20,
            &tel(),
        );
        assert!(got.interpolated && !got.fallback);
        check_patch_semantics(&ws, got.lit);
    }

    #[test]
    fn conflicting_onoff_falls_back_to_onset() {
        // Two outputs demanding opposite t values everywhere: on ∧ off sat.
        let faulty = parse_verilog(
            "module f (a, t, y1, y2); input a, t; output y1, y2; \
             buf g1 (y1, t); not g2 (y2, t); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, y1, y2); input a; output y1, y2; \
             buf g1 (y1, a); buf g2 (y2, a); endmodule",
        )
        .expect("golden");
        let inst = EcoInstance::from_netlists(
            "c",
            &faulty,
            &golden,
            vec!["t".into()],
            &WeightTable::new(1),
        )
        .expect("instance");
        let mut ws = Workspace::new(&inst);
        let t = ws.target_vars[0];
        let onoff = on_off_sets(&mut ws.mgr, &ws.f_outs.clone(), &ws.g_outs.clone(), t);
        let got = {
            let cut = Cut::frontier(&ws, &TapMap::empty(), &[onoff.on, onoff.off]);
            synthesize_patch(
                &mut ws,
                onoff,
                &cut,
                InitialPatchKind::Interpolant,
                1 << 20,
                &tel(),
            )
        };
        assert!(got.fallback);
        assert_eq!(got.lit, onoff.on);
    }
}
