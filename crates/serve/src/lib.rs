#![warn(missing_docs)]
//! # eco-serve — the persistent ECO daemon with an always-warm memo cache
//!
//! A long-lived service wrapping the `eco-batch` execution core: jobs
//! arrive as line-delimited JSON over a unix socket (or stdin for tests
//! and pipelines), run on a bounded worker pool, and share one
//! process-lifetime [`eco_core::MemoCache`] — so the cache that a batch
//! run throws away at exit stays warm here across requests, connections,
//! and clients. A structurally repeated instance is answered from memo
//! in microseconds instead of a full engine run (cached patches are
//! still SAT re-verified; see `eco_core::memo` for the determinism
//! argument).
//!
//! The moving parts:
//!
//! * [`proto`] — the JSONL wire protocol (`run` / `ping` / `stats` /
//!   `shutdown`) with typed refusals (`busy`, `draining`,
//!   `bad-request`).
//! * [`server`] — admission control over an
//!   [`eco_batch::BoundedQueue`], per-request [`eco_core::Budget`]
//!   apportionment, per-connection response sequencing (responses in
//!   request order ⇒ byte-identical streams for any worker count), and
//!   graceful drain.
//! * [`client`] — the synchronous replay client with round-trip latency
//!   percentiles.
//! * [`signal`] — SIGTERM/SIGINT → drain flag (the workspace's only
//!   `unsafe`, a single libc `signal()` call).
//!
//! # Examples
//!
//! Serving an in-memory stream (the stdio transport drives stdin/stdout
//! the same way):
//!
//! ```
//! use eco_serve::{ServeOptions, Server};
//! use std::io::Cursor;
//!
//! let server = Server::new(ServeOptions::default());
//! let input = "{\"op\": \"ping\", \"id\": 1}\n{\"op\": \"shutdown\", \"id\": 2}\n";
//! let summary = server.serve_reader(Cursor::new(input), Box::new(Vec::new()));
//! assert_eq!(summary.served, 0); // inline ops don't touch the job pool
//! assert!(server.is_draining()); // shutdown latched the drain
//! ```

pub mod client;
pub mod journal;
pub mod proto;
pub mod server;
#[cfg(unix)]
pub mod signal;

pub use client::{
    percentile_us, retry_backoff, run_client, timing_json, ClientOptions, ClientSummary,
};
pub use journal::{
    load_request_journal, request_fingerprint, RequestJournal, RequestJournalState,
    REQUEST_JOURNAL_MAGIC,
};
pub use server::{
    resume_report_json, summary_json, ResumeReport, ServeOptions, ServeSummary, Server,
};
