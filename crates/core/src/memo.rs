//! Cross-job memoization of solver verdicts, keyed by structural
//! fingerprints.
//!
//! A [`MemoCache`] is a sharded, lock-striped concurrent map shared by
//! every job of a batch run. It memoizes the three expensive, *pure*
//! computations of the flow — whole FRAIG sweeps over cluster
//! sub-workspaces, Eq.-2 rectifiability verdicts, and complete verified
//! patch results — keyed by dual 128-bit structural fingerprints
//! ([`eco_aig::Aig::structural_fingerprint`]) of the inputs plus every
//! option knob that can change the output.
//!
//! # Determinism
//!
//! Whether a lookup hits depends on scheduling (which job got there
//! first), so hits must never change *what* is computed, only *when*.
//! Every memoized granularity is therefore a pure function of its key:
//! a hit returns exactly the value a fresh computation would produce, and
//! results are byte-identical whatever the hit/miss interleaving.
//!
//! # Soundness
//!
//! A 2⁻¹²⁸ key collision — or a deliberately poisoned entry — must not
//! produce a wrong answer:
//!
//! * every entry stores an independent `check` digest; a mismatch on
//!   lookup is treated as a miss;
//! * cached **patch results** are re-verified with a fresh SAT miter
//!   against the actual instance before being returned ([`crate::EcoEngine`]
//!   does this in `run_governed_with`); a refuted entry falls back to the
//!   full pipeline and is counted in [`MemoStats::fallbacks`];
//! * cached **counterexample** verdicts are audited with a single B-check
//!   ([`crate::check_rect_cex`]) before being trusted;
//! * cached **sweep classes** feed localization only; a wrong class can
//!   at worst produce a patch that fails the (always fresh) final
//!   verification, which triggers the engine's existing
//!   localization-fallback retry;
//! * a shard lock poisoned by a panicking worker is **recovered**, not
//!   propagated: the shard's map is valid at every unwind point and all
//!   of the guards above still apply, so siblings degrade to
//!   recompute-on-mismatch instead of aborting a long-lived daemon.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use eco_aig::FpHasher;
use eco_fraig::{EquivClasses, SweepMemo, SweepStats};

use crate::engine::{EcoOptions, EcoResult};
use crate::instance::EcoInstance;
use crate::rectifiable::Rectifiability;

/// Shard count (power of two; shards are selected by the key's low bits,
/// which are uniformly mixed by the fingerprint hasher).
const SHARDS: usize = 16;

/// Default per-shard entry capacity (FIFO eviction beyond it).
const DEFAULT_SHARD_CAPACITY: usize = 1024;

/// One memoized value, tagged by kind so distinct computations can never
/// alias even if their keys collided. Crate-visible so the durable store
/// ([`crate::memo_store`]) can serialize entries without widening the
/// public API.
#[derive(Clone, Debug)]
pub(crate) enum Entry {
    Sweep {
        check: u128,
        classes: Box<EquivClasses>,
        stats: SweepStats,
    },
    Rect {
        check: u128,
        verdict: Rectifiability,
    },
    Patch {
        check: u128,
        result: Box<EcoResult>,
    },
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u128, Entry>,
    order: VecDeque<u128>,
}

/// Crate-internal observer of cache insertions — the hook the durable
/// store uses to journal new entries as they are produced. Encoding
/// happens *outside* the shard lock and appending happens after the
/// insert, so a slow disk never stalls sibling lookups on the stripe.
pub(crate) trait EntrySink: Send + Sync {
    /// Serializes an entry for the journal, or `None` for kinds the sink
    /// does not persist.
    fn encode(&self, key: u128, entry: &Entry) -> Option<Vec<u8>>;
    /// Appends previously encoded bytes. Must not panic; IO failures are
    /// counted by the sink, not propagated (durability degrades, serving
    /// does not).
    fn append(&self, bytes: &[u8]);
}

/// Write-once slot for the optional entry sink (newtype so `MemoCache`
/// keeps its derived `Debug`).
#[derive(Default)]
struct SinkSlot(OnceLock<Arc<dyn EntrySink>>);

impl std::fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.get().is_some() {
            "SinkSlot(attached)"
        } else {
            "SinkSlot(none)"
        })
    }
}

/// Cumulative counters of one cache over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups that returned a value (kind and check digest matched).
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries evicted by the FIFO capacity bound.
    pub evictions: u64,
    /// Hits later discarded because revalidation refuted the entry.
    pub fallbacks: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// Sharded, lock-striped memo cache shared across the jobs of a batch run
/// (see the [module docs](self) for the determinism and soundness
/// contracts).
#[derive(Debug)]
pub struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    fallbacks: AtomicU64,
    sink: SinkSlot,
}

impl Default for MemoCache {
    fn default() -> Self {
        MemoCache::new()
    }
}

impl MemoCache {
    /// A cache with the default capacity.
    pub fn new() -> Self {
        MemoCache::with_shard_capacity(DEFAULT_SHARD_CAPACITY)
    }

    /// A cache holding at most `capacity` entries per shard
    /// (16 shards; oldest entries evicted first).
    pub fn with_shard_capacity(capacity: usize) -> Self {
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            sink: SinkSlot::default(),
        }
    }

    /// Attaches the journal sink. Returns `false` (and leaves the
    /// existing sink) if one is already attached. Attach *after* loading
    /// persisted entries, so a reload does not re-journal its own input.
    pub(crate) fn set_sink(&self, sink: Arc<dyn EntrySink>) -> bool {
        self.sink.0.set(sink).is_ok()
    }

    /// Inserts a recovered entry (durable-store load path). Same
    /// first-write-wins semantics as a live insert; call before
    /// [`MemoCache::set_sink`] so the replay is not re-journaled.
    pub(crate) fn import(&self, key: u128, entry: Entry) {
        self.store(key, entry);
    }

    /// Clones every resident entry, shard by shard in FIFO order — the
    /// durable store's snapshot source.
    pub(crate) fn export_entries(&self) -> Vec<(u128, Entry)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for key in &shard.order {
                if let Some(entry) = shard.map.get(key) {
                    out.push((*key, entry.clone()));
                }
            }
        }
        out
    }

    /// Locks a shard, recovering from poisoning: a job thread that
    /// panicked while holding the stripe (e.g. mid-`clone` of a cached
    /// value) must degrade that shard to recompute-on-mismatch for its
    /// siblings, not abort the whole batch or daemon. The shard data is
    /// a plain map + FIFO order list whose invariants hold at every
    /// point a panic can unwind through, and every returned entry is
    /// still guarded by its `check` digest and downstream SAT
    /// re-verification, so recovered reads stay sound.
    fn lock_shard(&self, key: u128) -> MutexGuard<'_, Shard> {
        self.shards[(key as usize) & (SHARDS - 1)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lookup<T>(&self, key: u128, extract: impl FnOnce(&Entry) -> Option<T>) -> Option<T> {
        let out = {
            let shard = self.lock_shard(key);
            shard.map.get(&key).and_then(extract)
        };
        if out.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    fn store(&self, key: u128, entry: Entry) {
        // Serialize for the journal before taking the stripe: encoding a
        // patch result (AIGER emission) is the slow part and must not
        // run under the shard lock.
        let encoded = self.sink.0.get().and_then(|sink| sink.encode(key, &entry));
        {
            let mut shard = self.lock_shard(key);
            if shard.map.contains_key(&key) {
                // First write wins: the value is a pure function of the
                // key, so a concurrent duplicate carries the same data
                // (and needs no journal record either).
                return;
            }
            if shard.map.len() >= self.shard_capacity {
                if let Some(old) = shard.order.pop_front() {
                    shard.map.remove(&old);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            shard.map.insert(key, entry);
            shard.order.push_back(key);
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        if let (Some(sink), Some(bytes)) = (self.sink.0.get(), encoded) {
            sink.append(&bytes);
        }
    }

    /// Returns the memoized complete result for an instance key, if any.
    /// The caller **must** re-verify it against the live instance before
    /// trusting it (and call [`MemoCache::record_fallback`] when refuted).
    pub fn lookup_patch(&self, key: u128, check: u128) -> Option<EcoResult> {
        self.lookup(key, |e| match e {
            Entry::Patch { check: c, result } if *c == check => Some((**result).clone()),
            _ => None,
        })
    }

    /// Stores a complete, verified result under an instance key.
    pub fn store_patch(&self, key: u128, check: u128, result: &EcoResult) {
        // Telemetry describes the producing run, not the value; strip it
        // so hits report their own (fresh) telemetry.
        let mut result = Box::new(result.clone());
        result.telemetry = Default::default();
        result.stage_times = Default::default();
        self.store(key, Entry::Patch { check, result });
    }

    /// Returns the memoized rectifiability verdict for an instance key.
    /// `Counterexample` verdicts must be audited via
    /// [`crate::check_rect_cex`] before use.
    pub fn lookup_rect(&self, key: u128, check: u128) -> Option<Rectifiability> {
        self.lookup(key, |e| match e {
            Entry::Rect { check: c, verdict } if *c == check => Some(verdict.clone()),
            _ => None,
        })
    }

    /// Stores a decided (never `Unknown`) rectifiability verdict.
    pub fn store_rect(&self, key: u128, check: u128, verdict: &Rectifiability) {
        debug_assert!(!matches!(verdict, Rectifiability::Unknown));
        self.store(
            key,
            Entry::Rect {
                check,
                verdict: verdict.clone(),
            },
        );
    }

    /// Counts a hit that revalidation refuted (the caller fell back to the
    /// full computation).
    pub fn record_fallback(&self) {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the cache's counters.
    pub fn stats(&self) -> MemoStats {
        let entries: usize = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum();
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            entries: entries as u64,
        }
    }
}

impl SweepMemo for MemoCache {
    fn lookup_sweep(&self, key: u128, check: u128) -> Option<(EquivClasses, SweepStats)> {
        self.lookup(key, |e| match e {
            Entry::Sweep {
                check: c,
                classes,
                stats,
            } if *c == check => Some(((**classes).clone(), *stats)),
            _ => None,
        })
    }

    fn store_sweep(&self, key: u128, check: u128, classes: &EquivClasses, stats: &SweepStats) {
        self.store(
            key,
            Entry::Sweep {
                check,
                classes: Box::new(classes.clone()),
                stats: *stats,
            },
        );
    }
}

/// Absorbs the identity of an instance and every result-relevant engine
/// option into `h`. Shared by the patch and rectifiability keys.
fn absorb_instance(h: &mut FpHasher, inst: &EcoInstance, opts: &EcoOptions) {
    for fp in [
        inst.faulty.structural_fingerprint(),
        inst.golden.structural_fingerprint(),
    ] {
        h.word(fp.0 as u64);
        h.word((fp.0 >> 64) as u64);
        h.word(fp.1 as u64);
        h.word((fp.1 >> 64) as u64);
    }
    h.word(inst.targets.len() as u64);
    for t in &inst.targets {
        h.str(t);
    }
    h.word(inst.candidates.len() as u64);
    for c in &inst.candidates {
        h.str(&c.name);
        h.word(u64::from(c.lit.code()));
        h.word(c.weight);
    }
    // Result-relevant engine knobs. `jobs` and `budget` are excluded on
    // purpose: jobs never changes results (tests/determinism.rs) and the
    // memo is only consulted under an unlimited budget. The Debug
    // renderings of the plain option structs are stable and contain no
    // addresses.
    h.word(u64::from(opts.localization));
    h.str(&format!("{:?}", opts.initial_patch));
    h.word(u64::from(opts.optimize));
    h.str(&format!("{:?}", opts.optimize_opts));
    h.word(opts.fraig.sim_words as u64);
    h.word(opts.fraig.seed);
    h.word(opts.fraig.max_rounds as u64);
    h.word(opts.fraig.conflict_budget);
    h.word(opts.fraig.max_total_conflicts);
    h.word(opts.synth_budget);
    h.word(opts.verify_budget);
    h.word(u64::from(opts.precheck_rectifiability));
    h.word(u64::from(opts.size_optimize));
    h.str(&format!("{:?}", opts.size_opts));
}

/// Dual fingerprint identifying a whole instance run (patch-result memo):
/// both circuits' structures, targets, weighted candidates, and every
/// option that can change the emitted patches. The instance *name* is
/// excluded — identical circuits under different job names share entries.
pub fn patch_memo_key(inst: &EcoInstance, opts: &EcoOptions) -> (u128, u128) {
    let mut h = FpHasher::new();
    h.word(0x70a7_c4ac); // domain tag: patch-result entries
    absorb_instance(&mut h, inst, opts);
    h.finish()
}

/// Dual fingerprint identifying a rectifiability check over an instance.
pub fn rect_memo_key(inst: &EcoInstance, opts: &EcoOptions) -> (u128, u128) {
    let mut h = FpHasher::new();
    h.word(0x4ec7_cec2); // domain tag: rectifiability entries
    absorb_instance(&mut h, inst, opts);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::{parse_verilog, WeightTable};

    fn instance(name: &str, targets: &[&str]) -> EcoInstance {
        EcoInstance::from_netlists(
            name,
            &parse_verilog(
                "module f (a, b, c, t, y); input a, b, c, t; output y; \
                 xor g1 (y, t, c); endmodule",
            )
            .expect("faulty"),
            &parse_verilog(
                "module g (a, b, c, y); input a, b, c; output y; \
                 wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
            )
            .expect("golden"),
            targets.iter().map(|s| s.to_string()).collect(),
            &WeightTable::new(1),
        )
        .expect("instance")
    }

    #[test]
    fn keys_ignore_name_but_cover_options() {
        let opts = EcoOptions::default();
        let a = patch_memo_key(&instance("one", &["t"]), &opts);
        let b = patch_memo_key(&instance("two", &["t"]), &opts);
        assert_eq!(a, b, "instance name must not affect the key");

        let other = EcoOptions {
            localization: false,
            ..Default::default()
        };
        assert_ne!(a, patch_memo_key(&instance("one", &["t"]), &other));

        let mut other = EcoOptions::default();
        other.fraig.seed ^= 1;
        assert_ne!(a, patch_memo_key(&instance("one", &["t"]), &other));

        assert_ne!(
            a,
            rect_memo_key(&instance("one", &["t"]), &opts),
            "domain tags separate patch and rectifiability keys"
        );
    }

    #[test]
    fn check_digest_guards_against_key_collisions() {
        let cache = MemoCache::new();
        cache.store_rect(7, 100, &Rectifiability::Rectifiable);
        assert_eq!(cache.lookup_rect(7, 100), Some(Rectifiability::Rectifiable));
        assert_eq!(cache.lookup_rect(7, 999), None, "check mismatch is a miss");
        assert_eq!(cache.lookup_rect(8, 100), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn kinds_never_alias_even_on_equal_keys() {
        let cache = MemoCache::new();
        cache.store_rect(42, 1, &Rectifiability::Rectifiable);
        assert!(
            cache.lookup_sweep(42, 1).is_none(),
            "a rect entry must not satisfy a sweep lookup"
        );
        assert!(cache.lookup_patch(42, 1).is_none());
    }

    #[test]
    fn fifo_eviction_bounds_each_shard() {
        let cache = MemoCache::with_shard_capacity(2);
        // Keys 0, 16, 32, 48 all land in shard 0.
        for k in [0u128, 16, 32] {
            cache.store_rect(k, 1, &Rectifiability::Rectifiable);
        }
        assert!(cache.lookup_rect(0, 1).is_none(), "oldest entry evicted");
        assert!(cache.lookup_rect(16, 1).is_some());
        assert!(cache.lookup_rect(32, 1).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    /// Regression: a job thread that panics while holding a shard lock
    /// poisons it; every cache operation must keep working afterwards
    /// (degrading to recompute on mismatch) instead of aborting the
    /// daemon with it.
    #[test]
    fn poisoned_shard_degrades_to_recompute_instead_of_panicking() {
        let cache = MemoCache::new();
        cache.store_rect(0, 1, &Rectifiability::Rectifiable);
        // Poison shard 0 the way a dying worker would: panic while the
        // stripe is held.
        let _ = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.shards[0].lock().unwrap();
                panic!("worker dies holding the memo shard");
            })
            .join()
        });
        assert!(
            cache.shards[0].lock().is_err(),
            "the shard must actually be poisoned"
        );
        // Every operation on the poisoned shard still works.
        assert_eq!(cache.lookup_rect(0, 1), Some(Rectifiability::Rectifiable));
        assert_eq!(cache.lookup_rect(16, 1), None, "miss degrades cleanly");
        cache.store_rect(16, 1, &Rectifiability::Rectifiable);
        assert_eq!(cache.lookup_rect(16, 1), Some(Rectifiability::Rectifiable));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn concurrent_store_and_lookup_is_safe() {
        let cache = MemoCache::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..200u64 {
                        let key = u128::from(i % 32);
                        cache.store_rect(key, 5, &Rectifiability::Rectifiable);
                        assert_eq!(
                            cache.lookup_rect(key, 5),
                            Some(Rectifiability::Rectifiable),
                            "thread {t}"
                        );
                    }
                });
            }
        });
        assert_eq!(cache.stats().entries, 32);
        assert_eq!(cache.stats().insertions, 32, "first write wins");
    }
}
