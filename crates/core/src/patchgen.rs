//! Multi-fix patch generation (Algorithm 1 `DependentPatchGen` plus the
//! phase-2 target-variable elimination of §4.2, with the multi-output
//! extension of §4.3 and the localized expressions of Theorem 2).

use std::collections::HashMap;

use eco_aig::{Aig, Lit, Var};

use crate::carediff::{exact_on_off_sets, on_off_sets};
use crate::govern::{Budget, ClusterDiagnosis, ConflictMeter};
use crate::localize::{Cut, TapMap};
use crate::synth::{synthesize_patch_governed, InitialPatchKind, SynthOutcome};
use crate::{EcoError, TargetCluster, Workspace};

/// Knobs for one `DependentPatchGen` run.
#[derive(Clone, Copy, Debug)]
pub struct PatchGenOptions {
    /// How patch functions are realized from on/off sets (§4.3).
    pub kind: InitialPatchKind,
    /// SAT conflict budget for interpolation queries.
    pub conflict_budget: u64,
    /// Escape hatch against structural blow-up: when the on/off cone of a
    /// target exceeds this many AND gates, interpolation is attempted even
    /// in on-set/off-set mode (a successful interpolant is a fresh small
    /// circuit, so the Alg.-1 substitution chain stops compounding; on
    /// failure the on-set is still taken). Chained on-set patches grow
    /// multiplicatively with the target count — the very blow-up the
    /// paper's localization tames — so without this cap an unlocalized
    /// 8-target run can exhaust memory.
    pub auto_interp_threshold: usize,
}

impl Default for PatchGenOptions {
    fn default() -> Self {
        PatchGenOptions {
            kind: InitialPatchKind::OnSet,
            conflict_budget: 1 << 22,
            auto_interp_threshold: 1500,
        }
    }
}

/// One finished (target-variable-free) patch function.
#[derive(Clone, Debug)]
pub struct PatchFn {
    /// Index into `instance.targets`.
    pub target: usize,
    /// The patch function in the workspace manager; its cone bottoms out
    /// on the frontier of `cut`.
    pub lit: Lit,
    /// The cut the patch is expressed over — its *base*.
    pub cut: Cut,
}

/// Patches generated for one target cluster.
#[derive(Clone, Debug)]
pub struct GroupPatches {
    /// One entry per cluster target, in cluster order.
    pub patches: Vec<PatchFn>,
    /// How many targets fell back from interpolation to the on-set.
    pub fallbacks: usize,
    /// How many targets were synthesized by interpolation.
    pub interpolated: usize,
}

/// Runs `DependentPatchGen` on one cluster.
///
/// Phase 1 walks the targets in order, deriving `p'_k(C_d, T_k)` from the
/// on/off sets of Eqs. (7)/(8) in the *current* circuit (earlier targets
/// already substituted, exactly the `F' ← F'|t_k=p'_k` update of
/// Algorithm 1 line 8). Phase 2 back-substitutes `p'_α … p'_1` to remove
/// the remaining target-variable dependencies.
pub fn generate_group_patches(
    ws: &mut Workspace,
    tap: &TapMap,
    cluster: &TargetCluster,
    opts: &PatchGenOptions,
    tel: &crate::Telemetry,
) -> GroupPatches {
    generate_group_patches_governed(
        ws,
        tap,
        cluster,
        opts,
        &Budget::unlimited(),
        &mut ConflictMeter::unlimited(),
        tel,
    )
    .expect("unlimited budget never degrades")
}

/// [`generate_group_patches`] under a resource governor: each target's
/// synthesis runs the escalation ladder against `meter`, every SAT query
/// is enrolled in the budget's control block, and the walk stops with a
/// [`ClusterDiagnosis`] when the deadline fires or the cluster's conflict
/// allowance runs dry between targets.
pub(crate) fn generate_group_patches_governed(
    ws: &mut Workspace,
    tap: &TapMap,
    cluster: &TargetCluster,
    opts: &PatchGenOptions,
    budget: &Budget,
    meter: &mut ConflictMeter,
    tel: &crate::Telemetry,
) -> Result<GroupPatches, ClusterDiagnosis> {
    let PatchGenOptions {
        kind,
        conflict_budget,
        auto_interp_threshold,
    } = *opts;
    let mut f_cur: Vec<Lit> = cluster.outputs.iter().map(|&j| ws.f_outs[j]).collect();
    let g_cur: Vec<Lit> = cluster.outputs.iter().map(|&j| ws.g_outs[j]).collect();

    let mut fallbacks = 0;
    let mut interpolated = 0;
    let mut p_prime: Vec<Lit> = Vec::with_capacity(cluster.targets.len());

    // Phase 1: target-variable dependent patches.
    for &k in &cluster.targets {
        if budget.expired() {
            return Err(ClusterDiagnosis::Deadline);
        }
        if meter.exhausted() {
            return Err(ClusterDiagnosis::BudgetExhausted);
        }
        let t = ws.target_vars[k];
        let onoff = on_off_sets(&mut ws.mgr, &f_cur, &g_cur, t);
        let cut = Cut::frontier(ws, tap, &[onoff.on, onoff.off]);
        let effective_kind = if kind == InitialPatchKind::Interpolant
            || ws.mgr.count_cone_ands(&[onoff.on, onoff.off]) > auto_interp_threshold
        {
            InitialPatchKind::Interpolant
        } else {
            kind
        };
        let ctl = budget.ctl();
        let mut outcome = synthesize_patch_governed(
            ws,
            onoff,
            &cut,
            effective_kind,
            conflict_budget,
            &ctl,
            meter,
            tel,
        );
        if outcome.fallback
            && effective_kind == InitialPatchKind::Interpolant
            && !budget.expired()
            && !meter.exhausted()
        {
            // §4.3 conflict (on ∧ off satisfiable): retry over the exact
            // relation-determinization sets, which are disjoint by
            // construction, before accepting the (possibly huge) on-set.
            let exact = exact_on_off_sets(&mut ws.mgr, &f_cur, &g_cur, t);
            let exact_cut = Cut::frontier(ws, tap, &[exact.on, exact.off]);
            let retry = synthesize_patch_governed(
                ws,
                exact,
                &exact_cut,
                InitialPatchKind::Interpolant,
                conflict_budget,
                &ctl,
                meter,
                tel,
            );
            if retry.interpolated {
                outcome = retry;
            }
        }
        let SynthOutcome {
            lit,
            interpolated: used_itp,
            fallback,
            escalated: _,
        } = outcome;
        fallbacks += usize::from(fallback);
        interpolated += usize::from(used_itp);
        if fallback {
            tel.event(
                crate::Stage::PatchGen,
                "interpolation_fallback",
                format!("target {k} fell back to the on-set circuit"),
            );
        }
        // F' <- F'|t_k = p'_k
        let mut map = HashMap::new();
        map.insert(t, lit);
        f_cur = ws.mgr.substitute(&f_cur, &map);
        p_prime.push(lit);
    }

    // Phase 2: eliminate dependencies on later target variables.
    let n = cluster.targets.len();
    let mut final_p = p_prime;
    for i in (0..n.saturating_sub(1)).rev() {
        let map: HashMap<Var, Lit> = (i + 1..n)
            .map(|j| (ws.target_vars[cluster.targets[j]], final_p[j]))
            .collect();
        final_p[i] = ws.mgr.substitute(&[final_p[i]], &map)[0];
    }

    let patches = cluster
        .targets
        .iter()
        .zip(final_p)
        .map(|(&target, lit)| PatchFn {
            target,
            lit,
            cut: Cut::frontier(ws, tap, &[lit]),
        })
        .collect();
    tel.add_interpolated(interpolated as u64);
    tel.add_interpolation_fallbacks(fallbacks as u64);
    Ok(GroupPatches {
        patches,
        fallbacks,
        interpolated,
    })
}

/// Extracts the cones of `roots` into a standalone patch AIG whose inputs
/// are the distinct cut *signals* on the frontier of the roots.
///
/// Unlike [`Aig::extract_cone`], several frontier nodes mapping to the same
/// signal (via FRAIG equivalence) share one input. Returns the patch AIG
/// and the root literals within it; `cut` lists the frontier.
///
/// Errors if a root cone reaches a target variable (phase-2 dependent
/// resubstitution incomplete) or an input the cut does not cover — a bad
/// base set surfaces as [`EcoError`] instead of aborting the process.
pub fn extract_patch_aig(
    mgr: &Aig,
    ws_targets: &[Var],
    roots: &[Lit],
    cut: &Cut,
) -> Result<(Aig, Vec<Lit>), EcoError> {
    let mut patch = Aig::new();
    let mut cache: HashMap<Var, Lit> = HashMap::new();
    cache.insert(Var::CONST, Lit::FALSE);
    let sig_inputs: Vec<Lit> = cut
        .signals
        .iter()
        .map(|s| patch.add_input(s.name.clone()))
        .collect();
    for (&v, &(sig, phase)) in &cut.node_map {
        cache.insert(v, sig_inputs[sig].xor_complement(phase));
    }

    let frontier = cut.frontier_vars();
    for v in mgr.cone_vars_to_cut(roots, &frontier) {
        if cache.contains_key(&v) {
            continue;
        }
        if let Some((fan0, fan1)) = mgr.and_fanins(v) {
            let n0 = cache[&fan0.var()].xor_complement(fan0.is_complement());
            let n1 = cache[&fan1.var()].xor_complement(fan1.is_complement());
            let lit = patch.and(n0, n1);
            cache.insert(v, lit);
        } else if let Some(pos) = mgr.input_pos(v) {
            let name = mgr.input_name(pos).to_owned();
            return Err(if ws_targets.contains(&v) {
                EcoError::Unrectifiable(format!(
                    "patch cone reached target `{name}`; dependent resubstitution incomplete"
                ))
            } else {
                EcoError::Transform(eco_aig::TransformError::InputNotInCut(name))
            });
        }
        // Constant: Lit::FALSE is pre-seeded in the cache.
    }
    let out = roots
        .iter()
        .map(|&r| cache[&r.var()].xor_complement(r.is_complement()))
        .collect();
    Ok((patch, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cluster_targets, EcoInstance};
    use eco_netlist::{parse_verilog, WeightTable};

    /// Two targets on one output: y = t1 | t2 must become (a&b) | (a^c).
    fn two_target_instance() -> (EcoInstance, Workspace) {
        let faulty = parse_verilog(
            "module f (a, b, c, t1, t2, y); input a, b, c, t1, t2; output y; \
             or g1 (y, t1, t2); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, b, c, y); input a, b, c; output y; \
             wire w1, w2; and g1 (w1, a, b); xor g2 (w2, a, c); \
             or g3 (y, w1, w2); endmodule",
        )
        .expect("golden");
        let inst = EcoInstance::from_netlists(
            "two",
            &faulty,
            &golden,
            vec!["t1".into(), "t2".into()],
            &WeightTable::new(1),
        )
        .expect("instance");
        let ws = Workspace::new(&inst);
        (inst, ws)
    }

    fn patched_outputs_match(ws: &mut Workspace, patches: &[PatchFn]) {
        let map: HashMap<Var, Lit> = patches
            .iter()
            .map(|p| (ws.target_vars[p.target], p.lit))
            .collect();
        let f_outs = ws.f_outs.clone();
        let patched = ws.mgr.substitute(&f_outs, &map);
        let mut mgr = ws.mgr.clone();
        mgr.clear_outputs();
        for (j, (&p, &g)) in patched.iter().zip(&ws.g_outs).enumerate() {
            let m = mgr.xor(p, g);
            mgr.add_output(format!("m{j}"), m);
        }
        let n = mgr.num_inputs();
        assert!(n <= 8, "exhaustive check requires few inputs");
        for bits in 0u32..1 << n {
            let vals: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let out = mgr.eval(&vals);
            assert!(
                out.iter().all(|&b| !b),
                "patched output differs from golden at {vals:?}"
            );
        }
    }

    #[test]
    fn multi_target_onset_patches_verify() {
        let (_i, mut ws) = two_target_instance();
        let clustering = cluster_targets(&ws);
        assert_eq!(clustering.clusters.len(), 1);
        let got = generate_group_patches(
            &mut ws,
            &TapMap::empty(),
            &clustering.clusters[0],
            &PatchGenOptions::default(),
            &crate::Telemetry::new(),
        );
        assert_eq!(got.patches.len(), 2);
        patched_outputs_match(&mut ws, &got.patches);
    }

    #[test]
    fn multi_target_interpolant_patches_verify() {
        let (_i, mut ws) = two_target_instance();
        let clustering = cluster_targets(&ws);
        let got = generate_group_patches(
            &mut ws,
            &TapMap::empty(),
            &clustering.clusters[0],
            &PatchGenOptions {
                kind: InitialPatchKind::Interpolant,
                ..Default::default()
            },
            &crate::Telemetry::new(),
        );
        patched_outputs_match(&mut ws, &got.patches);
    }

    #[test]
    fn final_patches_are_target_free() {
        let (_i, mut ws) = two_target_instance();
        let clustering = cluster_targets(&ws);
        let got = generate_group_patches(
            &mut ws,
            &TapMap::empty(),
            &clustering.clusters[0],
            &PatchGenOptions::default(),
            &crate::Telemetry::new(),
        );
        for p in &got.patches {
            let sup = ws.mgr.support(&[p.lit]);
            for tv in &ws.target_vars {
                assert!(!sup.contains(tv), "patch depends on target {tv:?}");
            }
        }
    }

    #[test]
    fn extraction_builds_standalone_patch() {
        let (_i, mut ws) = two_target_instance();
        let clustering = cluster_targets(&ws);
        let got = generate_group_patches(
            &mut ws,
            &TapMap::empty(),
            &clustering.clusters[0],
            &PatchGenOptions::default(),
            &crate::Telemetry::new(),
        );
        let roots: Vec<Lit> = got.patches.iter().map(|p| p.lit).collect();
        let cut = Cut::merge(got.patches.iter().map(|p| &p.cut));
        let (patch, outs) =
            extract_patch_aig(&ws.mgr, &ws.target_vars, &roots, &cut).expect("cut covers cones");
        assert_eq!(outs.len(), 2);
        // Standalone patch evaluates like the manager cones.
        let mut patch = patch;
        for (i, &o) in outs.iter().enumerate() {
            patch.add_output(format!("t{i}"), o);
        }
        let mut check = ws.mgr.clone();
        check.clear_outputs();
        for (i, &r) in roots.iter().enumerate() {
            check.add_output(format!("t{i}"), r);
        }
        // patch inputs are a subset of X by name; evaluate both on all X.
        let n = check.num_inputs();
        for bits in 0u32..1 << n {
            let vals: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let want = check.eval(&vals);
            let pvals: Vec<bool> = (0..patch.num_inputs())
                .map(|p| {
                    let name = patch.input_name(p);
                    let pos = (0..check.num_inputs())
                        .position(|q| check.input_name(q) == name)
                        .expect("patch input exists in manager");
                    vals[pos]
                })
                .collect();
            assert_eq!(patch.eval(&pvals), want, "at {vals:?}");
        }
    }

    /// A cut that does not cover the patch cone surfaces as a typed
    /// `EcoError` (previously a panic) — both for plain inputs and for
    /// target pseudo-inputs the cone reaches.
    #[test]
    fn extraction_with_uncovered_cut_is_typed_error() {
        let (_i, ws) = two_target_instance();
        // Patch "function" that is just the faulty output cone: it reaches
        // the X inputs, which an empty cut does not cover.
        let roots = vec![ws.f_outs[0]];
        let err = extract_patch_aig(&ws.mgr, &ws.target_vars, &roots, &Cut::default())
            .expect_err("empty cut cannot cover the cone");
        match err {
            EcoError::Unrectifiable(msg) => assert!(msg.contains("target"), "{msg}"),
            EcoError::Transform(e) => {
                assert!(matches!(e, eco_aig::TransformError::InputNotInCut(_)))
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
