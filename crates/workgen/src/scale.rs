//! Scale workloads: AIG-level generators for 100k- to million-gate
//! circuits.
//!
//! The contest-style suite ([`crate::contest_suite`]) tops out at a few
//! thousand gates because every case round-trips through gate-level
//! Verilog. The generators here skip the netlist layer entirely and build
//! [`Aig`]s directly — string names per net would dominate memory long
//! before the engine itself does at a million gates. Two complementary
//! shapes stress the two axes of the SoA core:
//!
//! * [`deep_datapath_aig`] — a ripple full-adder chain, maximally *deep*:
//!   the critical path grows linearly with the gate count, so simulation
//!   cannot skip ahead and every fanin read walks far-apart rows.
//! * [`wide_random_aig`] — a random DAG, maximally *wide*: fanins are
//!   drawn uniformly from the whole history, stressing strash lookups and
//!   cache behavior rather than dependency depth.
//!
//! Both are deterministic in their seed, keep every AND reachable from an
//! output (the AIGER writers emit only the output cone), and land within
//! a few gates of the requested size. [`SCALE_PRESETS`] names the
//! 100k/500k/1m configurations used by `eco-workgen --scale` and the
//! scale benchmark harness.

use eco_aig::{Aig, Lit, SplitMix64};

/// A named scale configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScalePreset {
    /// Preset name as accepted by `--scale` (`100k`, `500k`, `1m`).
    pub name: &'static str,
    /// Target AND-gate count per generated circuit.
    pub ands: usize,
    /// Primary input count.
    pub inputs: usize,
    /// Generator seed.
    pub seed: u64,
}

/// The presets recorded in `BENCH_scale.json`.
pub const SCALE_PRESETS: [ScalePreset; 3] = [
    ScalePreset {
        name: "100k",
        ands: 100_000,
        inputs: 256,
        seed: 0x05_ca1e_0001,
    },
    ScalePreset {
        name: "500k",
        ands: 500_000,
        inputs: 512,
        seed: 0x05_ca1e_0002,
    },
    ScalePreset {
        name: "1m",
        ands: 1_000_000,
        inputs: 1024,
        seed: 0x05_ca1e_0003,
    },
];

/// Looks up a preset by its `--scale` name.
pub fn scale_preset(name: &str) -> Option<&'static ScalePreset> {
    SCALE_PRESETS.iter().find(|p| p.name == name)
}

fn add_inputs(aig: &mut Aig, n: usize) -> Vec<Lit> {
    (0..n).map(|i| aig.add_input(format!("i{i}"))).collect()
}

/// A deep datapath: a ripple chain of full-adder cells.
///
/// Each cell folds the next input (cyclically) into a running
/// `(sum, carry)` pair — `sum = acc ⊕ x ⊕ carry`,
/// `carry' = maj(acc, x, carry)` — for about nine fresh ANDs per cell and
/// a critical path that grows with the gate count. Both running values
/// are outputs, so the whole chain is live.
pub fn deep_datapath_aig(num_inputs: usize, target_ands: usize, seed: u64) -> Aig {
    assert!(num_inputs >= 2, "datapath needs at least two inputs");
    let mut aig = Aig::new();
    let mut rng = SplitMix64::new(seed);
    let inputs = add_inputs(&mut aig, num_inputs);
    let mut acc = inputs[0];
    let mut carry = inputs[1];
    let mut k = 2usize;
    while aig.num_ands() < target_ands {
        // An occasional complement keeps consecutive cells from being
        // structurally identical up to strash.
        let x = inputs[k % num_inputs].xor_complement(rng.chance(0.25));
        let s1 = aig.xor(acc, x);
        let sum = aig.xor(s1, carry);
        let c1 = aig.and(acc, x);
        let c2 = aig.and(s1, carry);
        let new_carry = aig.or(c1, c2);
        acc = sum;
        carry = new_carry;
        k += 1;
    }
    aig.add_output("sum", acc);
    aig.add_output("carry", carry);
    aig
}

/// A wide random DAG: every new AND draws both fanins uniformly from the
/// whole history (inputs and earlier ANDs), with random complements.
///
/// Fanout-0 ANDs are tracked as the DAG grows and folded into a single
/// output by a balanced AND reduction at the end, so the result has no
/// dead logic and lands within a couple of gates of `target_ands`.
pub fn wide_random_aig(num_inputs: usize, target_ands: usize, seed: u64) -> Aig {
    assert!(num_inputs >= 2, "random DAG needs at least two inputs");
    let mut aig = Aig::new();
    let mut rng = SplitMix64::new(seed);
    let mut pool = add_inputs(&mut aig, num_inputs);
    // AND vars currently unused as a fanin, by pool index.
    let mut is_sink: Vec<bool> = vec![false; pool.len()];
    let mut sinks = 0usize;

    // Grow while the final sink reduction (`sinks - 1` extra ANDs) still
    // fits under the target.
    while aig.num_ands() + sinks.saturating_sub(1) + 1 < target_ands {
        let i = rng.index(pool.len());
        let j = rng.index(pool.len());
        let a = pool[i].xor_complement(rng.chance(0.5));
        let b = pool[j].xor_complement(rng.chance(0.5));
        let before = aig.num_ands();
        let n = aig.and(a, b);
        if aig.num_ands() == before {
            // Constant fold or strash hit: no fresh node to track.
            continue;
        }
        for used in [i, j] {
            if is_sink[used] {
                is_sink[used] = false;
                sinks -= 1;
            }
        }
        pool.push(n);
        is_sink.push(true);
        sinks += 1;
    }

    // Balanced AND reduction over the sinks.
    let mut layer: Vec<Lit> = pool
        .iter()
        .zip(&is_sink)
        .filter(|&(_, &s)| s)
        .map(|(&l, _)| l)
        .collect();
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|c| {
                if c.len() == 2 {
                    aig.and(c[0], c[1])
                } else {
                    c[0]
                }
            })
            .collect();
    }
    let root = layer.first().copied().unwrap_or(Lit::FALSE);
    aig.add_output("fold", root);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_aig::{parse_aiger_binary, write_aiger_binary};

    #[test]
    fn presets_are_resolvable_and_ordered() {
        assert_eq!(scale_preset("100k").map(|p| p.ands), Some(100_000));
        assert_eq!(scale_preset("1m").map(|p| p.ands), Some(1_000_000));
        assert!(scale_preset("2m").is_none());
        assert!(SCALE_PRESETS.windows(2).all(|w| w[0].ands < w[1].ands));
    }

    #[test]
    fn generators_hit_target_within_tolerance() {
        for (name, aig) in [
            ("datapath", deep_datapath_aig(32, 20_000, 7)),
            ("randdag", wide_random_aig(32, 20_000, 7)),
        ] {
            let ands = aig.num_ands();
            assert!(
                (19_000..=20_020).contains(&ands),
                "{name}: {ands} ANDs for target 20000"
            );
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = write_aiger_binary(&wide_random_aig(16, 4_000, 3));
        let b = write_aiger_binary(&wide_random_aig(16, 4_000, 3));
        assert_eq!(a, b);
        let c = write_aiger_binary(&deep_datapath_aig(16, 4_000, 3));
        let d = write_aiger_binary(&deep_datapath_aig(16, 4_000, 3));
        assert_eq!(c, d);
    }

    #[test]
    fn random_dag_has_no_dead_logic() {
        let aig = wide_random_aig(16, 5_000, 11);
        let roots: Vec<Lit> = aig.outputs().iter().map(|o| o.lit).collect();
        let live = aig
            .cone_vars(&roots)
            .into_iter()
            .filter(|&v| aig.is_and(v))
            .count();
        assert_eq!(live, aig.num_ands(), "every AND reachable from the output");
    }

    /// The always-on scale round-trip: a 100k-gate generated circuit
    /// survives binary AIGER write → parse → write byte-identically.
    #[test]
    fn aiger_roundtrip_is_byte_identical_at_100k() {
        let p = scale_preset("100k").expect("preset");
        let aig = wide_random_aig(p.inputs, p.ands, p.seed);
        assert!(aig.num_ands() >= 99_000, "got {} ANDs", aig.num_ands());
        let bytes = write_aiger_binary(&aig);
        let back = parse_aiger_binary(&bytes).expect("parses");
        assert_eq!(
            bytes,
            write_aiger_binary(&back),
            "binary AIGER round-trip must be byte-identical"
        );
    }
}
