//! Parser for the contest's structural Verilog subset.
//!
//! Supported grammar (whitespace/newline insensitive, `//` and `/* */`
//! comments):
//!
//! ```text
//! module <ident> ( <ident> {, <ident>} ) ;
//! { input  <ident> {, <ident>} ;
//! | output <ident> {, <ident>} ;
//! | wire   <ident> {, <ident>} ;
//! | assign <ident> = <netref> ;
//! | <gate-kw> [<ident>] ( <ident> , <netref> {, <netref>} ) ; }
//! endmodule
//! ```
//!
//! `assign y = x;` desugars to a `buf` gate; `1'b0`/`1'b1` are constant
//! net references. Escaped identifiers (`\foo[3] `) are accepted.

use std::error::Error;
use std::fmt;

use crate::ast::{Gate, GateKind, NetRef, Netlist};

/// Error produced when netlist text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetlistError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseNetlistError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Const(bool),
    LParen,
    RParen,
    Comma,
    Semi,
    Eq,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseNetlistError {
        ParseNetlistError {
            line: self.line,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.src[self.pos..].chars().next()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn skip_trivia(&mut self) -> Result<(), ParseNetlistError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    let rest = &self.src[self.pos..];
                    if rest.starts_with("//") {
                        while let Some(c) = self.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                    } else if rest.starts_with("/*") {
                        self.bump();
                        self.bump();
                        loop {
                            match self.bump() {
                                Some('*') if self.peek() == Some('/') => {
                                    self.bump();
                                    break;
                                }
                                Some(_) => {}
                                None => return Err(self.error("unterminated block comment")),
                            }
                        }
                    } else {
                        return Ok(());
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_tok(&mut self) -> Result<Option<(Tok, usize)>, ParseNetlistError> {
        self.skip_trivia()?;
        let line = self.line;
        let c = match self.peek() {
            Some(c) => c,
            None => return Ok(None),
        };
        let tok = match c {
            '(' => {
                self.bump();
                Tok::LParen
            }
            ')' => {
                self.bump();
                Tok::RParen
            }
            ',' => {
                self.bump();
                Tok::Comma
            }
            ';' => {
                self.bump();
                Tok::Semi
            }
            '=' => {
                self.bump();
                Tok::Eq
            }
            '\\' => {
                // Escaped identifier: up to whitespace.
                self.bump();
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_whitespace() {
                        break;
                    }
                    self.bump();
                }
                Tok::Ident(self.src[start..self.pos].to_string())
            }
            c if c.is_ascii_digit() => {
                // Expect 1'b0 / 1'b1.
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '\'' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                match &self.src[start..self.pos] {
                    "1'b0" | "1'h0" => Tok::Const(false),
                    "1'b1" | "1'h1" => Tok::Const(true),
                    other => return Err(self.error(format!("unsupported literal `{other}`"))),
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric()
                        || c == '_'
                        || c == '$'
                        || c == '['
                        || c == ']'
                        || c == '.'
                    {
                        self.bump();
                    } else {
                        break;
                    }
                }
                Tok::Ident(self.src[start..self.pos].to_string())
            }
            other => return Err(self.error(format!("unexpected character `{other}`"))),
        };
        Ok(Some((tok, line)))
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    idx: usize,
}

impl Parser {
    fn error_at(&self, message: impl Into<String>) -> ParseNetlistError {
        let line = self
            .toks
            .get(self.idx.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.1);
        ParseNetlistError {
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|t| &t.0)
    }

    fn next(&mut self) -> Result<Tok, ParseNetlistError> {
        let t = self
            .toks
            .get(self.idx)
            .cloned()
            .ok_or_else(|| self.error_at("unexpected end of input"))?;
        self.idx += 1;
        Ok(t.0)
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseNetlistError> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            self.idx -= 1;
            Err(self.error_at(format!("expected {want:?}, found {got:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseNetlistError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => {
                self.idx -= 1;
                Err(self.error_at(format!("expected identifier, found {other:?}")))
            }
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseNetlistError> {
        let mut out = vec![self.ident()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next()?;
            out.push(self.ident()?);
        }
        self.expect(Tok::Semi)?;
        Ok(out)
    }

    fn netref(&mut self) -> Result<NetRef, ParseNetlistError> {
        match self.next()? {
            Tok::Ident(s) => Ok(NetRef::Named(s)),
            Tok::Const(b) => Ok(NetRef::Const(b)),
            other => {
                self.idx -= 1;
                Err(self.error_at(format!("expected net, found {other:?}")))
            }
        }
    }
}

/// Parses one module of the structural Verilog subset.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] on lexical errors, grammar violations,
/// unknown primitives, or gates with missing operands.
///
/// # Examples
///
/// ```
/// let src = "module m (a, b, y); input a, b; output y; and g1 (y, a, b); endmodule";
/// let n = eco_netlist::parse_verilog(src)?;
/// assert_eq!(n.name, "m");
/// assert_eq!(n.num_gates(), 1);
/// # Ok::<(), eco_netlist::ParseNetlistError>(())
/// ```
pub fn parse_verilog(src: &str) -> Result<Netlist, ParseNetlistError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lexer.next_tok()? {
        toks.push(t);
    }
    let mut p = Parser { toks, idx: 0 };

    let kw = p.ident()?;
    if kw != "module" {
        return Err(p.error_at("expected `module`"));
    }
    let mut nl = Netlist::new(p.ident()?);
    // Port list (names only; direction comes from declarations).
    p.expect(Tok::LParen)?;
    if p.peek() != Some(&Tok::RParen) {
        let _ = p.ident()?;
        while p.peek() == Some(&Tok::Comma) {
            p.next()?;
            let _ = p.ident()?;
        }
    }
    p.expect(Tok::RParen)?;
    p.expect(Tok::Semi)?;

    loop {
        let kw = p.ident()?;
        match kw.as_str() {
            "endmodule" => break,
            "input" => nl.inputs.extend(p.ident_list()?),
            "output" => nl.outputs.extend(p.ident_list()?),
            "wire" => nl.wires.extend(p.ident_list()?),
            "assign" => {
                let lhs = p.ident()?;
                p.expect(Tok::Eq)?;
                let rhs = p.netref()?;
                p.expect(Tok::Semi)?;
                nl.gates.push(Gate {
                    kind: GateKind::Buf,
                    name: None,
                    output: lhs,
                    inputs: vec![rhs],
                });
            }
            gate_kw => {
                let kind = GateKind::from_keyword(gate_kw)
                    .ok_or_else(|| p.error_at(format!("unknown primitive `{gate_kw}`")))?;
                // Optional instance name before '('.
                let name = if matches!(p.peek(), Some(Tok::Ident(_))) {
                    Some(p.ident()?)
                } else {
                    None
                };
                p.expect(Tok::LParen)?;
                let output = p.ident()?;
                let mut inputs = Vec::new();
                while p.peek() == Some(&Tok::Comma) {
                    p.next()?;
                    inputs.push(p.netref()?);
                }
                p.expect(Tok::RParen)?;
                p.expect(Tok::Semi)?;
                if inputs.is_empty() {
                    return Err(p.error_at(format!("gate `{gate_kw}` needs at least one input")));
                }
                if matches!(kind, GateKind::Buf | GateKind::Not) && inputs.len() != 1 {
                    return Err(p.error_at(format!("`{gate_kw}` takes exactly one input")));
                }
                nl.gates.push(Gate {
                    kind,
                    name,
                    output,
                    inputs,
                });
            }
        }
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
// sample circuit
module top (a, b, c, y, z);
input a, b;
input c;
output y, z;
wire w1, w2;
and g1 (w1, a, b);
xor g2 (w2, w1, c);
buf g3 (y, w2);
nor (z, a, 1'b0, c); /* unnamed gate with a constant */
endmodule
"#;

    #[test]
    fn parses_sample() {
        let n = parse_verilog(SAMPLE).expect("parse");
        assert_eq!(n.name, "top");
        assert_eq!(n.inputs, vec!["a", "b", "c"]);
        assert_eq!(n.outputs, vec!["y", "z"]);
        assert_eq!(n.wires, vec!["w1", "w2"]);
        assert_eq!(n.num_gates(), 4);
        assert_eq!(n.gates[3].kind, GateKind::Nor);
        assert_eq!(n.gates[3].inputs[1], NetRef::Const(false));
        assert_eq!(n.gates[0].name.as_deref(), Some("g1"));
        assert_eq!(n.gates[3].name, None);
    }

    #[test]
    fn assign_desugars_to_buf() {
        let n = parse_verilog("module m (a, y); input a; output y; assign y = a; endmodule")
            .expect("parse");
        assert_eq!(n.gates[0].kind, GateKind::Buf);
        assert_eq!(n.gates[0].output, "y");
        assert_eq!(n.gates[0].inputs, vec![NetRef::named("a")]);
    }

    #[test]
    fn assign_constant() {
        let n = parse_verilog("module m (y); output y; assign y = 1'b1; endmodule").expect("parse");
        assert_eq!(n.gates[0].inputs, vec![NetRef::Const(true)]);
    }

    #[test]
    fn escaped_identifiers() {
        let n = parse_verilog(
            "module m (\\a[0] , y); input \\a[0] ; output y; buf (y, \\a[0] ); endmodule",
        )
        .expect("parse");
        assert_eq!(n.inputs, vec!["a[0]"]);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_verilog("module m (y);\noutput y;\nfoo (y, a);\nendmodule").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("unknown primitive"));
    }

    #[test]
    fn rejects_bad_literals_and_arity() {
        assert!(parse_verilog("module m (y); output y; and g (y, 2'b10); endmodule").is_err());
        assert!(parse_verilog("module m (y); output y; not g (y, a, b); endmodule").is_err());
        assert!(parse_verilog("module m (y); output y; and g (y); endmodule").is_err());
        assert!(parse_verilog("modul m (y); endmodule").is_err());
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(parse_verilog("module m (y); /* oops").is_err());
    }

    #[test]
    fn empty_port_list() {
        let n = parse_verilog("module m (); endmodule").expect("parse");
        assert_eq!(n.num_gates(), 0);
    }
}
