//! Replays the `tests/corpus/` regression set through the differential
//! fuzzing oracle, plus a small fixed-seed fuzz smoke campaign.
//!
//! Corpus cases are shapes that once exposed (or are prone to exposing)
//! pipeline bugs — multi-target clusters, constant cones, degenerate
//! weights, output-polarity traps. Every case must pass the independent
//! oracle: full engine run, patched-netlist Verilog round trip, fresh
//! SAT miter against the golden circuit, and a random-simulation
//! cross-check. New failures found by `eco-fuzz` get shrunk and dropped
//! into `tests/corpus/` as `.case` files; this test picks them up
//! automatically.

use eco::workgen::fuzz::{run_campaign, run_case, CaseOutcome, FuzzCase, FuzzConfig};
use eco::workgen::roundtrip::{run_rt_campaign, run_rt_case, RtCase, RtConfig, RtOutcome};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_cases_all_pass_the_oracle() {
    let cfg = FuzzConfig::default();
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "corpus must not be empty");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("case readable");
        let case = FuzzCase::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        match run_case(&case, &cfg) {
            CaseOutcome::Pass => {}
            CaseOutcome::Skip(why) => {
                panic!(
                    "{}: skipped ({why}) — corpus cases must be cheap",
                    path.display()
                )
            }
            CaseOutcome::Fail(f) => {
                panic!("{}: FAIL at {} — {}", path.display(), f.stage, f.detail)
            }
        }
    }
}

#[test]
fn rtcase_corpus_round_trips_cleanly() {
    let cfg = RtConfig::default();
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rtcase"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "rtcase corpus must not be empty");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("rtcase readable");
        let case = RtCase::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        match run_rt_case(&case, &cfg) {
            RtOutcome::Pass => {}
            RtOutcome::Skip(why) => {
                panic!(
                    "{}: skipped ({why}) — corpus cases must be cheap",
                    path.display()
                )
            }
            RtOutcome::Fail { hop, detail } => {
                panic!("{}: FAIL at {hop} — {detail}", path.display())
            }
        }
    }
}

#[test]
fn fixed_seed_format_roundtrip_smoke_is_clean() {
    let cfg = RtConfig::default();
    let (stats, failures) = run_rt_campaign(15, 0xf0a7, &cfg, true, |_, _| {});
    assert_eq!(stats.cases, 15);
    assert!(
        failures.is_empty(),
        "format round-trip smoke failed: {}",
        failures[0]
    );
}

#[test]
fn fixed_seed_fuzz_smoke_is_clean() {
    let cfg = FuzzConfig::default();
    let (stats, failures) = run_campaign(25, 0xec0f, &cfg, true, |_, _| {});
    assert_eq!(stats.cases, 25);
    assert!(
        failures.is_empty(),
        "fuzz smoke found {} failure(s); first: {} at {}",
        failures.len(),
        failures[0].case.seed,
        failures[0].failure.stage
    );
}
