//! `SynthesizePatch` (§4.2/§4.3): realize a patch function from its on/off
//! sets, by interpolation or by taking the on-set / negated off-set.

use std::collections::HashMap;

use eco_aig::{Lit, Var};
use eco_sat::{ClauseLabel, ItpOutcome, ItpSolver, LabeledSink, Lit as SLit, SolveCtl};

use crate::carediff::OnOff;
use crate::govern::ConflictMeter;
use crate::localize::Cut;
use crate::Workspace;

/// How the initial patch function is realized from the on/off pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InitialPatchKind {
    /// Take the on-set circuit directly (the paper's choice, §4.3
    /// option 2 — cheap and always applicable).
    #[default]
    OnSet,
    /// Take the negated off-set circuit.
    NegOffSet,
    /// Try Craig interpolation between on and off (smaller patches when it
    /// succeeds); falls back to the on-set when `on ∧ off` is satisfiable
    /// (the multi-output conflict of §4.3) or the budget is exhausted.
    Interpolant,
}

/// Result of one `SynthesizePatch` call.
#[derive(Clone, Copy, Debug)]
pub struct SynthOutcome {
    /// The patch function `p'_k` as a manager literal (over cut signals and
    /// the remaining target variables).
    pub lit: Lit,
    /// `true` if the result came from a successful interpolation.
    pub interpolated: bool,
    /// `true` if interpolation was requested but failed (satisfiable
    /// overlap or budget), triggering the on-set fallback.
    pub fallback: bool,
    /// `true` if the budget-escalation ladder took its second (full
    /// remaining allowance) interpolation attempt.
    pub escalated: bool,
}

/// Synthesizes `p'_k` from its on/off sets over the cut `C_d` and the
/// remaining targets `T_k` (Theorem 2).
///
/// For [`InitialPatchKind::Interpolant`], the A-side encodes the on-set
/// cone and the B-side the off-set cone, cut at `C_d ∪ T_k`; the shared
/// variables are exactly the cut signals and remaining targets, so the
/// interpolant — imported back into the manager — is a valid patch
/// whenever `on ∧ off` is unsatisfiable.
pub fn synthesize_patch(
    ws: &mut Workspace,
    onoff: OnOff,
    cut: &Cut,
    kind: InitialPatchKind,
    conflict_budget: u64,
    tel: &crate::Telemetry,
) -> SynthOutcome {
    synthesize_patch_governed(
        ws,
        onoff,
        cut,
        kind,
        conflict_budget,
        &SolveCtl::unlimited(),
        &mut ConflictMeter::unlimited(),
        tel,
    )
}

/// Fewest conflicts worth spending on the ladder's cheap first tier; below
/// this the attempt is pure overhead and the ladder escalates directly.
const MIN_CHEAP_TIER: u64 = 64;

/// [`synthesize_patch`] under a governor: interpolation attempts charge
/// the cluster's [`ConflictMeter`] and enroll in `ctl`, and — when the
/// meter is finite — run as a budget-escalation ladder: a cheap attempt at
/// an eighth of the remaining allowance, an escalated attempt at the full
/// remainder, and finally the structural on-set fallback (which always
/// succeeds). With an unlimited meter the ladder collapses to exactly one
/// attempt at `conflict_budget`, preserving ungoverned behavior.
#[allow(clippy::too_many_arguments)]
pub(crate) fn synthesize_patch_governed(
    ws: &mut Workspace,
    onoff: OnOff,
    cut: &Cut,
    kind: InitialPatchKind,
    conflict_budget: u64,
    ctl: &SolveCtl,
    meter: &mut ConflictMeter,
    tel: &crate::Telemetry,
) -> SynthOutcome {
    let plain = |lit: Lit| SynthOutcome {
        lit,
        interpolated: false,
        fallback: false,
        escalated: false,
    };
    match kind {
        InitialPatchKind::OnSet => plain(onoff.on),
        InitialPatchKind::NegOffSet => plain(!onoff.off),
        InitialPatchKind::Interpolant => {
            let interpolated = |lit: Lit, escalated: bool| SynthOutcome {
                lit,
                interpolated: true,
                fallback: false,
                escalated,
            };
            let fallback = |escalated: bool| SynthOutcome {
                lit: onoff.on,
                interpolated: false,
                fallback: true,
                escalated,
            };
            let Some(remaining) = meter.remaining() else {
                // Unlimited meter: the single pre-governor attempt.
                return match try_interpolate(ws, onoff, cut, conflict_budget, ctl, meter, tel) {
                    ItpAttempt::Done(lit) => interpolated(lit, false),
                    ItpAttempt::Overlap | ItpAttempt::Exhausted => fallback(false),
                };
            };
            // Tier 1: cheap probe at an eighth of the allowance.
            let cheap = (remaining / 8).min(conflict_budget);
            if cheap >= MIN_CHEAP_TIER {
                match try_interpolate(ws, onoff, cut, cheap, ctl, meter, tel) {
                    ItpAttempt::Done(lit) => return interpolated(lit, false),
                    // A satisfiable overlap is definitive: more budget
                    // cannot change a found model.
                    ItpAttempt::Overlap => return fallback(false),
                    ItpAttempt::Exhausted => {}
                }
            }
            // Tier 2: escalate to everything the meter still allows.
            let escalated_budget = meter.cap(conflict_budget);
            if meter.exhausted() || escalated_budget == 0 || ctl.expired() {
                return fallback(false);
            }
            tel.add_escalations(1);
            match try_interpolate(ws, onoff, cut, escalated_budget, ctl, meter, tel) {
                ItpAttempt::Done(lit) => interpolated(lit, true),
                // Tier 3: the structural on-set fallback.
                ItpAttempt::Overlap | ItpAttempt::Exhausted => fallback(true),
            }
        }
    }
}

/// Outcome of a single interpolation attempt.
enum ItpAttempt {
    /// Interpolant found and imported.
    Done(Lit),
    /// `on ∧ off` is satisfiable — definitive, retrying cannot help.
    Overlap,
    /// Conflict budget spent or the control block fired.
    Exhausted,
}

fn try_interpolate(
    ws: &mut Workspace,
    onoff: OnOff,
    cut: &Cut,
    conflict_budget: u64,
    ctl: &SolveCtl,
    meter: &mut ConflictMeter,
    tel: &crate::Telemetry,
) -> ItpAttempt {
    let mut q = ItpSolver::new();
    if !ctl.is_unlimited() {
        q.set_ctl(ctl.clone());
    }

    // Shared variables: one per cut signal, one per frontier target.
    let sig_sat: Vec<SLit> = cut.signals.iter().map(|_| q.new_var().pos()).collect();
    let tgt_sat: HashMap<Var, SLit> = cut
        .targets
        .iter()
        .map(|&k| (ws.target_vars[k], q.new_var().pos()))
        .collect();

    // Seed map shared by both copies: frontier nodes and targets.
    let mut seed: HashMap<Var, SLit> = HashMap::new();
    for (&v, &(sig, phase)) in &cut.node_map {
        let sl = sig_sat[sig];
        seed.insert(v, if phase { !sl } else { sl });
    }
    for (&v, &sl) in &tgt_sat {
        seed.insert(v, sl);
    }

    // A: on-set asserted; B: off-set asserted. Separate maps above the cut.
    {
        let mut map_a = seed.clone();
        let mut sink = LabeledSink::new(&mut q, ClauseLabel::A);
        let roots = eco_sat::encode_cone(&ws.mgr, &[onoff.on], &mut map_a, &mut sink);
        sink.sink_clause(&[roots[0]]);
    }
    {
        let mut map_b = seed.clone();
        let mut sink = LabeledSink::new(&mut q, ClauseLabel::B);
        let roots = eco_sat::encode_cone(&ws.mgr, &[onoff.off], &mut map_b, &mut sink);
        sink.sink_clause(&[roots[0]]);
    }

    q.set_conflict_budget(conflict_budget);
    let solved = q.solve_limited();
    let stats = q.last_stats();
    tel.record_solver(&stats);
    meter.charge(stats.conflicts);
    let itp = match solved {
        None => return ItpAttempt::Exhausted,
        Some(ItpOutcome::Unsat(itp)) => itp,
        Some(ItpOutcome::Sat(_)) => return ItpAttempt::Overlap,
    };

    // Import the interpolant into the manager: map its inputs (shared SAT
    // vars) back to the corresponding manager literals.
    let mut input_map: HashMap<Var, Lit> = HashMap::new();
    for (i, &sv) in itp.inputs.iter().enumerate() {
        let mgr_lit = sig_sat
            .iter()
            .position(|sl| sl.var() == sv)
            .map(|sig| cut.signals[sig].lit)
            .or_else(|| {
                tgt_sat
                    .iter()
                    .find(|(_, sl)| sl.var() == sv)
                    .map(|(&tv, _)| tv.pos())
            })
            .expect("shared var maps to a cut signal or target");
        input_map.insert(itp.aig.input_var(i), mgr_lit);
    }
    ItpAttempt::Done(
        ws.mgr
            .import(&itp.aig, &[itp.root], &input_map)
            .expect("interpolant inputs are fully mapped")[0],
    )
}

// `LabeledSink` needs `ClauseSink` in scope for `sink_clause`.
use eco_sat::ClauseSink as _;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carediff::on_off_sets;
    use crate::localize::TapMap;
    use crate::EcoInstance;
    use eco_netlist::{parse_verilog, WeightTable};

    fn tel() -> crate::Telemetry {
        crate::Telemetry::new()
    }

    fn xor_instance() -> (EcoInstance, Workspace) {
        // F: y = t ^ c (target t). G: y = (a & b) ^ c. Patch must be a & b.
        let faulty = parse_verilog(
            "module f (a, b, c, t, y); input a, b, c, t; output y; \
             xor g1 (y, t, c); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, b, c, y); input a, b, c; output y; \
             wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
        )
        .expect("golden");
        let inst = EcoInstance::from_netlists(
            "x",
            &faulty,
            &golden,
            vec!["t".into()],
            &WeightTable::new(1),
        )
        .expect("instance");
        let ws = Workspace::new(&inst);
        (inst, ws)
    }

    fn check_patch_semantics(ws: &Workspace, patch: Lit) {
        // Patch must equal a & b for every X assignment (T irrelevant here).
        let mut mgr = ws.mgr.clone();
        mgr.clear_outputs();
        mgr.add_output("p", patch);
        for bits in 0u32..16 {
            let vals: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(mgr.eval(&vals)[0], vals[0] && vals[1], "patch at {vals:?}");
        }
    }

    #[test]
    fn onset_patch_is_correct() {
        let (_i, mut ws) = xor_instance();
        let t = ws.target_vars[0];
        let onoff = on_off_sets(&mut ws.mgr, &ws.f_outs.clone(), &ws.g_outs.clone(), t);
        let cut = Cut::frontier(&ws, &TapMap::empty(), &[onoff.on, onoff.off]);
        let got = synthesize_patch(
            &mut ws,
            onoff,
            &cut,
            InitialPatchKind::OnSet,
            1 << 20,
            &tel(),
        );
        assert!(!got.interpolated && !got.fallback);
        check_patch_semantics(&ws, got.lit);
    }

    #[test]
    fn neg_offset_patch_is_correct() {
        let (_i, mut ws) = xor_instance();
        let t = ws.target_vars[0];
        let onoff = on_off_sets(&mut ws.mgr, &ws.f_outs.clone(), &ws.g_outs.clone(), t);
        let cut = Cut::frontier(&ws, &TapMap::empty(), &[onoff.on, onoff.off]);
        let got = synthesize_patch(
            &mut ws,
            onoff,
            &cut,
            InitialPatchKind::NegOffSet,
            1 << 20,
            &tel(),
        );
        check_patch_semantics(&ws, got.lit);
    }

    #[test]
    fn interpolant_patch_is_correct_and_flagged() {
        let (_i, mut ws) = xor_instance();
        let t = ws.target_vars[0];
        let onoff = on_off_sets(&mut ws.mgr, &ws.f_outs.clone(), &ws.g_outs.clone(), t);
        let cut = Cut::frontier(&ws, &TapMap::empty(), &[onoff.on, onoff.off]);
        let got = synthesize_patch(
            &mut ws,
            onoff,
            &cut,
            InitialPatchKind::Interpolant,
            1 << 20,
            &tel(),
        );
        assert!(got.interpolated && !got.fallback);
        check_patch_semantics(&ws, got.lit);
    }

    #[test]
    fn governed_ladder_escalates_then_interpolates() {
        let (_i, mut ws) = xor_instance();
        let t = ws.target_vars[0];
        let onoff = on_off_sets(&mut ws.mgr, &ws.f_outs.clone(), &ws.g_outs.clone(), t);
        let cut = Cut::frontier(&ws, &TapMap::empty(), &[onoff.on, onoff.off]);
        // Allowance 100: the cheap tier (100/8 = 12 < MIN_CHEAP_TIER) is
        // skipped, so the ladder goes straight to the escalated attempt.
        let budget = crate::Budget::new(&crate::BudgetOptions {
            timeout: None,
            cluster_conflicts: Some(100),
        });
        let mut meter = budget.meter();
        let tel = tel();
        let got = synthesize_patch_governed(
            &mut ws,
            onoff,
            &cut,
            InitialPatchKind::Interpolant,
            1 << 20,
            &budget.ctl(),
            &mut meter,
            &tel,
        );
        assert!(got.interpolated && got.escalated, "{got:?}");
        assert_eq!(tel.snapshot().escalations, 1);
        check_patch_semantics(&ws, got.lit);
    }

    #[test]
    fn exhausted_meter_falls_back_to_onset() {
        let (_i, mut ws) = xor_instance();
        let t = ws.target_vars[0];
        let onoff = on_off_sets(&mut ws.mgr, &ws.f_outs.clone(), &ws.g_outs.clone(), t);
        let cut = Cut::frontier(&ws, &TapMap::empty(), &[onoff.on, onoff.off]);
        let budget = crate::Budget::new(&crate::BudgetOptions {
            timeout: None,
            cluster_conflicts: Some(0),
        });
        let mut meter = budget.meter();
        let tel = tel();
        let got = synthesize_patch_governed(
            &mut ws,
            onoff,
            &cut,
            InitialPatchKind::Interpolant,
            1 << 20,
            &budget.ctl(),
            &mut meter,
            &tel,
        );
        assert!(got.fallback && !got.interpolated && !got.escalated);
        assert_eq!(got.lit, onoff.on);
        assert_eq!(tel.snapshot().escalations, 0);
    }

    #[test]
    fn conflicting_onoff_falls_back_to_onset() {
        // Two outputs demanding opposite t values everywhere: on ∧ off sat.
        let faulty = parse_verilog(
            "module f (a, t, y1, y2); input a, t; output y1, y2; \
             buf g1 (y1, t); not g2 (y2, t); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, y1, y2); input a; output y1, y2; \
             buf g1 (y1, a); buf g2 (y2, a); endmodule",
        )
        .expect("golden");
        let inst = EcoInstance::from_netlists(
            "c",
            &faulty,
            &golden,
            vec!["t".into()],
            &WeightTable::new(1),
        )
        .expect("instance");
        let mut ws = Workspace::new(&inst);
        let t = ws.target_vars[0];
        let onoff = on_off_sets(&mut ws.mgr, &ws.f_outs.clone(), &ws.g_outs.clone(), t);
        let got = {
            let cut = Cut::frontier(&ws, &TapMap::empty(), &[onoff.on, onoff.off]);
            synthesize_patch(
                &mut ws,
                onoff,
                &cut,
                InitialPatchKind::Interpolant,
                1 << 20,
                &tel(),
            )
        };
        assert!(got.fallback);
        assert_eq!(got.lit, onoff.on);
    }
}
