//! SIGTERM/SIGINT → drain flag: the workspace's only `unsafe` code,
//! kept to a single libc `signal()` registration.
//!
//! `std` exposes no signal API and the workspace is dependency-free, so
//! the daemon registers a handler through the C `signal` symbol every
//! unix libc exports. The handler does the only async-signal-safe thing
//! possible: one relaxed atomic store into [`term_flag`]. The serve
//! accept loop polls that flag and turns it into a graceful drain —
//! finish admitted work, refuse new work, exit 0 — so `kill -TERM` and
//! a protocol `shutdown` request take the identical code path.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM: AtomicBool = AtomicBool::new(false);

/// The process-wide drain flag raised by the handler that
/// [`install_term_handler`] registers. Pass it to
/// `Server::serve_unix`.
pub fn term_flag() -> &'static AtomicBool {
    &TERM
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// The installed handler: async-signal-safe by construction (a single
/// relaxed store, no allocation, no locks, no formatting).
extern "C" fn raise_term(_signum: i32) {
    TERM.store(true, Ordering::Relaxed);
}

extern "C" {
    // ISO C `signal(2)`; the return value (the previous handler) is a
    // function pointer we never call, declared as a pointer-sized
    // integer to avoid materializing a callable type for it.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
}

/// Registers [`raise_term`] for `SIGTERM` and `SIGINT`. Idempotent.
pub fn install_term_handler() {
    // SAFETY: `signal` is the ISO C registration call present in every
    // unix libc; `raise_term` is an `extern "C" fn(i32)` matching the
    // handler ABI and is async-signal-safe (one atomic store). We
    // discard the previous handler, which is the intended takeover.
    unsafe {
        signal(SIGTERM, raise_term);
        signal(SIGINT, raise_term);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Installs the handler and delivers a real SIGTERM to this test
    /// process via `kill`. If registration were broken the default
    /// disposition would terminate the test binary — failure shows up
    /// as a dead test run, success as the latched flag.
    #[test]
    fn sigterm_latches_the_drain_flag() {
        install_term_handler();
        assert!(!term_flag().load(Ordering::Relaxed));
        let status = std::process::Command::new("kill")
            .args(["-s", "TERM", &std::process::id().to_string()])
            .status()
            .expect("spawn kill");
        assert!(status.success());
        // Delivery is asynchronous; give the kernel a moment.
        for _ in 0..100 {
            if term_flag().load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        panic!("SIGTERM was delivered but the flag never latched");
    }
}
