//! Ablation A (§5 design choice): localization on/off.
//!
//! The paper claims localization "dramatically reduces the runtime of
//! interpolation-based patch optimization and substantially reduces patch
//! sizes of difficult instances". This harness isolates that choice: both
//! configurations run the full optimizer; only the localization stage
//! differs.

use std::time::Instant;

use eco_core::{EcoEngine, EcoOptions};
use eco_workgen::contest_suite;

fn main() {
    println!("Ablation A: localization on vs off (optimizer enabled in both)");
    println!(
        "{:<8} {:>4} | {:>9} {:>6} {:>8} | {:>9} {:>6} {:>8}",
        "unit", "tgts", "cost-off", "sz-off", "t-off", "cost-on", "sz-on", "t-on"
    );
    for unit in contest_suite() {
        // Difficult units plus a couple of easy controls.
        if !unit.spec.difficult && !matches!(unit.spec.name.as_str(), "unit04" | "unit15") {
            continue;
        }
        let inst = unit.instance().expect("valid");
        let run = |localization: bool| {
            let opts = EcoOptions {
                localization,
                ..Default::default()
            };
            let t0 = Instant::now();
            let r = EcoEngine::new(inst.clone(), opts)
                .run()
                .expect("rectifiable");
            (r.cost, r.size, t0.elapsed().as_secs_f64())
        };
        let (c_off, s_off, t_off) = run(false);
        let (c_on, s_on, t_on) = run(true);
        println!(
            "{:<8} {:>4} | {:>9} {:>6} {:>8.2} | {:>9} {:>6} {:>8.2}",
            format!(
                "{}{}",
                unit.spec.name,
                if unit.spec.difficult { "*" } else { "" }
            ),
            unit.spec.n_targets,
            c_off,
            s_off,
            t_off,
            c_on,
            s_on,
            t_on
        );
    }
    println!("\n* = difficult unit; localization should win on cost/size there");
}
