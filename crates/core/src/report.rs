//! Human-readable run reports.

use std::fmt;

use crate::{EcoResult, PartialResult};

/// A displayable summary of an [`EcoResult`] (one line per patch plus
/// stage timings), used by the CLI and the benchmark harnesses.
///
/// # Examples
///
/// ```
/// use eco_core::{EcoEngine, EcoInstance, EcoOptions, Report};
/// use eco_netlist::{parse_verilog, WeightTable};
///
/// # let faulty = parse_verilog(
/// #     "module f (a, b, t, y); input a, b, t; output y; and g (y, t, b); endmodule")?;
/// # let golden = parse_verilog(
/// #     "module g (a, b, y); input a, b; output y; wire w; xor g0 (w, a, b);
/// #      and g1 (y, w, b); endmodule")?;
/// # let inst = EcoInstance::from_netlists(
/// #     "r", &faulty, &golden, vec!["t".into()], &WeightTable::new(1))?;
/// let result = EcoEngine::new(inst, EcoOptions::default()).run()?;
/// let text = Report(&result).to_string();
/// assert!(text.contains("cost"));
/// assert!(text.contains("t <-"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Report<'a>(pub &'a EcoResult);

impl fmt::Display for Report<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.0;
        writeln!(
            f,
            "patched {} target(s): cost {}, size {} AND gates{}",
            r.patches.len(),
            r.cost,
            r.size,
            if r.localization_fallback {
                " (localization fallback)"
            } else {
                ""
            }
        )?;
        for p in &r.patches {
            writeln!(
                f,
                "  {} <- f({})  [{} gates]",
                p.target,
                p.base.join(", "),
                p.size
            )?;
        }
        let t = r.stage_times;
        writeln!(
            f,
            "stages: fraig {:.1?}, cluster {:.1?}, patchgen {:.1?}, optimize {:.1?} (cost {} -> {}), verify {:.1?}",
            t.fraig, t.clustering, t.patchgen, t.optimize, r.optimize_delta.0, r.optimize_delta.1, t.verify
        )?;
        let tel = &r.telemetry;
        writeln!(
            f,
            "flow: {} cluster(s) x {} job(s), sat {} solver(s) / {} conflicts / {} propagations, \
             fraig {} sweep(s) / {} sat calls",
            tel.clusters,
            tel.jobs,
            tel.sat.solvers,
            tel.sat.conflicts,
            tel.sat.propagations,
            tel.sweep.sweeps,
            tel.sweep.sat_calls
        )?;
        for e in &tel.events {
            writeln!(f, "event [{}] {}: {}", e.stage, e.label, e.detail)?;
        }
        Ok(())
    }
}

/// A displayable summary of a degraded run's [`PartialResult`]: the
/// binding limit, one line per cluster with its diagnosis, and the
/// patches that did complete.
pub struct PartialReport<'a>(pub &'a PartialResult);

impl fmt::Display for PartialReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.0;
        writeln!(f, "PARTIAL result: {}", p.reason)?;
        for (i, c) in p.clusters.iter().enumerate() {
            writeln!(
                f,
                "  cluster {i} [{}]: {}",
                c.targets.join(", "),
                c.diagnosis
            )?;
        }
        writeln!(
            f,
            "completed {} patch(es): cost {}, size {} AND gates (unverified)",
            p.patches.len(),
            p.cost,
            p.size
        )?;
        for patch in &p.patches {
            writeln!(
                f,
                "  {} <- f({})  [{} gates]",
                patch.target,
                patch.base.join(", "),
                patch.size
            )?;
        }
        let t = p.stage_times;
        writeln!(
            f,
            "stages: fraig {:.1?}, cluster {:.1?}, patchgen {:.1?}, optimize {:.1?}, verify {:.1?}",
            t.fraig, t.clustering, t.patchgen, t.optimize, t.verify
        )?;
        let tel = &p.telemetry;
        writeln!(
            f,
            "governor: {} patched, {} budget-exhausted, {} deadline, {} panicked, {} escalations",
            tel.clusters_patched,
            tel.clusters_budget_exhausted,
            tel.clusters_deadline,
            tel.clusters_panicked,
            tel.escalations
        )?;
        for e in &tel.events {
            writeln!(f, "event [{}] {}: {}", e.stage, e.label, e.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EcoEngine, EcoInstance, EcoOptions};
    use eco_netlist::{parse_verilog, WeightTable};

    #[test]
    fn report_mentions_every_patch() {
        let faulty = parse_verilog(
            "module f (a, t1, t2, y, z); input a, t1, t2; output y, z; \
             buf g1 (y, t1); and g2 (z, t2, a); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, y, z); input a; output y, z; \
             not g1 (y, a); buf g2 (z, a); endmodule",
        )
        .expect("golden");
        let inst = EcoInstance::from_netlists(
            "rep",
            &faulty,
            &golden,
            vec!["t1".into(), "t2".into()],
            &WeightTable::new(1),
        )
        .expect("instance");
        let result = EcoEngine::new(inst, EcoOptions::default())
            .run()
            .expect("ok");
        let text = Report(&result).to_string();
        assert!(text.contains("t1 <-"), "{text}");
        assert!(text.contains("t2 <-"), "{text}");
        assert!(text.contains("stages:"), "{text}");
    }
}
