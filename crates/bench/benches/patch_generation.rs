//! Criterion benches regenerating the Table-2 timing series: full engine
//! runs (ours and baseline) per representative unit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eco_core::{EcoEngine, EcoOptions};
use eco_workgen::contest_suite;

fn bench_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for unit in contest_suite() {
        // Representative subset: easy, medium, difficult.
        if !matches!(
            unit.spec.name.as_str(),
            "unit01" | "unit04" | "unit06" | "unit10" | "unit16"
        ) {
            continue;
        }
        let inst = unit.instance().expect("valid");
        group.bench_with_input(
            BenchmarkId::new("ours", &unit.spec.name),
            &inst,
            |b, inst| {
                b.iter(|| {
                    EcoEngine::new(inst.clone(), EcoOptions::default())
                        .run()
                        .expect("rectifiable")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline", &unit.spec.name),
            &inst,
            |b, inst| {
                b.iter(|| {
                    EcoEngine::new(inst.clone(), EcoOptions::baseline())
                        .run()
                        .expect("rectifiable")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_units);
criterion_main!(benches);
