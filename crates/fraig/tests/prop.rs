// Needs the external `proptest` crate; compiled out by default so the
// workspace builds offline. Enable with `--features proptest` (see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for FRAIG sweeping: soundness of reported
//! equivalence classes and semantics preservation of reduction.

use eco_aig::{Aig, Lit};
use eco_fraig::{fraig_classes, fraig_reduce, FraigOptions};
use proptest::prelude::*;

type Recipe = Vec<(u8, usize, usize, bool, bool)>;

fn build(n_inputs: usize, recipe: &Recipe) -> Aig {
    let mut aig = Aig::new();
    let mut nets: Vec<Lit> = (0..n_inputs)
        .map(|i| aig.add_input(format!("x{i}")))
        .collect();
    for &(op, i, j, ci, cj) in recipe {
        let a = nets[i % nets.len()].xor_complement(ci);
        let b = nets[j % nets.len()].xor_complement(cj);
        let w = match op % 3 {
            0 => aig.and(a, b),
            1 => aig.or(a, b),
            _ => aig.xor(a, b),
        };
        nets.push(w);
    }
    // Register several outputs so sweeping covers interesting cones.
    let n = nets.len();
    for (k, &lit) in nets[n.saturating_sub(3)..].iter().enumerate() {
        aig.add_output(format!("o{k}"), lit);
    }
    aig
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop::collection::vec(
        (
            any::<u8>(),
            0..64usize,
            0..64usize,
            any::<bool>(),
            any::<bool>(),
        ),
        4..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every reported equivalence is semantically true (checked
    /// exhaustively over 6 inputs).
    #[test]
    fn classes_are_sound(recipe in recipe_strategy()) {
        let aig = build(6, &recipe);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        for class in &classes.classes {
            for &(v, phase) in &class.members {
                for bits in 0u32..64 {
                    let vals: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
                    let rep = aig.eval_lit(class.repr.pos(), &vals);
                    let mem = aig.eval_lit(v.pos(), &vals);
                    prop_assert_eq!(
                        mem,
                        rep ^ phase,
                        "class {:?}: member {:?} phase {}", class.repr, v, phase
                    );
                }
            }
        }
    }

    /// Reduction preserves all output functions and never grows the AIG.
    #[test]
    fn reduce_preserves_outputs(recipe in recipe_strategy()) {
        let aig = build(6, &recipe);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        let reduced = fraig_reduce(&aig, &classes);
        prop_assert!(reduced.num_ands() <= aig.num_ands());
        for bits in 0u32..64 {
            let vals: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(aig.eval(&vals), reduced.eval(&vals));
        }
    }
}
