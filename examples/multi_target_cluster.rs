//! Multi-target rectification and clustering (Fig. 2 of the paper).
//!
//! Builds the exact Fig.-2 topology — three targets whose output cones
//! overlap pairwise — shows that clustering puts them in one group, and
//! patches all three simultaneously with Algorithm 1.
//!
//! Run with `cargo run --example multi_target_cluster`.

use eco::core::{cluster_targets, EcoEngine, EcoInstance, EcoOptions, Workspace};
use eco::netlist::{parse_verilog, WeightTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 2: t1 -> {o1, o2}, t2 -> {o2, o3}, t3 -> {o3}.
    let faulty = parse_verilog(
        "module f (a, b, t1, t2, t3, o1, o2, o3);
           input a, b, t1, t2, t3;
           output o1, o2, o3;
           buf g1 (o1, t1);
           and g2 (o2, t1, t2);
           or  g3 (o3, t2, t3);
         endmodule",
    )?;
    let golden = parse_verilog(
        "module g (a, b, o1, o2, o3);
           input a, b;
           output o1, o2, o3;
           wire ab, axb;
           and g0 (ab, a, b);
           xor g4 (axb, a, b);
           not g1 (o1, ab);
           buf g2 (o2, axb);
           or  g3 (o3, ab, axb);
         endmodule",
    )?;
    let instance = EcoInstance::from_netlists(
        "fig2",
        &faulty,
        &golden,
        vec!["t1".into(), "t2".into(), "t3".into()],
        &WeightTable::new(1),
    )?;

    // Show the clustering decision before running the engine.
    let ws = Workspace::new(&instance);
    let clustering = cluster_targets(&ws);
    println!("clusters:");
    for (i, c) in clustering.clusters.iter().enumerate() {
        let names: Vec<&str> = c
            .targets
            .iter()
            .map(|&k| instance.targets[k].as_str())
            .collect();
        println!(
            "  group {i}: targets {names:?} over {} output(s)",
            c.outputs.len()
        );
    }
    assert_eq!(clustering.clusters.len(), 1, "Fig. 2: one group of three");

    let result = EcoEngine::new(instance, EcoOptions::default()).run()?;
    println!(
        "\nall {} targets patched: cost {}, size {} AND gates",
        result.patches.len(),
        result.cost,
        result.size
    );
    for patch in &result.patches {
        println!("  {} <- f({})", patch.target, patch.base.join(", "));
    }
    Ok(())
}
