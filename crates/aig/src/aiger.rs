//! AIGER format I/O (combinational subset).
//!
//! Reads and writes the [AIGER](https://fmv.jku.at/aiger/) interchange
//! format in both its ASCII (`aag`) and binary (`aig`) variants, restricted
//! to combinational circuits (no latches). AIGER's literal encoding
//! (`2·var + complement`, 0 = false) matches [`Lit`] exactly; only the
//! variable numbering differs, since AIGER requires inputs first.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{Aig, Lit, Var};

/// Error produced when AIGER data cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAigerError {
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AIGER: {}", self.message)
    }
}

impl Error for ParseAigerError {}

fn err(message: impl Into<String>) -> ParseAigerError {
    ParseAigerError {
        message: message.into(),
    }
}

/// Marker for nodes outside the emitted cone in the renumbering table.
const UNMAPPED: u32 = u32::MAX;

/// Renumbering of an AIG into AIGER order: inputs 1..=I, then ANDs in
/// topological order. Returns (dense table old var index → new AIGER var,
/// AND vars in emission order). Nodes outside the reachable cone stay
/// [`UNMAPPED`]; a dense table beats a `HashMap` here because emission
/// touches every mapped node at least twice.
fn renumber(aig: &Aig) -> (Vec<u32>, Vec<Var>) {
    let mut map = vec![UNMAPPED; aig.len()];
    map[Var::CONST.index() as usize] = 0;
    let count = |n: usize| u32::try_from(n).expect("node count fits in u32");
    for (i, &v) in aig.inputs().iter().enumerate() {
        map[v.index() as usize] = count(i) + 1;
    }
    let roots: Vec<Lit> = aig.outputs().iter().map(|o| o.lit).collect();
    let mut ands = Vec::new();
    let mut next = count(aig.num_inputs()) + 1;
    for v in aig.cone_vars(&roots) {
        if aig.is_and(v) {
            map[v.index() as usize] = next;
            next += 1;
            ands.push(v);
        }
    }
    (map, ands)
}

fn map_lit(map: &[u32], lit: Lit) -> u32 {
    let m = map[lit.var().index() as usize];
    debug_assert_ne!(m, UNMAPPED, "literal outside the emitted cone");
    m * 2 + lit.is_complement() as u32
}

/// Writes the reachable logic as ASCII AIGER (`aag`), including a symbol
/// table with the input and output names.
pub fn write_aiger_ascii(aig: &Aig) -> String {
    use fmt::Write as _;
    let (map, ands) = renumber(aig);
    let i = aig.num_inputs();
    let a = ands.len();
    let m = i + a;
    let mut s = String::new();
    let _ = writeln!(s, "aag {m} {i} 0 {} {a}", aig.num_outputs());
    for k in 0..i {
        let _ = writeln!(s, "{}", (k + 1) * 2);
    }
    for out in aig.outputs() {
        let _ = writeln!(s, "{}", map_lit(&map, out.lit));
    }
    for &v in &ands {
        let (f0, f1) = aig.and_fanins(v).expect("AND node");
        let lhs = map[v.index() as usize] * 2;
        let (r0, r1) = (map_lit(&map, f0), map_lit(&map, f1));
        let (r0, r1) = if r0 >= r1 { (r0, r1) } else { (r1, r0) };
        let _ = writeln!(s, "{lhs} {r0} {r1}");
    }
    for k in 0..i {
        let _ = writeln!(s, "i{k} {}", aig.input_name(k));
    }
    for (k, out) in aig.outputs().iter().enumerate() {
        let _ = writeln!(s, "o{k} {}", out.name);
    }
    s
}

/// Writes the reachable logic as binary AIGER (`aig`), including a symbol
/// table.
pub fn write_aiger_binary(aig: &Aig) -> Vec<u8> {
    let (map, ands) = renumber(aig);
    let i = aig.num_inputs();
    let a = ands.len();
    let m = i + a;
    let mut out = Vec::new();
    out.extend_from_slice(format!("aig {m} {i} 0 {} {a}\n", aig.num_outputs()).as_bytes());
    for o in aig.outputs() {
        out.extend_from_slice(format!("{}\n", map_lit(&map, o.lit)).as_bytes());
    }
    for &v in &ands {
        let (f0, f1) = aig.and_fanins(v).expect("AND node");
        let lhs = map[v.index() as usize] * 2;
        let (r0, r1) = (map_lit(&map, f0), map_lit(&map, f1));
        let (r0, r1) = if r0 >= r1 { (r0, r1) } else { (r1, r0) };
        debug_assert!(lhs > r0, "binary AIGER requires lhs > rhs0");
        write_varint(&mut out, lhs - r0);
        write_varint(&mut out, r0 - r1);
    }
    for k in 0..i {
        out.extend_from_slice(format!("i{k} {}\n", aig.input_name(k)).as_bytes());
    }
    for (k, o) in aig.outputs().iter().enumerate() {
        out.extend_from_slice(format!("o{k} {}\n", o.name).as_bytes());
    }
    out
}

// Both narrowings keep only the low 7 bits by construction.
#[allow(clippy::cast_possible_truncation)]
fn write_varint(out: &mut Vec<u8>, mut x: u32) {
    while x >= 0x80 {
        out.push((x & 0x7f) as u8 | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u32, ParseAigerError> {
    let mut x: u32 = 0;
    let mut shift = 0;
    loop {
        let &b = data.get(*pos).ok_or_else(|| err("truncated delta"))?;
        *pos += 1;
        x |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift > 28 {
            return Err(err("delta overflow"));
        }
    }
}

struct Header {
    m: u32,
    i: u32,
    o: u32,
    a: u32,
}

fn parse_header(line: &str, magic: &str) -> Result<Header, ParseAigerError> {
    let mut it = line.split_whitespace();
    if it.next() != Some(magic) {
        return Err(err(format!("expected `{magic}` header")));
    }
    let mut field = |name: &str| -> Result<u32, ParseAigerError> {
        it.next()
            .ok_or_else(|| err(format!("missing {name}")))?
            .parse()
            .map_err(|_| err(format!("invalid {name}")))
    };
    let m = field("M")?;
    let i = field("I")?;
    let l = field("L")?;
    let o = field("O")?;
    let a = field("A")?;
    if l != 0 {
        return Err(err("latches are not supported (combinational only)"));
    }
    if m != i + a {
        return Err(err("M != I + A"));
    }
    Ok(Header { m, i, o, a })
}

/// Builds the AIG given resolved AND definitions and output literals.
fn build(
    header: &Header,
    and_defs: &[(u32, u32, u32)],
    out_lits: &[u32],
    symbols: &HashMap<String, String>,
) -> Result<Aig, ParseAigerError> {
    let mut aig = Aig::new();
    // lits[v] = our literal for AIGER variable v.
    let mut lits: Vec<Option<Lit>> = vec![None; header.m as usize + 1];
    lits[0] = Some(Lit::FALSE);
    for k in 0..header.i {
        let name = symbols
            .get(&format!("i{k}"))
            .cloned()
            .unwrap_or_else(|| format!("i{k}"));
        lits[k as usize + 1] = Some(aig.add_input(name));
    }
    let resolve = |lits: &[Option<Lit>], l: u32| -> Result<Lit, ParseAigerError> {
        let v = (l / 2) as usize;
        let base = lits
            .get(v)
            .copied()
            .flatten()
            .ok_or_else(|| err(format!("literal {l} references undefined variable")))?;
        Ok(base.xor_complement(l % 2 == 1))
    };
    for &(lhs, r0, r1) in and_defs {
        if lhs % 2 != 0 {
            return Err(err("AND left-hand side must be even"));
        }
        if r0 >= lhs || r1 >= lhs {
            return Err(err("AND right-hand sides must precede the definition"));
        }
        let a = resolve(&lits, r0)?;
        let b = resolve(&lits, r1)?;
        let v = (lhs / 2) as usize;
        if lits[v].is_some() {
            return Err(err(format!("variable {v} defined twice")));
        }
        lits[v] = Some(aig.and(a, b));
    }
    for (k, &l) in out_lits.iter().enumerate() {
        let lit = resolve(&lits, l)?;
        let name = symbols
            .get(&format!("o{k}"))
            .cloned()
            .unwrap_or_else(|| format!("o{k}"));
        aig.add_output(name, lit);
    }
    Ok(aig)
}

fn parse_symbols<'a>(lines: impl Iterator<Item = &'a str>) -> HashMap<String, String> {
    let mut symbols = HashMap::new();
    for line in lines {
        if line.starts_with('c') {
            break;
        }
        if let Some((key, name)) = line.split_once(' ') {
            symbols.insert(key.to_string(), name.to_string());
        }
    }
    symbols
}

/// Parses ASCII AIGER (`aag`), combinational subset.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed headers, latches, forward
/// references, or redefinitions.
///
/// # Examples
///
/// ```
/// let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 a\ni1 b\no0 y\n";
/// let aig = eco_aig::parse_aiger_ascii(text)?;
/// assert_eq!(aig.eval(&[true, true]), vec![true]);
/// assert_eq!(aig.eval(&[true, false]), vec![false]);
/// # Ok::<(), eco_aig::ParseAigerError>(())
/// ```
pub fn parse_aiger_ascii(text: &str) -> Result<Aig, ParseAigerError> {
    let mut lines = text.lines();
    let header = parse_header(lines.next().ok_or_else(|| err("empty input"))?, "aag")?;
    let mut next_line = |what: &str| -> Result<&str, ParseAigerError> {
        lines.next().ok_or_else(|| err(format!("missing {what}")))
    };
    for k in 0..header.i {
        let l: u32 = next_line("input line")?
            .trim()
            .parse()
            .map_err(|_| err("invalid input literal"))?;
        if l != (k + 1) * 2 {
            return Err(err("inputs must be 2, 4, ... in order"));
        }
    }
    let mut out_lits = Vec::with_capacity(header.o as usize);
    for _ in 0..header.o {
        out_lits.push(
            next_line("output line")?
                .trim()
                .parse()
                .map_err(|_| err("invalid output literal"))?,
        );
    }
    let mut and_defs = Vec::with_capacity(header.a as usize);
    for _ in 0..header.a {
        let line = next_line("AND line")?;
        let mut it = line.split_whitespace();
        let mut num = |what: &str| -> Result<u32, ParseAigerError> {
            it.next()
                .ok_or_else(|| err(format!("missing {what}")))?
                .parse()
                .map_err(|_| err(format!("invalid {what}")))
        };
        and_defs.push((num("lhs")?, num("rhs0")?, num("rhs1")?));
    }
    let symbols = parse_symbols(lines);
    build(&header, &and_defs, &out_lits, &symbols)
}

/// Parses binary AIGER (`aig`), combinational subset.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed headers, latches, or corrupt
/// delta encodings.
pub fn parse_aiger_binary(data: &[u8]) -> Result<Aig, ParseAigerError> {
    let header_end = data
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| err("missing header line"))?;
    let header_line =
        std::str::from_utf8(&data[..header_end]).map_err(|_| err("non-UTF-8 header"))?;
    let header = parse_header(header_line, "aig")?;
    let mut pos = header_end + 1;
    let mut out_lits = Vec::with_capacity(header.o as usize);
    for _ in 0..header.o {
        let end = data[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| err("truncated output section"))?;
        let line =
            std::str::from_utf8(&data[pos..pos + end]).map_err(|_| err("non-UTF-8 output"))?;
        out_lits.push(
            line.trim()
                .parse()
                .map_err(|_| err("invalid output literal"))?,
        );
        pos += end + 1;
    }
    let mut and_defs = Vec::with_capacity(header.a as usize);
    for k in 0..header.a {
        let lhs = (header.i + k + 1) * 2;
        let d0 = read_varint(data, &mut pos)?;
        let d1 = read_varint(data, &mut pos)?;
        let r0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| err("delta0 exceeds lhs"))?;
        let r1 = r0
            .checked_sub(d1)
            .ok_or_else(|| err("delta1 exceeds rhs0"))?;
        and_defs.push((lhs, r0, r1));
    }
    let symbols = match std::str::from_utf8(&data[pos..]) {
        Ok(rest) => parse_symbols(rest.lines()),
        Err(_) => HashMap::new(),
    };
    build(&header, &and_defs, &out_lits, &symbols)
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // small in-range test constants
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let f = aig.xor(ab, !c);
        let g = aig.or(a, c);
        aig.add_output("f", f);
        aig.add_output("g", !g);
        aig
    }

    fn check_equal(x: &Aig, y: &Aig) {
        assert_eq!(x.num_inputs(), y.num_inputs());
        assert_eq!(x.num_outputs(), y.num_outputs());
        for bits in 0u32..1 << x.num_inputs() {
            let vals: Vec<bool> = (0..x.num_inputs()).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(x.eval(&vals), y.eval(&vals), "at {vals:?}");
        }
    }

    #[test]
    fn ascii_round_trip() {
        let aig = sample();
        let text = write_aiger_ascii(&aig);
        let back = parse_aiger_ascii(&text).expect("parses");
        check_equal(&aig, &back);
        assert_eq!(back.input_name(0), "a");
        assert_eq!(back.outputs()[1].name, "g");
    }

    #[test]
    fn binary_round_trip() {
        let aig = sample();
        let bytes = write_aiger_binary(&aig);
        let back = parse_aiger_binary(&bytes).expect("parses");
        check_equal(&aig, &back);
        assert_eq!(back.input_name(2), "c");
    }

    #[test]
    fn ascii_and_binary_agree() {
        let aig = sample();
        let from_ascii = parse_aiger_ascii(&write_aiger_ascii(&aig)).expect("ascii");
        let from_bin = parse_aiger_binary(&write_aiger_binary(&aig)).expect("binary");
        check_equal(&from_ascii, &from_bin);
    }

    #[test]
    fn constant_outputs() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        aig.add_output("zero", Lit::FALSE);
        aig.add_output("one", Lit::TRUE);
        aig.add_output("pass", a);
        let text = write_aiger_ascii(&aig);
        let back = parse_aiger_ascii(&text).expect("parses");
        assert_eq!(back.eval(&[false]), vec![false, true, false]);
        assert_eq!(back.eval(&[true]), vec![false, true, true]);
        let back = parse_aiger_binary(&write_aiger_binary(&aig)).expect("parses");
        assert_eq!(back.eval(&[true]), vec![false, true, true]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_aiger_ascii("").is_err());
        assert!(parse_aiger_ascii("nope 1 1 0 0 0\n").is_err());
        // Latches unsupported.
        assert!(parse_aiger_ascii("aag 1 0 1 0 0\n").is_err());
        // M != I + A.
        assert!(parse_aiger_ascii("aag 5 2 0 0 1\n2\n4\n6 2 4\n").is_err());
        // Forward reference.
        assert!(parse_aiger_ascii("aag 3 1 0 1 2\n2\n4\n4 6 2\n6 2 2\n").is_err());
        // Odd lhs.
        assert!(parse_aiger_ascii("aag 2 1 0 0 1\n2\n5 2 2\n").is_err());
        // Truncated binary.
        assert!(parse_aiger_binary(b"aig 2 1 0 0 1\n\x80").is_err());
        assert!(parse_aiger_binary(b"no newline").is_err());
    }

    /// Seeded random AIGs round-trip through both formats: write → parse
    /// is a semantic identity, names survive, and both encodings agree.
    /// Always-on complement to the feature-gated proptest version.
    #[test]
    fn random_aigs_round_trip_both_formats() {
        for seed in 0..30u64 {
            let mut rng = crate::SplitMix64::new(seed);
            let mut aig = Aig::new();
            let n_inputs = rng.range_inclusive(1, 8) as usize;
            let mut lits: Vec<Lit> = (0..n_inputs)
                .map(|i| aig.add_input(format!("x{i}")))
                .collect();
            lits.push(Lit::FALSE);
            for _ in 0..rng.range_inclusive(1, 60) {
                let mut a = lits[rng.index(lits.len())];
                let mut b = lits[rng.index(lits.len())];
                if rng.chance(0.5) {
                    a = !a;
                }
                if rng.chance(0.5) {
                    b = !b;
                }
                lits.push(aig.and(a, b));
            }
            for k in 0..rng.range_inclusive(1, 4) {
                let mut o = lits[rng.index(lits.len())];
                if rng.chance(0.5) {
                    o = !o;
                }
                aig.add_output(format!("y{k}"), o);
            }
            let text = write_aiger_ascii(&aig);
            let bytes = write_aiger_binary(&aig);
            let from_ascii = parse_aiger_ascii(&text).expect("ascii parses");
            let from_bin = parse_aiger_binary(&bytes).expect("binary parses");
            // Write → parse → write is a fixpoint: the parsed AIG is
            // already in AIGER order, so re-emission is byte-identical.
            assert_eq!(write_aiger_ascii(&from_ascii), text, "seed {seed}");
            assert_eq!(write_aiger_binary(&from_bin), bytes, "seed {seed}");
            for pos in 0..aig.num_inputs() {
                assert_eq!(from_ascii.input_name(pos), aig.input_name(pos));
                assert_eq!(from_bin.input_name(pos), aig.input_name(pos));
            }
            for (j, out) in aig.outputs().iter().enumerate() {
                assert_eq!(from_ascii.outputs()[j].name, out.name);
                assert_eq!(from_bin.outputs()[j].name, out.name);
            }
            check_equal(&aig, &from_ascii);
            check_equal(&aig, &from_bin);
        }
    }

    /// A deep AND chain forces multi-byte varint deltas in the binary
    /// encoding (the final gate's fanin spans the whole chain).
    #[test]
    fn binary_round_trip_with_multibyte_varints() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        // Each chain node's second fanin reaches all the way back to `a`,
        // so the encoded delta grows to ~40k (three varint bytes). The
        // strash never collapses these: every (prev, a) pair is fresh.
        let mut acc = aig.and(a, b);
        for _ in 0..20_000 {
            acc = aig.and(acc, a);
        }
        let far = aig.and(b, acc);
        aig.add_output("f", far);
        aig.add_output("g", !acc);
        let back = parse_aiger_binary(&write_aiger_binary(&aig)).expect("parses");
        assert_eq!(back.num_inputs(), 2);
        for bits in 0u32..4 {
            let vals = vec![bits & 1 == 1, bits >> 1 == 1];
            assert_eq!(back.eval(&vals), aig.eval(&vals), "at {vals:?}");
        }
    }

    #[test]
    fn external_handwritten_file() {
        // A 2-input mux written by hand: y = s ? d1 : d0, as
        // y = ¬(¬(¬s ∧ d0) ∧ ¬(s ∧ d1)).
        let text = "aag 6 3 0 1 3\n2\n4\n6\n13\n8 3 4\n10 2 6\n12 9 11\n\
                    i0 s\ni1 d0\ni2 d1\no0 y\n";
        let aig = parse_aiger_ascii(text).expect("parses");
        for s in [false, true] {
            for d0 in [false, true] {
                for d1 in [false, true] {
                    let expect = if s { d1 } else { d0 };
                    assert_eq!(
                        aig.eval(&[s, d0, d1]),
                        vec![expect],
                        "s={s} d0={d0} d1={d1}"
                    );
                }
            }
        }
    }
}
