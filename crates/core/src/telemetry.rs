//! End-to-end run telemetry: per-stage timers, aggregated SAT / FRAIG
//! counters, and structured events.
//!
//! One [`Telemetry`] instance lives for a whole [`crate::EcoEngine::run`]
//! (both the localized attempt and, if it fails verification, the
//! unlocalized fallback). It is `Sync` — counters are atomics and events
//! sit behind a mutex — so the scoped worker threads of the parallel
//! patch-generation stage record into it directly. The immutable
//! [`TelemetrySnapshot`] taken at the end is what [`crate::EcoResult`]
//! carries and what the CLI renders for `--stats[=json]`.
//!
//! [`StageTimes`] remains the compatibility view of the per-stage wall
//! clocks; [`TelemetrySnapshot::stage_times`] derives one from a snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use eco_fraig::SweepStats;
use eco_sat::SolverStats;

use crate::StageTimes;

/// A flow stage (Fig. 1), as a telemetry key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// FRAIG sweeping (summed across per-cluster sub-workspaces; with
    /// `jobs > 1` the sweeps overlap the `PatchGen` wall clock).
    Fraig,
    /// Target clustering.
    Clustering,
    /// Patch generation (Alg. 1), wall clock of the whole — possibly
    /// parallel — per-cluster section plus the deterministic merge.
    PatchGen,
    /// Cost optimization and size reduction (§6, §2.4).
    Optimize,
    /// Equivalence verification (untouched outputs + final check).
    Verify,
    /// Result assembly: patch extraction, pruning, patch-side FRAIG.
    Assemble,
}

impl Stage {
    /// All stages, in flow order.
    pub const ALL: [Stage; 6] = [
        Stage::Fraig,
        Stage::Clustering,
        Stage::PatchGen,
        Stage::Optimize,
        Stage::Verify,
        Stage::Assemble,
    ];

    /// Stable lowercase name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fraig => "fraig",
            Stage::Clustering => "clustering",
            Stage::PatchGen => "patchgen",
            Stage::Optimize => "optimize",
            Stage::Verify => "verify",
            Stage::Assemble => "assemble",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Aggregated CDCL solver totals across every SAT instance of a run
/// (synthesis, interpolation, rebasing, size reduction, verification, and
/// the solvers inside FRAIG sweeps).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatTotals {
    /// Solver instances whose stats were folded in.
    pub solvers: u64,
    /// Total conflicts.
    pub conflicts: u64,
    /// Total branching decisions.
    pub decisions: u64,
    /// Total propagated literals.
    pub propagations: u64,
    /// Total restarts.
    pub restarts: u64,
    /// Total learned clauses.
    pub learned: u64,
    /// Clauses shortened by inprocessing vivification.
    pub vivified_clauses: u64,
    /// Clauses removed by inprocessing (self-)subsumption.
    pub subsumed_clauses: u64,
    /// Variables removed by bounded variable elimination.
    pub eliminated_vars: u64,
}

/// Aggregated FRAIG sweep totals across every sweep of a run (one per
/// cluster sub-workspace, plus the final patch-AIG reduction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepTotals {
    /// Sweeps folded in.
    pub sweeps: u64,
    /// Refinement rounds.
    pub rounds: u64,
    /// SAT equivalence queries issued.
    pub sat_calls: u64,
    /// Candidate pairs proven equivalent.
    pub proven: u64,
    /// Candidate pairs disproved by a counterexample.
    pub disproved: u64,
    /// Queries abandoned on the conflict budget.
    pub budgeted_out: u64,
    /// Counterexample patterns fed back into simulation.
    pub cex_patterns: u64,
    /// Activation literals retired with a level-0 unit after their query.
    pub retired_activations: u64,
    /// Simulation word-columns actually computed.
    pub resim_columns: u64,
    /// Simulation word-columns skipped by incremental re-simulation.
    pub resim_columns_saved: u64,
}

/// Peak resident-set size of this process, in bytes, when the platform
/// exposes it.
///
/// Std-only: on Linux this parses the `VmHWM` line (resident-set
/// high-water mark, reported in kibibytes) of `/proc/self/status`; on
/// every other platform it returns `None`. The kernel value is
/// process-wide and monotone, so sampling it once at snapshot time is
/// enough to capture the run's peak.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kib * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Escapes a string for embedding in a JSON string literal.
///
/// Shared by every hand-rolled JSON emitter in the workspace
/// (`eco-patch --stats=json`, `eco-fuzz --stats=json`, `eco-batch`).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental builder for one JSON object: values are rendered eagerly,
/// keys appear in insertion order, output is a single line.
///
/// This is the one JSON emitter shared by all the workspace's stats
/// formats, so field names can't drift between binaries.
#[derive(Clone, Debug, Default)]
pub struct JsonObj {
    fields: Vec<String>,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        JsonObj::default()
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, v: u64) -> Self {
        self.fields.push(format!("\"{}\": {}", json_escape(key), v));
        self
    }

    /// Adds a floating-point field (serialized with full precision).
    pub fn f64(mut self, key: &str, v: f64) -> Self {
        self.fields.push(format!("\"{}\": {}", json_escape(key), v));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.fields.push(format!("\"{}\": {}", json_escape(key), v));
        self
    }

    /// Adds an escaped string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push(format!("\"{}\": \"{}\"", json_escape(key), json_escape(v)));
        self
    }

    /// Adds a pre-rendered JSON value (nested object, array, `null`, …).
    pub fn raw(mut self, key: &str, v: &str) -> Self {
        self.fields.push(format!("\"{}\": {}", json_escape(key), v));
        self
    }

    /// Adds an array of pre-rendered JSON values.
    pub fn arr(mut self, key: &str, items: &[String]) -> Self {
        self.fields
            .push(format!("\"{}\": [{}]", json_escape(key), items.join(", ")));
        self
    }

    /// Adds an array of escaped strings.
    pub fn str_arr(self, key: &str, items: &[String]) -> Self {
        let rendered: Vec<String> = items
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect();
        self.arr(key, &rendered)
    }

    /// Renders the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(", "))
    }
}

/// One structured event (e.g. a fallback firing), with a human-readable
/// detail string.
#[derive(Clone, Debug)]
pub struct TelemetryEvent {
    /// Stage the event belongs to.
    pub stage: &'static str,
    /// Stable machine-readable label, e.g. `localization_fallback`.
    pub label: String,
    /// Free-form detail (counterexample summary, target index, …).
    pub detail: String,
}

/// Immutable copy of all telemetry of one run.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Nanoseconds per stage, indexed like [`Stage::ALL`].
    pub stage_ns: [u64; 6],
    /// Aggregated SAT solver totals.
    pub sat: SatTotals,
    /// Aggregated FRAIG sweep totals.
    pub sweep: SweepTotals,
    /// Target clusters processed (summed over attempts).
    pub clusters: u64,
    /// Worker threads used by the patch-generation stage.
    pub jobs: u64,
    /// Patches synthesized by interpolation.
    pub interpolated: u64,
    /// Interpolation attempts that fell back to the on-set.
    pub interpolation_fallbacks: u64,
    /// Localized attempts that failed verification and were retried
    /// without localization.
    pub localization_fallbacks: u64,
    /// Clusters that completed all their patches.
    pub clusters_patched: u64,
    /// Clusters whose conflict allowance ran out mid-synthesis.
    pub clusters_budget_exhausted: u64,
    /// Clusters stopped by the run deadline (or an external cancel).
    pub clusters_deadline: u64,
    /// Clusters whose worker panicked (isolated, not fatal).
    pub clusters_panicked: u64,
    /// Budget-escalation retries taken by the synthesis ladder.
    pub escalations: u64,
    /// Memo-cache hits (sweep, rectifiability, or whole-instance patch).
    pub memo_hits: u64,
    /// Memo-cache misses (entry absent or check digest mismatched).
    pub memo_misses: u64,
    /// Memo hits discarded because revalidation (fresh SAT miter or
    /// counterexample B-check) refuted the cached entry.
    pub memo_fallbacks: u64,
    /// Portfolio races launched (unlimited-budget hard queries only).
    pub portfolio_launches: u64,
    /// Races won per portfolio member, indexed by config id (0..4).
    pub portfolio_winner_counts: [u64; 4],
    /// Peak resident-set size in bytes at snapshot time, `None` when the
    /// platform does not expose it (see [`peak_rss_bytes`]).
    pub peak_rss_bytes: Option<u64>,
    /// Structured events, in recording order.
    pub events: Vec<TelemetryEvent>,
}

impl TelemetrySnapshot {
    /// Nanoseconds recorded for `stage`.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stage_ns[stage.index()]
    }

    /// The classic five-stage compatibility view ([`Stage::Assemble`] has
    /// no slot there and is reported only here).
    pub fn stage_times(&self) -> StageTimes {
        StageTimes {
            fraig: Duration::from_nanos(self.stage_nanos(Stage::Fraig)),
            clustering: Duration::from_nanos(self.stage_nanos(Stage::Clustering)),
            patchgen: Duration::from_nanos(self.stage_nanos(Stage::PatchGen)),
            optimize: Duration::from_nanos(self.stage_nanos(Stage::Optimize)),
            verify: Duration::from_nanos(self.stage_nanos(Stage::Verify)),
        }
    }

    /// Hand-rolled JSON rendering via the shared [`JsonObj`] builder
    /// (stable keys, no external deps).
    pub fn to_json(&self) -> String {
        let mut stages = JsonObj::new();
        for s in Stage::ALL {
            stages = stages.u64(&format!("{}_ns", s.name()), self.stage_nanos(s));
        }
        let sat = JsonObj::new()
            .u64("solvers", self.sat.solvers)
            .u64("conflicts", self.sat.conflicts)
            .u64("decisions", self.sat.decisions)
            .u64("propagations", self.sat.propagations)
            .u64("restarts", self.sat.restarts)
            .u64("learned", self.sat.learned)
            .u64("vivified_clauses", self.sat.vivified_clauses)
            .u64("subsumed_clauses", self.sat.subsumed_clauses)
            .u64("eliminated_vars", self.sat.eliminated_vars);
        let fraig = JsonObj::new()
            .u64("sweeps", self.sweep.sweeps)
            .u64("rounds", self.sweep.rounds)
            .u64("sat_calls", self.sweep.sat_calls)
            .u64("proven", self.sweep.proven)
            .u64("disproved", self.sweep.disproved)
            .u64("budgeted_out", self.sweep.budgeted_out)
            .u64("cex_patterns", self.sweep.cex_patterns)
            .u64("retired_activations", self.sweep.retired_activations)
            .u64("resim_columns", self.sweep.resim_columns)
            .u64("resim_columns_saved", self.sweep.resim_columns_saved);
        let governor = JsonObj::new()
            .u64("clusters_patched", self.clusters_patched)
            .u64("clusters_budget_exhausted", self.clusters_budget_exhausted)
            .u64("clusters_deadline", self.clusters_deadline)
            .u64("clusters_panicked", self.clusters_panicked)
            .u64("escalations", self.escalations);
        let memo = JsonObj::new()
            .u64("hits", self.memo_hits)
            .u64("misses", self.memo_misses)
            .u64("fallbacks", self.memo_fallbacks);
        let winners: Vec<String> = self
            .portfolio_winner_counts
            .iter()
            .map(|w| w.to_string())
            .collect();
        let portfolio = JsonObj::new()
            .u64("launches", self.portfolio_launches)
            .arr("winner_counts", &winners);
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                JsonObj::new()
                    .str("stage", e.stage)
                    .str("label", &e.label)
                    .str("detail", &e.detail)
                    .build()
            })
            .collect();
        let obj = JsonObj::new()
            .raw("stages", &stages.build())
            .raw("sat", &sat.build())
            .raw("fraig", &fraig.build())
            .u64("clusters", self.clusters)
            .u64("jobs", self.jobs)
            .u64("interpolated", self.interpolated)
            .u64("interpolation_fallbacks", self.interpolation_fallbacks)
            .u64("localization_fallbacks", self.localization_fallbacks)
            .raw("governor", &governor.build())
            .raw("memo", &memo.build())
            .raw("portfolio", &portfolio.build());
        let obj = match self.peak_rss_bytes {
            Some(b) => obj.u64("peak_rss_bytes", b),
            None => obj.raw("peak_rss_bytes", "null"),
        };
        let obj = obj.arr("events", &events);
        format!("{}\n", obj.build())
    }
}

impl std::fmt::Display for TelemetrySnapshot {
    /// Human-readable multi-line summary (what `--stats` prints).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in Stage::ALL {
            writeln!(
                f,
                "stage {:<10} {:>12.3} ms",
                s.name(),
                self.stage_nanos(s) as f64 / 1e6
            )?;
        }
        writeln!(
            f,
            "sat: {} solvers, {} conflicts, {} decisions, {} propagations, {} restarts, {} learned",
            self.sat.solvers,
            self.sat.conflicts,
            self.sat.decisions,
            self.sat.propagations,
            self.sat.restarts,
            self.sat.learned
        )?;
        writeln!(
            f,
            "inprocess: {} vivified, {} subsumed, {} vars eliminated",
            self.sat.vivified_clauses, self.sat.subsumed_clauses, self.sat.eliminated_vars
        )?;
        writeln!(
            f,
            "fraig: {} sweeps, {} rounds, {} sat calls, {} proven, {} disproved, \
             {} budgeted out, {} cex patterns, {} activations retired",
            self.sweep.sweeps,
            self.sweep.rounds,
            self.sweep.sat_calls,
            self.sweep.proven,
            self.sweep.disproved,
            self.sweep.budgeted_out,
            self.sweep.cex_patterns,
            self.sweep.retired_activations
        )?;
        writeln!(
            f,
            "sim: {} word-columns computed, {} saved by incremental resimulation",
            self.sweep.resim_columns, self.sweep.resim_columns_saved
        )?;
        writeln!(
            f,
            "flow: {} clusters, {} jobs, {} interpolated, {} interpolation fallbacks, \
             {} localization fallbacks",
            self.clusters,
            self.jobs,
            self.interpolated,
            self.interpolation_fallbacks,
            self.localization_fallbacks
        )?;
        writeln!(
            f,
            "governor: {} patched, {} budget-exhausted, {} deadline, {} panicked, {} escalations",
            self.clusters_patched,
            self.clusters_budget_exhausted,
            self.clusters_deadline,
            self.clusters_panicked,
            self.escalations
        )?;
        writeln!(
            f,
            "memo: {} hits, {} misses, {} fallbacks",
            self.memo_hits, self.memo_misses, self.memo_fallbacks
        )?;
        writeln!(
            f,
            "portfolio: {} races, winners by config {:?}",
            self.portfolio_launches, self.portfolio_winner_counts
        )?;
        if let Some(b) = self.peak_rss_bytes {
            writeln!(
                f,
                "memory: {:.1} MiB peak RSS",
                b as f64 / (1024.0 * 1024.0)
            )?;
        }
        for e in &self.events {
            writeln!(f, "event [{}] {}: {}", e.stage, e.label, e.detail)?;
        }
        Ok(())
    }
}

/// Shared, thread-safe telemetry accumulator for one engine run.
#[derive(Debug, Default)]
pub struct Telemetry {
    stage_ns: [AtomicU64; 6],
    solvers: AtomicU64,
    conflicts: AtomicU64,
    decisions: AtomicU64,
    propagations: AtomicU64,
    restarts: AtomicU64,
    learned: AtomicU64,
    sweeps: AtomicU64,
    sweep_rounds: AtomicU64,
    sweep_sat_calls: AtomicU64,
    sweep_proven: AtomicU64,
    sweep_disproved: AtomicU64,
    sweep_budgeted_out: AtomicU64,
    sweep_cex_patterns: AtomicU64,
    sweep_retired_activations: AtomicU64,
    sweep_resim_columns: AtomicU64,
    sweep_resim_columns_saved: AtomicU64,
    clusters: AtomicU64,
    jobs: AtomicU64,
    interpolated: AtomicU64,
    interpolation_fallbacks: AtomicU64,
    localization_fallbacks: AtomicU64,
    clusters_patched: AtomicU64,
    clusters_budget_exhausted: AtomicU64,
    clusters_deadline: AtomicU64,
    clusters_panicked: AtomicU64,
    escalations: AtomicU64,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    memo_fallbacks: AtomicU64,
    vivified_clauses: AtomicU64,
    subsumed_clauses: AtomicU64,
    eliminated_vars: AtomicU64,
    portfolio_launches: AtomicU64,
    portfolio_winners: [AtomicU64; 4],
    events: Mutex<Vec<TelemetryEvent>>,
}

impl Telemetry {
    /// Fresh, all-zero telemetry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Adds `d` to the accumulated time of `stage`.
    pub fn add_stage(&self, stage: Stage, d: Duration) {
        self.stage_ns[stage.index()].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Runs `f`, charging its wall time to `stage`.
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let t0 = std::time::Instant::now();
        let out = f();
        self.add_stage(stage, t0.elapsed());
        out
    }

    /// Folds one solver's final statistics into the SAT totals.
    pub fn record_solver(&self, s: &SolverStats) {
        self.solvers.fetch_add(1, Ordering::Relaxed);
        self.conflicts.fetch_add(s.conflicts, Ordering::Relaxed);
        self.decisions.fetch_add(s.decisions, Ordering::Relaxed);
        self.propagations
            .fetch_add(s.propagations, Ordering::Relaxed);
        self.restarts.fetch_add(s.restarts, Ordering::Relaxed);
        self.learned.fetch_add(s.learned, Ordering::Relaxed);
        self.vivified_clauses
            .fetch_add(s.vivified_clauses, Ordering::Relaxed);
        self.subsumed_clauses
            .fetch_add(s.subsumed_clauses, Ordering::Relaxed);
        self.eliminated_vars
            .fetch_add(s.eliminated_vars, Ordering::Relaxed);
    }

    /// Counts one portfolio race and the config index that won it.
    /// Races that time out (no winner) pass `None`.
    pub fn record_portfolio(&self, winner: Option<usize>) {
        self.portfolio_launches.fetch_add(1, Ordering::Relaxed);
        if let Some(w) = winner {
            if let Some(slot) = self.portfolio_winners.get(w) {
                slot.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Folds one FRAIG sweep into the sweep totals (its internal solver
    /// is also folded into the SAT totals).
    pub fn record_sweep(&self, s: &SweepStats) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        self.sweep_rounds
            .fetch_add(s.rounds as u64, Ordering::Relaxed);
        self.sweep_sat_calls
            .fetch_add(s.sat_calls, Ordering::Relaxed);
        self.sweep_proven.fetch_add(s.proven, Ordering::Relaxed);
        self.sweep_disproved
            .fetch_add(s.disproved, Ordering::Relaxed);
        self.sweep_budgeted_out
            .fetch_add(s.budgeted_out, Ordering::Relaxed);
        self.sweep_cex_patterns
            .fetch_add(s.cex_patterns, Ordering::Relaxed);
        self.sweep_retired_activations
            .fetch_add(s.retired_activations, Ordering::Relaxed);
        self.sweep_resim_columns
            .fetch_add(s.resim_columns, Ordering::Relaxed);
        self.sweep_resim_columns_saved
            .fetch_add(s.resim_columns_saved, Ordering::Relaxed);
        self.record_solver(&s.sat);
    }

    /// Counts `n` processed target clusters.
    pub fn add_clusters(&self, n: u64) {
        self.clusters.fetch_add(n, Ordering::Relaxed);
    }

    /// Records the worker-thread count of the patch-generation stage.
    pub fn set_jobs(&self, n: u64) {
        self.jobs.store(n, Ordering::Relaxed);
    }

    /// Counts interpolation-synthesized patches.
    pub fn add_interpolated(&self, n: u64) {
        self.interpolated.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts interpolation → on-set fallbacks.
    pub fn add_interpolation_fallbacks(&self, n: u64) {
        self.interpolation_fallbacks.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a localized-attempt verification failure that triggered the
    /// unlocalized retry.
    pub fn add_localization_fallback(&self) {
        self.localization_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one cluster's governor diagnosis.
    pub fn add_cluster_diagnosis(&self, d: &crate::ClusterDiagnosis) {
        let slot = match d {
            crate::ClusterDiagnosis::Patched => &self.clusters_patched,
            crate::ClusterDiagnosis::BudgetExhausted => &self.clusters_budget_exhausted,
            crate::ClusterDiagnosis::Deadline => &self.clusters_deadline,
            crate::ClusterDiagnosis::Panicked(_) => &self.clusters_panicked,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts budget-escalation retries taken by the synthesis ladder.
    pub fn add_escalations(&self, n: u64) {
        self.escalations.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one memo-cache hit.
    pub fn add_memo_hit(&self) {
        self.memo_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one memo-cache miss.
    pub fn add_memo_miss(&self) {
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one memo hit discarded by revalidation.
    pub fn add_memo_fallback(&self) {
        self.memo_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends a structured event.
    pub fn event(&self, stage: Stage, label: &str, detail: String) {
        self.events
            .lock()
            .expect("telemetry event lock")
            .push(TelemetryEvent {
                stage: stage.name(),
                label: label.to_string(),
                detail,
            });
    }

    /// Copies everything into an immutable snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut stage_ns = [0u64; 6];
        for (slot, a) in stage_ns.iter_mut().zip(&self.stage_ns) {
            *slot = load(a);
        }
        TelemetrySnapshot {
            stage_ns,
            sat: SatTotals {
                solvers: load(&self.solvers),
                conflicts: load(&self.conflicts),
                decisions: load(&self.decisions),
                propagations: load(&self.propagations),
                restarts: load(&self.restarts),
                learned: load(&self.learned),
                vivified_clauses: load(&self.vivified_clauses),
                subsumed_clauses: load(&self.subsumed_clauses),
                eliminated_vars: load(&self.eliminated_vars),
            },
            sweep: SweepTotals {
                sweeps: load(&self.sweeps),
                rounds: load(&self.sweep_rounds),
                sat_calls: load(&self.sweep_sat_calls),
                proven: load(&self.sweep_proven),
                disproved: load(&self.sweep_disproved),
                budgeted_out: load(&self.sweep_budgeted_out),
                cex_patterns: load(&self.sweep_cex_patterns),
                retired_activations: load(&self.sweep_retired_activations),
                resim_columns: load(&self.sweep_resim_columns),
                resim_columns_saved: load(&self.sweep_resim_columns_saved),
            },
            clusters: load(&self.clusters),
            jobs: load(&self.jobs),
            interpolated: load(&self.interpolated),
            interpolation_fallbacks: load(&self.interpolation_fallbacks),
            localization_fallbacks: load(&self.localization_fallbacks),
            clusters_patched: load(&self.clusters_patched),
            clusters_budget_exhausted: load(&self.clusters_budget_exhausted),
            clusters_deadline: load(&self.clusters_deadline),
            clusters_panicked: load(&self.clusters_panicked),
            escalations: load(&self.escalations),
            memo_hits: load(&self.memo_hits),
            memo_misses: load(&self.memo_misses),
            memo_fallbacks: load(&self.memo_fallbacks),
            portfolio_launches: load(&self.portfolio_launches),
            portfolio_winner_counts: {
                let mut w = [0u64; 4];
                for (slot, a) in w.iter_mut().zip(&self.portfolio_winners) {
                    *slot = load(a);
                }
                w
            },
            peak_rss_bytes: peak_rss_bytes(),
            events: self.events.lock().expect("telemetry event lock").clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let tel = Telemetry::new();
        tel.add_stage(Stage::PatchGen, Duration::from_millis(2));
        tel.add_stage(Stage::PatchGen, Duration::from_millis(3));
        tel.record_solver(&SolverStats {
            conflicts: 5,
            propagations: 100,
            ..Default::default()
        });
        tel.record_sweep(&SweepStats {
            sat_calls: 7,
            proven: 4,
            sat: SolverStats {
                conflicts: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        tel.add_clusters(3);
        tel.set_jobs(4);
        tel.add_cluster_diagnosis(&crate::ClusterDiagnosis::Patched);
        tel.add_cluster_diagnosis(&crate::ClusterDiagnosis::BudgetExhausted);
        tel.add_cluster_diagnosis(&crate::ClusterDiagnosis::Panicked("p".into()));
        tel.add_escalations(2);
        tel.event(Stage::Verify, "localization_fallback", "cex a=1".into());

        let snap = tel.snapshot();
        assert_eq!(snap.stage_nanos(Stage::PatchGen), 5_000_000);
        assert_eq!(snap.sat.solvers, 2); // explicit + sweep-internal
        assert_eq!(snap.sat.conflicts, 7);
        assert_eq!(snap.sweep.sat_calls, 7);
        assert_eq!(snap.clusters, 3);
        assert_eq!(snap.jobs, 4);
        assert_eq!(snap.clusters_patched, 1);
        assert_eq!(snap.clusters_budget_exhausted, 1);
        assert_eq!(snap.clusters_deadline, 0);
        assert_eq!(snap.clusters_panicked, 1);
        assert_eq!(snap.escalations, 2);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(
            snap.stage_times().patchgen,
            Duration::from_millis(5),
            "compat view mirrors the patchgen slot"
        );
    }

    #[test]
    fn telemetry_is_sync_across_scoped_threads() {
        let tel = Telemetry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        tel.add_clusters(1);
                        tel.record_solver(&SolverStats::default());
                    }
                });
            }
        });
        let snap = tel.snapshot();
        assert_eq!(snap.clusters, 400);
        assert_eq!(snap.sat.solvers, 400);
    }

    #[test]
    fn json_has_required_keys() {
        let tel = Telemetry::new();
        tel.event(Stage::Fraig, "x", "say \"hi\"".into());
        let js = tel.snapshot().to_json();
        for key in [
            "\"fraig_ns\"",
            "\"patchgen_ns\"",
            "\"conflicts\"",
            "\"propagations\"",
            "\"sat_calls\"",
            "\"proven\"",
            "\"retired_activations\"",
            "\"resim_columns_saved\"",
            "\"clusters_patched\"",
            "\"clusters_budget_exhausted\"",
            "\"clusters_deadline\"",
            "\"clusters_panicked\"",
            "\"escalations\"",
            "\"memo\"",
            "\"hits\"",
            "\"misses\"",
            "\"fallbacks\"",
            "\"events\"",
            "\"peak_rss_bytes\"",
            "\"vivified_clauses\"",
            "\"subsumed_clauses\"",
            "\"eliminated_vars\"",
            "\"portfolio\"",
            "\"launches\"",
            "\"winner_counts\"",
            "\\\"hi\\\"",
        ] {
            assert!(js.contains(key), "missing {key} in {js}");
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_reported_on_linux() {
        let rss = peak_rss_bytes().expect("VmHWM present in /proc/self/status");
        // Any running test binary has megabytes resident.
        assert!(rss > 1 << 20, "implausible peak RSS {rss}");
    }

    #[test]
    fn json_obj_builder_renders_all_value_kinds() {
        let js = JsonObj::new()
            .u64("n", 7)
            .f64("t", 1.5)
            .bool("ok", true)
            .str("s", "a\"b\\c\nd")
            .raw("o", &JsonObj::new().u64("x", 1).build())
            .str_arr("l", &["p".into(), "q\"r".into()])
            .build();
        assert_eq!(
            js,
            "{\"n\": 7, \"t\": 1.5, \"ok\": true, \"s\": \"a\\\"b\\\\c\\nd\", \
             \"o\": {\"x\": 1}, \"l\": [\"p\", \"q\\\"r\"]}"
        );
    }
}
