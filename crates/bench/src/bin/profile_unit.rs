//! Developer harness: stage-by-stage growth profiling of one suite unit.

use eco_core::{
    cluster_targets, generate_group_patches, on_off_sets, InitialPatchKind, TapMap, Workspace,
};
use eco_workgen::contest_suite;
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "unit17".into());
    let unit = contest_suite()
        .into_iter()
        .find(|u| u.spec.name == name)
        .expect("unit exists");
    let inst = unit.instance().expect("valid");
    let mut ws = Workspace::new(&inst);
    eprintln!("initial manager: {} nodes", ws.mgr.len());
    let clustering = cluster_targets(&ws);
    eprintln!(
        "clusters: {:?}",
        clustering
            .clusters
            .iter()
            .map(|c| (c.targets.len(), c.outputs.len()))
            .collect::<Vec<_>>()
    );
    let _tap = TapMap::empty();
    for cluster in &clustering.clusters {
        // Manual phase-1 walk with growth reporting.
        let mut f_cur: Vec<_> = cluster.outputs.iter().map(|&j| ws.f_outs[j]).collect();
        let g_cur: Vec<_> = cluster.outputs.iter().map(|&j| ws.g_outs[j]).collect();
        for &k in &cluster.targets {
            let t0 = Instant::now();
            let t = ws.target_vars[k];
            let onoff = on_off_sets(&mut ws.mgr, &f_cur, &g_cur, t);
            let mut map = HashMap::new();
            map.insert(t, onoff.on);
            f_cur = ws.mgr.substitute(&f_cur, &map);
            eprintln!(
                "  target {k}: manager {} nodes, on-cone {} ands, {:.2}s",
                ws.mgr.len(),
                ws.mgr.count_cone_ands(&[onoff.on]),
                t0.elapsed().as_secs_f64()
            );
        }
    }
    let _ = (generate_group_patches, InitialPatchKind::OnSet);
}
