//! `eco-batch`: manifest-driven batch ECO patch generation.
//!
//! ```text
//! eco-batch run manifest.toml --jobs 4 --report batch.jsonl --stats
//! ```
//!
//! Runs every job of a batch manifest (TOML or JSON; see the
//! `eco_batch` crate docs for the format) over one global worker pool
//! with work stealing across jobs and a shared cross-job memo cache, so
//! structurally identical (sub-)circuits are solved once per batch.
//!
//! The JSONL report — one line per completed job, in manifest order —
//! goes to stdout (or `--report <path>`) and is byte-identical for any
//! `--jobs` value. `--repeat N` runs the whole job list N times over the
//! same cache (pass 0 cold, later passes warm) to measure cache reuse.
//! `--stats[=json]` prints pass wall times, status tallies, and cache
//! counters to stderr.
//!
//! `--timeout SECS` / `--conflict-budget N` bound the *whole batch*: the
//! deadline is shared by every job while the conflict allowance is
//! divided evenly across jobs, so a starved batch degrades to per-job
//! `partial` records.
//!
//! `--journal <dir>` write-ahead logs every job before execution and its
//! record after, and persists the memo cache under `<dir>`; adding
//! `--resume` replays a killed run — completed jobs verbatim (keyed by a
//! content fingerprint, so edited inputs recompute), everything else
//! fresh — producing the same report bytes as an uninterrupted run. The
//! `ECO_CHAOS=seed=N,rate=P` env var arms deterministic fault injection.
//!
//! Exit code: the most severe job outcome, mirroring `eco-patch` —
//! 1 (usage/IO/engine error) > 2 (unrectifiable) > 4 (partial) > 0.

use std::process::ExitCode;
use std::time::Duration;

use eco_batch::{
    exit_code, load_jobs, records_jsonl, run_batch, stats_json, BatchOptions, Manifest,
};
use eco_core::BudgetOptions;

const USAGE: &str = "usage: eco-batch run <manifest.{toml,json}> [--jobs N] [--repeat N] \
[--report <path>] [--timeout SECS] [--conflict-budget N] [--journal <dir>] [--resume] \
[--stats[=json]] [-q]";

enum StatsFormat {
    Off,
    Text,
    Json,
}

struct Args {
    manifest: String,
    jobs: usize,
    repeat: usize,
    report: Option<String>,
    timeout: Option<Duration>,
    conflict_budget: Option<u64>,
    journal: Option<String>,
    resume: bool,
    stats: StatsFormat,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        manifest: String::new(),
        jobs: 0,
        repeat: 1,
        report: None,
        timeout: None,
        conflict_budget: None,
        journal: None,
        resume: false,
        stats: StatsFormat::Off,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    let mut saw_run = false;
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match a.as_str() {
            "run" if !saw_run => saw_run = true,
            "-j" | "--jobs" => {
                let v = value("--jobs")?;
                args.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs expects a number, got `{v}`"))?;
            }
            "--repeat" => {
                let v = value("--repeat")?;
                args.repeat = v
                    .parse()
                    .map_err(|_| format!("--repeat expects a number, got `{v}`"))?;
            }
            "--report" => args.report = Some(value("--report")?),
            "--timeout" => {
                let v = value("--timeout")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--timeout expects seconds, got `{v}`"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("--timeout expects non-negative seconds, got `{v}`"));
                }
                args.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--conflict-budget" => {
                let v = value("--conflict-budget")?;
                args.conflict_budget = Some(
                    v.parse()
                        .map_err(|_| format!("--conflict-budget expects a number, got `{v}`"))?,
                );
            }
            "--journal" => args.journal = Some(value("--journal")?),
            "--resume" => args.resume = true,
            "--stats" => args.stats = StatsFormat::Text,
            "--stats=json" => args.stats = StatsFormat::Json,
            "--stats=text" => args.stats = StatsFormat::Text,
            "-q" | "--quiet" => args.quiet = true,
            "-h" | "--help" => return Err(USAGE.to_string()),
            other if args.manifest.is_empty() && !other.starts_with('-') => {
                args.manifest = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !saw_run || args.manifest.is_empty() {
        return Err(USAGE.to_string());
    }
    if args.resume && args.journal.is_none() {
        return Err("--resume requires --journal <dir>".into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<u8, String> {
    // `ECO_CHAOS=seed=N,rate=P` arms the fault registry (chaos
    // campaigns drive the real binary through this).
    eco_core::faultpoint::arm_from_env()?;
    let manifest =
        Manifest::load(std::path::Path::new(&args.manifest)).map_err(|e| e.to_string())?;
    let jobs = load_jobs(&manifest);
    let options = BatchOptions {
        jobs: args.jobs,
        repeat: args.repeat,
        budget: BudgetOptions {
            timeout: args.timeout,
            cluster_conflicts: args.conflict_budget,
        },
        journal: args.journal.as_ref().map(std::path::PathBuf::from),
        resume: args.resume,
        ..Default::default()
    };
    let outcome = run_batch(&jobs, &options);

    let report = records_jsonl(&outcome.records);
    match &args.report {
        Some(p) => std::fs::write(p, &report).map_err(|e| format!("{p}: {e}"))?,
        None => print!("{report}"),
    }
    if !args.quiet {
        for (pass, wall) in outcome.pass_wall.iter().enumerate() {
            eprintln!(
                "pass {pass}: {} jobs in {:.3}s",
                jobs.len(),
                wall.as_secs_f64()
            );
        }
        eprintln!(
            "memo: {} hits, {} misses, {} fallbacks, {} entries",
            outcome.memo.hits, outcome.memo.misses, outcome.memo.fallbacks, outcome.memo.entries
        );
        if args.journal.is_some() {
            eprintln!(
                "journal: {} replayed, {} memo entries loaded, {} persist errors",
                outcome.reused, outcome.memo_loaded, outcome.persist_errors
            );
        }
    }
    match args.stats {
        StatsFormat::Off => {}
        StatsFormat::Text => {
            let count =
                |s: eco_batch::JobStatus| outcome.records.iter().filter(|r| r.status == s).count();
            use eco_batch::JobStatus::*;
            eprintln!(
                "jobs: {} complete, {} partial, {} unrectifiable, {} error",
                count(Complete),
                count(Partial),
                count(Unrectifiable),
                count(Error)
            );
        }
        StatsFormat::Json => eprintln!("{}", stats_json(&outcome)),
    }
    Ok(exit_code(&outcome.records))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    match run(&args) {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
