//! The paper's Table-1 worked example: enumerating counterexamples of the
//! Eq.-12 rebasing formula for the patch p(a, b) = a XOR b.
//!
//! With no base selected, the formula is satisfiable; its counterexamples,
//! projected on the on-copy watch variables (a, b), are exactly the on-set
//! rows {01, 10} of the XOR — discovered with two control-variable-guarded
//! blocking clauses, after which the solver reports UNSAT (§6.2.1).
//!
//! Run with `cargo run --example cex_enumeration`.

use eco::core::{enumerate_cex, on_off_sets, EcoInstance, RebaseQuery, Workspace};
use eco::netlist::{parse_verilog, WeightTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Faulty: output y floats entirely (y = t). Golden: y = a ^ b.
    // The patch specification for t is then exactly p(a, b) = a XOR b.
    let faulty =
        parse_verilog("module f (a, b, t, y); input a, b, t; output y; buf g (y, t); endmodule")?;
    let golden =
        parse_verilog("module g (a, b, y); input a, b; output y; xor g (y, a, b); endmodule")?;
    let instance = EcoInstance::from_netlists(
        "table1",
        &faulty,
        &golden,
        vec!["t".into()],
        &WeightTable::new(1),
    )?;

    let mut ws = Workspace::new(&instance);
    let t = ws.target_vars[0];
    let (f_outs, g_outs) = (ws.f_outs.clone(), ws.g_outs.clone());
    let onoff = on_off_sets(&mut ws.mgr, &f_outs, &g_outs, t);

    let pool: Vec<usize> = (0..ws.cands.len()).collect();
    let a = pool
        .iter()
        .position(|&i| ws.cands[i].name == "a")
        .expect("a");
    let b = pool
        .iter()
        .position(|&i| ws.cands[i].name == "b")
        .expect("b");
    let mut query = RebaseQuery::new(&ws, onoff.on, onoff.off, pool);

    println!("Table 1: p_k(a, b) = a XOR b");
    println!("  on-set rows: (a,b) in {{01, 10}}\n");

    let cex = enumerate_cex(&mut query, &[], None, &[a, b], 1 << 20).expect("within budget");
    println!("counterexample projections with no base selected:");
    for mask in &cex.masks {
        println!("  a={} b={}", mask & 1, mask >> 1 & 1);
    }
    assert_eq!(cex.len(), 2, "exactly the two on-set rows");

    // Selecting both base signals distinguishes every on/off pair.
    let none = enumerate_cex(&mut query, &[a], Some(b), &[a, b], 1 << 20).expect("within budget");
    println!(
        "\nwith base {{a, b}} selected: {} counterexamples (formula UNSAT -> feasible)",
        none.len()
    );
    assert!(none.is_empty());
    Ok(())
}
