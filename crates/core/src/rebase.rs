//! Rebasing with functional dependency (§6.1, Eq. 12, Fig. 3).
//!
//! A [`RebaseQuery`] holds one incremental SAT instance with two CNF
//! copies of the specification circuit — the on-set copy `Φ(µ=1, B', X)`
//! and the off-set copy `Φ*(µ*=0, B'*, X*)` — plus, per base-candidate
//! signal `b_i`, a selector `s_i` with `s_i → (b_i ≡ b_i*)`. A candidate
//! base `S` can realize the patch iff the formula is UNSAT under the unit
//! assumptions `{s_i : i ∈ S}`; the solver's final-conflict core then
//! prunes `S`. Once a base is chosen, [`resynthesize`] interpolates the
//! patch function over fresh shared variables `y_i ≡ b_i(X)`.

use std::collections::HashMap;

use eco_aig::{Lit as ALit, Var as AVar};
use eco_sat::{
    encode_cone, ClauseLabel, ClauseSink, ItpOutcome, ItpSolver, LabeledSink, Lit as SLit, Solver,
};

use crate::Workspace;

/// The incremental Eq.-12 feasibility oracle for one patch specification.
pub struct RebaseQuery {
    solver: Solver,
    /// Selector literal per pool entry.
    sel: Vec<SLit>,
    /// Candidate indices (into `workspace.cands`) forming the pool.
    pool: Vec<usize>,
    /// Copy-1 SAT literal of each pool candidate.
    b1: Vec<SLit>,
}

impl RebaseQuery {
    /// Builds the query for a specification `(on, off)` — manager literals
    /// over `X` only — and a candidate pool.
    ///
    /// Both copies encode the candidate cones against the *same* copy-local
    /// input variables as the specification cone, so satisfiability don't
    /// cares of the existing logic are respected for free.
    ///
    /// # Panics
    ///
    /// Panics if `on`/`off` or a pool candidate depends on a target
    /// pseudo-input (substitute patches first).
    pub fn new(ws: &Workspace, on: ALit, off: ALit, pool: Vec<usize>) -> Self {
        // The query answers hundreds of small incremental model-finding
        // solves (base probes and counterexample enumeration), so it is
        // the prime beneficiary of aggressive preprocessing: variable
        // elimination collapses the redundant Tseitin copies before the
        // first solve. Every variable read or assumed later — selectors,
        // both candidate-output rails, and the enumeration control vars
        // (frozen at creation in `cexenum`) — is frozen.
        let mut solver = Solver::with_config(eco_sat::SolverConfig {
            bve: true,
            inprocess_first_solve: 0,
            ..eco_sat::SolverConfig::default()
        });

        let cand_lits: Vec<ALit> = pool.iter().map(|&i| ws.cands[i].lit).collect();
        let mut roots1 = vec![on];
        roots1.extend(&cand_lits);
        let mut roots2 = vec![off];
        roots2.extend(&cand_lits);

        let mut map1: HashMap<AVar, SLit> = HashMap::new();
        let enc1 = encode_cone(&ws.mgr, &roots1, &mut map1, &mut solver);
        let mut map2: HashMap<AVar, SLit> = HashMap::new();
        let enc2 = encode_cone(&ws.mgr, &roots2, &mut map2, &mut solver);
        for tv in &ws.target_vars {
            assert!(
                !map1.contains_key(tv) && !map2.contains_key(tv),
                "rebase specification must be target-free"
            );
        }
        solver.add_clause(&[enc1[0]]);
        solver.add_clause(&[enc2[0]]);

        let b1: Vec<SLit> = enc1[1..].to_vec();
        let b2: Vec<SLit> = enc2[1..].to_vec();
        let mut sel = Vec::with_capacity(pool.len());
        for i in 0..pool.len() {
            let s = solver.new_var().pos();
            solver.add_clause(&[!s, !b1[i], b2[i]]);
            solver.add_clause(&[!s, b1[i], !b2[i]]);
            sel.push(s);
        }
        for l in b1.iter().chain(b2.iter()).chain(sel.iter()) {
            solver.freeze_var(l.var());
        }
        RebaseQuery {
            solver,
            sel,
            pool,
            b1,
        }
    }

    /// The candidate pool (indices into `workspace.cands`).
    pub fn pool(&self) -> &[usize] {
        &self.pool
    }

    /// The incremental solver's statistics so far (cumulative over every
    /// [`RebaseQuery::feasible`] call), for telemetry aggregation.
    pub fn stats(&self) -> eco_sat::SolverStats {
        self.solver.stats()
    }

    /// Enrolls the query's solver in a governor control block: a fired
    /// deadline or cancellation flag makes every later feasibility or
    /// enumeration call answer `None` (budget exhausted).
    pub fn set_ctl(&mut self, ctl: &eco_sat::SolveCtl) {
        self.solver.set_ctl(ctl);
    }

    /// Tests whether selecting the pool entries `base` (indices into the
    /// *pool*) suffices to realize the patch. `Some(true)` = feasible;
    /// `None` = budget exhausted.
    pub fn feasible(&mut self, base: &[usize], conflict_budget: u64) -> Option<bool> {
        let assumptions: Vec<SLit> = base.iter().map(|&i| self.sel[i]).collect();
        self.solver
            .solve_limited(&assumptions, conflict_budget)
            .map(|sat| !sat)
    }

    /// After a feasible [`RebaseQuery::feasible`] answer, the subset of
    /// `base` that the final conflict actually used — a cheap base pruner.
    pub fn feasible_core(&self) -> Vec<usize> {
        let core = self.solver.unsat_core();
        (0..self.sel.len())
            .filter(|&i| core.contains(&self.sel[i]))
            .collect()
    }

    pub(crate) fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    pub(crate) fn sel_lits(&self) -> &[SLit] {
        &self.sel
    }

    pub(crate) fn b1_lits(&self) -> &[SLit] {
        &self.b1
    }
}

/// Synthesizes a patch function over the chosen base by interpolation
/// (the reference \[12\]-style dependency network): returns the patch as a
/// literal over the base candidates' driving signals, or `None` if the
/// base is infeasible or the budget runs out.
pub fn resynthesize(
    ws: &mut Workspace,
    on: ALit,
    off: ALit,
    base: &[usize],
    conflict_budget: u64,
    tel: &crate::Telemetry,
) -> Option<ALit> {
    resynthesize_ctl(
        ws,
        on,
        off,
        base,
        conflict_budget,
        &eco_sat::SolveCtl::unlimited(),
        tel,
    )
}

/// [`resynthesize`] with the interpolation solver enrolled in a governor
/// control block (deadline / cooperative cancellation).
pub(crate) fn resynthesize_ctl(
    ws: &mut Workspace,
    on: ALit,
    off: ALit,
    base: &[usize],
    conflict_budget: u64,
    ctl: &eco_sat::SolveCtl,
    tel: &crate::Telemetry,
) -> Option<ALit> {
    let mut q = ItpSolver::new();
    if !ctl.is_unlimited() {
        q.set_ctl(ctl.clone());
    }
    let ys: Vec<SLit> = base.iter().map(|_| q.new_var().pos()).collect();
    let cand_lits: Vec<ALit> = base.iter().map(|&i| ws.cands[i].lit).collect();

    {
        let mut map: HashMap<AVar, SLit> = HashMap::new();
        let mut sink = LabeledSink::new(&mut q, ClauseLabel::A);
        let mut roots = vec![on];
        roots.extend(&cand_lits);
        let enc = encode_cone(&ws.mgr, &roots, &mut map, &mut sink);
        sink.sink_clause(&[enc[0]]);
        for (y, b) in ys.iter().zip(&enc[1..]) {
            sink.sink_clause(&[!*y, *b]);
            sink.sink_clause(&[*y, !*b]);
        }
    }
    {
        let mut map: HashMap<AVar, SLit> = HashMap::new();
        let mut sink = LabeledSink::new(&mut q, ClauseLabel::B);
        let mut roots = vec![off];
        roots.extend(&cand_lits);
        let enc = encode_cone(&ws.mgr, &roots, &mut map, &mut sink);
        sink.sink_clause(&[enc[0]]);
        for (y, b) in ys.iter().zip(&enc[1..]) {
            sink.sink_clause(&[!*y, *b]);
            sink.sink_clause(&[*y, !*b]);
        }
    }

    q.set_conflict_budget(conflict_budget);
    let solved = q.solve_limited();
    tel.record_solver(&q.last_stats());
    let itp = match solved? {
        ItpOutcome::Unsat(itp) => itp,
        ItpOutcome::Sat(_) => return None,
    };
    let mut input_map: HashMap<AVar, ALit> = HashMap::new();
    for (i, &sv) in itp.inputs.iter().enumerate() {
        let pos = ys
            .iter()
            .position(|y| y.var() == sv)
            .expect("interpolant inputs are y variables");
        input_map.insert(itp.aig.input_var(i), cand_lits[pos]);
    }
    Some(
        ws.mgr
            .import(&itp.aig, &[itp.root], &input_map)
            .expect("interpolant inputs are fully mapped")[0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carediff::on_off_sets;
    use crate::EcoInstance;
    use eco_netlist::{parse_verilog, WeightTable};

    /// F: y = t ^ c with an existing net `w = a & b`; G: y = (a&b) ^ c.
    /// The spec for t is on = a&b. Base {w} must be feasible; base {a}
    /// alone must not; base {a, b} must be.
    fn fixture() -> (Workspace, ALit, ALit, Vec<usize>) {
        let faulty = parse_verilog(
            "module f (a, b, c, t, y, u); input a, b, c, t; output y, u; \
             wire w; and g0 (w, a, b); xor g1 (y, t, c); buf g2 (u, w); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, b, c, y, u); input a, b, c; output y, u; \
             wire w; and g0 (w, a, b); xor g1 (y, w, c); buf g2 (u, w); endmodule",
        )
        .expect("golden");
        let inst = EcoInstance::from_netlists(
            "rb",
            &faulty,
            &golden,
            vec!["t".into()],
            &WeightTable::new(1),
        )
        .expect("instance");
        let mut ws = Workspace::new(&inst);
        let t = ws.target_vars[0];
        let f_outs = ws.f_outs.clone();
        let g_outs = ws.g_outs.clone();
        let onoff = on_off_sets(&mut ws.mgr, &f_outs, &g_outs, t);
        let pool: Vec<usize> = (0..ws.cands.len()).collect();
        (ws, onoff.on, onoff.off, pool)
    }

    fn pool_idx(ws: &Workspace, pool: &[usize], name: &str) -> usize {
        pool.iter()
            .position(|&i| ws.cands[i].name == name)
            .unwrap_or_else(|| panic!("{name} in pool"))
    }

    #[test]
    fn feasibility_distinguishes_bases() {
        let (ws, on, off, pool) = fixture();
        let w = pool_idx(&ws, &pool, "w");
        let a = pool_idx(&ws, &pool, "a");
        let b = pool_idx(&ws, &pool, "b");
        let mut q = RebaseQuery::new(&ws, on, off, pool);
        assert_eq!(q.feasible(&[w], 1 << 20), Some(true));
        assert_eq!(q.feasible(&[a], 1 << 20), Some(false));
        assert_eq!(q.feasible(&[a, b], 1 << 20), Some(true));
        // Empty base cannot implement a non-constant patch.
        assert_eq!(q.feasible(&[], 1 << 20), Some(false));
    }

    #[test]
    fn feasible_core_prunes_irrelevant_selectors() {
        let (ws, on, off, pool) = fixture();
        let w = pool_idx(&ws, &pool, "w");
        let c = pool_idx(&ws, &pool, "c");
        let mut q = RebaseQuery::new(&ws, on, off, pool);
        assert_eq!(q.feasible(&[w, c], 1 << 20), Some(true));
        let core = q.feasible_core();
        assert!(core.contains(&w), "core {core:?} must keep w");
        // c is irrelevant to the on-set a&b; a good core drops it.
        assert!(!core.contains(&c), "core {core:?} should drop c");
    }

    #[test]
    fn resynthesize_builds_correct_patch() {
        let (mut ws, on, off, pool) = fixture();
        let w = pool_idx(&ws, &pool, "w");
        let tel = crate::Telemetry::new();
        let patch = resynthesize(&mut ws, on, off, &[pool[w]], 1 << 20, &tel).expect("feasible");
        assert!(tel.snapshot().sat.solvers >= 1, "resynthesis recorded");
        // patch must equal w = a & b on all X.
        let mut mgr = ws.mgr.clone();
        mgr.clear_outputs();
        mgr.add_output("p", patch);
        for bits in 0u32..16 {
            let vals: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(mgr.eval(&vals)[0], vals[0] && vals[1], "at {vals:?}");
        }
    }

    #[test]
    fn resynthesize_infeasible_base_returns_none() {
        let (mut ws, on, off, pool) = fixture();
        let a = pool_idx(&ws, &pool, "a");
        let tel = crate::Telemetry::new();
        assert_eq!(
            resynthesize(&mut ws, on, off, &[pool[a]], 1 << 20, &tel),
            None
        );
    }
}
