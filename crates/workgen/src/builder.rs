//! A small helper for assembling gate-level netlists programmatically.

use eco_netlist::{Gate, GateKind, NetRef, Netlist};

/// Incrementally builds a [`Netlist`] with automatic wire bookkeeping.
#[derive(Debug)]
pub struct NetlistBuilder {
    netlist: Netlist,
    next_wire: usize,
}

impl NetlistBuilder {
    /// Starts a module.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            netlist: Netlist::new(name),
            next_wire: 0,
        }
    }

    /// Declares an input and returns its name.
    pub fn input(&mut self, name: impl Into<String>) -> String {
        let name = name.into();
        self.netlist.inputs.push(name.clone());
        name
    }

    /// Declares `n` inputs named `<prefix>0..<prefix>n-1`.
    pub fn inputs(&mut self, prefix: &str, n: usize) -> Vec<String> {
        (0..n).map(|i| self.input(format!("{prefix}{i}"))).collect()
    }

    /// Marks an existing net as a primary output under a new name, via a
    /// buffer.
    pub fn output(&mut self, name: impl Into<String>, src: &str) {
        let name = name.into();
        self.netlist.outputs.push(name.clone());
        self.netlist.gates.push(Gate {
            kind: GateKind::Buf,
            name: None,
            output: name,
            inputs: vec![NetRef::named(src)],
        });
    }

    /// Adds a gate driving a fresh wire and returns the wire name.
    pub fn gate(&mut self, kind: GateKind, inputs: &[&str]) -> String {
        let out = format!("w{}", self.next_wire);
        self.next_wire += 1;
        self.netlist.wires.push(out.clone());
        self.netlist.gates.push(Gate {
            kind,
            name: None,
            output: out.clone(),
            inputs: inputs.iter().map(|s| NetRef::named(*s)).collect(),
        });
        out
    }

    /// Convenience binary gates.
    pub fn and2(&mut self, a: &str, b: &str) -> String {
        self.gate(GateKind::And, &[a, b])
    }
    /// OR of two nets.
    pub fn or2(&mut self, a: &str, b: &str) -> String {
        self.gate(GateKind::Or, &[a, b])
    }
    /// XOR of two nets.
    pub fn xor2(&mut self, a: &str, b: &str) -> String {
        self.gate(GateKind::Xor, &[a, b])
    }
    /// Inverter.
    pub fn not1(&mut self, a: &str) -> String {
        self.gate(GateKind::Not, &[a])
    }
    /// 2:1 mux built from gates: `s ? t : e`.
    pub fn mux2(&mut self, s: &str, t: &str, e: &str) -> String {
        let ns = self.not1(s);
        let on = self.and2(s, t);
        let off = self.and2(&ns, e);
        self.or2(&on, &off)
    }

    /// Finishes the module.
    pub fn finish(self) -> Netlist {
        self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::elaborate;

    #[test]
    fn builder_produces_valid_netlists() {
        let mut b = NetlistBuilder::new("m");
        let ins = b.inputs("i", 2);
        let w = b.xor2(&ins[0], &ins[1]);
        b.output("y", &w);
        let nl = b.finish();
        let e = elaborate(&nl).expect("elaborates");
        assert_eq!(e.aig.eval(&[true, false]), vec![true]);
        assert_eq!(e.aig.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn mux_semantics() {
        let mut b = NetlistBuilder::new("m");
        let s = b.input("s");
        let t = b.input("t");
        let e = b.input("e");
        let m = b.mux2(&s, &t, &e);
        b.output("y", &m);
        let el = elaborate(&b.finish()).expect("elaborates");
        for bits in 0u32..8 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = if v[0] { v[1] } else { v[2] };
            assert_eq!(el.aig.eval(&v), vec![expect]);
        }
    }
}
