//! Ablation C (§4.3 choice): initial-patch synthesis method.
//!
//! Compares taking the on-set, the negated off-set, and Craig
//! interpolation as the initial patch, with the optimizer disabled so the
//! initial patch quality is visible directly. Interpolation fallbacks
//! (satisfiable on∧off overlaps, §4.3) are counted.

use std::time::Instant;

use eco_core::{EcoEngine, EcoOptions, InitialPatchKind};
use eco_workgen::contest_suite;

fn main() {
    println!("Ablation C: initial patch = on-set vs neg-off-set vs interpolant (no optimizer)");
    println!(
        "{:<8} {:>4} | {:>7} {:>6} | {:>7} {:>6} | {:>7} {:>6} {:>5} {:>6}",
        "unit", "tgts", "on-cost", "on-sz", "off-c", "off-sz", "itp-c", "itp-sz", "fbk", "time"
    );
    for unit in contest_suite() {
        let inst = unit.instance().expect("valid");
        let run = |kind: InitialPatchKind| {
            let opts = EcoOptions {
                initial_patch: kind,
                optimize: false,
                ..Default::default()
            };
            let t0 = Instant::now();
            let r = EcoEngine::new(inst.clone(), opts)
                .run()
                .expect("rectifiable");
            (
                r.cost,
                r.size,
                r.interpolation_fallbacks,
                t0.elapsed().as_secs_f64(),
            )
        };
        let (oc, os, _, _) = run(InitialPatchKind::OnSet);
        let (fc, fs, _, _) = run(InitialPatchKind::NegOffSet);
        let (ic, is, fbk, it) = run(InitialPatchKind::Interpolant);
        println!(
            "{:<8} {:>4} | {:>7} {:>6} | {:>7} {:>6} | {:>7} {:>6} {:>5} {:>6.2}",
            unit.spec.name, unit.spec.n_targets, oc, os, fc, fs, ic, is, fbk, it
        );
    }
    println!("\nfbk = interpolation fallbacks to the on-set (multi-output conflicts)");
}
