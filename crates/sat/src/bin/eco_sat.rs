//! `eco-sat`: a minimal DIMACS CNF solver front-end.
//!
//! ```text
//! eco-sat problem.cnf        # or read from stdin with no argument
//! ```
//!
//! Prints `s SATISFIABLE` with a `v` model line, or `s UNSATISFIABLE`,
//! following the SAT-competition output conventions. Exit code 10 = SAT,
//! 20 = UNSAT, 1 = error (same convention as MiniSat).

use std::io::Read as _;
use std::process::ExitCode;

use eco_sat::{parse_dimacs, LBool, Solver, Var};

fn main() -> ExitCode {
    let text = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(1);
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("error: stdin: {e}");
                return ExitCode::from(1);
            }
            buf
        }
    };
    let problem = match parse_dimacs(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    let mut solver = Solver::new();
    for _ in 0..problem.num_vars {
        solver.new_var();
    }
    for clause in &problem.clauses {
        solver.add_clause(clause);
    }
    match solver.solve(&[]) {
        Some(true) => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for i in 0..problem.num_vars {
                let lit = Var::new(i as u32).pos();
                let val = solver.model_value(lit) != LBool::False;
                line.push(' ');
                if !val {
                    line.push('-');
                }
                line.push_str(&(i + 1).to_string());
            }
            line.push_str(" 0");
            println!("{line}");
            let st = solver.stats();
            eprintln!(
                "c conflicts {} decisions {} propagations {}",
                st.conflicts, st.decisions, st.propagations
            );
            ExitCode::from(10)
        }
        Some(false) => {
            println!("s UNSATISFIABLE");
            ExitCode::from(20)
        }
        None => unreachable!("unbounded solve"),
    }
}
