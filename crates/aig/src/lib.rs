#![warn(missing_docs)]
// The SoA core packs literals into u32 words; every narrowing cast must be
// either provably lossless (documented `#[allow]` at the site) or routed
// through a checked conversion, so the lint is a hard warning crate-wide.
#![warn(clippy::cast_possible_truncation)]
//! # eco-aig — And-Inverter Graph substrate
//!
//! A compact, structurally hashed [And-Inverter Graph](Aig) (AIG)
//! implementation: the circuit representation underlying the `eco` ECO
//! patch-generation engine (DAC 2018, Zhang & Jiang).
//!
//! Features:
//!
//! * append-only, topologically ordered node store with constant folding
//!   and structural hashing ([`Aig::and`] and friends);
//! * cone/support analysis and gate counting ([`Aig::support`],
//!   [`Aig::count_cone_ands`]);
//! * cofactoring, substitution (at inputs *or* internal nodes),
//!   cross-AIG import, and cut-based cone extraction
//!   ([`Aig::cofactor`], [`Aig::substitute`], [`Aig::import`],
//!   [`Aig::extract_cone`]);
//! * 64-way parallel simulation ([`Aig::simulate`]) for FRAIG signatures,
//!   with an arena-backed incremental engine ([`IncrementalSim`]) that
//!   appends counterexample columns and re-simulates only what changed;
//! * Graphviz export ([`Aig::to_dot`]) and AIGER interchange
//!   ([`parse_aiger_ascii`], [`write_aiger_binary`], ...).
//!
//! # Examples
//!
//! ```
//! use eco_aig::Aig;
//!
//! // Build f = (a & b) ^ c and check a cofactor.
//! let mut aig = Aig::new();
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let c = aig.add_input("c");
//! let ab = aig.and(a, b);
//! let f = aig.xor(ab, c);
//! aig.add_output("f", f);
//!
//! let f_c1 = aig.cofactor(&[f], c.var(), true)[0];
//! // f|c=1 = !(a & b)
//! assert_eq!(f_c1, !ab);
//! ```

mod aig;
mod aiger;
mod cone;
mod dot;
mod fp;
mod lit;
mod node;
mod rng;
mod sim;
mod transform;

pub use crate::aig::{Aig, Output};
pub use crate::aiger::{
    parse_aiger_ascii, parse_aiger_ascii_seq, parse_aiger_binary, parse_aiger_binary_seq,
    write_aiger_ascii, write_aiger_ascii_seq, write_aiger_binary, write_aiger_binary_seq,
    AigerInit, AigerLatch, ParseAigerError,
};
pub use crate::fp::FpHasher;
pub use crate::lit::{Lit, Var};
pub use crate::node::Node;
pub use crate::rng::SplitMix64;
pub use crate::sim::{IncrementalSim, SimVectors};
pub use crate::transform::TransformError;
