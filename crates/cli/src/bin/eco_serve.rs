//! `eco-serve`: the persistent ECO daemon and its replay client.
//!
//! ```text
//! # daemon: JSONL requests over a unix socket, shared warm memo cache
//! eco-serve --socket /tmp/eco.sock --jobs 4 --stats
//!
//! # daemon over stdin/stdout (tests, one-shot pipelines)
//! eco-serve --stdio < requests.jsonl > responses.jsonl
//!
//! # client: replay a request stream, echo responses to stdout
//! eco-serve client --socket /tmp/eco.sock --input requests.jsonl --timing
//! eco-serve client --socket /tmp/eco.sock --shutdown < /dev/null
//! ```
//!
//! The daemon drains gracefully on SIGTERM/SIGINT, on a protocol
//! `shutdown` request, or (in `--stdio` mode) on stdin EOF: admitted
//! jobs finish and are answered, new runs are refused with a typed
//! `draining` error, then the process exits 0. `--queue` bounds the
//! admission queue; overflow is shed with a typed `busy` refusal.
//! `--stats` prints a summary JSON object to stderr on exit (the
//! client's `--timing` does the same with latency percentiles).
//!
//! `--journal <dir>` makes the daemon crash-safe: memo entries and
//! admitted requests are write-ahead logged under `<dir>`.
//! `--resume <dir>` additionally replays a crashed daemon's journal
//! before serving — completed responses verbatim, unfinished jobs
//! re-executed — into `<dir>/recovered.jsonl` (resume report JSON on
//! stderr). The client's `--retries N` resends `busy` refusals with
//! capped exponential backoff. `--chaos seed=N,rate=P` (or the
//! `ECO_CHAOS` env var) arms the deterministic fault-injection registry
//! for chaos testing.
//!
//! Exit codes: 0 — clean drain / client replay done, 1 — usage, I/O, or
//! connection error.

use std::io::{self, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use eco_core::faultpoint;
use eco_serve::{
    resume_report_json, run_client, signal, summary_json, timing_json, ClientOptions, ServeOptions,
    Server,
};

const USAGE: &str = "usage:
  eco-serve (--socket <path> | --stdio) [--jobs N] [--queue N]
            [--timeout SECS] [--conflict-budget N] [--stats]
            [--journal <dir>] [--resume <dir>] [--chaos seed=N,rate=P]
  eco-serve client --socket <path> [--input <file>] [--rate R]
            [--retries N] [--timing] [--shutdown]";

struct ServerArgs {
    socket: Option<PathBuf>,
    stdio: bool,
    opts: ServeOptions,
    stats: bool,
    resume: bool,
}

struct ClientArgs {
    socket: PathBuf,
    input: Option<PathBuf>,
    opts: ClientOptions,
    timing: bool,
}

enum Args {
    Server(Box<ServerArgs>),
    Client(ClientArgs),
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1).peekable();
    if it.peek().map(String::as_str) == Some("client") {
        it.next();
        return parse_client(it).map(Args::Client);
    }
    parse_server(it).map(|a| Args::Server(Box::new(a)))
}

fn parse_server(mut it: impl Iterator<Item = String>) -> Result<ServerArgs, String> {
    let mut socket = None;
    let mut stdio = false;
    let mut opts = ServeOptions::default();
    let mut stats = false;
    let mut resume = false;
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match a.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--stdio" => stdio = true,
            "--jobs" | "-j" => {
                let v = value("--jobs")?;
                opts.workers = v
                    .parse()
                    .map_err(|_| format!("--jobs expects a number, got `{v}`"))?;
            }
            "--queue" => {
                let v = value("--queue")?;
                opts.queue_capacity = v
                    .parse()
                    .map_err(|_| format!("--queue expects a number, got `{v}`"))?;
            }
            "--timeout" => {
                let v = value("--timeout")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--timeout expects seconds, got `{v}`"))?;
                opts.request_budget.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--conflict-budget" => {
                let v = value("--conflict-budget")?;
                opts.request_budget.cluster_conflicts = Some(
                    v.parse()
                        .map_err(|_| format!("--conflict-budget expects a number, got `{v}`"))?,
                );
            }
            "--stats" => stats = true,
            "--journal" => opts.state_dir = Some(PathBuf::from(value("--journal")?)),
            "--resume" => {
                opts.state_dir = Some(PathBuf::from(value("--resume")?));
                resume = true;
            }
            "--chaos" => {
                let spec = eco_core::parse_chaos_spec(&value("--chaos")?)?;
                faultpoint::arm(spec);
            }
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if socket.is_none() && !stdio {
        return Err(USAGE.to_string());
    }
    if socket.is_some() && stdio {
        return Err("--socket and --stdio are mutually exclusive".into());
    }
    Ok(ServerArgs {
        socket,
        stdio,
        opts,
        stats,
        resume,
    })
}

fn parse_client(mut it: impl Iterator<Item = String>) -> Result<ClientArgs, String> {
    let mut socket = None;
    let mut input = None;
    let mut opts = ClientOptions::default();
    let mut timing = false;
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match a.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--input" | "-i" => input = Some(PathBuf::from(value("--input")?)),
            "--rate" => {
                let v = value("--rate")?;
                opts.rate = Some(
                    v.parse()
                        .map_err(|_| format!("--rate expects requests/sec, got `{v}`"))?,
                );
            }
            "--retries" => {
                let v = value("--retries")?;
                opts.retries = v
                    .parse()
                    .map_err(|_| format!("--retries expects a number, got `{v}`"))?;
            }
            "--timing" => timing = true,
            "--shutdown" => opts.shutdown = true,
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let Some(socket) = socket else {
        return Err(USAGE.to_string());
    };
    Ok(ClientArgs {
        socket,
        input,
        opts,
        timing,
    })
}

fn run_server(args: &ServerArgs) -> Result<(), String> {
    // `ECO_CHAOS=seed=N,rate=P` arms the fault registry like `--chaos`
    // (the campaign driver's path into a spawned daemon).
    faultpoint::arm_from_env()?;
    let server = Server::new(args.opts.clone());
    if let Some(err) = server.state_error() {
        eprintln!("warning: serving without durable state ({err})");
    }
    if args.resume {
        let dir = args
            .opts
            .state_dir
            .as_ref()
            .ok_or("--resume requires a state directory")?;
        let path = dir.join("recovered.jsonl");
        let mut out =
            std::fs::File::create(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let report = server
            .resume_from_journal(&mut out)
            .map_err(|e| format!("resume: {e}"))?;
        eprintln!("{}", resume_report_json(&report));
    }
    let summary = if args.stdio {
        // stdin EOF (or a shutdown request) starts the drain; no signal
        // handler needed for the pipeline transport.
        server.serve_stdio()
    } else {
        // Parsing validated socket-xor-stdio; a typed error here beats a
        // panic if that invariant ever drifts.
        let path = args.socket.as_ref().ok_or(USAGE)?;
        signal::install_term_handler();
        server
            .serve_unix(path, signal::term_flag())
            .map_err(|e| format!("{}: {e}", path.display()))?
    };
    if args.stats {
        eprintln!("{}", summary_json(&summary));
    }
    Ok(())
}

fn run_client_mode(args: &ClientArgs) -> Result<(), String> {
    let err = |e: io::Error| format!("{}: {e}", args.socket.display());
    let stream = UnixStream::connect(&args.socket).map_err(err)?;
    let mut rx = BufReader::new(stream.try_clone().map_err(err)?);
    let mut tx = stream;
    let stdout = io::stdout();
    let mut out = stdout.lock();
    let summary = match &args.input {
        Some(path) => {
            let file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
            run_client(
                &mut rx,
                &mut tx,
                &mut BufReader::new(file),
                &mut out,
                &args.opts,
            )
        }
        None => run_client(
            &mut rx,
            &mut tx,
            &mut io::stdin().lock(),
            &mut out,
            &args.opts,
        ),
    }
    .map_err(err)?;
    let _ = out.flush();
    if args.timing {
        eprintln!("{}", timing_json(&summary));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    let result = match &args {
        Args::Server(s) => run_server(s),
        Args::Client(c) => run_client_mode(c),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
