//! Criterion benches for the Eq.-12 rebasing machinery (Fig. 3): query
//! construction, feasibility checks, and full base selection.

use criterion::{criterion_group, criterion_main, Criterion};
use eco_core::{on_off_sets, select_base, BaseSelectOptions, EcoInstance, RebaseQuery, Workspace};
use eco_workgen::{assign_weights, cut_targets, WeightProfile};

fn setup() -> (Workspace, eco_aig::Lit, eco_aig::Lit, Vec<usize>) {
    let golden = eco_workgen::circuits::shared_datapath(8);
    let target = golden.wires.last().expect("wires").clone();
    let faulty = cut_targets(&golden, std::slice::from_ref(&target));
    let weights = assign_weights(&faulty, WeightProfile::CheapWires { pi: 50, wire: 2 }, 3);
    let inst = EcoInstance::from_netlists("bench", &faulty, &golden, vec![target], &weights)
        .expect("valid");
    let mut ws = Workspace::new(&inst);
    let t = ws.target_vars[0];
    let (f, g) = (ws.f_outs.clone(), ws.g_outs.clone());
    let onoff = on_off_sets(&mut ws.mgr, &f, &g, t);
    // Pool: the 32 cheapest candidates.
    let mut pool: Vec<usize> = (0..ws.cands.len()).collect();
    pool.sort_by_key(|&i| (ws.cands[i].weight, ws.cands[i].name.clone()));
    pool.truncate(32);
    (ws, onoff.on, onoff.off, pool)
}

fn bench_rebase(c: &mut Criterion) {
    let (ws, on, off, pool) = setup();

    c.bench_function("rebase/query_construction", |b| {
        b.iter(|| std::hint::black_box(RebaseQuery::new(&ws, on, off, pool.clone())));
    });

    c.bench_function("rebase/feasibility_sweep", |b| {
        let mut q = RebaseQuery::new(&ws, on, off, pool.clone());
        b.iter(|| {
            for k in 1..pool.len().min(12) {
                let base: Vec<usize> = (0..k).collect();
                std::hint::black_box(q.feasible(&base, 100_000));
            }
        });
    });

    c.bench_function("rebase/select_base_full", |b| {
        b.iter(|| {
            let mut q = RebaseQuery::new(&ws, on, off, pool.clone());
            let full: Vec<usize> = (0..pool.len()).collect();
            if q.feasible(&full, 100_000) == Some(true) {
                std::hint::black_box(select_base(
                    &ws,
                    &mut q,
                    &full,
                    &BaseSelectOptions::default(),
                ));
            }
        });
    });
}

criterion_group!(benches, bench_rebase);
criterion_main!(benches);
