//! Sequential benchmark generation: latch-bearing golden designs, fault
//! injection on their combinational cones, and multi-format emission.
//!
//! Two parameterized design families: [`shift_register_datapath`]
//! (banks of shift registers feeding a reduction tree — deep state,
//! shallow logic) and [`random_seq_dag`] (a random AND/XOR DAG over
//! inputs and latch states with random feedback — tangled state and
//! logic). Fault injection ([`inject_seq_faults`]) cuts named nets into
//! floating pseudo-inputs exactly like the combinational contest model,
//! but restricts the sites to *output-cone* nets outside every
//! latch-next cone: those are the faults whose per-frame patches stay
//! time-invariant, so [`eco_seq::SeqEcoEngine`] can fold them back (see
//! the engine docs for why latch-feeding targets frame-specialize).
//!
//! Units emit as latch-BLIF and BTOR2 via the format hub, so the same
//! case exercises both sequential parsers end to end.

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};

use eco_aig::{Aig, Lit, SplitMix64, Var};
use eco_netlist::{write_weights, LatchInit, WeightTable};
use eco_seq::hub::{write_design, Format};
use eco_seq::{Latch, SeqNetlist};

use std::collections::HashMap;

/// A generated sequential rectification case.
#[derive(Clone, Debug)]
pub struct SeqUnit {
    /// Case name (used as file stem).
    pub name: String,
    /// The reference design.
    pub golden: SeqNetlist,
    /// The golden design with target drivers cut into floating inputs.
    pub faulty: SeqNetlist,
    /// The cut nets, in cut order.
    pub targets: Vec<String>,
    /// Per-net weights over the golden/faulty nets.
    pub weights: WeightTable,
    /// Suggested unroll depth (covers the design's state depth).
    pub frames: usize,
}

/// Builds a bank of `width` shift registers, each `depth` stages deep,
/// feeding a named reduction tree (XOR parity and AND chain outputs).
/// Latch inits alternate deterministically from `seed` (including an
/// occasional don't-care).
pub fn shift_register_datapath(width: usize, depth: usize, seed: u64) -> SeqNetlist {
    let width = width.max(1);
    let depth = depth.max(1);
    let mut rng = SplitMix64::new(seed);
    let mut aig = Aig::new();
    let mut net_lits: HashMap<String, Lit> = HashMap::new();
    let mut data = Vec::with_capacity(width);
    for i in 0..width {
        let d = aig.add_input(format!("d{i}"));
        net_lits.insert(format!("d{i}"), d);
        data.push(d);
    }
    let mut latches = Vec::with_capacity(width * depth);
    let mut tails = Vec::with_capacity(width);
    for (i, &d) in data.iter().enumerate() {
        let mut prev = d;
        for j in 0..depth {
            let name = format!("s{i}_{j}");
            let state = aig.add_input(name.clone());
            net_lits.insert(name, state);
            let init = match rng.below(4) {
                0 => LatchInit::One,
                1 => LatchInit::DontCare,
                _ => LatchInit::Zero,
            };
            latches.push(Latch {
                state: state.var(),
                next: prev,
                init,
            });
            prev = state;
        }
        tails.push(prev);
    }
    // Reduction tree over the register tails; every node is named so it
    // can serve as a fault site or patch base.
    let mut k = 0usize;
    let mut name_node = |net_lits: &mut HashMap<String, Lit>, lit: Lit| {
        let name = format!("u{k}");
        k += 1;
        net_lits.insert(name, lit);
        lit
    };
    let mut parity = tails[0];
    let mut chain = tails[0];
    for &t in &tails[1..] {
        let x = aig.xor(parity, t);
        parity = name_node(&mut net_lits, x);
        let a = aig.and(chain, t);
        chain = name_node(&mut net_lits, a);
    }
    let blend = aig.and(parity, !chain);
    let blend = name_node(&mut net_lits, blend);
    aig.add_output("parity", parity);
    aig.add_output("allon", chain);
    aig.add_output("blend", blend);
    net_lits.insert("parity".into(), parity);
    net_lits.insert("allon".into(), chain);
    net_lits.insert("blend".into(), blend);
    SeqNetlist::new(format!("sr_w{width}_d{depth}"), aig, latches, net_lits)
        .expect("states are inputs by construction")
}

/// Builds a random sequential DAG: `gates` random AND/XOR nodes over
/// `inputs` primary inputs and `latches` latch states, random next-state
/// functions and init values, plus a small output-only mixing layer (the
/// guaranteed fold-friendly fault zone).
pub fn random_seq_dag(inputs: usize, gates: usize, latches: usize, seed: u64) -> SeqNetlist {
    let inputs = inputs.max(1);
    let latches = latches.max(1);
    let mut rng = SplitMix64::new(seed);
    let mut aig = Aig::new();
    let mut net_lits: HashMap<String, Lit> = HashMap::new();
    let mut pool: Vec<Lit> = Vec::new();
    for i in 0..inputs {
        let x = aig.add_input(format!("x{i}"));
        net_lits.insert(format!("x{i}"), x);
        pool.push(x);
    }
    let mut states = Vec::with_capacity(latches);
    for i in 0..latches {
        let s = aig.add_input(format!("l{i}"));
        net_lits.insert(format!("l{i}"), s);
        states.push(s);
        pool.push(s);
    }
    let grow = |aig: &mut Aig,
                rng: &mut SplitMix64,
                pool: &mut Vec<Lit>,
                tag: &str,
                n: usize,
                net_lits: &mut HashMap<String, Lit>| {
        for k in 0..n {
            let a = pool[rng.index(pool.len())].xor_complement(rng.chance(0.4));
            let b = pool[rng.index(pool.len())].xor_complement(rng.chance(0.4));
            let lit = if rng.chance(0.3) {
                aig.xor(a, b)
            } else {
                aig.and(a, b)
            };
            net_lits.insert(format!("{tag}{k}"), lit);
            pool.push(lit);
        }
    };
    grow(&mut aig, &mut rng, &mut pool, "n", gates, &mut net_lits);
    // Next-state functions and inits from the main pool.
    let mut latch_defs = Vec::with_capacity(latches);
    for &s in &states {
        let next = pool[rng.index(pool.len())].xor_complement(rng.chance(0.3));
        let init = match rng.below(5) {
            0 => LatchInit::One,
            1 => LatchInit::DontCare,
            _ => LatchInit::Zero,
        };
        latch_defs.push(Latch {
            state: s.var(),
            next,
            init,
        });
    }
    // Output-only mixing layer: these nodes are built after next-state
    // selection, so nothing sequential can reach them.
    let mixers = (gates / 4).max(2);
    let before = pool.len();
    grow(&mut aig, &mut rng, &mut pool, "m", mixers, &mut net_lits);
    let n_out = (mixers / 2).max(1);
    for (k, &lit) in pool[before..].iter().rev().take(n_out).enumerate() {
        aig.add_output(format!("y{k}"), lit);
        net_lits.insert(format!("y{k}"), lit);
    }
    SeqNetlist::new(
        format!("sdag_i{inputs}_g{gates}_l{latches}"),
        aig,
        latch_defs,
        net_lits,
    )
    .expect("states are inputs by construction")
}

/// Cuts `n` fault sites into floating targets, choosing only AND-driven
/// nets that sit in an output cone but in **no** latch-next cone (see
/// the module docs). Returns `None` when the design has fewer than `n`
/// eligible sites.
pub fn inject_seq_faults(
    golden: &SeqNetlist,
    n: usize,
    seed: u64,
) -> Option<(SeqNetlist, Vec<String>)> {
    let mut rng = SplitMix64::new(seed);
    let out_roots: Vec<Lit> = golden.aig.outputs().iter().map(|o| o.lit).collect();
    let next_roots: Vec<Lit> = golden.latches.iter().map(|l| l.next).collect();
    let out_cone: HashSet<Var> = golden.aig.cone_vars(&out_roots).into_iter().collect();
    let next_cone: HashSet<Var> = golden.aig.cone_vars(&next_roots).into_iter().collect();
    let mut names: Vec<&String> = golden.net_lits.keys().collect();
    names.sort();
    let mut sites: Vec<String> = Vec::new();
    let mut seen_vars: HashSet<Var> = HashSet::new();
    for name in names {
        let v = golden.net_lits[name].var();
        if golden.aig.is_and(v)
            && out_cone.contains(&v)
            && !next_cone.contains(&v)
            && seen_vars.insert(v)
        {
            sites.push(name.clone());
        }
    }
    if sites.len() < n {
        return None;
    }
    // Deterministic sample without replacement.
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        targets.push(sites.remove(rng.index(sites.len())));
    }
    let faulty = golden.cut_nets(&targets).ok()?;
    Some((faulty, targets))
}

/// Deterministic per-net weights in `1..=8`.
pub fn seq_weights(design: &SeqNetlist, seed: u64) -> WeightTable {
    let mut rng = SplitMix64::new(seed ^ 0x5e9_17eb);
    let mut names: Vec<&String> = design.net_lits.keys().collect();
    names.sort();
    let mut table = WeightTable::new(1);
    for n in names {
        table.set(n.clone(), rng.range_inclusive(1, 8));
    }
    table
}

/// Builds one sequential case: generate a golden design from the seed
/// (alternating families), inject `targets` faults, assign weights.
/// Returns `None` if the seed yields too few eligible fault sites.
pub fn gen_seq_unit(index: u64, seed: u64, targets: usize) -> Option<SeqUnit> {
    let mix = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(index);
    let golden = if index.is_multiple_of(2) {
        let mut rng = SplitMix64::new(mix);
        let width = 2 + rng.index(3);
        let depth = 2 + rng.index(3);
        shift_register_datapath(width, depth, mix)
    } else {
        let mut rng = SplitMix64::new(mix);
        let inputs = 3 + rng.index(3);
        let gates = 8 + rng.index(12);
        let latches = 2 + rng.index(3);
        random_seq_dag(inputs, gates, latches, mix)
    };
    let (faulty, target_names) = inject_seq_faults(&golden, targets, mix ^ 0xfa17)?;
    let weights = seq_weights(&golden, mix);
    let frames = golden.latches.len().clamp(2, 6) + 1;
    Some(SeqUnit {
        name: format!("seq{index:03}"),
        golden,
        faulty,
        targets: target_names,
        weights,
        frames,
    })
}

/// Writes a unit as BTOR2 + latch-BLIF golden/faulty pairs, a weight
/// file, and a targets list; returns the paths written.
pub fn write_seq_unit(dir: &Path, unit: &SeqUnit) -> io::Result<Vec<PathBuf>> {
    let mut written = Vec::new();
    let hub_err = |e: eco_seq::HubError| io::Error::new(io::ErrorKind::InvalidData, e.to_string());
    for (stem, design) in [("golden", &unit.golden), ("faulty", &unit.faulty)] {
        for fmt in [Format::Btor2, Format::Blif] {
            let path = dir.join(format!("{}_{stem}.{}", unit.name, fmt.name()));
            std::fs::write(&path, write_design(fmt, design).map_err(hub_err)?)?;
            written.push(path);
        }
    }
    let wpath = dir.join(format!("{}.weights", unit.name));
    std::fs::write(&wpath, write_weights(&unit.weights))?;
    written.push(wpath);
    let tpath = dir.join(format!("{}.targets", unit.name));
    std::fs::write(&tpath, unit.targets.join("\n") + "\n")?;
    written.push(tpath);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_core::EcoOptions;
    use eco_seq::{SeqEcoEngine, SeqEcoOptions};

    #[test]
    fn generators_are_deterministic() {
        let a = write_design(Format::Btor2, &shift_register_datapath(3, 2, 7)).unwrap();
        let b = write_design(Format::Btor2, &shift_register_datapath(3, 2, 7)).unwrap();
        assert_eq!(a, b);
        let a = write_design(Format::Btor2, &random_seq_dag(4, 10, 3, 11)).unwrap();
        let b = write_design(Format::Btor2, &random_seq_dag(4, 10, 3, 11)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn injected_faults_are_floating_inputs() {
        let golden = shift_register_datapath(3, 2, 5);
        let (faulty, targets) = inject_seq_faults(&golden, 2, 9).expect("sites");
        assert_eq!(targets.len(), 2);
        for t in &targets {
            assert!(golden.aig.find_input(t).is_none());
            assert!(faulty.aig.find_input(t).is_some(), "{t} not floating");
        }
        assert_eq!(faulty.latches.len(), golden.latches.len());
    }

    #[test]
    fn generated_unit_is_rectifiable() {
        let unit = gen_seq_unit(0, 42, 1).expect("unit");
        let engine = SeqEcoEngine::new(
            unit.faulty.clone(),
            unit.golden.clone(),
            unit.targets.clone(),
            unit.weights.clone(),
            SeqEcoOptions {
                frames: unit.frames,
                eco: EcoOptions::default(),
            },
        )
        .expect("engine");
        let result = engine.run().expect("rectifies");
        for bits in 0u64..64 {
            let n_pi = unit.golden.primary_input_positions().len();
            let stim: Vec<Vec<bool>> = (0..4)
                .map(|f| (0..n_pi).map(|i| bits >> (f * n_pi + i) & 1 == 1).collect())
                .collect();
            assert_eq!(
                unit.golden.simulate(&stim),
                result.patched.simulate(&stim),
                "{bits:#b}"
            );
        }
    }

    #[test]
    fn unit_files_round_trip_through_hub() {
        // Both families, both sides. The faulty side is the hard one:
        // cut targets become free inputs that keep their original names
        // (`blend`, `n8`, ...), which the BLIF writer's canonical
        // renaming and output covers must not double-drive.
        let mut checked = 0;
        for index in 0..4u64 {
            let mut seed = 5;
            let unit = loop {
                match gen_seq_unit(index, seed, 1 + (index % 2) as usize) {
                    Some(u) => break u,
                    None => seed += 1,
                }
            };
            for design in [&unit.golden, &unit.faulty] {
                for fmt in [Format::Blif, Format::Btor2] {
                    let bytes = write_design(fmt, design).expect("writes");
                    let back = eco_seq::read_design(fmt, &bytes).expect("reads back");
                    assert_eq!(back.latches.len(), design.latches.len());
                }
            }
            // Every cut target must survive the BLIF round trip by name.
            let blif = write_design(Format::Blif, &unit.faulty).expect("writes");
            let back = eco_seq::read_design(Format::Blif, &blif).expect("reads back");
            for t in &unit.targets {
                assert!(back.net_lits.contains_key(t), "target {t} lost in BLIF");
            }
            checked += 1;
        }
        assert_eq!(checked, 4);
    }
}
