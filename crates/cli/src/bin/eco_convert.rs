//! `eco-convert`: any-to-any translation between the workspace's
//! circuit formats.
//!
//! ```text
//! eco-convert -i design.v -o design.blif
//! eco-convert -i design.btor2 -o design.aag
//! eco-convert -i - --from blif -o - --to btor2 < in.blif > out.btor2
//! eco-convert -i design.aag -o design.cnf          # Tseitin export
//! ```
//!
//! Formats are inferred from file extensions — `.v` (structural Verilog
//! subset), `.blif` (with `.latch`), `.aag`/`.aig` (AIGER with latches),
//! `.btor2` (bit-level BTOR2), `.cnf` (Tseitin DIMACS, export only) —
//! and can be forced with `--from`/`--to`, which is required when
//! reading stdin or writing stdout via `-`. Latch-bearing designs
//! convert freely between the sequential formats; the combinational
//! formats reject them with a typed error.

use std::io::{Read, Write};
use std::process::ExitCode;

use eco_seq::hub::{read_design, write_design, Format, HubError};

const USAGE: &str = "usage: eco-convert -i <in.{v,blif,aag,aig,btor2}|-> -o \
                     <out.{v,blif,aag,aig,btor2,cnf}|-> [--from <fmt>] [--to <fmt>] \
                     [--name <module>]\n  `-` reads stdin / writes stdout and requires \
                     --from / --to";

fn resolve_format(path: &str, forced: Option<&str>) -> Result<Format, HubError> {
    match forced {
        Some(name) => Format::from_name(name).ok_or_else(|| HubError::UnknownFormat(name.into())),
        None if path == "-" => Err(HubError::UnknownFormat(
            "- (stdin/stdout needs --from/--to)".into(),
        )),
        None => Format::from_path(path),
    }
}

fn read_input(path: &str) -> Result<Vec<u8>, String> {
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn write_output(path: &str, bytes: &[u8]) -> Result<(), String> {
    if path == "-" {
        std::io::stdout()
            .write_all(bytes)
            .map_err(|e| format!("stdout: {e}"))
    } else {
        std::fs::write(path, bytes).map_err(|e| format!("{path}: {e}"))
    }
}

fn run(
    input: &str,
    output: &str,
    from: Option<&str>,
    to: Option<&str>,
    name: Option<String>,
) -> Result<(), String> {
    let from_fmt = resolve_format(input, from).map_err(|e| e.to_string())?;
    let to_fmt = resolve_format(output, to).map_err(|e| e.to_string())?;
    let data = read_input(input)?;
    let mut design = read_design(from_fmt, &data).map_err(|e| format!("{input}: {e}"))?;
    if let Some(n) = name {
        design.name = n;
    }
    let mut roots: Vec<eco_aig::Lit> = design.aig.outputs().iter().map(|o| o.lit).collect();
    roots.extend(design.latches.iter().map(|l| l.next));
    eprintln!(
        "{}: {} inputs, {} outputs, {} latches, {} AND gates",
        input,
        design.primary_input_positions().len(),
        design.aig.num_outputs(),
        design.latches.len(),
        design.aig.count_cone_ands(&roots),
    );
    let bytes = write_design(to_fmt, &design).map_err(|e| format!("{output}: {e}"))?;
    write_output(output, &bytes)
}

fn main() -> ExitCode {
    let mut input = None;
    let mut output = None;
    let mut from = None;
    let mut to = None;
    let mut name = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-i" | "--input" => input = args.next(),
            "-o" | "--output" => output = args.next(),
            "--from" => from = args.next(),
            "--to" => to = args.next(),
            "--name" => name = args.next(),
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(1);
            }
        }
    }
    let (Some(input), Some(output)) = (input, output) else {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    };
    match run(&input, &output, from.as_deref(), to.as_deref(), name) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
