//! Benchmark harnesses for the eco workspace; see `src/bin/*` and `benches/*`.
