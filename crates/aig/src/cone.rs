//! Cone extraction, support computation, levels, and fanout analysis.

use std::collections::{HashMap, HashSet};

use crate::{Aig, Lit, Var};

/// Depth-first cone walk over the SoA fanin columns.
///
/// Uses a dense `Vec<bool>` marker instead of a `HashSet`: at scale the
/// marker costs one byte per node with no hashing, and the visited list is
/// sorted at the end to recover the same topological (index) order the
/// set-based walk produced. `descend(v)` gates whether the walk continues
/// through `v`'s fanins (cut handling).
fn walk_cone(aig: &Aig, roots: &[Lit], mut descend: impl FnMut(Var) -> bool) -> Vec<Var> {
    let mut seen = vec![false; aig.len()];
    let mut visited: Vec<Var> = Vec::new();
    let mut stack: Vec<Var> = roots.iter().map(|l| l.var()).collect();
    while let Some(v) = stack.pop() {
        let mark = &mut seen[v.index() as usize];
        if *mark {
            continue;
        }
        *mark = true;
        visited.push(v);
        if !descend(v) {
            continue;
        }
        if let Some((fan0, fan1)) = aig.and_fanins(v) {
            stack.push(fan0.var());
            stack.push(fan1.var());
        }
    }
    visited.sort_unstable();
    visited
}

impl Aig {
    /// Returns all variables in the transitive fanin cone of `roots`
    /// (inputs and the constant included), in topological (index) order.
    pub fn cone_vars(&self, roots: &[Lit]) -> Vec<Var> {
        walk_cone(self, roots, |_| true)
    }

    /// Returns the structural support (input variables) of `roots`,
    /// in input-position order.
    pub fn support(&self, roots: &[Lit]) -> Vec<Var> {
        let mut sup: Vec<Var> = self
            .cone_vars(roots)
            .into_iter()
            .filter(|&v| self.is_input(v))
            .collect();
        sup.sort_by_key(|&v| self.input_pos(v));
        sup
    }

    /// Counts the AND nodes in the transitive fanin cone of `roots`.
    ///
    /// This is the patch-size metric used throughout the ECO flow:
    /// shared nodes are counted once.
    pub fn count_cone_ands(&self, roots: &[Lit]) -> usize {
        self.cone_vars(roots)
            .iter()
            .filter(|&&v| self.is_and(v))
            .count()
    }

    /// Like [`cone_vars`](Aig::cone_vars) but stops descending at `cut`
    /// variables: cut members appear in the result, but their fanins do not
    /// (unless reachable around the cut).
    pub fn cone_vars_to_cut(&self, roots: &[Lit], cut: &HashSet<Var>) -> Vec<Var> {
        walk_cone(self, roots, |v| !cut.contains(&v))
    }

    /// Counts AND nodes in the cone of `roots`, treating `cut` variables as
    /// free leaves (their own cones are not counted; a cut AND itself is not
    /// counted either).
    pub fn count_cone_ands_to_cut(&self, roots: &[Lit], cut: &HashSet<Var>) -> usize {
        self.cone_vars_to_cut(roots, cut)
            .iter()
            .filter(|&&v| self.is_and(v) && !cut.contains(&v))
            .count()
    }

    /// Computes the level (depth) of every node: inputs and the constant are
    /// level 0, an AND is `1 + max(level(fanins))`.
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.len()];
        for (v, fan0, fan1) in self.iter_ands() {
            let l0 = level[fan0.var().index() as usize];
            let l1 = level[fan1.var().index() as usize];
            level[v.index() as usize] = 1 + l0.max(l1);
        }
        level
    }

    /// Maximum level over all output literals (0 for an output-less AIG).
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs()
            .iter()
            .map(|o| levels[o.lit.var().index() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Computes, for every node, the set of output indices in whose
    /// transitive fanin cone the node lies (i.e. the outputs reachable from
    /// the node). Returned as a map only for nodes reaching at least one
    /// output.
    pub fn reachable_outputs(&self) -> HashMap<Var, Vec<usize>> {
        // Walk each output cone separately; total work is O(sum of cones).
        let mut map: HashMap<Var, Vec<usize>> = HashMap::new();
        for (idx, out) in self.outputs().iter().enumerate() {
            for v in self.cone_vars(&[out.lit]) {
                map.entry(v).or_default().push(idx);
            }
        }
        map
    }

    /// Computes the fanout count of every variable (uses by ANDs plus uses
    /// by outputs).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.len()];
        for (_, fan0, fan1) in self.iter_ands() {
            counts[fan0.var().index() as usize] += 1;
            counts[fan1.var().index() as usize] += 1;
        }
        for out in self.outputs() {
            counts[out.lit.var().index() as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Aig, Lit, Lit, Lit, Lit) {
        // f = (a & b) | c, g = a ^ b
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let f = aig.or(ab, c);
        let g = aig.xor(a, b);
        aig.add_output("f", f);
        aig.add_output("g", g);
        (aig, a, b, c, f)
    }

    #[test]
    fn support_of_outputs() {
        let (aig, a, b, c, f) = sample();
        let sup = aig.support(&[f]);
        assert_eq!(sup, vec![a.var(), b.var(), c.var()]);
        let g = aig.output_lit(1);
        assert_eq!(aig.support(&[g]), vec![a.var(), b.var()]);
    }

    #[test]
    fn cone_count_shares_nodes() {
        let (aig, _, _, _, f) = sample();
        let g = aig.output_lit(1);
        // f cone: and(a,b), or = 2 ANDs. g cone: xor = 3 ANDs, but shares
        // nothing with f's OR; and(a,b) is shared with one xor AND? No:
        // xor builds and(a,!b), and(!a,b), or-of-those. Distinct from and(a,b).
        assert_eq!(aig.count_cone_ands(&[f]), 2);
        assert_eq!(aig.count_cone_ands(&[g]), 3);
        assert_eq!(aig.count_cone_ands(&[f, g]), 5);
    }

    #[test]
    fn levels_and_depth() {
        let (aig, a, _, _, f) = sample();
        let levels = aig.levels();
        assert_eq!(levels[a.var().index() as usize], 0);
        assert_eq!(levels[f.var().index() as usize], 2);
        assert_eq!(aig.depth(), 2);
    }

    #[test]
    fn reachable_outputs_map() {
        let (aig, a, _, c, _) = sample();
        let reach = aig.reachable_outputs();
        assert_eq!(reach[&a.var()], vec![0, 1]);
        assert_eq!(reach[&c.var()], vec![0]);
    }

    #[test]
    fn cone_respects_cut() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let m = aig.and(a, b);
        let n = aig.and(m, a);
        let cut: HashSet<Var> = [m.var()].into_iter().collect();
        let vars = aig.cone_vars_to_cut(&[n], &cut);
        assert!(vars.contains(&m.var()));
        assert!(vars.contains(&n.var()));
        assert!(!vars.contains(&b.var()));
        assert_eq!(aig.count_cone_ands_to_cut(&[n], &cut), 1);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let (aig, a, _, _, f) = sample();
        let counts = aig.fanout_counts();
        // `a` feeds and(a,b) plus two xor ANDs = 3.
        assert_eq!(counts[a.var().index() as usize], 3);
        assert_eq!(counts[f.var().index() as usize], 1);
    }
}
