//! BLIF (Berkeley Logic Interchange Format) I/O.
//!
//! Supports flat `.model` blocks with `.inputs`/`.outputs`/`.names`
//! (single-output sum-of-products covers), `.latch`, and `.end`; line
//! continuations (`\`) and `#` comments are handled. Hierarchy
//! (`.subckt`/`.gate`) is rejected.
//!
//! Two API levels mirror the AIGER support in `eco-aig`:
//! [`parse_blif`]/[`write_blif`] handle the combinational subset
//! (`.latch` rejected), while [`parse_blif_seq`]/[`write_blif_seq`]
//! carry latches: each latch's current state becomes an ordinary input
//! of the elaborated AIG, with its next-state literal and [`LatchInit`]
//! reset value recorded in a [`BlifLatch`]. The sequential writer emits
//! a canonical form, so write → parse → write is a byte-level fixpoint.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use eco_aig::{Aig, Lit, Var};

/// Error produced when BLIF text cannot be parsed or elaborated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    /// 1-based (logical) line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseBlifError {}

/// A parsed-and-elaborated BLIF model.
#[derive(Clone, Debug)]
pub struct BlifModel {
    /// Model name.
    pub name: String,
    /// The elaborated AIG (inputs/outputs in declaration order).
    pub aig: Aig,
    /// Literal of every defined net.
    pub net_lits: HashMap<String, Lit>,
}

/// Reset value of a BLIF latch (the `.latch` init field).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LatchInit {
    /// Resets to 0 (`init-val` 0).
    Zero,
    /// Resets to 1 (`init-val` 1).
    One,
    /// Don't care / unknown (`init-val` 2 or 3, or absent).
    DontCare,
}

/// A latch of a sequential BLIF model: current state `state` is an input
/// of the elaborated AIG, `next` its next-state literal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlifLatch {
    /// Net name of the latch output (the current-state input).
    pub state: String,
    /// Next-state literal in the elaborated AIG.
    pub next: Lit,
    /// Reset value.
    pub init: LatchInit,
}

/// A parsed-and-elaborated sequential BLIF model.
#[derive(Clone, Debug)]
pub struct SeqBlifModel {
    /// Model name.
    pub name: String,
    /// The elaborated AIG; latch states are inputs after the declared
    /// primary inputs.
    pub aig: Aig,
    /// Literal of every defined net (including latch states).
    pub net_lits: HashMap<String, Lit>,
    /// Latches in `.latch` declaration order.
    pub latches: Vec<BlifLatch>,
}

#[derive(Debug)]
struct SopDef {
    output: String,
    inputs: Vec<String>,
    /// (input pattern, output value); `None` in a pattern = don't care.
    rows: Vec<(Vec<Option<bool>>, bool)>,
    line: usize,
}

#[derive(Debug)]
struct LatchDef {
    next: String,
    state: String,
    init: LatchInit,
    line: usize,
}

/// Parses a combinational BLIF model into an AIG.
///
/// # Errors
///
/// Returns [`ParseBlifError`] on unsupported constructs (including
/// `.latch` — use [`parse_blif_seq`] for sequential models), malformed
/// covers, undefined nets, cycles, or multiple drivers.
///
/// # Examples
///
/// ```
/// let text = ".model m\n.inputs a b c\n.outputs y\n\
///             .names a b w\n11 1\n.names w c y\n10 1\n01 1\n.end\n";
/// let model = eco_netlist::parse_blif(text)?;
/// // y = (a&b) XOR c
/// assert_eq!(model.aig.eval(&[true, true, false]), vec![true]);
/// assert_eq!(model.aig.eval(&[true, true, true]), vec![false]);
/// # Ok::<(), eco_netlist::ParseBlifError>(())
/// ```
pub fn parse_blif(text: &str) -> Result<BlifModel, ParseBlifError> {
    // Report `.latch` at its own line before any elaboration error the
    // sequential parse might hit first.
    for (i, raw) in text.lines().enumerate() {
        let content = raw.split('#').next().unwrap_or("");
        if content.split_whitespace().next() == Some(".latch") {
            return Err(ParseBlifError {
                line: i + 1,
                message: ".latch is not supported (combinational only)".into(),
            });
        }
    }
    let m = parse_blif_seq(text)?;
    Ok(BlifModel {
        name: m.name,
        aig: m.aig,
        net_lits: m.net_lits,
    })
}

/// Parses a BLIF model, latches included, into an AIG plus latch records.
///
/// `.latch` lines follow the BLIF grammar `input output [type control]
/// [init-val]`; the edge type and control net are accepted and ignored
/// (the model is cycle-accurate, not timing-accurate), and `init-val`
/// maps 0 → [`LatchInit::Zero`], 1 → [`LatchInit::One`], 2/3/absent →
/// [`LatchInit::DontCare`]. Each latch output becomes an input of the
/// elaborated AIG, placed after the declared primary inputs in `.latch`
/// order.
///
/// # Errors
///
/// Returns [`ParseBlifError`] on unsupported constructs, malformed
/// covers or latch lines, undefined nets, combinational cycles, or
/// multiple drivers.
pub fn parse_blif_seq(text: &str) -> Result<SeqBlifModel, ParseBlifError> {
    let err = |line: usize, m: &str| ParseBlifError {
        line,
        message: m.to_string(),
    };

    // Logical lines: strip comments, join continuations.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let without_comment = raw.split('#').next().unwrap_or("");
        let (content, continued) = match without_comment.trim_end().strip_suffix('\\') {
            Some(rest) => (rest.to_string(), true),
            None => (without_comment.to_string(), false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(&content);
                if continued {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((line_no, content));
                } else if !content.trim().is_empty() {
                    logical.push((line_no, content));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical.push((start, acc));
    }

    let mut name = String::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut defs: Vec<SopDef> = Vec::new();
    let mut latch_defs: Vec<LatchDef> = Vec::new();
    let mut current: Option<SopDef> = None;
    let mut ended = false;

    for (line_no, line) in &logical {
        let line_no = *line_no;
        let mut toks = line.split_whitespace();
        let Some(first) = toks.next() else { continue };
        if ended {
            break;
        }
        match first {
            ".model" => {
                if !name.is_empty() {
                    return Err(err(line_no, "multiple .model blocks are not supported"));
                }
                name = toks.next().unwrap_or("top").to_string();
            }
            ".inputs" => inputs.extend(toks.map(str::to_string)),
            ".outputs" => outputs.extend(toks.map(str::to_string)),
            ".names" => {
                if let Some(def) = current.take() {
                    defs.push(def);
                }
                let mut nets: Vec<String> = toks.map(str::to_string).collect();
                let Some(output) = nets.pop() else {
                    return Err(err(line_no, ".names needs at least an output"));
                };
                current = Some(SopDef {
                    output,
                    inputs: nets,
                    rows: Vec::new(),
                    line: line_no,
                });
            }
            ".latch" => {
                let rest: Vec<&str> = toks.collect();
                // Grammar: input output [type control] [init-val].
                let (next, state, init_tok) = match rest.len() {
                    2 => (rest[0], rest[1], None),
                    3 => (rest[0], rest[1], Some(rest[2])),
                    4 => (rest[0], rest[1], None),
                    5 => (rest[0], rest[1], Some(rest[4])),
                    _ => {
                        return Err(err(
                            line_no,
                            ".latch expects `input output [type control] [init-val]`",
                        ))
                    }
                };
                if rest.len() >= 4 && !matches!(rest[2], "fe" | "re" | "ah" | "al" | "as") {
                    return Err(err(line_no, &format!("invalid latch type `{}`", rest[2])));
                }
                let init = match init_tok {
                    None | Some("2") | Some("3") => LatchInit::DontCare,
                    Some("0") => LatchInit::Zero,
                    Some("1") => LatchInit::One,
                    Some(other) => {
                        return Err(err(line_no, &format!("invalid latch init value `{other}`")))
                    }
                };
                latch_defs.push(LatchDef {
                    next: next.to_string(),
                    state: state.to_string(),
                    init,
                    line: line_no,
                });
            }
            ".subckt" | ".gate" => return Err(err(line_no, "hierarchical BLIF is not supported")),
            ".end" => {
                ended = true;
            }
            tok if tok.starts_with('.') => {
                return Err(err(line_no, &format!("unsupported directive `{tok}`")))
            }
            pattern => {
                let Some(def) = current.as_mut() else {
                    return Err(err(line_no, "cover row outside .names"));
                };
                let (in_pat, out_val) = if def.inputs.is_empty() {
                    ("", pattern)
                } else {
                    let out = toks
                        .next()
                        .ok_or_else(|| err(line_no, "cover row missing output value"))?;
                    if toks.next().is_some() {
                        return Err(err(line_no, "trailing tokens in cover row"));
                    }
                    (pattern, out)
                };
                if in_pat.len() != def.inputs.len() {
                    return Err(err(line_no, "cover row arity mismatch"));
                }
                let bits: Result<Vec<Option<bool>>, ParseBlifError> = in_pat
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(Some(false)),
                        '1' => Ok(Some(true)),
                        '-' => Ok(None),
                        other => Err(err(line_no, &format!("invalid cover bit `{other}`"))),
                    })
                    .collect();
                let out_val = match out_val {
                    "1" => true,
                    "0" => false,
                    other => return Err(err(line_no, &format!("invalid output value `{other}`"))),
                };
                def.rows.push((bits?, out_val));
            }
        }
    }
    if let Some(def) = current.take() {
        defs.push(def);
    }

    // Elaborate: DFS over definitions with cycle detection. Latch states
    // are inputs, so feedback loops through latches are naturally broken.
    let mut aig = Aig::new();
    let mut net_lits: HashMap<String, Lit> = HashMap::new();
    for n in &inputs {
        let lit = aig.add_input(n.clone());
        if net_lits.insert(n.clone(), lit).is_some() {
            return Err(err(0, &format!("net `{n}` declared twice")));
        }
    }
    for l in &latch_defs {
        let n = &l.state;
        let lit = aig.add_input(n.clone());
        if net_lits.insert(n.clone(), lit).is_some() {
            return Err(err(
                l.line,
                &format!("latch output `{n}` has multiple drivers"),
            ));
        }
    }
    let mut driver: HashMap<&str, usize> = HashMap::new();
    for (i, def) in defs.iter().enumerate() {
        let n = def.output.as_str();
        if net_lits.contains_key(n) || driver.insert(n, i).is_some() {
            return Err(err(def.line, &format!("net `{n}` has multiple drivers")));
        }
    }

    #[derive(PartialEq, Clone, Copy)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<usize, Mark> = HashMap::new();
    let mut order: Vec<usize> = Vec::new();
    for start in 0..defs.len() {
        let mut stack = vec![start];
        while let Some(&di) = stack.last() {
            match marks.get(&di) {
                Some(Mark::Done) => {
                    stack.pop();
                }
                Some(Mark::Visiting) => {
                    marks.insert(di, Mark::Done);
                    order.push(di);
                    stack.pop();
                }
                None => {
                    marks.insert(di, Mark::Visiting);
                    for n in &defs[di].inputs {
                        if net_lits.contains_key(n.as_str()) {
                            continue;
                        }
                        let &dep = driver.get(n.as_str()).ok_or_else(|| {
                            err(defs[di].line, &format!("net `{n}` is never defined"))
                        })?;
                        match marks.get(&dep) {
                            Some(Mark::Visiting) => {
                                return Err(err(defs[di].line, &format!("cycle through `{n}`")))
                            }
                            Some(Mark::Done) => {}
                            None => stack.push(dep),
                        }
                    }
                }
            }
        }
    }
    // `order` is reverse-dependency order only if we pushed on Done; we
    // did — dependencies complete before dependents.
    for di in order {
        let def = &defs[di];
        let lit = build_sop(&mut aig, def, &net_lits).map_err(|m| err(def.line, &m))?;
        net_lits.insert(def.output.clone(), lit);
    }
    let mut latches = Vec::with_capacity(latch_defs.len());
    for l in &latch_defs {
        let &next = net_lits.get(l.next.as_str()).ok_or_else(|| {
            err(
                l.line,
                &format!("latch input `{}` is never defined", l.next),
            )
        })?;
        latches.push(BlifLatch {
            state: l.state.clone(),
            next,
            init: l.init,
        });
    }
    for n in &outputs {
        let &lit = net_lits
            .get(n.as_str())
            .ok_or_else(|| err(0, &format!("output `{n}` is never defined")))?;
        aig.add_output(n.clone(), lit);
    }
    Ok(SeqBlifModel {
        name: if name.is_empty() { "top".into() } else { name },
        aig,
        net_lits,
        latches,
    })
}

fn build_sop(aig: &mut Aig, def: &SopDef, net_lits: &HashMap<String, Lit>) -> Result<Lit, String> {
    let in_lits: Result<Vec<Lit>, String> = def
        .inputs
        .iter()
        .map(|n| {
            net_lits
                .get(n.as_str())
                .copied()
                .ok_or_else(|| format!("net `{n}` undefined"))
        })
        .collect();
    let in_lits = in_lits?;
    if def.rows.is_empty() {
        // Empty cover: constant 0.
        return Ok(Lit::FALSE);
    }
    let out_val = def.rows[0].1;
    if def.rows.iter().any(|(_, v)| *v != out_val) {
        return Err("mixed on-set and off-set rows in one cover".into());
    }
    let cubes: Vec<Lit> = def
        .rows
        .iter()
        .map(|(pattern, _)| {
            let lits: Vec<Lit> = pattern
                .iter()
                .zip(&in_lits)
                .filter_map(|(bit, &l)| bit.map(|b| l.xor_complement(!b)))
                .collect();
            aig.and_many(&lits)
        })
        .collect();
    let union = aig.or_many(&cubes);
    Ok(union.xor_complement(!out_val))
}

/// Writes the reachable logic of an AIG as flat BLIF.
///
/// AND nodes become two-input covers with complement handling in the
/// pattern plane; outputs get buffer/inverter covers. Internal nets are
/// named `n<k>`.
pub fn write_blif(aig: &Aig, model_name: &str) -> String {
    write_blif_seq(aig, model_name, &[])
}

/// Writes a latch-bearing design as flat BLIF with `.latch` lines.
///
/// Each latch is `(state, next, init)`: `state` must be an input
/// variable of `aig` (its name becomes the latch output net), `next` a
/// literal of `aig`. The emitted form is canonical — internal nets are
/// named `n<k>` in emission order, latch-next inverters `ln<k>` — so
/// write → [`parse_blif_seq`] → write is a byte-level fixpoint.
pub fn write_blif_seq(aig: &Aig, model_name: &str, latches: &[(Var, Lit, LatchInit)]) -> String {
    use fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, ".model {model_name}");
    let states: std::collections::HashSet<Var> = latches.iter().map(|&(v, _, _)| v).collect();
    let input_names: Vec<&str> = aig
        .inputs()
        .iter()
        .enumerate()
        .filter(|(_, v)| !states.contains(v))
        .map(|(p, _)| aig.input_name(p))
        .collect();
    if !input_names.is_empty() {
        let _ = writeln!(s, ".inputs {}", input_names.join(" "));
    }
    let out_names: Vec<String> = aig.outputs().iter().map(|o| o.name.clone()).collect();
    if !out_names.is_empty() {
        let _ = writeln!(s, ".outputs {}", out_names.join(" "));
    }

    let mut roots: Vec<Lit> = aig.outputs().iter().map(|o| o.lit).collect();
    roots.extend(latches.iter().map(|&(_, next, _)| next));
    let mut name_of: HashMap<Var, String> = HashMap::new();
    name_of.insert(Var::CONST, "__const0".to_string());
    for (p, &v) in aig.inputs().iter().enumerate() {
        name_of.insert(v, aig.input_name(p).to_owned());
    }
    let cone = aig.cone_vars(&roots);
    // Generated names must not collide with nets that already have a
    // driver or declaration — inputs (e.g. a cut ECO target named `n3`),
    // outputs, and latch state nets. The skip is a deterministic function
    // of those names, so a parsed copy still re-emits identical bytes.
    let mut taken: std::collections::HashSet<String> =
        name_of.values().cloned().chain(out_names.clone()).collect();
    // Name internal nets by emission order, not var index: a parsed copy
    // then re-emits identical names even though its numbering differs.
    let mut fresh = 0usize;
    for &v in &cone {
        if aig.is_and(v) {
            let mut name = format!("n{fresh}");
            while taken.contains(&name) {
                fresh += 1;
                name = format!("n{fresh}");
            }
            taken.insert(name.clone());
            name_of.insert(v, name);
            fresh += 1;
        }
    }

    // Latch lines come before the covers; each references its next-state
    // net by name, with `ln<k>` inverter/constant covers emitted below
    // for literals that have no positive-net name.
    let mut aux_covers: Vec<String> = Vec::new();
    for (k, &(state, next, init)) in latches.iter().enumerate() {
        let state_name = name_of[&state].clone();
        let next_name = if next.var() == Var::CONST || next.is_complement() {
            let mut j = k;
            let mut ln = format!("ln{j}");
            while taken.contains(&ln) {
                j += 1;
                ln = format!("ln{j}");
            }
            taken.insert(ln.clone());
            let mut cover = String::new();
            if next.var() == Var::CONST {
                let _ = writeln!(cover, ".names {ln}");
                if next == Lit::TRUE {
                    let _ = writeln!(cover, "1");
                }
            } else {
                let _ = writeln!(cover, ".names {} {ln}\n0 1", name_of[&next.var()]);
            }
            aux_covers.push(cover);
            ln
        } else {
            name_of[&next.var()].clone()
        };
        let init_digit = match init {
            LatchInit::Zero => '0',
            LatchInit::One => '1',
            LatchInit::DontCare => '2',
        };
        let _ = writeln!(s, ".latch {next_name} {state_name} {init_digit}");
    }

    let mut const_used = false;
    for &v in &cone {
        if let Some((fan0, fan1)) = aig.and_fanins(v) {
            let p0 = if fan0.is_complement() { '0' } else { '1' };
            let p1 = if fan1.is_complement() { '0' } else { '1' };
            let _ = writeln!(
                s,
                ".names {} {} {}\n{}{} 1",
                name_of[&fan0.var()],
                name_of[&fan1.var()],
                name_of[&v],
                p0,
                p1
            );
            const_used |= fan0.var() == Var::CONST || fan1.var() == Var::CONST;
        }
    }
    for out in aig.outputs() {
        let v = out.lit.var();
        if v == Var::CONST {
            // Constant output: empty cover = 0, single `1` row = 1.
            let _ = writeln!(s, ".names {}", out.name);
            if out.lit.is_complement() {
                let _ = writeln!(s, "1");
            }
            continue;
        }
        // An output that IS an input net of the same name (e.g. a cut
        // ECO target fed back out) needs no cover — emitting the buffer
        // would drive the declared input a second time.
        if !out.lit.is_complement() && name_of[&v] == out.name {
            continue;
        }
        let row = if out.lit.is_complement() {
            "0 1"
        } else {
            "1 1"
        };
        let _ = writeln!(s, ".names {} {}\n{}", name_of[&v], out.name, row);
    }
    for cover in &aux_covers {
        s.push_str(cover);
    }
    if const_used {
        let _ = writeln!(s, ".names __const0");
    }
    s.push_str(".end\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_model() {
        let text = ".model demo\n.inputs a b c\n.outputs y z\n\
                    .names a b w\n11 1\n\
                    .names w c y\n10 1\n01 1\n\
                    .names c z\n0 1\n.end\n";
        let m = parse_blif(text).expect("parses");
        assert_eq!(m.name, "demo");
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let w = vals[0] && vals[1];
            assert_eq!(m.aig.eval(&vals), vec![w ^ vals[2], !vals[2]], "{vals:?}");
        }
    }

    #[test]
    fn dont_cares_and_offset_rows() {
        // f defined by off-set rows: f = !(a & !b).
        let text = ".model m\n.inputs a b\n.outputs f g\n\
                    .names a b f\n10 0\n\
                    .names a b g\n-1 1\n.end\n";
        let m = parse_blif(text).expect("parses");
        for bits in 0u32..4 {
            let vals: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            let out = m.aig.eval(&vals);
            assert_eq!(out[0], !vals[0] || vals[1], "f at {vals:?}");
            assert_eq!(out[1], vals[1], "g at {vals:?}");
        }
    }

    #[test]
    fn constants_and_continuations() {
        let text = ".model m\n.inputs a\n.outputs one zero pass\n\
                    .names one\n1\n.names zero\n\
                    .names a \\\npass\n1 1\n.end\n";
        let m = parse_blif(text).expect("parses");
        assert_eq!(m.aig.eval(&[false]), vec![true, false, false]);
        assert_eq!(m.aig.eval(&[true]), vec![true, false, true]);
    }

    #[test]
    fn out_of_order_definitions() {
        let text = ".model m\n.inputs a b\n.outputs y\n\
                    .names w a y\n11 1\n\
                    .names a b w\n01 1\n10 1\n.end\n";
        let m = parse_blif(text).expect("parses");
        for bits in 0u32..4 {
            let vals: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            let w = vals[0] ^ vals[1];
            assert_eq!(m.aig.eval(&vals), vec![w && vals[0]]);
        }
    }

    #[test]
    fn rejects_unsupported_and_malformed() {
        assert!(parse_blif(".model m\n.latch a b\n.end\n").is_err());
        assert!(parse_blif(".model m\n.subckt foo\n.end\n").is_err());
        assert!(parse_blif(".model m\n.inputs a\n.outputs y\n11 1\n.end\n").is_err());
        assert!(parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1\n.end\n").is_err());
        assert!(parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\nx 1\n.end\n").is_err());
        assert!(
            parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n").is_err()
        );
        // Cycle.
        assert!(parse_blif(
            ".model m\n.inputs a\n.outputs y\n.names y a w\n11 1\n.names w a y\n11 1\n.end\n"
        )
        .is_err());
        // Undefined output.
        assert!(parse_blif(".model m\n.inputs a\n.outputs ghost\n.end\n").is_err());
    }

    #[test]
    fn rejects_malformed_latches() {
        // Too few tokens.
        assert!(parse_blif_seq(".model m\n.latch a\n.end\n").is_err());
        // Bad init value.
        assert!(parse_blif_seq(".model m\n.inputs a\n.latch a s 9\n.end\n").is_err());
        // Bad latch type.
        assert!(parse_blif_seq(".model m\n.inputs a c\n.latch a s xx c 0\n.end\n").is_err());
        // Undefined next net.
        assert!(parse_blif_seq(".model m\n.latch ghost s 0\n.end\n").is_err());
        // State double-driven by a cover.
        assert!(
            parse_blif_seq(".model m\n.inputs a\n.latch a s 0\n.names a s\n1 1\n.end\n").is_err()
        );
        // State declared twice.
        assert!(parse_blif_seq(".model m\n.inputs a\n.latch a s 0\n.latch a s 1\n.end\n").is_err());
    }

    #[test]
    fn parses_latches() {
        // 2-bit shift register: s1' = s0, s0' = d; q = s1.
        let text = ".model sr\n.inputs d\n.outputs q\n\
                    .latch d s0 0\n.latch s0 s1 1\n\
                    .names s1 q\n1 1\n.end\n";
        let m = parse_blif_seq(text).expect("parses");
        assert_eq!(m.latches.len(), 2);
        assert_eq!(m.latches[0].state, "s0");
        assert_eq!(m.latches[0].init, LatchInit::Zero);
        assert_eq!(m.latches[1].init, LatchInit::One);
        // Latch states elaborate as inputs: d, s0, s1.
        assert_eq!(m.aig.num_inputs(), 3);
        assert_eq!(m.latches[1].next, m.net_lits["s0"]);
    }

    #[test]
    fn feedback_through_latch_is_not_a_cycle() {
        // Toggle: t' = !t.
        let text = ".model tog\n.outputs q\n.latch nt t 0\n\
                    .names t nt\n0 1\n.names t q\n1 1\n.end\n";
        let m = parse_blif_seq(text).expect("parses");
        assert_eq!(m.latches.len(), 1);
        assert_eq!(m.latches[0].next, !m.net_lits["t"]);
    }

    #[test]
    fn seq_write_round_trip_is_byte_fixpoint() {
        let mut aig = Aig::new();
        let d = aig.add_input("d");
        let s0 = aig.add_input("s0");
        let s1 = aig.add_input("s1");
        let fb = aig.xor(d, s1);
        let q = aig.and(s0, s1);
        aig.add_output("q", q);
        let latches = vec![
            (s0.var(), fb, LatchInit::Zero),
            (s1.var(), !s0, LatchInit::DontCare),
        ];
        let text = write_blif_seq(&aig, "sr", &latches);
        let m = parse_blif_seq(&text).expect("round trip parses");
        assert_eq!(m.latches.len(), 2);
        let back_latches: Vec<(Var, Lit, LatchInit)> = m
            .latches
            .iter()
            .map(|l| (m.net_lits[&l.state].var(), l.next, l.init))
            .collect();
        assert_eq!(write_blif_seq(&m.aig, "sr", &back_latches), text);
    }

    /// Inputs named like generated nets (`n<k>` — e.g. a cut ECO target
    /// that kept its original name — or `ln<k>`) must not collide with
    /// the writer's canonical internal/aux names: the emitted file stays
    /// single-driver, parses back, and remains a byte fixpoint.
    #[test]
    fn generated_names_skip_colliding_inputs() {
        let mut aig = Aig::new();
        let n0 = aig.add_input("n0");
        let ln0 = aig.add_input("ln0");
        let s = aig.add_input("s");
        let g = aig.and(n0, ln0);
        let h = aig.and(g, s);
        aig.add_output("y", h);
        // A cut target fed straight back out: input `n0` is also the
        // output `n0`, which must not get a self-driving buffer cover.
        aig.add_output("n0", n0);
        let latches = vec![(s.var(), !g, LatchInit::Zero)];
        let text = write_blif_seq(&aig, "clash", &latches);
        let m = parse_blif_seq(&text).expect("no multiple drivers");
        assert_eq!(m.latches.len(), 1);
        let back: Vec<(Var, Lit, LatchInit)> = m
            .latches
            .iter()
            .map(|l| (m.net_lits[&l.state].var(), l.next, l.init))
            .collect();
        assert_eq!(write_blif_seq(&m.aig, "clash", &back), text);
    }

    #[test]
    fn write_round_trip() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, !b);
        let f = aig.xor(ab, c);
        aig.add_output("f", f);
        aig.add_output("nf", !f);
        aig.add_output("k1", Lit::TRUE);
        let text = write_blif(&aig, "rt");
        let back = parse_blif(&text).expect("round trip parses");
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(aig.eval(&vals), back.aig.eval(&vals), "{vals:?}");
        }
    }
}
