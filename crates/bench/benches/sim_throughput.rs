//! Simulation-engine throughput: the costs the FRAIG refine loop pays.
//!
//! `full_resim` is what a non-incremental engine pays per refine round
//! (re-simulate every column); `incremental_column` is what the
//! incremental engine pays (one appended column). `fingerprint` vs
//! `signature_hashmap_key` compares the allocation-free 128-bit bucketing
//! key against what the old bucketing paid per node: materializing a
//! `Vec<u64>` signature and SipHashing it as a `HashMap` key.

use eco_aig::{Aig, IncrementalSim, SplitMix64};
use eco_bench::Bench;
use eco_netlist::elaborate;
use eco_workgen::circuits;

fn random_patterns(n_inputs: usize, words: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = SplitMix64::new(seed);
    (0..n_inputs)
        .map(|_| (0..words).map(|_| rng.next_u64()).collect())
        .collect()
}

fn main() {
    let aig: Aig = elaborate(&circuits::shared_datapath(16))
        .expect("elaborates")
        .aig;
    let words = 16;
    let patterns = random_patterns(aig.num_inputs(), words, 7);

    let mut bench = Bench::from_env();
    bench.run("sim/full_resim/datapath16", || aig.simulate(&patterns));

    // Headroom so appends never re-layout mid-measurement; each sample
    // pays exactly one new column, like one FRAIG refine round.
    let mut isim = IncrementalSim::with_capacity(&aig, &patterns, words + 64);
    let mut rng = SplitMix64::new(11);
    bench.run("sim/incremental_column/datapath16", || {
        isim.append_random_column(&aig, &mut rng);
        isim.resimulate(&aig)
    });

    let sim = aig.simulate(&patterns);
    let vars: Vec<eco_aig::Var> = (0..aig.len() as u32).map(eco_aig::Var::new).collect();
    bench.run("sim/fingerprint/datapath16", || {
        vars.iter()
            .map(|v| sim.fingerprint(v.pos()).0)
            .fold(0u128, u128::wrapping_add)
    });
    bench.run("sim/signature_hashmap_key/datapath16", || {
        use std::hash::{BuildHasher, RandomState};
        let hasher = RandomState::new();
        vars.iter()
            .map(|v| hasher.hash_one(sim.signature(v.pos()).0))
            .fold(0u64, u64::wrapping_add)
    });
    bench.finish();
}
