#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite.
# Run from anywhere; operates on the workspace root.
#
# --bench-smoke additionally runs the simulation and FRAIG-sweep benches
# with a single sample each, so hot-path regressions (a bench that panics,
# an accidental O(n^2) blowup) fail fast without the cost of a real
# measurement run.
#
# --fuzz-smoke additionally replays the tests/corpus regression set and
# runs a short differential fuzzing campaign (200 fixed-seed cases with
# shrinking) through the eco-fuzz binary; any oracle failure fails the
# gate with the shrunk case printed.
#
# --degrade-smoke additionally drives the eco-patch binary against a
# starvation budget (zero deadline, one-conflict allowance) and asserts
# the graceful-degradation contract: exit code 4, a per-cluster partial
# report, well-formed governor counters in --stats=json, and a partial
# patch netlist only under --allow-partial. It also runs a 200-case
# budgeted differential campaign through eco-fuzz.
#
# --batch-smoke additionally generates a 12-job manifest with
# eco-workgen, runs it cold then warm through eco-batch over one shared
# memo cache (--repeat 2), and asserts every job is proven equivalent,
# the warm pass reports nonzero cache hits, and the JSONL report is
# byte-identical for --jobs 1 vs --jobs 4. Cold/warm wall times are
# recorded in crates/bench/BENCH_batch.json.
#
# --scale-smoke additionally emits the 100k-gate scale AIGs end-to-end
# through eco-workgen --scale, then runs the release scale harness on
# the 100k preset under a governor deadline. When a checked-in
# crates/bench/BENCH_scale.json exists, simulation throughput is
# compared against it and a >20% regression fails the gate; the 100k
# rows of the tracked file are refreshed on success.
#
# --serve-smoke additionally exercises the eco-serve daemon end to end:
# a 12-job request stream (from eco-workgen --requests) is replayed cold
# then warm against one daemon over a unix socket. The warm replay must
# hit the process-lifetime memo cache (daemon stats op), finish in <10%
# of the cold stream's wall time, and return byte-identical responses; a
# second daemon with --jobs 1 must produce the same bytes as --jobs 4.
# Both drain paths are proven clean (protocol shutdown and SIGTERM, exit
# 0, socket file removed, all admitted jobs answered). Cold/warm
# throughput and p50/p99 round-trip latencies are recorded in
# crates/bench/BENCH_serve.json.
#
# The portfolio smoke is part of the DEFAULT gate (cheap: four eco-patch
# runs on one solver-bound unit): it drives unit04 with --portfolio 1
# and --portfolio 4, asserts the emitted patch netlists are
# byte-identical (including a repeated --portfolio 4 run), checks the
# portfolio telemetry contract (no races at 1, races at 4), and records
# both wall times into crates/bench/BENCH_portfolio.json. Wall time is
# reported, not gated — on a loaded or single-core host the race is
# overhead, and determinism is the contract under test. Skip it with
# --no-portfolio-smoke.
#
# The seq smoke is also part of the DEFAULT gate (seconds): it generates
# a latch-bearing case with eco-workgen --seq, rectifies it through
# eco-patch --unroll at several frame depths (generate → unroll →
# rectify → fold → verify, exit 0 each time), asserts the folded patch
# parses and carries no frame-indexed names, cross-checks the format hub
# with a byte-fixpoint conversion cycle and a short eco-fuzz --formats
# round-trip campaign, and records unroll-depth wall times, frames/sec,
# and patch sizes in crates/bench/BENCH_seq.json. Skip it with
# --no-seq-smoke.
#
# The chaos smoke is also part of the DEFAULT gate (seconds): it runs
# the seeded fault-injection campaign (eco-workgen --chaos-campaign),
# 240 in-process fault sweeps with a differential oracle plus the
# kill-mid-stream drill (SIGKILL a real eco-serve daemon, recover with
# --resume, union of responses must equal the fault-free run, warm
# restart must hit the durable memo). Recovery wall time, journal
# replay rate, and store recovery counts are merged into
# crates/bench/BENCH_chaos.json. Skip it with --no-chaos-smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_smoke=0
fuzz_smoke=0
degrade_smoke=0
batch_smoke=0
scale_smoke=0
serve_smoke=0
portfolio_smoke=1
chaos_smoke=1
seq_smoke=1
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    --fuzz-smoke) fuzz_smoke=1 ;;
    --degrade-smoke) degrade_smoke=1 ;;
    --batch-smoke) batch_smoke=1 ;;
    --scale-smoke) scale_smoke=1 ;;
    --serve-smoke) serve_smoke=1 ;;
    --portfolio-smoke) portfolio_smoke=1 ;;
    --no-portfolio-smoke) portfolio_smoke=0 ;;
    --chaos-smoke) chaos_smoke=1 ;;
    --no-chaos-smoke) chaos_smoke=0 ;;
    --seq-smoke) seq_smoke=1 ;;
    --no-seq-smoke) seq_smoke=0 ;;
    *) echo "usage: $0 [--bench-smoke] [--fuzz-smoke] [--degrade-smoke] [--batch-smoke] [--scale-smoke] [--serve-smoke] [--no-portfolio-smoke] [--no-chaos-smoke] [--no-seq-smoke]" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q"
cargo test -q --workspace

if [ "$portfolio_smoke" -eq 1 ]; then
  echo "== portfolio smoke: unit04 byte-identical across --portfolio 1/4, wall times recorded"
  ptmp="$(mktemp -d)"
  trap 'rm -rf "${ptmp:-}"' EXIT
  target/release/eco-workgen --suite --count 4 --out "$ptmp" -q

  # unit04 is the solver-bound unit the portfolio targets; its single
  # pre-specified target is w12 (deterministic suite).
  run_portfolio() { # <n> <out.v>
    local n="$1" out="$2" t0 t1
    t0=$(date +%s%N)
    target/release/eco-patch -f "$ptmp/unit04_faulty.v" -g "$ptmp/unit04_golden.v" \
      -w "$ptmp/unit04.weights" -t w12 --portfolio "$n" --stats=json -q \
      -o "$out" 2> "$ptmp/stderr_p$n.txt" \
      || { echo "portfolio smoke: --portfolio $n run failed"; cat "$ptmp/stderr_p$n.txt"; exit 1; }
    t1=$(date +%s%N)
    echo $((t1 - t0))
  }

  wall1=$(run_portfolio 1 "$ptmp/patch_p1.v")
  wall4=$(run_portfolio 4 "$ptmp/patch_p4.v")
  run_portfolio 4 "$ptmp/patch_p4_again.v" > /dev/null
  cmp -s "$ptmp/patch_p1.v" "$ptmp/patch_p4.v" \
    || { echo "portfolio smoke: patch differs between --portfolio 1 and 4"; diff "$ptmp/patch_p1.v" "$ptmp/patch_p4.v" || true; exit 1; }
  cmp -s "$ptmp/patch_p4.v" "$ptmp/patch_p4_again.v" \
    || { echo "portfolio smoke: repeated --portfolio 4 runs differ"; exit 1; }
  grep -q '"portfolio": {"launches": 0' "$ptmp/stderr_p1.txt" \
    || { echo "portfolio smoke: --portfolio 1 must not race"; cat "$ptmp/stderr_p1.txt"; exit 1; }
  grep -q '"portfolio": {"launches": 0' "$ptmp/stderr_p4.txt" \
    && { echo "portfolio smoke: --portfolio 4 never raced"; cat "$ptmp/stderr_p4.txt"; exit 1; }

  cat > crates/bench/BENCH_portfolio.json <<EOF
{"benches": [
  {"name": "portfolio-smoke/unit04/portfolio1", "samples": 1, "mean_ns": $wall1, "median_ns": $wall1, "min_ns": $wall1, "max_ns": $wall1},
  {"name": "portfolio-smoke/unit04/portfolio4", "samples": 1, "mean_ns": $wall4, "median_ns": $wall4, "min_ns": $wall4, "max_ns": $wall4}
],
 "notes": [
  "cold eco-patch process wall (includes parse + startup); patches byte-identical, wall informational only"
]}
EOF
  echo "portfolio smoke: ok (portfolio1 ${wall1}ns, portfolio4 ${wall4}ns)"
fi

if [ "$chaos_smoke" -eq 1 ]; then
  echo "== chaos smoke: 240 seeded fault sweeps + kill-mid-stream recovery drill"
  chtmp="$(mktemp -d)"
  trap 'rm -rf "${ptmp:-}" "${chtmp:-}"' EXIT
  # The campaign fails on any crash, any wrong answer (differential
  # oracle), a lost response across the SIGKILL, or a warm restart that
  # misses the durable memo store.
  target/release/eco-workgen --chaos-campaign --out "$chtmp" --seed 1 \
    --bench-out crates/bench/BENCH_chaos.json -q \
    || { echo "chaos smoke: campaign failed"; exit 1; }
  for row in 'chaos/sweep/wall' 'chaos/kill12/recovery_wall' 'chaos/kill12/warm_replay_wall'; do
    grep -q "\"name\": \"$row\"" crates/bench/BENCH_chaos.json \
      || { echo "chaos smoke: bench file missing $row"; cat crates/bench/BENCH_chaos.json; exit 1; }
  done
  grep -q '0 crashes, 0 wrong answers' crates/bench/BENCH_chaos.json \
    || { echo "chaos smoke: bench file missing oracle note"; cat crates/bench/BENCH_chaos.json; exit 1; }
  echo "chaos smoke: ok"
fi

if [ "$seq_smoke" -eq 1 ]; then
  echo "== seq smoke: generate -> unroll -> rectify -> fold -> verify at several depths"
  sqtmp="$(mktemp -d)"
  trap 'rm -rf "${ptmp:-}" "${chtmp:-}" "${sqtmp:-}"' EXIT
  target/release/eco-workgen --seq 1 --out "$sqtmp" --seed 5 -q

  # seq000 is the first shift-register unit (seed 5: 4 latches, 1
  # target); its fault sits in the output cone, so the fold succeeds at
  # any depth that covers the state.
  targets=$(tr '\n' ',' < "$sqtmp/seq000.targets" | sed 's/,$//')
  bench_rows=""
  bench_notes=""
  for k in 2 4 6; do
    t0=$(date +%s%N)
    target/release/eco-patch \
      -f "$sqtmp/seq000_faulty.btor2" -g "$sqtmp/seq000_golden.btor2" \
      -w "$sqtmp/seq000.weights" -t "$targets" --unroll "$k" \
      -o "$sqtmp/patch_k$k.v" 2> "$sqtmp/stderr_k$k.txt" \
      || { echo "seq smoke: --unroll $k run failed"; cat "$sqtmp/stderr_k$k.txt"; exit 1; }
    t1=$(date +%s%N)
    wall=$((t1 - t0))
    grep -q "patched and verified over $k frames" "$sqtmp/stderr_k$k.txt" \
      || { echo "seq smoke: --unroll $k did not verify"; cat "$sqtmp/stderr_k$k.txt"; exit 1; }
    grep -q 'module patch' "$sqtmp/patch_k$k.v" \
      || { echo "seq smoke: --unroll $k wrote a malformed patch"; cat "$sqtmp/patch_k$k.v"; exit 1; }
    ! grep -q '@' "$sqtmp/patch_k$k.v" \
      || { echo "seq smoke: frame-indexed name leaked into the folded patch"; cat "$sqtmp/patch_k$k.v"; exit 1; }
    size=$(sed -n "s/.*cost [0-9]*, size \([0-9]*\).*/\1/p" "$sqtmp/stderr_k$k.txt")
    fps=$(awk -v k="$k" -v w="$wall" 'BEGIN { printf "%.1f", k / (w / 1e9) }')
    bench_rows="$bench_rows  {\"name\": \"seq/unroll$k/wall\", \"samples\": 1, \"mean_ns\": $wall, \"median_ns\": $wall, \"min_ns\": $wall, \"max_ns\": $wall},
"
    bench_notes="$bench_notes  \"unroll $k: ${fps} frames/s, patch size $size ANDs\",
"
  done

  # Format-hub cross-checks: the canonical BTOR2 writer is a byte
  # fixpoint through its own parser, the design survives a blif hop
  # with its latches intact, and a short differential round-trip
  # campaign over all format pairs comes back clean.
  target/release/eco-convert -i "$sqtmp/seq000_golden.btor2" -o "$sqtmp/rt.btor2" 2> /dev/null \
    || { echo "seq smoke: btor2 -> btor2 conversion failed"; exit 1; }
  cmp -s "$sqtmp/seq000_golden.btor2" "$sqtmp/rt.btor2" \
    || { echo "seq smoke: btor2 -> btor2 is not a byte fixpoint"; diff "$sqtmp/seq000_golden.btor2" "$sqtmp/rt.btor2" || true; exit 1; }
  target/release/eco-convert -i "$sqtmp/seq000_golden.btor2" -o "$sqtmp/rt.blif" 2> "$sqtmp/convert.txt" \
    || { echo "seq smoke: btor2 -> blif conversion failed"; cat "$sqtmp/convert.txt"; exit 1; }
  grep -q '4 latches' "$sqtmp/convert.txt" \
    || { echo "seq smoke: conversion lost latches"; cat "$sqtmp/convert.txt"; exit 1; }
  target/release/eco-fuzz --formats 15 --seed 1 --shrink > /dev/null \
    || { echo "seq smoke: format round-trip campaign failed"; exit 1; }

  cat > crates/bench/BENCH_seq.json <<EOF
{"benches": [
${bench_rows%,
}
], "notes": [
  "cold eco-patch --unroll process wall (parse + unroll + rectify + fold + k-frame re-proof)",
${bench_notes%,
}
]}
EOF
  echo "seq smoke: ok"
fi

if [ "$bench_smoke" -eq 1 ]; then
  echo "== bench smoke (1 sample): sim_throughput"
  ECO_BENCH_SAMPLES=1 cargo bench -p eco-bench --bench sim_throughput
  echo "== bench smoke (1 sample): fraig_sweep"
  ECO_BENCH_SAMPLES=1 cargo bench -p eco-bench --bench fraig_sweep
fi

if [ "$fuzz_smoke" -eq 1 ]; then
  echo "== fuzz smoke: corpus replay"
  target/release/eco-fuzz --replay tests/corpus
  echo "== fuzz smoke: 200-case campaign (seed 1)"
  target/release/eco-fuzz --iters 200 --seed 1 --shrink
fi

if [ "$degrade_smoke" -eq 1 ]; then
  echo "== degrade smoke: starved eco-patch run must exit 4 with a well-formed partial result"
  tmp="$(mktemp -d)"
  trap 'rm -rf "${ptmp:-}" "${chtmp:-}" "${sqtmp:-}" "$tmp"' EXIT
  # A tiny two-cluster workload: two independent targets, each cut to a
  # floating pseudo-input in the faulty circuit.
  cat > "$tmp/golden.v" <<'EOF'
module g (a, b, c, y, z);
input a, b, c;
output y, z;
wire t1, t2;
xor g1 (t1, a, b);
and g2 (y, t1, c);
or  g3 (t2, b, c);
buf g4 (z, t2);
endmodule
EOF
  cat > "$tmp/faulty.v" <<'EOF'
module f (a, b, c, t1, t2, y, z);
input a, b, c, t1, t2;
output y, z;
and g2 (y, t1, c);
buf g4 (z, t2);
endmodule
EOF

  run_patch() {
    set +e
    target/release/eco-patch -f "$tmp/faulty.v" -g "$tmp/golden.v" -t t1,t2 "$@" \
      -o "$tmp/patch.v" 2> "$tmp/stderr.txt"
    rc=$?
    set -e
  }

  # Zero deadline plus a one-conflict allowance: every cluster must be
  # diagnosed, the run must exit 4, and no netlist appears without
  # --allow-partial.
  rm -f "$tmp/patch.v"
  run_patch --timeout 0 --conflict-budget 1 --stats=json
  [ "$rc" -eq 4 ] || { echo "degrade smoke: expected exit 4, got $rc"; cat "$tmp/stderr.txt"; exit 1; }
  grep -q 'PARTIAL result:' "$tmp/stderr.txt" || { echo "degrade smoke: no partial report"; cat "$tmp/stderr.txt"; exit 1; }
  grep -q '"governor"' "$tmp/stderr.txt" || { echo "degrade smoke: no governor stats object"; cat "$tmp/stderr.txt"; exit 1; }
  for key in clusters_patched clusters_budget_exhausted clusters_deadline clusters_panicked escalations; do
    grep -q "\"$key\"" "$tmp/stderr.txt" || { echo "degrade smoke: missing governor counter $key"; cat "$tmp/stderr.txt"; exit 1; }
  done
  grep -q '"clusters_panicked": 0' "$tmp/stderr.txt" || { echo "degrade smoke: clusters panicked"; cat "$tmp/stderr.txt"; exit 1; }
  [ ! -e "$tmp/patch.v" ] || { echo "degrade smoke: netlist written without --allow-partial"; exit 1; }

  # With --allow-partial the completed (possibly empty) patch netlist is
  # written and must still re-parse.
  run_patch --timeout 0 --conflict-budget 1 --allow-partial
  [ "$rc" -eq 4 ] || { echo "degrade smoke: expected exit 4, got $rc"; cat "$tmp/stderr.txt"; exit 1; }
  [ -s "$tmp/patch.v" ] || { echo "degrade smoke: --allow-partial wrote no netlist"; exit 1; }
  grep -q 'module patch' "$tmp/patch.v" || { echo "degrade smoke: malformed partial netlist"; cat "$tmp/patch.v"; exit 1; }

  # The same workload without a budget must still complete with exit 0.
  run_patch -q
  [ "$rc" -eq 0 ] || { echo "degrade smoke: ungoverned run failed ($rc)"; cat "$tmp/stderr.txt"; exit 1; }

  echo "== degrade smoke: 200-case budgeted differential campaign (seed 1)"
  target/release/eco-fuzz --budget-campaign --iters 200 --seed 1
fi

if [ "$batch_smoke" -eq 1 ]; then
  echo "== batch smoke: 12-job manifest, cold + warm over one shared memo cache"
  btmp="$(mktemp -d)"
  trap 'rm -rf "${ptmp:-}" "${chtmp:-}" "${sqtmp:-}" "${tmp:-}" "${btmp:-}"' EXIT
  target/release/eco-workgen --suite --count 12 --out "$btmp" --manifest "$btmp/manifest.toml" -q

  run_batch() {
    set +e
    target/release/eco-batch run "$btmp/manifest.toml" "$@" 2> "$btmp/stderr.txt"
    rc=$?
    set -e
  }

  # Cold then warm in one process (--repeat 2): every job must be proven
  # equivalent in both passes, and the warm pass must actually hit the
  # shared cache.
  run_batch --jobs 4 --repeat 2 --report "$btmp/report.jsonl" --stats=json -q
  [ "$rc" -eq 0 ] || { echo "batch smoke: expected exit 0, got $rc"; cat "$btmp/stderr.txt"; exit 1; }
  complete=$(grep -c '"status": "complete"' "$btmp/report.jsonl" || true)
  [ "$complete" -eq 24 ] || { echo "batch smoke: expected 24 complete records, got $complete"; cat "$btmp/report.jsonl"; exit 1; }
  ! grep -q '"verified": false' "$btmp/report.jsonl" || { echo "batch smoke: unverified job in report"; cat "$btmp/report.jsonl"; exit 1; }
  hits=$(sed -n 's/.*"memo": {"hits": \([0-9]*\).*/\1/p' "$btmp/stderr.txt")
  [ -n "$hits" ] && [ "$hits" -gt 0 ] || { echo "batch smoke: warm run reported no cache hits"; cat "$btmp/stderr.txt"; exit 1; }
  walls=$(sed -n 's/.*"pass_wall_s": \[\([0-9.]*\), \([0-9.]*\)\].*/\1 \2/p' "$btmp/stderr.txt")
  cold_ns=$(echo "$walls" | awk 'NF == 2 {printf "%.0f", $1 * 1e9}')
  warm_ns=$(echo "$walls" | awk 'NF == 2 {printf "%.0f", $2 * 1e9}')
  [ -n "$cold_ns" ] && [ -n "$warm_ns" ] || { echo "batch smoke: could not parse pass wall times"; cat "$btmp/stderr.txt"; exit 1; }

  # The JSONL report must be byte-identical for any --jobs value.
  run_batch --jobs 1 --report "$btmp/report_j1.jsonl" -q
  [ "$rc" -eq 0 ] || { echo "batch smoke: --jobs 1 run failed ($rc)"; cat "$btmp/stderr.txt"; exit 1; }
  run_batch --jobs 4 --report "$btmp/report_j4.jsonl" -q
  [ "$rc" -eq 0 ] || { echo "batch smoke: --jobs 4 run failed ($rc)"; cat "$btmp/stderr.txt"; exit 1; }
  cmp -s "$btmp/report_j1.jsonl" "$btmp/report_j4.jsonl" \
    || { echo "batch smoke: JSONL differs between --jobs 1 and --jobs 4"; diff "$btmp/report_j1.jsonl" "$btmp/report_j4.jsonl" || true; exit 1; }

  # Record cold-vs-warm wall times for the tracked bench file.
  cat > crates/bench/BENCH_batch.json <<EOF
{"benches": [
  {"name": "batch/suite12/cold", "samples": 1, "mean_ns": $cold_ns, "median_ns": $cold_ns, "min_ns": $cold_ns, "max_ns": $cold_ns},
  {"name": "batch/suite12/warm", "samples": 1, "mean_ns": $warm_ns, "median_ns": $warm_ns, "min_ns": $warm_ns, "max_ns": $warm_ns}
]}
EOF
  echo "batch smoke: cold ${cold_ns}ns, warm ${warm_ns}ns, $hits cache hits"
fi

if [ "$scale_smoke" -eq 1 ]; then
  echo "== scale smoke: 100k preset end-to-end under a 300s governor deadline"
  stmp="$(mktemp -d)"
  trap 'rm -rf "${ptmp:-}" "${chtmp:-}" "${sqtmp:-}" "${tmp:-}" "${btmp:-}" "${stmp:-}"' EXIT

  # The generator CLI path: both 100k AIGs must emit and re-parse.
  target/release/eco-workgen --scale 100k --out "$stmp" -q
  for shape in datapath randdag; do
    [ -s "$stmp/scale_${shape}_100k.aig" ] \
      || { echo "scale smoke: missing scale_${shape}_100k.aig"; exit 1; }
  done

  # The harness itself, gated against the tracked baseline when present
  # (exit 3 = >20% throughput regression).
  baseline_args=()
  if [ -s crates/bench/BENCH_scale.json ]; then
    baseline_args=(--baseline crates/bench/BENCH_scale.json)
  fi
  set +e
  target/release/scale --presets 100k --timeout-s 300 \
    --json "$stmp/BENCH_scale_100k.json" "${baseline_args[@]}"
  rc=$?
  set -e
  [ "$rc" -ne 3 ] && [ "$rc" -eq 0 ] \
    || { echo "scale smoke: scale harness failed (exit $rc)"; exit 1; }
  grep -q '"name": "scale/datapath_100k"' "$stmp/BENCH_scale_100k.json" \
    || { echo "scale smoke: dump missing datapath row"; cat "$stmp/BENCH_scale_100k.json"; exit 1; }

  # Refresh the tracked file's 100k rows only when no baseline existed
  # yet (bootstrap); otherwise the full-preset run owns the file.
  if [ ! -s crates/bench/BENCH_scale.json ]; then
    target/release/scale --json crates/bench/BENCH_scale.json
  fi
  echo "scale smoke: ok"
fi

if [ "$serve_smoke" -eq 1 ]; then
  echo "== serve smoke: daemon cold+warm 12-job replay, worker-count determinism, drain"
  svtmp="$(mktemp -d)"
  serve_pids=""
  serve_cleanup() {
    # shellcheck disable=SC2086
    [ -n "$serve_pids" ] && kill $serve_pids 2> /dev/null || true
    rm -rf "${ptmp:-}" "${chtmp:-}" "${tmp:-}" "${btmp:-}" "${stmp:-}" "${svtmp:-}"
  }
  trap serve_cleanup EXIT
  target/release/eco-workgen --suite --count 12 --out "$svtmp/cases" \
    --manifest "$svtmp/manifest.toml" --requests "$svtmp/requests.jsonl" -q

  wait_sock() { # <path>
    for _ in $(seq 1 100); do
      [ -S "$1" ] && return 0
      sleep 0.1
    done
    echo "serve smoke: daemon socket $1 never appeared"
    exit 1
  }
  run_replay() { # <socket> <out> <timing> [extra client flags...]
    sock="$1" out="$2" timing="$3"
    shift 3
    set +e
    target/release/eco-serve client --socket "$sock" \
      --input "$svtmp/requests.jsonl" --timing "$@" \
      > "$out" 2> "$timing"
    rc=$?
    set -e
  }

  # Daemon A (4 workers): cold replay, warm replay, stats, protocol drain.
  target/release/eco-serve --socket "$svtmp/a.sock" --jobs 4 --stats \
    2> "$svtmp/a_stats.json" &
  pid_a=$!
  serve_pids="$pid_a"
  wait_sock "$svtmp/a.sock"

  run_replay "$svtmp/a.sock" "$svtmp/cold.out" "$svtmp/cold_timing.json"
  [ "$rc" -eq 0 ] || { echo "serve smoke: cold replay failed ($rc)"; cat "$svtmp/cold_timing.json"; exit 1; }
  run_replay "$svtmp/a.sock" "$svtmp/warm.out" "$svtmp/warm_timing.json"
  [ "$rc" -eq 0 ] || { echo "serve smoke: warm replay failed ($rc)"; cat "$svtmp/warm_timing.json"; exit 1; }

  # Warm responses must be byte-identical to cold, all complete+verified.
  cmp -s "$svtmp/cold.out" "$svtmp/warm.out" \
    || { echo "serve smoke: warm responses differ from cold"; diff "$svtmp/cold.out" "$svtmp/warm.out" || true; exit 1; }
  complete=$(grep -c '"status": "complete"' "$svtmp/cold.out" || true)
  [ "$complete" -eq 12 ] || { echo "serve smoke: expected 12 complete responses, got $complete"; cat "$svtmp/cold.out"; exit 1; }
  ! grep -q '"verified": false' "$svtmp/cold.out" \
    || { echo "serve smoke: unverified response"; cat "$svtmp/cold.out"; exit 1; }

  # The warm replay must have hit the daemon's process-lifetime cache.
  printf '{"op": "stats", "id": "smoke"}\n' \
    | target/release/eco-serve client --socket "$svtmp/a.sock" > "$svtmp/stats.out"
  hits=$(sed -n 's/.*"hits": \([0-9]*\).*/\1/p' "$svtmp/stats.out")
  [ -n "$hits" ] && [ "$hits" -gt 0 ] \
    || { echo "serve smoke: warm replay reported no cache hits"; cat "$svtmp/stats.out"; exit 1; }

  # Warm stream wall time must be under 10% of cold.
  cold_s=$(sed -n 's/.*"wall_s": \([0-9.]*\).*/\1/p' "$svtmp/cold_timing.json")
  warm_s=$(sed -n 's/.*"wall_s": \([0-9.]*\).*/\1/p' "$svtmp/warm_timing.json")
  [ -n "$cold_s" ] && [ -n "$warm_s" ] \
    || { echo "serve smoke: could not parse client wall times"; cat "$svtmp/cold_timing.json" "$svtmp/warm_timing.json"; exit 1; }
  awk -v c="$cold_s" -v w="$warm_s" 'BEGIN { exit !(w < c * 0.10) }' \
    || { echo "serve smoke: warm stream not <10% of cold (cold ${cold_s}s, warm ${warm_s}s)"; exit 1; }

  # Graceful drain via a protocol shutdown request: acknowledged,
  # exit 0, socket file removed, stats summary on stderr.
  target/release/eco-serve client --socket "$svtmp/a.sock" --shutdown \
    < /dev/null > "$svtmp/shutdown.out"
  grep -q '"draining": true' "$svtmp/shutdown.out" \
    || { echo "serve smoke: shutdown not acknowledged"; cat "$svtmp/shutdown.out"; exit 1; }
  set +e
  wait "$pid_a"
  rc=$?
  set -e
  serve_pids=""
  [ "$rc" -eq 0 ] || { echo "serve smoke: daemon A exited $rc after shutdown"; cat "$svtmp/a_stats.json"; exit 1; }
  [ ! -e "$svtmp/a.sock" ] || { echo "serve smoke: socket file not removed on drain"; exit 1; }
  grep -q '"served": 24' "$svtmp/a_stats.json" \
    || { echo "serve smoke: daemon A summary missing 24 served jobs"; cat "$svtmp/a_stats.json"; exit 1; }

  # Daemon B (1 worker): responses must be byte-identical to daemon A's,
  # and a SIGTERM must drain it cleanly too.
  target/release/eco-serve --socket "$svtmp/b.sock" --jobs 1 --stats \
    2> "$svtmp/b_stats.json" &
  pid_b=$!
  serve_pids="$pid_b"
  wait_sock "$svtmp/b.sock"
  run_replay "$svtmp/b.sock" "$svtmp/b.out" "$svtmp/b_timing.json"
  [ "$rc" -eq 0 ] || { echo "serve smoke: --jobs 1 replay failed ($rc)"; cat "$svtmp/b_timing.json"; exit 1; }
  cmp -s "$svtmp/cold.out" "$svtmp/b.out" \
    || { echo "serve smoke: responses differ between --jobs 4 and --jobs 1"; diff "$svtmp/cold.out" "$svtmp/b.out" || true; exit 1; }
  kill -TERM "$pid_b"
  set +e
  wait "$pid_b"
  rc=$?
  set -e
  serve_pids=""
  [ "$rc" -eq 0 ] || { echo "serve smoke: daemon B exited $rc after SIGTERM"; cat "$svtmp/b_stats.json"; exit 1; }
  [ ! -e "$svtmp/b.sock" ] || { echo "serve smoke: socket file not removed after SIGTERM"; exit 1; }
  grep -q '"served": 12' "$svtmp/b_stats.json" \
    || { echo "serve smoke: daemon B summary missing 12 served jobs"; cat "$svtmp/b_stats.json"; exit 1; }

  # Record cold-vs-warm throughput and round-trip latency percentiles.
  field() { sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p" "$1"; }
  ns() { awk -v s="$1" 'BEGIN { printf "%.0f", s * 1e9 }'; }
  cold_ns=$(ns "$cold_s")
  warm_ns=$(ns "$warm_s")
  cold_p50_ns=$((1000 * $(field "$svtmp/cold_timing.json" p50_us)))
  cold_p99_ns=$((1000 * $(field "$svtmp/cold_timing.json" p99_us)))
  warm_p50_ns=$((1000 * $(field "$svtmp/warm_timing.json" p50_us)))
  warm_p99_ns=$((1000 * $(field "$svtmp/warm_timing.json" p99_us)))
  cold_rps=$(field "$svtmp/cold_timing.json" rps)
  warm_rps=$(field "$svtmp/warm_timing.json" rps)
  cat > crates/bench/BENCH_serve.json <<EOF
{"benches": [
  {"name": "serve/suite12/cold_stream", "samples": 1, "mean_ns": $cold_ns, "median_ns": $cold_ns, "min_ns": $cold_ns, "max_ns": $cold_ns},
  {"name": "serve/suite12/warm_stream", "samples": 1, "mean_ns": $warm_ns, "median_ns": $warm_ns, "min_ns": $warm_ns, "max_ns": $warm_ns},
  {"name": "serve/suite12/cold_p50", "samples": 12, "mean_ns": $cold_p50_ns, "median_ns": $cold_p50_ns, "min_ns": $cold_p50_ns, "max_ns": $cold_p99_ns},
  {"name": "serve/suite12/warm_p50", "samples": 12, "mean_ns": $warm_p50_ns, "median_ns": $warm_p50_ns, "min_ns": $warm_p50_ns, "max_ns": $warm_p99_ns},
  {"name": "serve/suite12/cold_p99", "samples": 12, "mean_ns": $cold_p99_ns, "median_ns": $cold_p99_ns, "min_ns": $cold_p50_ns, "max_ns": $cold_p99_ns},
  {"name": "serve/suite12/warm_p99", "samples": 12, "mean_ns": $warm_p99_ns, "median_ns": $warm_p99_ns, "min_ns": $warm_p50_ns, "max_ns": $warm_p99_ns}
], "notes": [
  "single sequential client over a unix socket, 12-job suite stream",
  "cold ${cold_rps} req/s, warm ${warm_rps} req/s; one daemon, shared memo cache"
]}
EOF
  echo "serve smoke: cold ${cold_s}s (${cold_rps} rps), warm ${warm_s}s (${warm_rps} rps), $hits cache hits"
fi

echo "all checks passed"
