//! Localization (Algorithm 2 / Theorem 2 of the paper).
//!
//! FRAIG equivalence classes over the combined manager identify *shared
//! equivalent signals*: manager nodes proven equal (up to complement) to a
//! named, target-independent faulty net. A reverse-topological traversal
//! from the relevant roots then collects the *cut frontier* `C_d` — the
//! first-found signal of type `{X, shared-equivalent, target}` along every
//! path — over which care/diff sets, patches, and interpolants are
//! expressed. This is what lets patches reuse intermediate signals instead
//! of being rebuilt from primary inputs.

use std::collections::{HashMap, HashSet};

use eco_aig::{Lit, Var};
use eco_fraig::EquivClasses;

use crate::Workspace;

/// Maps manager nodes to the cheapest named faulty signal they are proven
/// equivalent to.
#[derive(Clone, Debug, Default)]
pub struct TapMap {
    /// var → (candidate index, phase): the node equals
    /// `cands[idx].lit ^ phase`.
    taps: HashMap<Var, (usize, bool)>,
}

impl TapMap {
    /// Builds the tap map: every candidate's own node is tapped, and FRAIG
    /// classes propagate taps (phase-adjusted) to all equivalent nodes,
    /// preferring the lowest-weight candidate per class.
    pub fn build(ws: &Workspace, classes: &EquivClasses) -> Self {
        let mut taps: HashMap<Var, (usize, bool)> = HashMap::new();
        let better = |cands: &[crate::WsCandidate], a: usize, b: usize| {
            // Prefer lower weight, then stable name order.
            (cands[a].weight, &cands[a].name) < (cands[b].weight, &cands[b].name)
        };
        for (idx, c) in ws.cands.iter().enumerate() {
            let v = c.lit.var();
            let entry = (idx, c.lit.is_complement());
            match taps.get(&v) {
                Some(&(old, _)) if !better(&ws.cands, idx, old) => {}
                _ => {
                    taps.insert(v, entry);
                }
            }
        }
        // Propagate through equivalence classes.
        for class in &classes.classes {
            // Find the cheapest tapped member.
            let mut best: Option<(usize, bool, bool)> = None; // (cand, tap_phase, member_phase)
            for &(v, ph) in &class.members {
                if let Some(&(idx, tp)) = taps.get(&v) {
                    match best {
                        Some((b, _, _)) if !better(&ws.cands, idx, b) => {}
                        _ => best = Some((idx, tp, ph)),
                    }
                }
            }
            let Some((idx, tap_phase, src_phase)) = best else {
                continue;
            };
            for &(w, w_phase) in &class.members {
                // w == src ^ (src_phase ^ w_phase); signal == src ^ tap_phase
                // => w == signal ^ (tap_phase ^ src_phase ^ w_phase).
                let phase = tap_phase ^ src_phase ^ w_phase;
                match taps.get(&w) {
                    Some(&(old, _)) if !better(&ws.cands, idx, old) => {}
                    _ => {
                        taps.insert(w, (idx, phase));
                    }
                }
            }
        }
        TapMap { taps }
    }

    /// An empty tap map (localization disabled: cuts bottom out at `X`).
    pub fn empty() -> Self {
        TapMap::default()
    }

    /// Returns the tap of `v`, if any.
    pub fn tap(&self, v: Var) -> Option<(usize, bool)> {
        self.taps.get(&v).copied()
    }

    /// Number of tapped nodes.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Returns `true` when no node is tapped.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }
}

/// One cut-frontier signal usable as a patch input.
#[derive(Clone, Debug)]
pub struct CutSignal {
    /// Net name in the faulty circuit.
    pub name: String,
    /// Manager literal carrying the signal's value.
    pub lit: Lit,
    /// Tap cost.
    pub weight: u64,
    /// Index into `workspace.cands`, when the signal is a candidate.
    pub cand_idx: Option<usize>,
}

/// A cut frontier `C_d` for a set of roots.
#[derive(Clone, Debug, Default)]
pub struct Cut {
    /// Distinct cut signals.
    pub signals: Vec<CutSignal>,
    /// Frontier node → (signal index, phase): the node equals
    /// `signals[i] ^ phase`.
    pub node_map: HashMap<Var, (usize, bool)>,
    /// Target indices (into `workspace.target_vars`) on the frontier.
    pub targets: Vec<usize>,
}

impl Cut {
    /// Computes the cut frontier of `roots`: a reverse-topological DFS that
    /// stops at the first `X` input, tapped node, or target pseudo-input
    /// along every path (Algorithm 2's `CutFrontier`).
    pub fn frontier(ws: &Workspace, tap: &TapMap, roots: &[Lit]) -> Cut {
        let target_idx: HashMap<Var, usize> = ws
            .target_vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut cut = Cut::default();
        let mut sig_of_cand: HashMap<usize, usize> = HashMap::new();
        let mut sig_of_input: HashMap<Var, usize> = HashMap::new();
        let mut targets_seen: HashSet<usize> = HashSet::new();
        let mut visited: HashSet<Var> = HashSet::new();
        let mut stack: Vec<Var> = roots.iter().map(|l| l.var()).collect();
        while let Some(v) = stack.pop() {
            if !visited.insert(v) {
                continue;
            }
            if let Some(&k) = target_idx.get(&v) {
                if targets_seen.insert(k) {
                    cut.targets.push(k);
                }
                continue;
            }
            if let Some((idx, phase)) = tap.tap(v) {
                let sig = *sig_of_cand.entry(idx).or_insert_with(|| {
                    let c = &ws.cands[idx];
                    cut.signals.push(CutSignal {
                        name: c.name.clone(),
                        lit: c.lit,
                        weight: c.weight,
                        cand_idx: Some(idx),
                    });
                    cut.signals.len() - 1
                });
                cut.node_map.insert(v, (sig, phase));
                continue;
            }
            if let Some((fan0, fan1)) = ws.mgr.and_fanins(v) {
                stack.push(fan0.var());
                stack.push(fan1.var());
            } else if let Some(pos) = ws.mgr.input_pos(v) {
                // An X input: weighted through its candidate when one
                // exists (the tap map may be empty when localization is
                // disabled), else usable as-is with default weight.
                let sig = *sig_of_input.entry(v).or_insert_with(|| {
                    let (weight, cand_idx) = match ws.input_cand.get(&v) {
                        Some(&ci) => (ws.cands[ci].weight, Some(ci)),
                        None => (1, None),
                    };
                    cut.signals.push(CutSignal {
                        name: ws.mgr.input_name(pos).to_owned(),
                        lit: v.pos(),
                        weight,
                        cand_idx,
                    });
                    cut.signals.len() - 1
                });
                cut.node_map.insert(v, (sig, false));
            }
            // Constant: no cut signal needed.
        }
        cut.targets.sort_unstable();
        cut
    }

    /// Builds a cut directly from chosen base candidates: each candidate's
    /// driving node becomes a frontier node for its own signal. Used after
    /// rebasing, where the patch cone bottoms out exactly at the base.
    pub fn from_candidates(ws: &Workspace, cands: &[usize]) -> Cut {
        let mut cut = Cut::default();
        for &idx in cands {
            let c = &ws.cands[idx];
            cut.signals.push(CutSignal {
                name: c.name.clone(),
                lit: c.lit,
                weight: c.weight,
                cand_idx: Some(idx),
            });
            cut.node_map
                .insert(c.lit.var(), (cut.signals.len() - 1, c.lit.is_complement()));
        }
        cut
    }

    /// Merges several cuts: signals dedup by name; on frontier-node
    /// conflicts the earliest mapping wins (the signals are provably equal,
    /// so either is correct).
    ///
    /// Frontier entries are visited in variable order, not hash order, so
    /// the merged signal numbering — and everything downstream of it, like
    /// patch-AIG input order — is deterministic.
    pub fn merge<'a>(cuts: impl IntoIterator<Item = &'a Cut>) -> Cut {
        let mut out = Cut::default();
        let mut sig_by_name: HashMap<String, usize> = HashMap::new();
        let mut targets_seen: HashSet<usize> = HashSet::new();
        for cut in cuts {
            let mut entries: Vec<(Var, (usize, bool))> =
                cut.node_map.iter().map(|(&v, &e)| (v, e)).collect();
            entries.sort_unstable_by_key(|(v, _)| v.index());
            for (v, (sig, phase)) in entries {
                if out.node_map.contains_key(&v) {
                    continue;
                }
                let s = &cut.signals[sig];
                let new_sig = *sig_by_name.entry(s.name.clone()).or_insert_with(|| {
                    out.signals.push(s.clone());
                    out.signals.len() - 1
                });
                out.node_map.insert(v, (new_sig, phase));
            }
            for &t in &cut.targets {
                if targets_seen.insert(t) {
                    out.targets.push(t);
                }
            }
        }
        out.targets.sort_unstable();
        out
    }

    /// The signal indices actually reachable on the frontier of `roots` —
    /// the *used* base. Cost is summed over these, not over all signals.
    pub fn used_signals(&self, mgr: &eco_aig::Aig, roots: &[Lit]) -> Vec<usize> {
        let frontier: HashSet<Var> = self.node_map.keys().copied().collect();
        let mut used: Vec<usize> = mgr
            .cone_vars_to_cut(roots, &frontier)
            .into_iter()
            .filter_map(|v| self.node_map.get(&v).map(|&(s, _)| s))
            .collect();
        used.sort_unstable();
        used.dedup();
        used
    }

    /// Weight of the used base of `roots` under this cut.
    pub fn used_cost(&self, mgr: &eco_aig::Aig, roots: &[Lit]) -> u64 {
        self.used_signals(mgr, roots)
            .iter()
            .map(|&s| self.signals[s].weight)
            .sum()
    }

    /// The frontier variables (cut nodes), excluding targets.
    pub fn frontier_vars(&self) -> HashSet<Var> {
        self.node_map.keys().copied().collect()
    }

    /// Total weight of all cut signals (upper bound on patch cost before
    /// base optimization).
    pub fn total_weight(&self) -> u64 {
        self.signals.iter().map(|s| s.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cluster_targets, EcoInstance};
    use eco_fraig::{fraig_classes, FraigOptions};
    use eco_netlist::{parse_verilog, WeightTable};

    /// Golden: y = (a|b) & c. Faulty: the AND is the target; the (a|b)
    /// subcircuit exists in F as net `w` (feeding another output), so
    /// localization should tap `w` instead of rebuilding from a, b.
    fn localized_instance() -> (EcoInstance, Workspace) {
        let faulty = parse_verilog(
            "module f (a, b, c, t, y, z); input a, b, c, t; output y, z; \
             wire w; or g0 (w, a, b); buf g1 (y, t); nand g2 (z, w, a); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, b, c, y, z); input a, b, c; output y, z; \
             wire v; or g0 (v, a, b); and g1 (y, v, c); nand g2 (z, v, a); endmodule",
        )
        .expect("golden");
        let mut weights = WeightTable::new(10);
        weights.set("w", 2);
        let inst = EcoInstance::from_netlists("loc", &faulty, &golden, vec!["t".into()], &weights)
            .expect("instance");
        let ws = Workspace::new(&inst);
        (inst, ws)
    }

    #[test]
    fn tap_map_covers_candidates_and_equivalences() {
        let (_inst, ws) = localized_instance();
        let classes = fraig_classes(&ws.mgr, &FraigOptions::default());
        let tap = TapMap::build(&ws, &classes);
        // The golden `v` node is structurally hashed with faulty `w`
        // (identical or(a,b)), so the shared node must be tapped.
        let w_cand = ws.cands.iter().position(|c| c.name == "w").expect("w");
        let w_var = ws.cands[w_cand].lit.var();
        let got = tap.tap(w_var).expect("w tapped");
        assert_eq!(got.0, w_cand);
        assert!(!tap.is_empty());
    }

    #[test]
    fn frontier_stops_at_tapped_signal() {
        let (_inst, ws) = localized_instance();
        let classes = fraig_classes(&ws.mgr, &FraigOptions::default());
        let tap = TapMap::build(&ws, &classes);
        // Frontier of the golden y cone (v & c): should stop at w (≡ v)
        // and c, never reaching a or b.
        let cut = Cut::frontier(&ws, &tap, &[ws.g_outs[0]]);
        let names: Vec<&str> = cut.signals.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"w"), "cut {names:?} should contain w");
        assert!(names.contains(&"c"));
        assert!(!names.contains(&"a"));
        assert!(!names.contains(&"b"));
        assert!(cut.targets.is_empty());
    }

    #[test]
    fn frontier_collects_targets() {
        let (_inst, ws) = localized_instance();
        let tap = TapMap::empty();
        let cut = Cut::frontier(&ws, &tap, &[ws.f_outs[0]]);
        // Faulty y = t: frontier is exactly the target.
        assert_eq!(cut.targets, vec![0]);
        assert!(cut.signals.is_empty());
    }

    #[test]
    fn empty_tap_map_bottoms_out_at_inputs() {
        let (_inst, ws) = localized_instance();
        let tap = TapMap::empty();
        let cut = Cut::frontier(&ws, &tap, &[ws.g_outs[0]]);
        let mut names: Vec<&str> = cut.signals.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn cut_weight_prefers_cheap_taps() {
        let (_inst, ws) = localized_instance();
        let classes = fraig_classes(&ws.mgr, &FraigOptions::default());
        let tap = TapMap::build(&ws, &classes);
        let cut = Cut::frontier(&ws, &tap, &[ws.g_outs[0]]);
        // w has weight 2, c has default 10 → total 12 (vs 30 over a,b,c).
        assert_eq!(cut.total_weight(), 12);
        let _ = cluster_targets(&ws);
    }
}
