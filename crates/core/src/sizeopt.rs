//! Don't-care-based patch size reduction (§2.4).
//!
//! The patch specification is an *interval*: any function `h` with
//! `on ⊆ h ⊆ ¬off` rectifies the target, and the gap between the bounds is
//! exactly the observability/satisfiability don't-care set the paper says
//! is "especially important in ECO". This pass exploits it as classic
//! SAT-based redundancy removal: every AND node of a patch cone is
//! tentatively replaced by a constant or one of its fanins, and the
//! replacement is kept when a SAT check proves the mutated patch still
//! lies inside the interval and the cone shrank.

use std::collections::HashMap;

use eco_aig::{Lit, Var};
use eco_sat::{encode_cone, Lit as SLit, SolveCtl, Solver};

use crate::carediff::on_off_sets;
use crate::govern::Budget;
use crate::patchgen::PatchFn;
use crate::Workspace;

/// Knobs for the size-reduction pass.
#[derive(Clone, Copy, Debug)]
pub struct SizeOptOptions {
    /// Cap on replacement trials per patch.
    pub max_trials: usize,
    /// SAT conflict budget per validity check.
    pub conflict_budget: u64,
    /// Skip patches whose cone exceeds this many AND gates (each accepted
    /// replacement restarts the node scan, so very large cones would make
    /// the pass quadratic).
    pub max_cone: usize,
}

impl Default for SizeOptOptions {
    fn default() -> Self {
        SizeOptOptions {
            max_trials: 128,
            conflict_budget: 50_000,
            max_cone: 400,
        }
    }
}

/// Statistics from one size-reduction run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SizeOptStats {
    /// Replacement candidates tried.
    pub trials: usize,
    /// Replacements accepted.
    pub accepted: usize,
    /// Summed per-patch cone sizes before.
    pub size_before: usize,
    /// Summed per-patch cone sizes after.
    pub size_after: usize,
}

/// Validity check: is `candidate` inside the `[on, ¬off]` interval?
/// Decides `(on ∧ ¬candidate) ∨ (off ∧ candidate)` unsat.
fn patch_is_valid(
    ws: &mut Workspace,
    on: Lit,
    off: Lit,
    candidate: Lit,
    conflict_budget: u64,
    ctl: &SolveCtl,
    tel: &crate::Telemetry,
) -> Option<bool> {
    let viol = {
        let mgr = &mut ws.mgr;
        let bad_on = mgr.and(on, !candidate);
        let bad_off = mgr.and(off, candidate);
        mgr.or(bad_on, bad_off)
    };
    if viol == Lit::FALSE {
        return Some(true);
    }
    let mut solver = Solver::new();
    if !ctl.is_unlimited() {
        solver.set_ctl(ctl);
    }
    let mut map: HashMap<Var, SLit> = HashMap::new();
    let roots = encode_cone(&ws.mgr, &[viol], &mut map, &mut solver);
    solver.add_clause(&[roots[0]]);
    let solved = solver.solve_limited(&[], conflict_budget);
    tel.record_solver(&solver.stats());
    solved.map(|sat| !sat)
}

/// Shrinks each patch cone in place using the ECO don't cares.
///
/// Each patch's specification is recomputed with every *other* patch
/// substituted (as in the cost optimizer), so the interval reflects the
/// final context. Cones are measured against each patch's own cut
/// frontier.
pub fn reduce_patch_sizes(
    ws: &mut Workspace,
    patches: &mut [PatchFn],
    opts: &SizeOptOptions,
    tel: &crate::Telemetry,
) -> SizeOptStats {
    reduce_patch_sizes_governed(ws, patches, opts, &Budget::unlimited(), tel)
}

/// [`reduce_patch_sizes`] under a resource governor: per-check budgets are
/// capped by the governor's conflict allowance, each validity solver is
/// enrolled in the deadline/cancellation control block, and remaining
/// patches are skipped once the deadline fires. Like cost optimization,
/// stopping early is always sound — the incoming patches stay valid.
pub(crate) fn reduce_patch_sizes_governed(
    ws: &mut Workspace,
    patches: &mut [PatchFn],
    opts: &SizeOptOptions,
    budget: &Budget,
    tel: &crate::Telemetry,
) -> SizeOptStats {
    let conflict_budget = budget.cap(opts.conflict_budget);
    let ctl = budget.ctl();
    let mut stats = SizeOptStats::default();
    for p in 0..patches.len() {
        if budget.expired() {
            // Count the untouched cones so before/after stay comparable.
            let frontier = patches[p].cut.frontier_vars();
            let n = ws.mgr.count_cone_ands_to_cut(&[patches[p].lit], &frontier);
            stats.size_before += n;
            stats.size_after += n;
            continue;
        }
        let k = patches[p].target;
        let frontier = patches[p].cut.frontier_vars();
        let cone_size = |ws: &Workspace, lit: Lit, frontier: &std::collections::HashSet<Var>| {
            ws.mgr.count_cone_ands_to_cut(&[lit], frontier)
        };
        stats.size_before += cone_size(ws, patches[p].lit, &frontier);

        // Specification with the other patches fixed.
        let other_map: HashMap<Var, Lit> = patches
            .iter()
            .filter(|q| q.target != k)
            .map(|q| (ws.target_vars[q.target], q.lit))
            .collect();
        let f_outs = ws.f_outs.clone();
        let g_outs = ws.g_outs.clone();
        let f_spec = ws.mgr.substitute(&f_outs, &other_map);
        let t = ws.target_vars[k];
        let onoff = on_off_sets(&mut ws.mgr, &f_spec, &g_outs, t);

        let mut trials_left = opts.max_trials;
        if cone_size(ws, patches[p].lit, &frontier) > opts.max_cone {
            trials_left = 0;
        }
        let mut improved = true;
        while improved && trials_left > 0 {
            improved = false;
            let cur = patches[p].lit;
            let cur_size = cone_size(ws, cur, &frontier);
            if cur_size == 0 {
                break;
            }
            // AND nodes strictly above the cut, deepest first (replacing a
            // node near the root removes the most logic).
            let mut nodes: Vec<Var> = ws
                .mgr
                .cone_vars_to_cut(&[cur], &frontier)
                .into_iter()
                .filter(|&v| ws.mgr.is_and(v) && !frontier.contains(&v))
                .collect();
            nodes.reverse();
            'nodes: for v in nodes {
                let Some((fan0, fan1)) = ws.mgr.and_fanins(v) else {
                    continue;
                };
                for replacement in [Lit::FALSE, Lit::TRUE, fan0, fan1] {
                    if trials_left == 0 {
                        break 'nodes;
                    }
                    let mut map = HashMap::new();
                    map.insert(v, replacement);
                    let candidate = ws.mgr.substitute(&[cur], &map)[0];
                    if cone_size(ws, candidate, &frontier) >= cur_size {
                        continue;
                    }
                    trials_left -= 1;
                    stats.trials += 1;
                    if patch_is_valid(
                        ws,
                        onoff.on,
                        onoff.off,
                        candidate,
                        conflict_budget,
                        &ctl,
                        tel,
                    ) == Some(true)
                    {
                        patches[p].lit = candidate;
                        stats.accepted += 1;
                        improved = true;
                        break 'nodes;
                    }
                }
            }
        }
        stats.size_after += cone_size(ws, patches[p].lit, &frontier);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localize::{Cut, TapMap};
    use crate::{cluster_targets, generate_group_patches, EcoInstance, PatchGenOptions};
    use eco_netlist::{parse_verilog, WeightTable};

    /// Deliberately bloated spec: the on-set circuit of the initial patch
    /// contains redundant structure that the don't cares allow removing.
    #[test]
    fn redundant_patch_logic_is_removed() {
        // Golden patch function: a & b. The on-set construction builds
        // care∧diff products that are larger than needed.
        let faulty = parse_verilog(
            "module f (a, b, c, t, y); input a, b, c, t; output y; \
             xor g1 (y, t, c); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, b, c, y); input a, b, c; output y; \
             wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
        )
        .expect("golden");
        let inst = EcoInstance::from_netlists(
            "so",
            &faulty,
            &golden,
            vec!["t".into()],
            &WeightTable::new(1),
        )
        .expect("instance");
        let mut ws = Workspace::new(&inst);
        let clustering = cluster_targets(&ws);
        let tap = TapMap::empty();
        let group = generate_group_patches(
            &mut ws,
            &tap,
            &clustering.clusters[0],
            &PatchGenOptions::default(),
            &crate::Telemetry::new(),
        );
        let mut patches = group.patches;
        let stats = reduce_patch_sizes(
            &mut ws,
            &mut patches,
            &SizeOptOptions::default(),
            &crate::Telemetry::new(),
        );
        assert!(stats.size_after <= stats.size_before, "{stats:?}");
        // The patch still equals a & b everywhere.
        let mut mgr = ws.mgr.clone();
        mgr.clear_outputs();
        mgr.add_output("p", patches[0].lit);
        for bits in 0u32..16 {
            let vals: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(mgr.eval(&vals)[0], vals[0] && vals[1], "at {vals:?}");
        }
    }

    /// An already-minimal patch is left alone.
    #[test]
    fn minimal_patch_is_stable() {
        let faulty =
            parse_verilog("module f (a, t, y); input a, t; output y; buf g1 (y, t); endmodule")
                .expect("faulty");
        let golden = parse_verilog("module g (a, y); input a; output y; buf g1 (y, a); endmodule")
            .expect("golden");
        let inst = EcoInstance::from_netlists(
            "min",
            &faulty,
            &golden,
            vec!["t".into()],
            &WeightTable::new(1),
        )
        .expect("instance");
        let mut ws = Workspace::new(&inst);
        let clustering = cluster_targets(&ws);
        let tap = TapMap::empty();
        let group = generate_group_patches(
            &mut ws,
            &tap,
            &clustering.clusters[0],
            &PatchGenOptions::default(),
            &crate::Telemetry::new(),
        );
        let mut patches = group.patches;
        let before = patches[0].lit;
        let stats = reduce_patch_sizes(
            &mut ws,
            &mut patches,
            &SizeOptOptions::default(),
            &crate::Telemetry::new(),
        );
        assert_eq!(stats.size_after, stats.size_before);
        // A wire patch has no AND nodes at all; nothing to try.
        let _ = Cut::frontier(&ws, &tap, &[before]);
    }
}
