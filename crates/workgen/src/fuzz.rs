//! Differential fuzzing of the whole ECO stack.
//!
//! Each case is a seeded random golden circuit with contest-style faults
//! injected ([`gen_case`]): targets cut to floating pseudo-inputs, the
//! dangling logic optionally scrambled, and weights assigned — biased
//! toward the nasty shapes (constant cones, dead targets, multi-target
//! clusters, degenerate weights). The case is driven through the *full*
//! production pipeline and checked by an **independent oracle**
//! ([`run_case`]): the patched netlist is written to contest-format
//! Verilog, re-parsed, re-elaborated, and proven equivalent to the golden
//! circuit with a fresh SAT miter plus a 64-bit random-simulation
//! cross-check — so writer/parser/assembly bugs are caught, not just
//! patch-logic bugs.
//!
//! Failing cases are reduced by a greedy shrinker ([`shrink_case`]) that
//! drops targets, outputs, gates, and inputs while the failure (same
//! stage) still reproduces, and serialized ([`FuzzCase::to_text`]) into
//! the `tests/corpus/` regression set replayed by `cargo test`.

use std::collections::HashSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use eco_aig::{Aig, Lit, SplitMix64, Var};
use eco_core::{
    check_equivalence, splice_patch, BudgetOptions, ClusterDiagnosis, EcoEngine, EcoError,
    EcoInstance, EcoOptions, EcoOutcome, PartialResult, VerifyOutcome,
};
use eco_netlist::{
    elaborate, netlist_from_aig, parse_verilog, parse_weights, write_verilog, write_weights, Gate,
    GateKind, NetRef, Netlist, WeightTable,
};

use crate::fault::{assign_weights, cut_targets, scramble_dangling, WeightProfile};

/// Generator knobs. The defaults are the shipped fuzzing config: small
/// circuits (shrunk cases stay readable) with every nasty shape enabled.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Minimum primary inputs of the golden circuit.
    pub min_inputs: usize,
    /// Maximum primary inputs.
    pub max_inputs: usize,
    /// Maximum internal gates (minimum is 1).
    pub max_gates: usize,
    /// Maximum primary outputs (minimum is 1).
    pub max_outputs: usize,
    /// Maximum rectification targets (minimum is 1).
    pub max_targets: usize,
    /// Probability that a gate fanin is a `1'b0`/`1'b1` constant
    /// (constant cones stress folding in every layer).
    pub p_const_fanin: f64,
    /// Probability that a target is allowed to be a *dead* wire (one that
    /// reaches no output) — the engine must patch it with a constant.
    pub p_dead_target: f64,
    /// Probability that dangling logic is scrambled after the cut.
    pub p_scramble: f64,
    /// Probability of a degenerate weight table (zero weights, near-`u64`
    /// huge weights) instead of a sane profile.
    pub p_degenerate_weights: f64,
    /// 64-bit words per input for the random-simulation cross-check.
    pub sim_words: usize,
    /// SAT conflict budget for the independent oracle miter.
    pub oracle_budget: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            min_inputs: 2,
            max_inputs: 8,
            max_gates: 40,
            max_outputs: 4,
            max_targets: 3,
            p_const_fanin: 0.08,
            p_dead_target: 0.15,
            p_scramble: 0.5,
            p_degenerate_weights: 0.2,
            sim_words: 4,
            oracle_budget: 1 << 20,
        }
    }
}

/// One generated (or deserialized) differential test case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzCase {
    /// Generator seed (0 for hand-written / deserialized cases).
    pub seed: u64,
    /// Golden circuit.
    pub golden: Netlist,
    /// Faulty circuit (targets floating as pseudo-inputs).
    pub faulty: Netlist,
    /// Target net names.
    pub targets: Vec<String>,
    /// Signal weights.
    pub weights: WeightTable,
}

/// Pipeline stage at which a case failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailStage {
    /// `EcoInstance` validation rejected a case that is valid by
    /// construction.
    Instance,
    /// The engine errored (e.g. claimed an unrectifiable instance) or
    /// produced a counterexample on its own verification.
    Engine,
    /// Patch assembly (`splice_patch`) rejected the engine's own patch.
    Assemble,
    /// The emitted Verilog did not re-parse.
    Parse,
    /// The re-parsed netlist did not elaborate.
    Elaborate,
    /// The fresh SAT miter found patched ≠ golden.
    Miter,
    /// The 64-bit random-simulation cross-check disagreed.
    Simulation,
    /// The resource governor misbehaved: a budgeted run panicked, or a
    /// partial result was malformed (missing diagnoses, leaked panic,
    /// inconsistent counters, un-emittable patch netlist).
    Governor,
}

impl fmt::Display for FailStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailStage::Instance => "instance",
            FailStage::Engine => "engine",
            FailStage::Assemble => "assemble",
            FailStage::Parse => "parse",
            FailStage::Elaborate => "elaborate",
            FailStage::Miter => "miter",
            FailStage::Simulation => "simulation",
            FailStage::Governor => "governor",
        };
        f.write_str(s)
    }
}

/// A reproduced failure: the stage and a human-readable detail line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    /// Stage at which the oracle rejected the case.
    pub stage: FailStage,
    /// Details (error display, counterexample summary, ...).
    pub detail: String,
}

/// Outcome of running the differential oracle on one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The pipeline produced a patch and the independent oracle proved it.
    Pass,
    /// A resource budget ran out (engine or oracle); not a bug.
    Skip(String),
    /// A genuine stack bug: the pipeline mis-handled a valid case.
    Fail(Failure),
}

/// Aggregated campaign telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// Cases generated and run.
    pub cases: u64,
    /// Cases the oracle proved.
    pub passes: u64,
    /// Genuine failures (before shrinking).
    pub failures: u64,
    /// Budget-limited cases (not counted as failures).
    pub skips: u64,
    /// Shrink reductions attempted.
    pub shrink_steps: u64,
    /// Shrink reductions that kept the failure alive.
    pub shrink_accepted: u64,
}

/// Generates one case. Returns `None` when the seed produces a circuit
/// with no cuttable target (rare; callers just advance the seed).
pub fn gen_case(seed: u64, cfg: &FuzzConfig) -> Option<FuzzCase> {
    let mut rng = SplitMix64::new(seed ^ 0x6c62_7f4b_2b7e_151d);
    let n_inputs = rng.range_inclusive(cfg.min_inputs as u64, cfg.max_inputs as u64) as usize;
    let n_gates = rng.range_inclusive(1, cfg.max_gates as u64) as usize;
    let n_outputs = rng.range_inclusive(1, cfg.max_outputs as u64) as usize;

    let mut golden = Netlist::new(format!("fz{seed:x}"));
    let mut nets: Vec<String> = Vec::new();
    for i in 0..n_inputs {
        let n = format!("i{i}");
        golden.inputs.push(n.clone());
        nets.push(n);
    }
    let kinds = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];
    for k in 0..n_gates {
        let kind = kinds[rng.index(kinds.len())];
        let arity = match kind {
            GateKind::Buf | GateKind::Not => 1,
            _ => rng.range_inclusive(2, 3) as usize,
        };
        // Bias fanins toward recent nets for depth; sprinkle constants.
        let mut inputs = Vec::with_capacity(arity);
        for _ in 0..arity {
            if rng.chance(cfg.p_const_fanin) {
                inputs.push(NetRef::Const(rng.chance(0.5)));
            } else {
                let lo = nets.len().saturating_sub(16);
                inputs.push(NetRef::named(nets[lo + rng.index(nets.len() - lo)].clone()));
            }
        }
        let out = format!("w{k}");
        golden.wires.push(out.clone());
        golden.gates.push(Gate {
            kind,
            name: None,
            output: out.clone(),
            inputs,
        });
        nets.push(out);
    }
    // Outputs buffer recent nets (mirroring the builder's convention).
    for k in 0..n_outputs {
        let lo = nets.len().saturating_sub(8);
        let src = nets[lo + rng.index(nets.len() - lo)].clone();
        let name = format!("o{k}");
        golden.outputs.push(name.clone());
        golden.gates.push(Gate {
            kind: GateKind::Buf,
            name: None,
            output: name,
            inputs: vec![NetRef::named(src)],
        });
    }

    // Target pool: driven wires, optionally restricted to live ones.
    let live = live_nets(&golden);
    let allow_dead = rng.chance(cfg.p_dead_target);
    let pool: Vec<&String> = golden
        .wires
        .iter()
        .filter(|w| allow_dead || live.contains(w.as_str()))
        .collect();
    if pool.is_empty() {
        return None;
    }
    let n_targets = (rng.range_inclusive(1, cfg.max_targets as u64) as usize).min(pool.len());
    // Cluster bias: draw from a window so multi-target cases share cones.
    let start = rng.index(pool.len());
    let mut targets: Vec<String> = Vec::new();
    let mut j = start;
    while targets.len() < n_targets {
        let t = pool[j % pool.len()].clone();
        if !targets.contains(&t) {
            targets.push(t);
        }
        j += 1 + rng.index(3);
        if j > start + 4 * pool.len() {
            break;
        }
    }
    targets.sort();

    let mut faulty = cut_targets(&golden, &targets).ok()?;
    if rng.chance(cfg.p_scramble) {
        let _ = scramble_dangling(&mut faulty, rng.next_u64());
    }

    let weights = if rng.chance(cfg.p_degenerate_weights) {
        // Degenerate: zero-cost nets next to astronomically expensive ones.
        let mut t = WeightTable::new(1);
        for net in faulty.declared_nets() {
            let w = match rng.index(3) {
                0 => 0,
                1 => 1 << 40,
                _ => rng.range_inclusive(1, 3),
            };
            t.set(net, w);
        }
        t
    } else {
        let profile = match rng.index(3) {
            0 => WeightProfile::Unit,
            1 => WeightProfile::Uniform { lo: 1, hi: 100 },
            _ => WeightProfile::CheapWires { pi: 50, wire: 2 },
        };
        assign_weights(&faulty, profile, rng.next_u64())
    };

    Some(FuzzCase {
        seed,
        golden,
        faulty,
        targets,
        weights,
    })
}

/// Nets of `netlist` transitively reaching a primary output.
fn live_nets(netlist: &Netlist) -> HashSet<String> {
    let mut live: HashSet<&str> = netlist.outputs.iter().map(String::as_str).collect();
    loop {
        let before = live.len();
        for g in &netlist.gates {
            if live.contains(g.output.as_str()) {
                for i in &g.inputs {
                    if let Some(n) = i.name() {
                        live.insert(n);
                    }
                }
            }
        }
        if live.len() == before {
            break;
        }
    }
    live.into_iter().map(str::to_owned).collect()
}

/// Drives the full pipeline on `case` and checks the result with the
/// independent oracle. See the module docs for the stage list.
pub fn run_case(case: &FuzzCase, cfg: &FuzzConfig) -> CaseOutcome {
    let fail = |stage, detail: String| CaseOutcome::Fail(Failure { stage, detail });

    // 1. Validated instance — valid by construction, any rejection is a bug.
    let inst = match EcoInstance::from_netlists(
        format!("fuzz{:x}", case.seed),
        &case.faulty,
        &case.golden,
        case.targets.clone(),
        &case.weights,
    ) {
        Ok(i) => i,
        Err(e) => return fail(FailStage::Instance, e.to_string()),
    };

    // 2. The production engine. Rectifiable by construction, so
    //    `Unrectifiable` is a genuine failure; budget exhaustion is not.
    let result = match EcoEngine::new(inst, EcoOptions::default()).run() {
        Ok(r) => r,
        Err(EcoError::ResourceLimit(what)) => return CaseOutcome::Skip(what),
        Err(e) => return fail(FailStage::Engine, e.to_string()),
    };

    oracle_check(case, &result.patch_aig, cfg)
}

/// The independent oracle (stages 3–8 of [`run_case`]): splices
/// `patch_aig` into the faulty netlist, round-trips it through the
/// Verilog writer and parser, and proves it equivalent to the golden
/// circuit with a fresh SAT miter plus a random-simulation cross-check.
fn oracle_check(case: &FuzzCase, patch_aig: &Aig, cfg: &FuzzConfig) -> CaseOutcome {
    let fail = |stage, detail: String| CaseOutcome::Fail(Failure { stage, detail });

    // 3. Assembly: splice the patch into the faulty netlist.
    let patched_nl = match splice_patch(&case.faulty, patch_aig) {
        Ok(n) => n,
        Err(e) => return fail(FailStage::Assemble, e.to_string()),
    };

    // 4–5. Writer → parser round trip of the *patched* netlist.
    let text = write_verilog(&patched_nl);
    let reparsed = match parse_verilog(&text) {
        Ok(n) => n,
        Err(e) => return fail(FailStage::Parse, e.to_string()),
    };

    // 6. Re-elaborate both sides from scratch.
    let patched = match elaborate(&reparsed) {
        Ok(e) => e,
        Err(e) => return fail(FailStage::Elaborate, format!("patched: {e}")),
    };
    let golden = match elaborate(&case.golden) {
        Ok(e) => e,
        Err(e) => return fail(FailStage::Elaborate, format!("golden: {e}")),
    };

    // 7. Fresh miter in a fresh manager, inputs matched by name.
    let mut m = Aig::new();
    let mut by_name: std::collections::HashMap<String, Lit> = Default::default();
    let import_by_name =
        |m: &mut Aig, src: &Aig, by_name: &mut std::collections::HashMap<String, Lit>| {
            let mut map: std::collections::HashMap<Var, Lit> = Default::default();
            for pos in 0..src.num_inputs() {
                let name = src.input_name(pos);
                let lit = *by_name
                    .entry(name.to_owned())
                    .or_insert_with(|| m.add_input(name.to_owned()));
                map.insert(src.input_var(pos), lit);
            }
            let roots: Vec<Lit> = src.outputs().iter().map(|o| o.lit).collect();
            m.import(src, &roots, &map).map(|lits| {
                src.outputs()
                    .iter()
                    .map(|o| o.name.clone())
                    .zip(lits)
                    .collect::<Vec<(String, Lit)>>()
            })
        };
    let p_outs = match import_by_name(&mut m, &patched.aig, &mut by_name) {
        Ok(v) => v,
        Err(e) => return fail(FailStage::Miter, format!("import patched: {e}")),
    };
    let g_outs = match import_by_name(&mut m, &golden.aig, &mut by_name) {
        Ok(v) => v,
        Err(e) => return fail(FailStage::Miter, format!("import golden: {e}")),
    };
    let mut pairs: Vec<(Lit, Lit)> = Vec::new();
    for (name, g) in &g_outs {
        match p_outs.iter().find(|(pn, _)| pn == name) {
            Some((_, p)) => pairs.push((*p, *g)),
            None => return fail(FailStage::Miter, format!("patched lost output `{name}`")),
        }
    }
    match check_equivalence(&mut m, &pairs, cfg.oracle_budget) {
        VerifyOutcome::Equivalent => {}
        VerifyOutcome::Counterexample(cex) => {
            let s: Vec<String> = cex
                .iter()
                .take(8)
                .map(|(n, v)| format!("{n}={}", u8::from(*v)))
                .collect();
            return fail(FailStage::Miter, format!("cex {}", s.join(" ")));
        }
        VerifyOutcome::Unknown => return CaseOutcome::Skip("oracle miter budget".into()),
    }

    // 8. Independent 64-bit random-simulation cross-check on the same
    //    fresh manager (different decision procedure than the SAT miter).
    let sim = m.simulate_random(cfg.sim_words.max(1), case.seed ^ 0x9e37_79b9_7f4a_7c15);
    for ((name, g), (_, p)) in g_outs.iter().zip(&p_outs) {
        if sim.lit_words(*p) != sim.lit_words(*g) {
            return fail(
                FailStage::Simulation,
                format!("simulation mismatch on `{name}`"),
            );
        }
    }
    CaseOutcome::Pass
}

/// Deterministically derives a deliberately tiny governor budget from a
/// case seed: small per-cluster conflict allowances dominate, with an
/// occasional already-expired deadline, so the degradation paths get
/// hammered rather than merely brushed. Wall-clock timeouts other than
/// zero are never drawn — they would make case classification depend on
/// machine speed.
pub fn budget_for_seed(seed: u64) -> BudgetOptions {
    let mut rng = SplitMix64::new(seed ^ 0x9f4a_7c15_51ed_270b);
    let allowances = [1u64, 2, 8, 64];
    let cluster_conflicts = Some(allowances[rng.index(allowances.len())]);
    let timeout = rng.chance(0.2).then_some(Duration::ZERO);
    BudgetOptions {
        timeout,
        cluster_conflicts,
    }
}

/// Outcome of one budgeted differential case: under a starvation budget
/// the pipeline may either finish (then the full oracle applies) or
/// degrade (then the partial result must be well-formed) — but it must
/// never panic, hang, or emit a malformed netlist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BudgetCaseOutcome {
    /// The run completed despite the budget and the oracle proved it.
    Complete,
    /// The run degraded to a well-formed partial result.
    Partial,
    /// A resource budget ran out in a non-governed component (oracle
    /// miter); not a bug.
    Skip(String),
    /// A genuine robustness bug.
    Fail(Failure),
}

/// Aggregated budget-campaign telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetStats {
    /// Cases generated and run.
    pub cases: u64,
    /// Cases that completed under budget and passed the oracle.
    pub completes: u64,
    /// Cases that degraded to a well-formed partial result.
    pub partials: u64,
    /// Budget-limited oracle checks (not counted as failures).
    pub skips: u64,
    /// Genuine robustness failures.
    pub failures: u64,
}

/// Runs one case through the governed pipeline under the starvation
/// budget drawn by [`budget_for_seed`] and classifies the outcome.
pub fn run_budget_case(case: &FuzzCase, cfg: &FuzzConfig) -> BudgetCaseOutcome {
    let fail = |stage, detail: String| BudgetCaseOutcome::Fail(Failure { stage, detail });

    let inst = match EcoInstance::from_netlists(
        format!("bfuzz{:x}", case.seed),
        &case.faulty,
        &case.golden,
        case.targets.clone(),
        &case.weights,
    ) {
        Ok(i) => i,
        Err(e) => return fail(FailStage::Instance, e.to_string()),
    };

    // The governed engine must never panic, no matter how starved. The
    // engine already isolates cluster workers; this outer guard catches
    // escapes from any other stage.
    let budget = budget_for_seed(case.seed);
    let run = catch_unwind(AssertUnwindSafe(|| {
        EcoEngine::new(
            inst,
            EcoOptions {
                budget,
                ..Default::default()
            },
        )
        .run_governed()
    }));
    let outcome = match run {
        Ok(o) => o,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            return fail(FailStage::Governor, format!("engine panicked: {msg}"));
        }
    };

    match outcome {
        // A completed governed run claims full verification, so the
        // independent oracle must agree exactly as in the unbudgeted mode.
        Ok(EcoOutcome::Complete(result)) => match oracle_check(case, &result.patch_aig, cfg) {
            CaseOutcome::Pass => BudgetCaseOutcome::Complete,
            CaseOutcome::Skip(why) => BudgetCaseOutcome::Skip(why),
            CaseOutcome::Fail(f) => BudgetCaseOutcome::Fail(f),
        },
        Ok(EcoOutcome::Partial(partial)) => check_partial(case, &partial),
        // Cases are rectifiable by construction and governed runs report
        // budget exhaustion as `Partial`, so any engine error is a bug.
        Err(e) => fail(FailStage::Engine, e.to_string()),
    }
}

/// Well-formedness oracle for a degraded run: the reason and every
/// cluster diagnosis must be present and clean (no leaked panics), the
/// governor counters must account for every cluster, each reported
/// target must be one of the case's targets, and the completed partial
/// patch must still round-trip through the Verilog writer and parser.
fn check_partial(case: &FuzzCase, partial: &PartialResult) -> BudgetCaseOutcome {
    let fail = |detail: String| {
        BudgetCaseOutcome::Fail(Failure {
            stage: FailStage::Governor,
            detail,
        })
    };

    if partial.reason.is_empty() {
        return fail("partial result with empty reason".into());
    }
    let mut patched = 0u64;
    for c in &partial.clusters {
        if c.targets.is_empty() {
            return fail("cluster report with no targets".into());
        }
        for t in &c.targets {
            if !case.targets.contains(t) {
                return fail(format!("cluster reports unknown target `{t}`"));
            }
        }
        match &c.diagnosis {
            ClusterDiagnosis::Patched => patched += 1,
            ClusterDiagnosis::BudgetExhausted | ClusterDiagnosis::Deadline => {}
            ClusterDiagnosis::Panicked(msg) => {
                return fail(format!("cluster panicked under budget: {msg}"));
            }
        }
    }
    let tel = &partial.telemetry;
    let diagnosed = tel.clusters_patched
        + tel.clusters_budget_exhausted
        + tel.clusters_deadline
        + tel.clusters_panicked;
    if diagnosed != partial.clusters.len() as u64 || tel.clusters_patched != patched {
        return fail(format!(
            "governor counters disagree with cluster reports: {diagnosed} diagnosed / \
             {} reported, {} vs {patched} patched",
            partial.clusters.len(),
            tel.clusters_patched,
        ));
    }
    for p in &partial.patches {
        if !case.targets.contains(&p.target) {
            return fail(format!("partial patch for unknown target `{}`", p.target));
        }
    }
    // The completed portion must still be emittable: writer → parser →
    // elaboration round trip of the partial patch netlist.
    let text = write_verilog(&netlist_from_aig(&partial.patch_aig, "patch"));
    let reparsed = match parse_verilog(&text) {
        Ok(n) => n,
        Err(e) => return fail(format!("partial patch does not re-parse: {e}")),
    };
    if let Err(e) = elaborate(&reparsed) {
        return fail(format!("partial patch does not elaborate: {e}"));
    }
    BudgetCaseOutcome::Partial
}

/// Runs `iters` budgeted cases starting at `seed`. Failures are reported
/// un-shrunk (the shrinker replays the unbudgeted oracle, whose failure
/// stages do not map onto budget classification). Calls
/// `progress(cases_run, &stats)` after each case.
pub fn run_budget_campaign(
    iters: u64,
    seed: u64,
    cfg: &FuzzConfig,
    mut progress: impl FnMut(u64, &BudgetStats),
) -> (BudgetStats, Vec<CampaignFailure>) {
    let mut stats = BudgetStats::default();
    let mut failures = Vec::new();
    let mut s = seed;
    while stats.cases < iters {
        s = s.wrapping_add(1);
        let Some(case) = gen_case(s, cfg) else {
            continue;
        };
        stats.cases += 1;
        match run_budget_case(&case, cfg) {
            BudgetCaseOutcome::Complete => stats.completes += 1,
            BudgetCaseOutcome::Partial => stats.partials += 1,
            BudgetCaseOutcome::Skip(_) => stats.skips += 1,
            BudgetCaseOutcome::Fail(failure) => {
                stats.failures += 1;
                failures.push(CampaignFailure { case, failure });
            }
        }
        progress(stats.cases, &stats);
    }
    (stats, failures)
}

/// Greedily shrinks a failing case: tries dropping targets, outputs,
/// gates, and inputs (keeping golden and faulty structurally consistent),
/// accepting each reduction iff the oracle still fails at the *same
/// stage*. Returns the reduced case; `stats` accumulates attempted and
/// accepted steps.
pub fn shrink_case(
    case: &FuzzCase,
    failure: &Failure,
    cfg: &FuzzConfig,
    stats: &mut FuzzStats,
) -> (FuzzCase, Failure) {
    let mut best = case.clone();
    let mut best_fail = failure.clone();
    let still_fails = |c: &FuzzCase, stage: FailStage, stats: &mut FuzzStats| -> Option<Failure> {
        stats.shrink_steps += 1;
        match run_case(c, cfg) {
            CaseOutcome::Fail(f) if f.stage == stage => Some(f),
            _ => None,
        }
    };

    loop {
        let mut reduced = false;

        // Drop a target: restore its golden driver into the faulty side.
        if best.targets.len() > 1 {
            for ti in 0..best.targets.len() {
                let Some(cand) = drop_target(&best, ti) else {
                    continue;
                };
                if let Some(f) = still_fails(&cand, best_fail.stage, stats) {
                    stats.shrink_accepted += 1;
                    best = cand;
                    best_fail = f;
                    reduced = true;
                    break;
                }
            }
        }

        // Drop an output (from both sides; the driver gate stays).
        if best.golden.outputs.len() > 1 {
            for oi in 0..best.golden.outputs.len() {
                let cand = drop_output(&best, oi);
                if let Some(f) = still_fails(&cand, best_fail.stage, stats) {
                    stats.shrink_accepted += 1;
                    best = cand;
                    best_fail = f;
                    reduced = true;
                    break;
                }
            }
        }

        // Drop a gate: its output net becomes a fresh pseudo-input on
        // both sides (preserves well-formedness and rectifiability).
        for gi in 0..best.golden.gates.len() {
            let Some(cand) = drop_gate(&best, gi) else {
                continue;
            };
            if let Some(f) = still_fails(&cand, best_fail.stage, stats) {
                stats.shrink_accepted += 1;
                best = cand;
                best_fail = f;
                reduced = true;
                break;
            }
        }

        // Drop an unused input from both sides.
        for ii in 0..best.golden.inputs.len() {
            let Some(cand) = drop_input(&best, ii) else {
                continue;
            };
            if let Some(f) = still_fails(&cand, best_fail.stage, stats) {
                stats.shrink_accepted += 1;
                best = cand;
                best_fail = f;
                reduced = true;
                break;
            }
        }

        if !reduced {
            return (best, best_fail);
        }
    }
}

/// Un-cuts target `ti`: its golden driver gate returns to the faulty side
/// and the net stops being a pseudo-input.
fn drop_target(case: &FuzzCase, ti: usize) -> Option<FuzzCase> {
    let t = case.targets.get(ti)?.clone();
    let driver = case.golden.gates.iter().find(|g| g.output == t)?.clone();
    let mut c = case.clone();
    c.targets.remove(ti);
    c.faulty.inputs.retain(|i| *i != t);
    if !c.faulty.wires.contains(&t) && !c.faulty.outputs.contains(&t) {
        c.faulty.wires.push(t.clone());
    }
    c.faulty.gates.push(driver);
    Some(c)
}

/// Removes output `oi` from both sides (net moves to the wire list; its
/// driver stays as dangling logic).
fn drop_output(case: &FuzzCase, oi: usize) -> FuzzCase {
    let name = case.golden.outputs[oi].clone();
    let mut c = case.clone();
    for nl in [&mut c.golden, &mut c.faulty] {
        nl.outputs.retain(|o| *o != name);
        if !nl.wires.contains(&name) {
            nl.wires.push(name.clone());
        }
    }
    c
}

/// Removes the golden gate at `gi` from both sides; its output net turns
/// into a pseudo-input everywhere so all remaining readers stay driven.
/// Targets and primary outputs cannot be dropped this way.
fn drop_gate(case: &FuzzCase, gi: usize) -> Option<FuzzCase> {
    let out = case.golden.gates.get(gi)?.output.clone();
    if case.targets.contains(&out) || case.golden.outputs.contains(&out) {
        return None;
    }
    let mut c = case.clone();
    for nl in [&mut c.golden, &mut c.faulty] {
        nl.gates.retain(|g| g.output != out);
        nl.wires.retain(|w| *w != out);
        if !nl.inputs.contains(&out) {
            nl.inputs.push(out.clone());
        }
    }
    Some(c)
}

/// Removes input `ii` if no gate on either side reads it and it is not an
/// output or target.
fn drop_input(case: &FuzzCase, ii: usize) -> Option<FuzzCase> {
    let name = case.golden.inputs.get(ii)?.clone();
    if case.targets.contains(&name) || case.golden.outputs.contains(&name) {
        return None;
    }
    let used = |nl: &Netlist| {
        nl.gates
            .iter()
            .any(|g| g.inputs.iter().any(|r| r.name() == Some(name.as_str())))
    };
    if used(&case.golden) || used(&case.faulty) {
        return None;
    }
    let mut c = case.clone();
    c.golden.inputs.retain(|i| *i != name);
    c.faulty.inputs.retain(|i| *i != name);
    Some(c)
}

impl FuzzCase {
    /// Serializes the case to the sectioned corpus text format:
    ///
    /// ```text
    /// # eco-fuzz case
    /// seed <hex>
    /// default_weight <n>
    /// [targets]    — one net per line
    /// [weights]    — `<net> <weight>` lines (the contest weight format)
    /// [golden]     — contest-format Verilog
    /// [faulty]     — contest-format Verilog (stored, not re-derived)
    /// ```
    pub fn to_text(&self) -> String {
        format!(
            "# eco-fuzz case\nseed {:x}\ndefault_weight {}\n[targets]\n{}\n[weights]\n{}[golden]\n{}[faulty]\n{}",
            self.seed,
            self.weights.default_weight,
            self.targets.join("\n"),
            write_weights(&self.weights),
            write_verilog(&self.golden),
            write_verilog(&self.faulty),
        )
    }

    /// Parses the [`FuzzCase::to_text`] format.
    pub fn from_text(text: &str) -> Result<FuzzCase, String> {
        let mut seed = 0u64;
        let mut default_weight = 1u64;
        let mut section = String::new();
        let mut bodies: std::collections::HashMap<String, String> = Default::default();
        for line in text.lines() {
            let trimmed = line.trim();
            if section.is_empty() {
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                if let Some(v) = trimmed.strip_prefix("seed ") {
                    seed =
                        u64::from_str_radix(v.trim(), 16).map_err(|e| format!("bad seed: {e}"))?;
                    continue;
                }
                if let Some(v) = trimmed.strip_prefix("default_weight ") {
                    default_weight = v
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad default_weight: {e}"))?;
                    continue;
                }
            }
            if trimmed.starts_with('[') && trimmed.ends_with(']') {
                section = trimmed[1..trimmed.len() - 1].to_owned();
                continue;
            }
            if section.is_empty() {
                return Err(format!("unexpected line before first section: `{trimmed}`"));
            }
            let body = bodies.entry(section.clone()).or_default();
            body.push_str(line);
            body.push('\n');
        }
        let get = |name: &str| -> Result<&String, String> {
            bodies
                .get(name)
                .ok_or_else(|| format!("missing [{name}] section"))
        };
        let targets: Vec<String> = get("targets")?
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_owned)
            .collect();
        let mut weights = parse_weights(get("weights")?).map_err(|e| format!("weights: {e}"))?;
        weights.default_weight = default_weight;
        let golden = parse_verilog(get("golden")?).map_err(|e| format!("golden: {e}"))?;
        let faulty = parse_verilog(get("faulty")?).map_err(|e| format!("faulty: {e}"))?;
        Ok(FuzzCase {
            seed,
            golden,
            faulty,
            targets,
            weights,
        })
    }
}

/// A shrunk failure ready for the corpus.
#[derive(Clone, Debug)]
pub struct CampaignFailure {
    /// The reduced case.
    pub case: FuzzCase,
    /// Failure it still reproduces.
    pub failure: Failure,
}

/// Runs `iters` cases starting at `seed`, shrinking failures when
/// `shrink` is set. Calls `progress(cases_run, &stats)` after each case
/// (pass `|_, _| {}` when no reporting is needed).
pub fn run_campaign(
    iters: u64,
    seed: u64,
    cfg: &FuzzConfig,
    shrink: bool,
    mut progress: impl FnMut(u64, &FuzzStats),
) -> (FuzzStats, Vec<CampaignFailure>) {
    let mut stats = FuzzStats::default();
    let mut failures = Vec::new();
    let mut s = seed;
    while stats.cases < iters {
        s = s.wrapping_add(1);
        let Some(case) = gen_case(s, cfg) else {
            continue;
        };
        stats.cases += 1;
        match run_case(&case, cfg) {
            CaseOutcome::Pass => stats.passes += 1,
            CaseOutcome::Skip(_) => stats.skips += 1,
            CaseOutcome::Fail(f) => {
                stats.failures += 1;
                let (case, failure) = if shrink {
                    shrink_case(&case, &f, cfg, &mut stats)
                } else {
                    (case, f)
                };
                failures.push(CampaignFailure { case, failure });
            }
        }
        progress(stats.cases, &stats);
    }
    (stats, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_valid() {
        let cfg = FuzzConfig::default();
        let mut produced = 0;
        for seed in 0..40u64 {
            let Some(a) = gen_case(seed, &cfg) else {
                continue;
            };
            let b = gen_case(seed, &cfg).expect("same seed regenerates");
            assert_eq!(a, b);
            produced += 1;
            // Structural invariants: targets float in faulty, golden
            // elaborates, faulty elaborates.
            for t in &a.targets {
                assert!(a.faulty.inputs.contains(t), "seed {seed}: {t} floats");
                assert!(!a.golden.inputs.contains(t), "seed {seed}: {t} driven");
            }
            elaborate(&a.golden).expect("golden elaborates");
            elaborate(&a.faulty).expect("faulty elaborates");
        }
        assert!(produced >= 30, "generator yield too low: {produced}/40");
    }

    #[test]
    fn oracle_passes_a_known_good_case() {
        let cfg = FuzzConfig::default();
        let mut found_pass = false;
        for seed in 0..20u64 {
            let Some(case) = gen_case(seed, &cfg) else {
                continue;
            };
            match run_case(&case, &cfg) {
                CaseOutcome::Pass => {
                    found_pass = true;
                    break;
                }
                CaseOutcome::Skip(_) => {}
                CaseOutcome::Fail(f) => panic!("seed {seed}: {} — {}", f.stage, f.detail),
            }
        }
        assert!(found_pass, "no case passed in 20 seeds");
    }

    #[test]
    fn corpus_text_round_trips() {
        let cfg = FuzzConfig::default();
        let case = (0..50u64)
            .find_map(|s| gen_case(s, &cfg))
            .expect("a case generates");
        let text = case.to_text();
        let back = FuzzCase::from_text(&text).expect("round-trips");
        // The writer invents instance names for anonymous gates; those are
        // not semantic, so compare with names stripped.
        let anon = |nl: &Netlist| {
            let mut nl = nl.clone();
            for g in &mut nl.gates {
                g.name = None;
            }
            nl
        };
        assert_eq!(back.seed, case.seed);
        assert_eq!(back.targets, case.targets);
        assert_eq!(anon(&back.golden), anon(&case.golden));
        assert_eq!(anon(&back.faulty), anon(&case.faulty));
        assert_eq!(back.weights, case.weights);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(FuzzCase::from_text("nonsense\n").is_err());
        assert!(FuzzCase::from_text("# c\nseed 1\n[targets]\nt\n").is_err());
    }

    /// A seeded oracle bug (simulated by corrupting the golden circuit so
    /// patched ≠ golden) is caught by the miter and shrinks down.
    #[test]
    fn shrinker_reduces_a_failing_case() {
        let cfg = FuzzConfig::default();
        // Build a case whose faulty circuit was additionally broken in
        // live logic (not dangling): flip a live gate, which the patch
        // cannot repair because the target does not reach it.
        let mut case = None;
        for seed in 0..200u64 {
            let Some(mut c) = gen_case(seed, &cfg) else {
                continue;
            };
            if crate::fault::break_untouched_output(&mut c.faulty, &c.golden, &c.targets, seed)
                .is_some()
            {
                case = Some(c);
                break;
            }
        }
        let case = case.expect("some case can be broken");
        let CaseOutcome::Fail(f) = run_case(&case, &cfg) else {
            panic!("broken case must fail");
        };
        let mut stats = FuzzStats::default();
        let (small, small_f) = shrink_case(&case, &f, &cfg, &mut stats);
        assert_eq!(small_f.stage, f.stage);
        assert!(small.golden.num_gates() <= case.golden.num_gates());
        assert!(stats.shrink_steps > 0);
        // The shrunk case still fails the oracle the same way.
        let CaseOutcome::Fail(again) = run_case(&small, &cfg) else {
            panic!("shrunk case must still fail");
        };
        assert_eq!(again.stage, f.stage);
    }

    #[test]
    fn campaign_counts_are_consistent() {
        let cfg = FuzzConfig::default();
        let (stats, failures) = run_campaign(15, 7, &cfg, false, |_, _| {});
        assert_eq!(stats.cases, 15);
        assert_eq!(stats.passes + stats.failures + stats.skips, 15);
        assert_eq!(stats.failures as usize, failures.len());
        assert_eq!(stats.failures, 0, "shipped config must be clean");
    }

    #[test]
    fn budget_for_seed_is_deterministic_and_tiny() {
        let mut saw_timeout = false;
        let mut saw_conflicts_only = false;
        for seed in 0..200u64 {
            let a = budget_for_seed(seed);
            let b = budget_for_seed(seed);
            assert_eq!(a.timeout, b.timeout, "seed {seed}");
            assert_eq!(a.cluster_conflicts, b.cluster_conflicts, "seed {seed}");
            let c = a.cluster_conflicts.expect("always conflict-capped");
            assert!(c <= 64, "seed {seed}: allowance {c} is not tiny");
            match a.timeout {
                Some(t) => {
                    assert_eq!(t, Duration::ZERO, "only already-expired deadlines");
                    saw_timeout = true;
                }
                None => saw_conflicts_only = true,
            }
        }
        assert!(
            saw_timeout && saw_conflicts_only,
            "both budget shapes drawn"
        );
    }

    /// The robustness contract of the governed pipeline: under starvation
    /// budgets every case must classify cleanly — complete-and-proven or
    /// well-formed-partial — with zero panics, hangs, or malformed
    /// netlists. Both budget shapes (conflict-starved and zero-deadline)
    /// must appear, and zero-deadline cases must degrade.
    #[test]
    fn budget_campaign_is_clean() {
        let cfg = FuzzConfig::default();
        let (stats, failures) = run_budget_campaign(40, 11, &cfg, |_, _| {});
        for f in &failures {
            eprintln!(
                "budget failure: seed {:x} at {} — {}",
                f.case.seed, f.failure.stage, f.failure.detail
            );
        }
        assert_eq!(stats.cases, 40);
        assert_eq!(
            stats.completes + stats.partials + stats.skips + stats.failures,
            40
        );
        assert_eq!(stats.failures, 0, "budgeted pipeline must be clean");
        assert!(
            stats.partials > 0,
            "starvation budgets must exercise degradation: {stats:?}"
        );
    }
}
