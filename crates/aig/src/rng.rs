//! A tiny vendored PRNG (SplitMix64) so the workspace needs no external
//! `rand` dependency.
//!
//! Used by FRAIG simulation-pattern generation and the `eco-workgen`
//! instance generator. Not cryptographic; the only requirements are
//! determinism for a given seed and decent statistical mixing, both of
//! which SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) provides in four
//! lines.

/// Deterministic 64-bit PRNG with a single `u64` of state.
///
/// ```
/// use eco_aig::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` via Lemire-style widening multiply (slightly
    /// biased for astronomically large `n`, irrelevant here).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        // The draw is < n, which already fits in usize.
        #[allow(clippy::cast_possible_truncation)]
        {
            self.below(n as u64) as usize
        }
    }

    /// Uniform in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.index(i + 1));
        }
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // small in-range test constants
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SplitMix64::new(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut rng = SplitMix64::new(2);
        let (mut lo_hit, mut hi_hit) = (false, false);
        for _ in 0..300 {
            let v = rng.range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            lo_hit |= v == 3;
            hi_hit |= v == 6;
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(3);
        assert!(rng.chance(1.0));
        assert!(!rng.chance(0.0));
        let heads = (0..1000).filter(|_| rng.chance(0.5)).count();
        assert!((300..=700).contains(&heads), "p=0.5 gave {heads}/1000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(4);
        let mut xs: Vec<u32> = (0..32).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "seed 4 should not yield identity");
    }
}
