//! Developer harness: one cold cost-aware run and one PI-only baseline
//! run per requested suite unit (default: the solver-bound pair
//! unit04/unit16), printing wall time, final cost, and the full
//! telemetry block — per-stage timers, SAT/inprocessing/portfolio
//! counters — for quick before/after comparisons while tuning.
//!
//! ```text
//! cargo run --release -p eco-bench --bin stage_profile [unit04 unit16 ...]
//! ```

use eco_core::{EcoEngine, EcoOptions};
use eco_workgen::contest_suite;

fn main() {
    let mut units: Vec<String> = std::env::args().skip(1).collect();
    if units.is_empty() {
        units = vec!["unit04".into(), "unit16".into()];
    }
    for unit in contest_suite() {
        if !units.iter().any(|u| u == &unit.spec.name) {
            continue;
        }
        let inst = unit.instance().expect("valid");
        for (tag, opts) in [
            ("ours", EcoOptions::default()),
            ("base", EcoOptions::baseline()),
        ] {
            let t0 = std::time::Instant::now();
            let r = EcoEngine::new(inst.clone(), opts)
                .run()
                .expect("rectifiable");
            let wall = t0.elapsed();
            println!(
                "== {} {} wall={:?} cost={}",
                unit.spec.name, tag, wall, r.cost
            );
            println!("{}", r.telemetry);
        }
    }
}
