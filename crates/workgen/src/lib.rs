#![warn(missing_docs)]
//! # eco-workgen — synthetic ECO benchmark generation
//!
//! The ICCAD 2017 CAD Contest benchmarks evaluated in the paper are not
//! publicly redistributable, so this crate generates a matched synthetic
//! suite: parameterized golden circuits ([`circuits`]), contest-style
//! fault injection by *cutting* target nets into floating pseudo-inputs
//! ([`cut_targets`]), dangling-logic scrambling, weight assignment
//! ([`assign_weights`]), and a fixed, deterministic 20-unit suite
//! ([`contest_suite`]) whose target counts and easy/difficult split mirror
//! Table 2 of the paper.
//!
//! Instances are rectifiable **by construction**: the faulty circuit is
//! the golden circuit with target drivers removed, so reconnecting each
//! target to its original function is always a valid (if expensive) patch.
//!
//! # Examples
//!
//! ```
//! use eco_workgen::{build_unit, suite_specs};
//!
//! let unit = build_unit(&suite_specs()[0]);
//! let instance = unit.instance()?;
//! assert_eq!(instance.num_targets(), 1);
//! # Ok::<(), eco_core::EcoError>(())
//! ```

mod builder;
pub mod circuits;
mod emit;
mod fault;
pub mod fuzz;
pub mod roundtrip;
pub mod scale;
pub mod seqgen;
mod suite;

pub use crate::builder::NetlistBuilder;
pub use crate::emit::{
    manifest_toml, request_stream, write_case, write_fuzz_case, write_unit, ManifestEntry,
};
pub use crate::fault::{
    assign_weights, break_untouched_output, cut_targets, scramble_dangling, FaultError,
    WeightProfile,
};
pub use crate::scale::{
    deep_datapath_aig, scale_preset, wide_random_aig, ScalePreset, SCALE_PRESETS,
};
pub use crate::seqgen::{
    gen_seq_unit, inject_seq_faults, random_seq_dag, seq_weights, shift_register_datapath,
    write_seq_unit, SeqUnit,
};
pub use crate::suite::{
    build_unit, contest_suite, stress_specs, stress_suite, suite_specs, Family, SuiteUnit,
    TargetBias, UnitSpec,
};
