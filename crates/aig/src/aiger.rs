//! AIGER format I/O.
//!
//! Reads and writes the [AIGER](https://fmv.jku.at/aiger/) interchange
//! format in both its ASCII (`aag`) and binary (`aig`) variants. AIGER's
//! literal encoding (`2·var + complement`, 0 = false) matches [`Lit`]
//! exactly; only the variable numbering differs, since AIGER requires
//! inputs first.
//!
//! Two API levels:
//!
//! * [`parse_aiger_ascii`] / [`write_aiger_ascii`] (and the binary pair)
//!   handle the combinational subset — files with latches are rejected;
//! * [`parse_aiger_ascii_seq`] / [`write_aiger_ascii_seq`] (and the
//!   binary pair) additionally carry latches as [`AigerLatch`] records:
//!   each latch's current state is an ordinary input of the returned
//!   [`Aig`], and its next-state function is a literal of the same AIG.
//!
//! Only the canonical ("reencoded") variable order is accepted: inputs
//! `1..=I`, latch states `I+1..=I+L`, ANDs after. Both writers emit that
//! order, so write → parse → write is a byte-level fixpoint.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use crate::{Aig, Lit, Var};

/// Error produced when AIGER data cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAigerError {
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AIGER: {}", self.message)
    }
}

impl Error for ParseAigerError {}

fn err(message: impl Into<String>) -> ParseAigerError {
    ParseAigerError {
        message: message.into(),
    }
}

/// Initial value of an AIGER latch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AigerInit {
    /// Resets to 0 (the AIGER default).
    Zero,
    /// Resets to 1.
    One,
    /// Uninitialized: the first-cycle value is free (encoded in AIGER as
    /// an init field equal to the latch's own literal).
    DontCare,
}

/// A latch of a sequential AIGER file.
///
/// `state` is an input variable of the accompanying [`Aig`] holding the
/// current-state value; `next` is the next-state literal in the same AIG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AigerLatch {
    /// Current-state variable (an input of the AIG).
    pub state: Var,
    /// Next-state literal.
    pub next: Lit,
    /// Reset value.
    pub init: AigerInit,
}

/// Marker for nodes outside the emitted cone in the renumbering table.
const UNMAPPED: u32 = u32::MAX;

/// Renumbering of an AIG into AIGER order: primary inputs `1..=I`, latch
/// states `I+1..=I+L`, then ANDs in topological order. Returns (dense
/// table old var index → new AIGER var, AND vars in emission order).
/// Nodes outside the reachable cone stay [`UNMAPPED`]; a dense table
/// beats a `HashMap` here because emission touches every mapped node at
/// least twice.
fn renumber(aig: &Aig, pis: &[Var], latches: &[AigerLatch]) -> (Vec<u32>, Vec<Var>) {
    let mut map = vec![UNMAPPED; aig.len()];
    map[Var::CONST.index() as usize] = 0;
    let mut next: u32 = 1;
    for &v in pis {
        map[v.index() as usize] = next;
        next += 1;
    }
    for l in latches {
        map[l.state.index() as usize] = next;
        next += 1;
    }
    let mut roots: Vec<Lit> = aig.outputs().iter().map(|o| o.lit).collect();
    roots.extend(latches.iter().map(|l| l.next));
    let mut ands = Vec::new();
    for v in aig.cone_vars(&roots) {
        if aig.is_and(v) {
            map[v.index() as usize] = next;
            next += 1;
            ands.push(v);
        }
    }
    (map, ands)
}

fn map_lit(map: &[u32], lit: Lit) -> u32 {
    let m = map[lit.var().index() as usize];
    debug_assert_ne!(m, UNMAPPED, "literal outside the emitted cone");
    m * 2 + lit.is_complement() as u32
}

/// Primary-input vars: every AIG input that is not a latch state, in
/// input-position order. Panics if a latch state is not an input — the
/// sequential writers require validated designs.
fn split_inputs(aig: &Aig, latches: &[AigerLatch]) -> Vec<Var> {
    let states: HashSet<Var> = latches.iter().map(|l| l.state).collect();
    for l in latches {
        assert!(
            aig.is_input(l.state),
            "latch state must be an AIG input variable"
        );
    }
    aig.inputs()
        .iter()
        .copied()
        .filter(|v| !states.contains(v))
        .collect()
}

/// Formats one latch definition's `next [init]` tail (shared by both
/// writers): the init field is omitted for the default 0, `1` for
/// init-to-1, and the latch's own literal for uninitialized.
fn latch_tail(map: &[u32], state_lit: u32, l: &AigerLatch) -> String {
    let next = map_lit(map, l.next);
    match l.init {
        AigerInit::Zero => format!("{next}"),
        AigerInit::One => format!("{next} 1"),
        AigerInit::DontCare => format!("{next} {state_lit}"),
    }
}

fn symbol_table(aig: &Aig, pis: &[Var], latches: &[AigerLatch]) -> String {
    use fmt::Write as _;
    let mut s = String::new();
    let name = |v: Var| {
        let pos = aig.input_pos(v).expect("input var");
        aig.input_name(pos)
    };
    for (k, &v) in pis.iter().enumerate() {
        let _ = writeln!(s, "i{k} {}", name(v));
    }
    for (k, l) in latches.iter().enumerate() {
        let _ = writeln!(s, "l{k} {}", name(l.state));
    }
    for (k, out) in aig.outputs().iter().enumerate() {
        let _ = writeln!(s, "o{k} {}", out.name);
    }
    s
}

/// Writes the reachable logic as ASCII AIGER (`aag`), including a symbol
/// table with the input and output names.
pub fn write_aiger_ascii(aig: &Aig) -> String {
    write_aiger_ascii_seq(aig, &[])
}

/// Writes a latch-bearing design as ASCII AIGER (`aag`).
///
/// Latch current states must be input variables of `aig`; they are
/// emitted after the primary inputs, with `l<k>` symbol-table entries
/// carrying their names.
pub fn write_aiger_ascii_seq(aig: &Aig, latches: &[AigerLatch]) -> String {
    use fmt::Write as _;
    let pis = split_inputs(aig, latches);
    let (map, ands) = renumber(aig, &pis, latches);
    let (i, l, a) = (pis.len(), latches.len(), ands.len());
    let m = i + l + a;
    let mut s = String::new();
    let _ = writeln!(s, "aag {m} {i} {l} {} {a}", aig.num_outputs());
    for k in 0..i {
        let _ = writeln!(s, "{}", (k + 1) * 2);
    }
    for (k, lat) in latches.iter().enumerate() {
        let state_lit = u32::try_from((i + k + 1) * 2).expect("literal fits in u32");
        let _ = writeln!(s, "{state_lit} {}", latch_tail(&map, state_lit, lat));
    }
    for out in aig.outputs() {
        let _ = writeln!(s, "{}", map_lit(&map, out.lit));
    }
    for &v in &ands {
        let (f0, f1) = aig.and_fanins(v).expect("AND node");
        let lhs = map[v.index() as usize] * 2;
        let (r0, r1) = (map_lit(&map, f0), map_lit(&map, f1));
        let (r0, r1) = if r0 >= r1 { (r0, r1) } else { (r1, r0) };
        let _ = writeln!(s, "{lhs} {r0} {r1}");
    }
    s.push_str(&symbol_table(aig, &pis, latches));
    s
}

/// Writes the reachable logic as binary AIGER (`aig`), including a symbol
/// table.
pub fn write_aiger_binary(aig: &Aig) -> Vec<u8> {
    write_aiger_binary_seq(aig, &[])
}

/// Writes a latch-bearing design as binary AIGER (`aig`). See
/// [`write_aiger_ascii_seq`] for the latch conventions.
pub fn write_aiger_binary_seq(aig: &Aig, latches: &[AigerLatch]) -> Vec<u8> {
    let pis = split_inputs(aig, latches);
    let (map, ands) = renumber(aig, &pis, latches);
    let (i, l, a) = (pis.len(), latches.len(), ands.len());
    let m = i + l + a;
    let mut out = Vec::new();
    out.extend_from_slice(format!("aig {m} {i} {l} {} {a}\n", aig.num_outputs()).as_bytes());
    for (k, lat) in latches.iter().enumerate() {
        let state_lit = u32::try_from((i + k + 1) * 2).expect("literal fits in u32");
        out.extend_from_slice(format!("{}\n", latch_tail(&map, state_lit, lat)).as_bytes());
    }
    for o in aig.outputs() {
        out.extend_from_slice(format!("{}\n", map_lit(&map, o.lit)).as_bytes());
    }
    for &v in &ands {
        let (f0, f1) = aig.and_fanins(v).expect("AND node");
        let lhs = map[v.index() as usize] * 2;
        let (r0, r1) = (map_lit(&map, f0), map_lit(&map, f1));
        let (r0, r1) = if r0 >= r1 { (r0, r1) } else { (r1, r0) };
        debug_assert!(lhs > r0, "binary AIGER requires lhs > rhs0");
        write_varint(&mut out, lhs - r0);
        write_varint(&mut out, r0 - r1);
    }
    out.extend_from_slice(symbol_table(aig, &pis, latches).as_bytes());
    out
}

// Both narrowings keep only the low 7 bits by construction.
#[allow(clippy::cast_possible_truncation)]
fn write_varint(out: &mut Vec<u8>, mut x: u32) {
    while x >= 0x80 {
        out.push((x & 0x7f) as u8 | 0x80);
        x >>= 7;
    }
    out.push(x as u8);
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u32, ParseAigerError> {
    let mut x: u32 = 0;
    let mut shift = 0;
    loop {
        let &b = data.get(*pos).ok_or_else(|| err("truncated delta"))?;
        *pos += 1;
        x |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift > 28 {
            return Err(err("delta overflow"));
        }
    }
}

struct Header {
    m: u32,
    i: u32,
    l: u32,
    o: u32,
    a: u32,
}

fn parse_header(line: &str, magic: &str) -> Result<Header, ParseAigerError> {
    let mut it = line.split_whitespace();
    if it.next() != Some(magic) {
        return Err(err(format!("expected `{magic}` header")));
    }
    let mut field = |name: &str| -> Result<u32, ParseAigerError> {
        it.next()
            .ok_or_else(|| err(format!("missing {name}")))?
            .parse()
            .map_err(|_| err(format!("invalid {name}")))
    };
    let m = field("M")?;
    let i = field("I")?;
    let l = field("L")?;
    let o = field("O")?;
    let a = field("A")?;
    if m != i
        .checked_add(l)
        .and_then(|x| x.checked_add(a))
        .ok_or_else(|| err("header counts overflow"))?
    {
        return Err(err("M != I + L + A"));
    }
    Ok(Header { m, i, l, o, a })
}

/// Raw latch definition: next-state literal plus optional init literal.
struct LatchDef {
    next: u32,
    init: Option<u32>,
}

fn parse_latch_init(state_lit: u32, def: &LatchDef) -> Result<AigerInit, ParseAigerError> {
    match def.init {
        None | Some(0) => Ok(AigerInit::Zero),
        Some(1) => Ok(AigerInit::One),
        Some(x) if x == state_lit => Ok(AigerInit::DontCare),
        Some(x) => Err(err(format!("invalid latch init literal {x}"))),
    }
}

/// Builds the AIG given resolved AND definitions, latch definitions, and
/// output literals.
fn build(
    header: &Header,
    latch_defs: &[LatchDef],
    and_defs: &[(u32, u32, u32)],
    out_lits: &[u32],
    symbols: &HashMap<String, String>,
) -> Result<(Aig, Vec<AigerLatch>), ParseAigerError> {
    let mut aig = Aig::new();
    // lits[v] = our literal for AIGER variable v.
    let mut lits: Vec<Option<Lit>> = vec![None; header.m as usize + 1];
    lits[0] = Some(Lit::FALSE);
    for k in 0..header.i {
        let name = symbols
            .get(&format!("i{k}"))
            .cloned()
            .unwrap_or_else(|| format!("i{k}"));
        lits[k as usize + 1] = Some(aig.add_input(name));
    }
    for k in 0..header.l {
        let name = symbols
            .get(&format!("l{k}"))
            .cloned()
            .unwrap_or_else(|| format!("l{k}"));
        lits[(header.i + k) as usize + 1] = Some(aig.add_input(name));
    }
    let resolve = |lits: &[Option<Lit>], l: u32| -> Result<Lit, ParseAigerError> {
        let v = (l / 2) as usize;
        let base = lits
            .get(v)
            .copied()
            .flatten()
            .ok_or_else(|| err(format!("literal {l} references undefined variable")))?;
        Ok(base.xor_complement(l % 2 == 1))
    };
    for &(lhs, r0, r1) in and_defs {
        if lhs % 2 != 0 {
            return Err(err("AND left-hand side must be even"));
        }
        if r0 >= lhs || r1 >= lhs {
            return Err(err("AND right-hand sides must precede the definition"));
        }
        let a = resolve(&lits, r0)?;
        let b = resolve(&lits, r1)?;
        let v = (lhs / 2) as usize;
        if lits[v].is_some() {
            return Err(err(format!("variable {v} defined twice")));
        }
        lits[v] = Some(aig.and(a, b));
    }
    // Latch next-state literals may reference ANDs defined later in the
    // file, so they resolve only after the AND section is built.
    let mut latches = Vec::with_capacity(latch_defs.len());
    for (k, def) in latch_defs.iter().enumerate() {
        let state_lit = (header.i + u32::try_from(k).expect("latch count fits in u32") + 1) * 2;
        let state = resolve(&lits, state_lit)?.var();
        latches.push(AigerLatch {
            state,
            next: resolve(&lits, def.next)?,
            init: parse_latch_init(state_lit, def)?,
        });
    }
    for (k, &l) in out_lits.iter().enumerate() {
        let lit = resolve(&lits, l)?;
        let name = symbols
            .get(&format!("o{k}"))
            .cloned()
            .unwrap_or_else(|| format!("o{k}"));
        aig.add_output(name, lit);
    }
    Ok((aig, latches))
}

fn parse_symbols<'a>(lines: impl Iterator<Item = &'a str>) -> HashMap<String, String> {
    let mut symbols = HashMap::new();
    for line in lines {
        if line.starts_with('c') {
            break;
        }
        if let Some((key, name)) = line.split_once(' ') {
            symbols.insert(key.to_string(), name.to_string());
        }
    }
    symbols
}

fn reject_latches((aig, latches): (Aig, Vec<AigerLatch>)) -> Result<Aig, ParseAigerError> {
    if latches.is_empty() {
        Ok(aig)
    } else {
        Err(err("latches are not supported (combinational only)"))
    }
}

/// Parses ASCII AIGER (`aag`), combinational subset.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed headers, latches, forward
/// references, or redefinitions.
///
/// # Examples
///
/// ```
/// let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 a\ni1 b\no0 y\n";
/// let aig = eco_aig::parse_aiger_ascii(text)?;
/// assert_eq!(aig.eval(&[true, true]), vec![true]);
/// assert_eq!(aig.eval(&[true, false]), vec![false]);
/// # Ok::<(), eco_aig::ParseAigerError>(())
/// ```
pub fn parse_aiger_ascii(text: &str) -> Result<Aig, ParseAigerError> {
    reject_latches(parse_aiger_ascii_seq(text)?)
}

/// Parses ASCII AIGER (`aag`) including latches.
///
/// Latch current states become input variables of the returned [`Aig`]
/// (after the primary inputs, named from `l<k>` symbol entries when
/// present); their next-state literals and init values are returned as
/// [`AigerLatch`] records in file order.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed headers, non-canonical
/// input/latch numbering, forward AND references, or redefinitions.
pub fn parse_aiger_ascii_seq(text: &str) -> Result<(Aig, Vec<AigerLatch>), ParseAigerError> {
    let mut lines = text.lines();
    let header = parse_header(lines.next().ok_or_else(|| err("empty input"))?, "aag")?;
    let mut next_line = |what: &str| -> Result<&str, ParseAigerError> {
        lines.next().ok_or_else(|| err(format!("missing {what}")))
    };
    for k in 0..header.i {
        let l: u32 = next_line("input line")?
            .trim()
            .parse()
            .map_err(|_| err("invalid input literal"))?;
        if l != (k + 1) * 2 {
            return Err(err("inputs must be 2, 4, ... in order"));
        }
    }
    let mut latch_defs = Vec::with_capacity(header.l as usize);
    for k in 0..header.l {
        let line = next_line("latch line")?;
        let mut it = line.split_whitespace();
        let mut num = |what: &str| -> Result<Option<u32>, ParseAigerError> {
            it.next()
                .map(|t| t.parse().map_err(|_| err(format!("invalid {what}"))))
                .transpose()
        };
        let state = num("latch state literal")?.ok_or_else(|| err("missing latch state"))?;
        if state != (header.i + k + 1) * 2 {
            return Err(err("latch states must follow the inputs in order"));
        }
        let next = num("latch next literal")?.ok_or_else(|| err("missing latch next"))?;
        let init = num("latch init literal")?;
        if it.next().is_some() {
            return Err(err("trailing tokens on latch line"));
        }
        latch_defs.push(LatchDef { next, init });
    }
    let mut out_lits = Vec::with_capacity(header.o as usize);
    for _ in 0..header.o {
        out_lits.push(
            next_line("output line")?
                .trim()
                .parse()
                .map_err(|_| err("invalid output literal"))?,
        );
    }
    let mut and_defs = Vec::with_capacity(header.a as usize);
    for _ in 0..header.a {
        let line = next_line("AND line")?;
        let mut it = line.split_whitespace();
        let mut num = |what: &str| -> Result<u32, ParseAigerError> {
            it.next()
                .ok_or_else(|| err(format!("missing {what}")))?
                .parse()
                .map_err(|_| err(format!("invalid {what}")))
        };
        and_defs.push((num("lhs")?, num("rhs0")?, num("rhs1")?));
    }
    let symbols = parse_symbols(lines);
    build(&header, &latch_defs, &and_defs, &out_lits, &symbols)
}

/// Parses binary AIGER (`aig`), combinational subset.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed headers, latches, or corrupt
/// delta encodings.
pub fn parse_aiger_binary(data: &[u8]) -> Result<Aig, ParseAigerError> {
    reject_latches(parse_aiger_binary_seq(data)?)
}

/// Parses binary AIGER (`aig`) including latches. See
/// [`parse_aiger_ascii_seq`] for the latch conventions.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed headers or corrupt delta
/// encodings.
pub fn parse_aiger_binary_seq(data: &[u8]) -> Result<(Aig, Vec<AigerLatch>), ParseAigerError> {
    let header_end = data
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| err("missing header line"))?;
    let header_line =
        std::str::from_utf8(&data[..header_end]).map_err(|_| err("non-UTF-8 header"))?;
    let header = parse_header(header_line, "aig")?;
    let mut pos = header_end + 1;
    let ascii_line = |pos: &mut usize, what: &str| -> Result<String, ParseAigerError> {
        let end = data[*pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| err(format!("truncated {what} section")))?;
        let line = std::str::from_utf8(&data[*pos..*pos + end])
            .map_err(|_| err(format!("non-UTF-8 {what}")))?;
        *pos += end + 1;
        Ok(line.to_string())
    };
    // Binary AIGER keeps latch states implicit: line k defines the latch
    // with state literal 2·(I+k+1) and holds only `next [init]`.
    let mut latch_defs = Vec::with_capacity(header.l as usize);
    for _ in 0..header.l {
        let line = ascii_line(&mut pos, "latch")?;
        let mut it = line.split_whitespace();
        let next = it
            .next()
            .ok_or_else(|| err("missing latch next"))?
            .parse()
            .map_err(|_| err("invalid latch next literal"))?;
        let init = it
            .next()
            .map(|t| t.parse().map_err(|_| err("invalid latch init literal")))
            .transpose()?;
        if it.next().is_some() {
            return Err(err("trailing tokens on latch line"));
        }
        latch_defs.push(LatchDef { next, init });
    }
    let mut out_lits = Vec::with_capacity(header.o as usize);
    for _ in 0..header.o {
        let line = ascii_line(&mut pos, "output")?;
        out_lits.push(
            line.trim()
                .parse()
                .map_err(|_| err("invalid output literal"))?,
        );
    }
    let mut and_defs = Vec::with_capacity(header.a as usize);
    for k in 0..header.a {
        let lhs = (header.i + header.l + k + 1) * 2;
        let d0 = read_varint(data, &mut pos)?;
        let d1 = read_varint(data, &mut pos)?;
        let r0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| err("delta0 exceeds lhs"))?;
        let r1 = r0
            .checked_sub(d1)
            .ok_or_else(|| err("delta1 exceeds rhs0"))?;
        and_defs.push((lhs, r0, r1));
    }
    let symbols = match std::str::from_utf8(&data[pos..]) {
        Ok(rest) => parse_symbols(rest.lines()),
        Err(_) => HashMap::new(),
    };
    build(&header, &latch_defs, &and_defs, &out_lits, &symbols)
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // small in-range test constants
mod tests {
    use super::*;

    fn sample() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let f = aig.xor(ab, !c);
        let g = aig.or(a, c);
        aig.add_output("f", f);
        aig.add_output("g", !g);
        aig
    }

    /// A 2-bit shift register with an XOR feedback tap and one output.
    fn seq_sample() -> (Aig, Vec<AigerLatch>) {
        let mut aig = Aig::new();
        let d = aig.add_input("d");
        let s0 = aig.add_input("s0");
        let s1 = aig.add_input("s1");
        let fb = aig.xor(d, s1);
        let q = aig.and(s0, s1);
        aig.add_output("q", q);
        let latches = vec![
            AigerLatch {
                state: s0.var(),
                next: fb,
                init: AigerInit::Zero,
            },
            AigerLatch {
                state: s1.var(),
                next: s0,
                init: AigerInit::One,
            },
        ];
        (aig, latches)
    }

    fn check_equal(x: &Aig, y: &Aig) {
        assert_eq!(x.num_inputs(), y.num_inputs());
        assert_eq!(x.num_outputs(), y.num_outputs());
        for bits in 0u32..1 << x.num_inputs() {
            let vals: Vec<bool> = (0..x.num_inputs()).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(x.eval(&vals), y.eval(&vals), "at {vals:?}");
        }
    }

    #[test]
    fn ascii_round_trip() {
        let aig = sample();
        let text = write_aiger_ascii(&aig);
        let back = parse_aiger_ascii(&text).expect("parses");
        check_equal(&aig, &back);
        assert_eq!(back.input_name(0), "a");
        assert_eq!(back.outputs()[1].name, "g");
    }

    #[test]
    fn binary_round_trip() {
        let aig = sample();
        let bytes = write_aiger_binary(&aig);
        let back = parse_aiger_binary(&bytes).expect("parses");
        check_equal(&aig, &back);
        assert_eq!(back.input_name(2), "c");
    }

    #[test]
    fn ascii_and_binary_agree() {
        let aig = sample();
        let from_ascii = parse_aiger_ascii(&write_aiger_ascii(&aig)).expect("ascii");
        let from_bin = parse_aiger_binary(&write_aiger_binary(&aig)).expect("binary");
        check_equal(&from_ascii, &from_bin);
    }

    #[test]
    fn constant_outputs() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        aig.add_output("zero", Lit::FALSE);
        aig.add_output("one", Lit::TRUE);
        aig.add_output("pass", a);
        let text = write_aiger_ascii(&aig);
        let back = parse_aiger_ascii(&text).expect("parses");
        assert_eq!(back.eval(&[false]), vec![false, true, false]);
        assert_eq!(back.eval(&[true]), vec![false, true, true]);
        let back = parse_aiger_binary(&write_aiger_binary(&aig)).expect("parses");
        assert_eq!(back.eval(&[true]), vec![false, true, true]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_aiger_ascii("").is_err());
        assert!(parse_aiger_ascii("nope 1 1 0 0 0\n").is_err());
        // Latches rejected by the combinational entry point.
        assert!(parse_aiger_ascii("aag 1 0 1 0 0\n2 2\n").is_err());
        // M != I + L + A.
        assert!(parse_aiger_ascii("aag 5 2 0 0 1\n2\n4\n6 2 4\n").is_err());
        // Forward reference.
        assert!(parse_aiger_ascii("aag 3 1 0 1 2\n2\n4\n4 6 2\n6 2 2\n").is_err());
        // Odd lhs.
        assert!(parse_aiger_ascii("aag 2 1 0 0 1\n2\n5 2 2\n").is_err());
        // Truncated binary.
        assert!(parse_aiger_binary(b"aig 2 1 0 0 1\n\x80").is_err());
        assert!(parse_aiger_binary(b"no newline").is_err());
        // Sequential: truncated latch section.
        assert!(parse_aiger_ascii_seq("aag 1 0 1 0 0\n").is_err());
        // Non-canonical latch state literal.
        assert!(parse_aiger_ascii_seq("aag 2 1 1 0 0\n2\n6 2\n").is_err());
        // Bogus init literal.
        assert!(parse_aiger_ascii_seq("aag 1 0 1 0 0\n2 2 7\n").is_err());
        // Next literal out of range.
        assert!(parse_aiger_ascii_seq("aag 1 0 1 0 0\n2 9\n").is_err());
        assert!(parse_aiger_binary_seq(b"aig 1 0 1 0 0\n").is_err());
    }

    #[test]
    fn seq_ascii_round_trip_is_byte_fixpoint() {
        let (aig, latches) = seq_sample();
        let text = write_aiger_ascii_seq(&aig, &latches);
        let (back, back_latches) = parse_aiger_ascii_seq(&text).expect("parses");
        assert_eq!(back_latches.len(), 2);
        assert_eq!(back_latches[0].init, AigerInit::Zero);
        assert_eq!(back_latches[1].init, AigerInit::One);
        // Latch names survive via l<k> symbol entries.
        let pos = back.input_pos(back_latches[0].state).expect("input");
        assert_eq!(back.input_name(pos), "s0");
        assert_eq!(write_aiger_ascii_seq(&back, &back_latches), text);
    }

    #[test]
    fn seq_binary_round_trip_is_byte_fixpoint() {
        let (aig, latches) = seq_sample();
        let bytes = write_aiger_binary_seq(&aig, &latches);
        let (back, back_latches) = parse_aiger_binary_seq(&bytes).expect("parses");
        assert_eq!(back_latches.len(), 2);
        assert_eq!(write_aiger_binary_seq(&back, &back_latches), bytes);
    }

    #[test]
    fn seq_dontcare_init_round_trips() {
        let mut aig = Aig::new();
        let s = aig.add_input("s");
        aig.add_output("q", !s);
        let latches = vec![AigerLatch {
            state: s.var(),
            next: !s,
            init: AigerInit::DontCare,
        }];
        let text = write_aiger_ascii_seq(&aig, &latches);
        let (_, back_latches) = parse_aiger_ascii_seq(&text).expect("parses");
        assert_eq!(back_latches[0].init, AigerInit::DontCare);
    }

    /// Seeded random AIGs round-trip through both formats: write → parse
    /// is a semantic identity, names survive, and both encodings agree.
    /// Always-on complement to the feature-gated proptest version.
    #[test]
    fn random_aigs_round_trip_both_formats() {
        for seed in 0..30u64 {
            let mut rng = crate::SplitMix64::new(seed);
            let mut aig = Aig::new();
            let n_inputs = rng.range_inclusive(1, 8) as usize;
            let mut lits: Vec<Lit> = (0..n_inputs)
                .map(|i| aig.add_input(format!("x{i}")))
                .collect();
            lits.push(Lit::FALSE);
            for _ in 0..rng.range_inclusive(1, 60) {
                let mut a = lits[rng.index(lits.len())];
                let mut b = lits[rng.index(lits.len())];
                if rng.chance(0.5) {
                    a = !a;
                }
                if rng.chance(0.5) {
                    b = !b;
                }
                lits.push(aig.and(a, b));
            }
            for k in 0..rng.range_inclusive(1, 4) {
                let mut o = lits[rng.index(lits.len())];
                if rng.chance(0.5) {
                    o = !o;
                }
                aig.add_output(format!("y{k}"), o);
            }
            let text = write_aiger_ascii(&aig);
            let bytes = write_aiger_binary(&aig);
            let from_ascii = parse_aiger_ascii(&text).expect("ascii parses");
            let from_bin = parse_aiger_binary(&bytes).expect("binary parses");
            // Write → parse → write is a fixpoint: the parsed AIG is
            // already in AIGER order, so re-emission is byte-identical.
            assert_eq!(write_aiger_ascii(&from_ascii), text, "seed {seed}");
            assert_eq!(write_aiger_binary(&from_bin), bytes, "seed {seed}");
            for pos in 0..aig.num_inputs() {
                assert_eq!(from_ascii.input_name(pos), aig.input_name(pos));
                assert_eq!(from_bin.input_name(pos), aig.input_name(pos));
            }
            for (j, out) in aig.outputs().iter().enumerate() {
                assert_eq!(from_ascii.outputs()[j].name, out.name);
                assert_eq!(from_bin.outputs()[j].name, out.name);
            }
            check_equal(&aig, &from_ascii);
            check_equal(&aig, &from_bin);
        }
    }

    /// A deep AND chain forces multi-byte varint deltas in the binary
    /// encoding (the final gate's fanin spans the whole chain).
    #[test]
    fn binary_round_trip_with_multibyte_varints() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        // Each chain node's second fanin reaches all the way back to `a`,
        // so the encoded delta grows to ~40k (three varint bytes). The
        // strash never collapses these: every (prev, a) pair is fresh.
        let mut acc = aig.and(a, b);
        for _ in 0..20_000 {
            acc = aig.and(acc, a);
        }
        let far = aig.and(b, acc);
        aig.add_output("f", far);
        aig.add_output("g", !acc);
        let back = parse_aiger_binary(&write_aiger_binary(&aig)).expect("parses");
        assert_eq!(back.num_inputs(), 2);
        for bits in 0u32..4 {
            let vals = vec![bits & 1 == 1, bits >> 1 == 1];
            assert_eq!(back.eval(&vals), aig.eval(&vals), "at {vals:?}");
        }
    }

    #[test]
    fn external_handwritten_file() {
        // A 2-input mux written by hand: y = s ? d1 : d0, as
        // y = ¬(¬(¬s ∧ d0) ∧ ¬(s ∧ d1)).
        let text = "aag 6 3 0 1 3\n2\n4\n6\n13\n8 3 4\n10 2 6\n12 9 11\n\
                    i0 s\ni1 d0\ni2 d1\no0 y\n";
        let aig = parse_aiger_ascii(text).expect("parses");
        for s in [false, true] {
            for d0 in [false, true] {
                for d1 in [false, true] {
                    let expect = if s { d1 } else { d0 };
                    assert_eq!(
                        aig.eval(&[s, d0, d1]),
                        vec![expect],
                        "s={s} d0={d0} d1={d1}"
                    );
                }
            }
        }
    }

    /// A hand-written sequential AIGER file: a toggle flip-flop.
    #[test]
    fn external_handwritten_seq_file() {
        // state' = ¬state, q = state, init 0.
        let text = "aag 1 0 1 1 0\n2 3\n2\nl0 t\no0 q\n";
        let (aig, latches) = parse_aiger_ascii_seq(text).expect("parses");
        assert_eq!(latches.len(), 1);
        assert_eq!(latches[0].init, AigerInit::Zero);
        assert_eq!(latches[0].next, !aig.outputs()[0].lit);
    }
}
