//! Deterministic parallel solver portfolio.
//!
//! A hard query is raced by up to four diversified solver configurations
//! ([`SolverConfig::diversified`]) on scoped threads, first answer wins.
//! Determinism is the whole design problem: wall-clock finishing order is
//! scheduling noise, so the winner is chosen by *logical* time instead.
//!
//! Each member publishes its deterministic per-call conflict count
//! through a shared counter ([`Solver::set_progress`]); a member's finish
//! "epoch" is `spent_conflicts / epoch_conflicts`. The race winner is the
//! finisher with the smallest `(epoch, config index)` pair — a quantity
//! derived only from each member's own deterministic conflict count,
//! never from the OS schedule. The coordinator may only *declare* the
//! winner once every other member has either finished or provably
//! progressed past the winner's epoch (`progress ≥ (epoch_w + 1) ×
//! epoch_conflicts`), which makes the declaration itself
//! schedule-independent. Losers are cancelled through their member-local
//! [`SolveCtl`] flags; cancellation only affects wall time, never the
//! chosen result.
//!
//! Artifacts (models, cores, interpolants) differ between
//! configurations even when answers agree, so answer-carrying artifacts
//! must be configuration-independent. [`ArtifactPolicy`] pins the
//! artifact-bearing answer to configuration 0: when the raw race winner
//! is a helper (index > 0) with a pinned answer, the coordinator lets
//! member 0 run to completion and returns *its* result — byte-identical
//! to a single-configuration run — while helpers still shortcut the
//! opposite, answer-only outcome.
//!
//! The governor's conflict meter is charged a deterministic amount: each
//! member that finished by the winner's epoch is charged its actual
//! (deterministic) spend, every other member is charged its full
//! entitlement `(epoch_w + 1) × epoch_conflicts` — an upper bound on the
//! work a loser may perform before its cancellation point, independent of
//! when the flag was actually observed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{SolveCtl, SolverConfig, SolverStats};

/// How many configurations race and how long a logical epoch is.
#[derive(Clone, Debug)]
pub struct PortfolioSpec {
    /// Member count; `1` disables racing entirely (callers should use
    /// their plain single-solver path).
    pub members: usize,
    /// Conflicts per logical epoch of the deterministic tie-break.
    pub epoch_conflicts: u64,
}

impl PortfolioSpec {
    /// A portfolio of `members` configurations (clamped to 1..=4) with
    /// the default epoch length.
    pub fn new(members: usize) -> Self {
        PortfolioSpec {
            members: members.clamp(1, 4),
            epoch_conflicts: 2048,
        }
    }

    /// True when racing is on (more than one member).
    pub fn enabled(&self) -> bool {
        self.members > 1
    }

    /// The diversified member configurations, index 0 first.
    pub fn configs(&self) -> Vec<SolverConfig> {
        (0..self.members).map(SolverConfig::diversified).collect()
    }
}

/// Which answers must carry configuration-0 artifacts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactPolicy {
    /// Both answers are consumed answer-only; any member may win either.
    AnyWinner,
    /// A SAT answer's artifact (model/counterexample) is consumed: SAT
    /// must come from configuration 0; helpers may only shortcut UNSAT.
    PinSat,
    /// An UNSAT answer's artifact (core/interpolant) is consumed: UNSAT
    /// must come from configuration 0; helpers may only shortcut SAT.
    PinUnsat,
}

/// Per-member handle passed to the race closure.
pub struct MemberCtl {
    /// Install on the member's solver via [`crate::Solver::set_ctl`]:
    /// carries the member-local cancellation flag plus the caller's
    /// deadline.
    pub ctl: SolveCtl,
    /// Install via [`crate::Solver::set_progress`] so the coordinator
    /// can bound this member's logical progress.
    pub progress: Arc<AtomicU64>,
}

/// One member's deterministic result: the answer (`None` = cancelled),
/// an artifact, and the solver statistics *delta* for this query (whose
/// `conflicts` field is the member's logical clock).
pub struct MemberOutcome<T> {
    /// `Some(true)` SAT, `Some(false)` UNSAT, `None` cancelled/expired.
    pub answer: Option<bool>,
    /// Configuration-dependent payload (model, counterexample, ...).
    pub artifact: T,
    /// Stats spent on this query alone (not cumulative solver totals).
    pub stats: SolverStats,
}

/// The deterministic result of one race.
pub struct RaceOutcome<T> {
    /// `None` only when the caller's [`SolveCtl`] fired first.
    pub answer: Option<bool>,
    /// The winning member's artifact.
    pub artifact: Option<T>,
    /// Index of the member whose answer/artifact was used.
    pub winner: usize,
    /// The winning member's stats delta (what telemetry should record).
    pub stats: SolverStats,
    /// Deterministic total conflict charge across all members, for the
    /// governor's meter.
    pub charged: u64,
}

struct MemberSlot<T> {
    outcome: Mutex<Option<MemberOutcome<T>>>,
    finished: AtomicBool,
}

/// Races `run(index, config, member_ctl)` across the spec's
/// configurations and returns the deterministic winner.
///
/// `run` must be a pure function of `(index, config)` up to cancellation:
/// it builds (or owns) a solver, installs `member_ctl`'s flag and
/// progress counter, and solves with an unlimited conflict budget.
/// Finite-budget queries must not be raced — a helper's early answer
/// would change the `None`-on-exhaustion outcome of the
/// single-configuration path and break `--portfolio` byte-identity.
pub fn race<T, F>(
    spec: &PortfolioSpec,
    policy: ArtifactPolicy,
    ctl: &SolveCtl,
    run: F,
) -> RaceOutcome<T>
where
    T: Send,
    F: Fn(usize, SolverConfig, MemberCtl) -> MemberOutcome<T> + Sync,
{
    let n = spec.members.max(1);
    let epoch_len = spec.epoch_conflicts.max(1);
    let configs = spec.configs();
    let cancels: Vec<Arc<AtomicBool>> = (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let progress: Vec<Arc<AtomicU64>> = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let slots: Vec<MemberSlot<T>> = (0..n)
        .map(|_| MemberSlot {
            outcome: Mutex::new(None),
            finished: AtomicBool::new(false),
        })
        .collect();

    let cancel_all = |except: Option<usize>| {
        for (i, c) in cancels.iter().enumerate() {
            if Some(i) != except {
                c.store(true, Ordering::Relaxed);
            }
        }
    };

    let outcome = std::thread::scope(|s| {
        for i in 0..n {
            let cfg = configs[i].clone();
            let member_ctl = MemberCtl {
                ctl: SolveCtl {
                    deadline: ctl.deadline,
                    cancel: Some(Arc::clone(&cancels[i])),
                },
                progress: Arc::clone(&progress[i]),
            };
            let slot = &slots[i];
            let run = &run;
            s.spawn(move || {
                let out = run(i, cfg, member_ctl);
                *slot.outcome.lock().expect("member slot") = Some(out);
                slot.finished.store(true, Ordering::Release);
            });
        }

        // Wait for member `i` to finish (used once the winner is fixed).
        let wait_for = |i: usize| {
            while !slots[i].finished.load(Ordering::Acquire) {
                if ctl.expired() {
                    cancel_all(None);
                }
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        };

        let take = |i: usize| -> MemberOutcome<T> {
            slots[i]
                .outcome
                .lock()
                .expect("member slot")
                .take()
                .expect("finished member has an outcome")
        };

        loop {
            if ctl.expired() {
                cancel_all(None);
                for slot in &slots {
                    while !slot.finished.load(Ordering::Acquire) {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
                // Caller cancellation: answers are void; charge each
                // member its actual spend (the run is being abandoned, so
                // determinism of the charge no longer matters — the
                // governor is already latched).
                let mut charged = 0u64;
                for i in 0..n {
                    charged += take(i).stats.conflicts;
                }
                return RaceOutcome {
                    answer: None,
                    artifact: None,
                    winner: 0,
                    stats: SolverStats::default(),
                    charged,
                };
            }

            // Deterministic winner selection over answered finishers.
            let mut best: Option<(u64, usize)> = None;
            for (i, slot) in slots.iter().enumerate() {
                if !slot.finished.load(Ordering::Acquire) {
                    continue;
                }
                let guard = slot.outcome.lock().expect("member slot");
                let out = guard.as_ref().expect("finished member has an outcome");
                if out.answer.is_none() {
                    continue;
                }
                let epoch = out.stats.conflicts / epoch_len;
                if best.is_none_or(|b| (epoch, i) < b) {
                    best = Some((epoch, i));
                }
            }
            let Some((epoch_w, w)) = best else {
                if slots.iter().all(|s| s.finished.load(Ordering::Acquire)) {
                    // Everyone finished with a void answer (external
                    // cancel without the caller flag, or all expired).
                    let mut charged = 0u64;
                    for i in 0..n {
                        charged += take(i).stats.conflicts;
                    }
                    return RaceOutcome {
                        answer: None,
                        artifact: None,
                        winner: 0,
                        stats: SolverStats::default(),
                        charged,
                    };
                }
                std::thread::sleep(std::time::Duration::from_micros(50));
                continue;
            };

            // The declaration is valid only once every unfinished member
            // has provably left the winner's epoch.
            let bound = (epoch_w + 1).saturating_mul(epoch_len);
            let decided = (0..n).all(|i| {
                slots[i].finished.load(Ordering::Acquire)
                    || progress[i].load(Ordering::Relaxed) >= bound
            });
            if !decided {
                std::thread::sleep(std::time::Duration::from_micros(50));
                continue;
            }

            let winner_answer = {
                let guard = slots[w].outcome.lock().expect("member slot");
                guard.as_ref().expect("finished").answer
            };
            let pinned = match (policy, winner_answer) {
                (ArtifactPolicy::PinSat, Some(true)) => w != 0,
                (ArtifactPolicy::PinUnsat, Some(false)) => w != 0,
                _ => false,
            };

            let effective = if pinned {
                // The helper's answer is artifact-bearing: fall back to
                // configuration 0's own (identical, semantic determinism)
                // answer and artifact so the result matches a
                // single-configuration run byte-for-byte.
                cancel_all(Some(0));
                wait_for(0);
                0
            } else {
                cancel_all(Some(w));
                w
            };

            // Deterministic meter charge: finishers within the winner's
            // epoch pay their actual spend; everyone else pays the epoch
            // entitlement. The pinned continuation of member 0 pays its
            // full (deterministic) spend.
            for slot in &slots {
                while !slot.finished.load(Ordering::Acquire) {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
            }
            let mut charged = 0u64;
            let mut outs: Vec<MemberOutcome<T>> = Vec::with_capacity(n);
            for i in 0..n {
                outs.push(take(i));
            }
            for (i, out) in outs.iter().enumerate() {
                let spent = out.stats.conflicts;
                let finished_in_time = out.answer.is_some() && spent / epoch_len <= epoch_w;
                if i == effective || finished_in_time {
                    charged = charged.saturating_add(spent);
                } else {
                    charged = charged.saturating_add(bound);
                }
            }
            let win = outs.swap_remove(effective);
            // A pinned member 0 can itself have been expired by the
            // caller's deadline mid-continuation; surface that as a void
            // answer rather than a fabricated one.
            return RaceOutcome {
                answer: win.answer,
                artifact: win.answer.map(|_| win.artifact),
                winner: effective,
                stats: win.stats,
                charged,
            };
        }
    });
    outcome
}
