//! 64-way parallel bit-vector simulation.
//!
//! Each node is simulated on 64 input patterns at once using one `u64` word
//! per node per word-column. This powers FRAIG signature computation and
//! randomized semantic checks.
//!
//! The engine is arena-backed and allocation-free on its hot paths: all
//! node values live in one flat `Vec<u64>` ([`SimVectors`]) handed out as
//! borrowed slices ([`SimVectors::node_words`]) or iterators
//! ([`SimVectors::lit_words_iter`]), and equivalence-class bucketing uses a
//! 128-bit [`SimVectors::fingerprint`] of the canonical words instead of
//! materializing per-node `Vec<u64>` keys. [`IncrementalSim`] extends the
//! arena with appended counterexample word-columns and re-simulates only
//! the new columns, which is what makes multi-round FRAIG refinement cost
//! O(nodes × new words) instead of O(nodes × all words).

use crate::aig::SENTINEL_INPUT;
use crate::{Aig, Lit, SplitMix64, Var};

/// Result of a parallel simulation: one row of `words` 64-bit words per
/// node, stored in a single flat arena.
///
/// Rows are node-major with a fixed `stride >= words`, so a node's words
/// are one contiguous borrowed slice; the slack between `words` and
/// `stride` is headroom for [`IncrementalSim`] column appends.
#[derive(Clone, Debug)]
pub struct SimVectors {
    words: usize,
    stride: usize,
    values: Vec<u64>,
}

impl SimVectors {
    /// Number of 64-pattern word columns.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Borrowed slice of a node's simulation words (positive polarity).
    #[inline]
    pub fn node_words(&self, var: Var) -> &[u64] {
        let base = var.index() as usize * self.stride;
        &self.values[base..base + self.words]
    }

    /// Iterator over the simulation words of a literal (complement
    /// applied on the fly; no allocation).
    #[inline]
    pub fn lit_words_iter(&self, lit: Lit) -> impl Iterator<Item = u64> + '_ {
        let mask = if lit.is_complement() { !0u64 } else { 0 };
        self.node_words(lit.var()).iter().map(move |&w| w ^ mask)
    }

    /// Writes the simulation words of a literal into `out` (cleared
    /// first), reusing its capacity.
    pub fn lit_words_into(&self, lit: Lit, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.lit_words_iter(lit));
    }

    /// Returns the simulation words of a literal (complement applied).
    ///
    /// Allocates; prefer [`SimVectors::node_words`],
    /// [`SimVectors::lit_words_iter`], or [`SimVectors::lit_words_into`]
    /// on hot paths.
    pub fn lit_words(&self, lit: Lit) -> Vec<u64> {
        self.lit_words_iter(lit).collect()
    }

    /// Returns the value of `lit` under pattern `pattern` (a global pattern
    /// index across all word columns).
    pub fn lit_bit(&self, lit: Lit, pattern: usize) -> bool {
        let word = pattern / 64;
        let bit = pattern % 64;
        let v = self.node_words(lit.var())[word] >> bit & 1 == 1;
        v ^ lit.is_complement()
    }

    /// Canonicalization phase of a node: `true` if the canonical words are
    /// the complement of the positive literal's words (first pattern bit
    /// set). Both literals of a node share phase; O(1).
    #[inline]
    pub fn phase(&self, var: Var) -> bool {
        self.node_words(var).first().is_some_and(|w| w & 1 == 1)
    }

    /// Iterator over the *canonical* words of a literal's node (the
    /// positive words, complemented so the first pattern bit is 0).
    #[inline]
    pub fn canon_words_iter(&self, lit: Lit) -> impl Iterator<Item = u64> + '_ {
        let mask = if self.phase(lit.var()) { !0u64 } else { 0 };
        self.node_words(lit.var()).iter().map(move |&w| w ^ mask)
    }

    /// Full-word comparison of two nodes' canonical words (the tie-break
    /// used on [`SimVectors::fingerprint`] collisions). Allocation-free.
    pub fn canon_eq(&self, a: Lit, b: Lit) -> bool {
        self.canon_words_iter(a).eq(self.canon_words_iter(b))
    }

    /// A signature for equivalence-class hashing: the simulation words of
    /// the positive literal, canonicalized so that the first bit is 0
    /// (returns `(canonical_words, phase)` where `phase` is true if the
    /// words were complemented to canonicalize).
    ///
    /// Allocates; the FRAIG hot path uses [`SimVectors::fingerprint`]
    /// with [`SimVectors::canon_eq`] as the collision fallback instead.
    pub fn signature(&self, lit: Lit) -> (Vec<u64>, bool) {
        (self.canon_words_iter(lit).collect(), self.phase(lit.var()))
    }

    /// 128-bit fingerprint of a node's canonical words, plus the
    /// canonicalization phase.
    ///
    /// Two equivalent-or-complementary nodes always agree on the
    /// fingerprint; distinct functions collide only astronomically
    /// rarely, and callers resolve collisions with a full-word
    /// [`SimVectors::canon_eq`] — so the hash only has to be cheap and
    /// well-mixed, never cryptographic. Allocation-free: a SplitMix64
    /// lane plus an FNV-style multiply lane folded over the canonical
    /// words.
    pub fn fingerprint(&self, lit: Lit) -> (u128, bool) {
        let phase = self.phase(lit.var());
        let mask = if phase { !0u64 } else { 0 };
        let mut h0: u64 = 0x243f_6a88_85a3_08d3;
        let mut h1: u64 = 0x1319_8a2e_0370_7344;
        for &raw in self.node_words(lit.var()) {
            let w = raw ^ mask;
            h0 = mix64(h0 ^ w);
            h1 = (h1 ^ w).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        ((u128::from(h0) << 64) | u128::from(mix64(h1)), phase)
    }
}

/// SplitMix64 finalizer: a fast invertible 64-bit mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Aig {
    /// Simulates the whole AIG on the given input patterns.
    ///
    /// `patterns[pos]` holds `words` words of stimulus for the input at
    /// position `pos` (bit *b* of word *w* is pattern `64*w + b`).
    ///
    /// # Panics
    ///
    /// Panics if `patterns.len() != self.num_inputs()` or rows have uneven
    /// lengths.
    pub fn simulate(&self, patterns: &[Vec<u64>]) -> SimVectors {
        let words = check_patterns(self, patterns);
        let mut sim = SimVectors {
            words,
            stride: words,
            values: vec![0u64; self.len() * words],
        };
        write_inputs(self, &mut sim, patterns);
        resim_ands(self, &mut sim, 0);
        sim
    }

    /// Simulates with `words * 64` uniformly random patterns from `seed`
    /// (SplitMix64; deterministic across runs, and distinct seeds give
    /// distinct streams — unlike the previous xorshift seeding, which
    /// collapsed every even/odd seed pair onto one stream).
    ///
    /// The stimulus is drawn straight into the flat arena (input-major,
    /// i.e. all words of input 0, then input 1, ...), producing bit-for-bit
    /// the stream a materialized `Vec<Vec<u64>>` of per-input rows fed to
    /// [`Aig::simulate`] would.
    pub fn simulate_random(&self, words: usize, seed: u64) -> SimVectors {
        // An input-less AIG has an empty stimulus block, which simulate()
        // has always treated as one word-column; keep that width.
        let words = if self.num_inputs() == 0 { 1 } else { words };
        let mut sim = SimVectors {
            words,
            stride: words,
            values: vec![0u64; self.len() * words],
        };
        fill_random_inputs(self, &mut sim, seed);
        resim_ands(self, &mut sim, 0);
        sim
    }
}

/// Validates a stimulus block and returns its word-column count.
fn check_patterns(aig: &Aig, patterns: &[Vec<u64>]) -> usize {
    assert_eq!(patterns.len(), aig.num_inputs(), "stimulus arity mismatch");
    let words = patterns.first().map_or(1, Vec::len);
    assert!(
        patterns.iter().all(|p| p.len() == words),
        "uneven stimulus rows"
    );
    words
}

/// Copies the stimulus block into the input rows of the arena.
fn write_inputs(aig: &Aig, sim: &mut SimVectors, patterns: &[Vec<u64>]) {
    for (pos, &iv) in aig.inputs().iter().enumerate() {
        let base = iv.index() as usize * sim.stride;
        sim.values[base..base + sim.words].copy_from_slice(&patterns[pos]);
    }
}

/// Draws `sim.words` random words per input straight into the arena rows,
/// input-major (identical stream to materializing per-input pattern rows
/// from the same seed and copying them with [`write_inputs`]).
fn fill_random_inputs(aig: &Aig, sim: &mut SimVectors, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    for &iv in aig.inputs() {
        let base = iv.index() as usize * sim.stride;
        for w in &mut sim.values[base..base + sim.words] {
            *w = rng.next_u64();
        }
    }
}

/// Number of 64-pattern words per unrolled strip in [`resim_ands`]:
/// 512 patterns per iteration, a fixed-bound inner loop the
/// autovectorizer turns into wide vector ops.
const STRIP: usize = 8;

/// Recomputes every AND node over columns `from..sim.words`. Input and
/// constant rows must already hold their values for those columns.
///
/// Runs directly over the SoA fanin columns and processes each row in
/// [`STRIP`]-word strips. Because the AIG is topologically ordered, both
/// fanin rows end strictly before the AND's own row in the arena, so
/// `split_at_mut` at the row base yields the destination row plus shared
/// borrows of the fanin rows with no copying.
fn resim_ands(aig: &Aig, sim: &mut SimVectors, from: usize) {
    let (stride, words) = (sim.stride, sim.words);
    if from >= words {
        return;
    }
    let n = words - from;
    let (fan0s, fan1s) = aig.fanin_raw();
    for (v, (&f0, &f1)) in fan0s.iter().zip(fan1s).enumerate() {
        if f0 >= SENTINEL_INPUT {
            continue;
        }
        let m0 = if f0 & 1 == 1 { !0u64 } else { 0 };
        let m1 = if f1 & 1 == 1 { !0u64 } else { 0 };
        let base = v * stride + from;
        let b0 = (f0 >> 1) as usize * stride + from;
        let b1 = (f1 >> 1) as usize * stride + from;
        and_strip(&mut sim.values, base, b0, b1, m0, m1, n);
    }
}

/// Computes `values[base..base+n] = (r0 ^ m0) & (r1 ^ m1)` where `r0`/`r1`
/// are the `n`-word runs at `b0`/`b1`, both strictly below `base`.
#[inline]
fn and_strip(values: &mut [u64], base: usize, b0: usize, b1: usize, m0: u64, m1: u64, n: usize) {
    debug_assert!(b0 + n <= base && b1 + n <= base, "fanin rows precede dst");
    let (lo, hi) = values.split_at_mut(base);
    let dst = &mut hi[..n];
    let r0 = &lo[b0..b0 + n];
    let r1 = &lo[b1..b1 + n];
    let mut d = dst.chunks_exact_mut(STRIP);
    let mut a = r0.chunks_exact(STRIP);
    let mut b = r1.chunks_exact(STRIP);
    for ((d, a), b) in (&mut d).zip(&mut a).zip(&mut b) {
        for k in 0..STRIP {
            d[k] = (a[k] ^ m0) & (b[k] ^ m1);
        }
    }
    for ((d, &a), &b) in d
        .into_remainder()
        .iter_mut()
        .zip(a.remainder())
        .zip(b.remainder())
    {
        *d = (a ^ m0) & (b ^ m1);
    }
}

/// An incrementally extensible simulation: a base stimulus plus appended
/// counterexample patterns and extra word-columns, re-simulating only the
/// columns that changed.
///
/// Protocol: append patterns ([`IncrementalSim::append_pattern`]) and/or
/// whole word-columns ([`IncrementalSim::append_word_column`]), then call
/// [`IncrementalSim::resimulate`] once before reading
/// [`IncrementalSim::vectors`]. Appended single patterns pack 64-to-a-column;
/// a whole-column append closes the currently open pattern column.
#[derive(Clone, Debug)]
pub struct IncrementalSim {
    sim: SimVectors,
    /// First column whose AND rows are stale (== `sim.words` when clean).
    dirty_from: usize,
    /// Free bit slots in the open single-pattern column (0 = none open).
    slots_free: usize,
    resim_columns: u64,
    resim_columns_saved: u64,
}

impl IncrementalSim {
    /// Builds the engine from a base stimulus (fully simulated on return)
    /// with default column headroom.
    pub fn new(aig: &Aig, patterns: &[Vec<u64>]) -> Self {
        Self::with_capacity(aig, patterns, 0)
    }

    /// Like [`IncrementalSim::new`] with at least `capacity_words` columns
    /// reserved, so appends up to that point never re-layout the arena.
    pub fn with_capacity(aig: &Aig, patterns: &[Vec<u64>], capacity_words: usize) -> Self {
        let words = check_patterns(aig, patterns);
        // Headroom for a few refine rounds before the first re-layout.
        let stride = capacity_words.max(words + words / 2 + 4);
        let mut sim = SimVectors {
            words,
            stride,
            values: vec![0u64; aig.len() * stride],
        };
        write_inputs(aig, &mut sim, patterns);
        resim_ands(aig, &mut sim, 0);
        IncrementalSim {
            dirty_from: words,
            slots_free: 0,
            resim_columns: words as u64,
            resim_columns_saved: 0,
            sim,
        }
    }

    /// Builds the engine over `words * 64` uniformly random patterns drawn
    /// straight into the flat arena (no materialized per-input rows).
    ///
    /// Bit-for-bit equivalent to generating input-major pattern rows from
    /// the same SplitMix64 seed and calling [`IncrementalSim::new`], at
    /// zero intermediate allocation. An input-less AIG gets one stimulus
    /// column, matching [`Aig::simulate`] on an empty pattern block.
    pub fn with_random_base(aig: &Aig, words: usize, seed: u64) -> Self {
        let words = if aig.num_inputs() == 0 { 1 } else { words };
        // Headroom for a few refine rounds before the first re-layout.
        let stride = words + words / 2 + 4;
        let mut sim = SimVectors {
            words,
            stride,
            values: vec![0u64; aig.len() * stride],
        };
        fill_random_inputs(aig, &mut sim, seed);
        resim_ands(aig, &mut sim, 0);
        IncrementalSim {
            dirty_from: words,
            slots_free: 0,
            resim_columns: words as u64,
            resim_columns_saved: 0,
            sim,
        }
    }

    /// The simulated values.
    ///
    /// Call [`IncrementalSim::resimulate`] after appends first; debug
    /// builds assert there are no stale columns.
    pub fn vectors(&self) -> &SimVectors {
        debug_assert_eq!(
            self.dirty_from, self.sim.words,
            "resimulate() before reading vectors()"
        );
        &self.sim
    }

    /// Number of 64-pattern word columns currently held.
    pub fn words(&self) -> usize {
        self.sim.words
    }

    /// Word-columns computed so far (initial simulation plus incremental
    /// re-simulation work).
    pub fn resim_columns(&self) -> u64 {
        self.resim_columns
    }

    /// Word-columns a full per-[`IncrementalSim::resimulate`] re-simulation
    /// would have recomputed but the incremental engine skipped.
    pub fn resim_columns_saved(&self) -> u64 {
        self.resim_columns_saved
    }

    /// Appends one stimulus pattern (`bits[pos]` = value of the input at
    /// position `pos`; missing trailing inputs read as 0), packing it into
    /// the open pattern column or a fresh column.
    ///
    /// # Panics
    ///
    /// Panics if `bits` names more inputs than `aig` has.
    pub fn append_pattern(&mut self, aig: &Aig, bits: &[bool]) {
        assert!(bits.len() <= aig.num_inputs(), "stimulus arity mismatch");
        if self.slots_free == 0 {
            self.push_zero_column(aig);
            self.slots_free = 64;
        }
        let col = self.sim.words - 1;
        let bit = 64 - self.slots_free;
        for (pos, &iv) in aig.inputs().iter().enumerate() {
            if bits.get(pos).copied().unwrap_or(false) {
                self.sim.values[iv.index() as usize * self.sim.stride + col] |= 1u64 << bit;
            }
        }
        self.slots_free -= 1;
        self.dirty_from = self.dirty_from.min(col);
    }

    /// Appends one whole 64-pattern word-column (`column[pos]` = stimulus
    /// word of the input at position `pos`), closing any open
    /// single-pattern column.
    ///
    /// # Panics
    ///
    /// Panics if `column.len() != aig.num_inputs()`.
    pub fn append_word_column(&mut self, aig: &Aig, column: &[u64]) {
        assert_eq!(column.len(), aig.num_inputs(), "stimulus arity mismatch");
        self.push_zero_column(aig);
        self.slots_free = 0;
        let col = self.sim.words - 1;
        for (pos, &iv) in aig.inputs().iter().enumerate() {
            self.sim.values[iv.index() as usize * self.sim.stride + col] = column[pos];
        }
        self.dirty_from = self.dirty_from.min(col);
    }

    /// Appends one uniformly random word-column drawn from `rng`
    /// (allocation-free; one word per input in input order).
    pub fn append_random_column(&mut self, aig: &Aig, rng: &mut SplitMix64) {
        self.push_zero_column(aig);
        self.slots_free = 0;
        let col = self.sim.words - 1;
        for &iv in aig.inputs() {
            self.sim.values[iv.index() as usize * self.sim.stride + col] = rng.next_u64();
        }
        self.dirty_from = self.dirty_from.min(col);
    }

    /// Re-simulates only the stale columns; no-op when clean. Returns the
    /// number of columns recomputed.
    pub fn resimulate(&mut self, aig: &Aig) -> usize {
        let fresh = self.sim.words - self.dirty_from;
        if fresh > 0 {
            resim_ands(aig, &mut self.sim, self.dirty_from);
            self.resim_columns += fresh as u64;
            // A non-incremental engine would have recomputed the clean
            // prefix too.
            self.resim_columns_saved += self.dirty_from as u64;
            self.dirty_from = self.sim.words;
        }
        fresh
    }

    /// Opens a fresh all-zero column, growing the arena stride (geometric,
    /// in-place re-layout) when the headroom is exhausted.
    fn push_zero_column(&mut self, aig: &Aig) {
        let sim = &mut self.sim;
        if sim.words == sim.stride {
            let new_stride = (sim.stride * 2).max(4);
            sim.values.resize(aig.len() * new_stride, 0);
            for v in (0..aig.len()).rev() {
                sim.values
                    .copy_within(v * sim.stride..v * sim.stride + sim.words, v * new_stride);
            }
            sim.stride = new_stride;
        }
        let col = sim.words;
        sim.words += 1;
        // Only constant and input rows need defined values; AND rows are
        // overwritten by the next resimulate().
        sim.values[Var::CONST.index() as usize * sim.stride + col] = 0;
        for &iv in aig.inputs() {
            sim.values[iv.index() as usize * sim.stride + col] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_matches_eval() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let f = aig.mux(a, b, c);
        let g = aig.xor(f, c);
        aig.add_output("f", f);
        aig.add_output("g", g);

        // Exhaustive 8 patterns packed into one word per input.
        let patterns: Vec<Vec<u64>> = (0..3)
            .map(|i| {
                let mut w = 0u64;
                for p in 0..8u32 {
                    if p >> i & 1 == 1 {
                        w |= 1 << p;
                    }
                }
                vec![w]
            })
            .collect();
        let sim = aig.simulate(&patterns);
        for p in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|i| p >> i & 1 == 1).collect();
            let out = aig.eval(&bits);
            assert_eq!(sim.lit_bit(f, p), out[0], "f pattern {p}");
            assert_eq!(sim.lit_bit(g, p), out[1], "g pattern {p}");
        }
    }

    #[test]
    fn complemented_lit_words() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let sim = aig.simulate(&[vec![0b1010]]);
        assert_eq!(sim.lit_words(a)[0], 0b1010);
        assert_eq!(sim.lit_words(!a)[0], !0b1010u64);
        assert_eq!(sim.node_words(a.var()), &[0b1010]);
        let mut buf = vec![99; 7];
        sim.lit_words_into(!a, &mut buf);
        assert_eq!(buf, vec![!0b1010u64]);
    }

    #[test]
    fn signature_canonicalization() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let sim = aig.simulate(&[vec![0b1011]]);
        let (sig_pos, ph_pos) = sim.signature(a);
        let (sig_neg, ph_neg) = sim.signature(!a);
        // The signature identifies the *node*, so both literals of the same
        // node share the canonical signature and phase.
        assert_eq!(sig_pos, sig_neg);
        assert_eq!(ph_pos, ph_neg);
        // First pattern bit of `a` is 1, so canonicalization flipped it.
        assert!(ph_pos);
        assert_eq!(sig_pos[0], !0b1011u64);
    }

    #[test]
    fn fingerprint_agrees_with_signature_classes() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        let g = aig.or(a, b); // g = !(!a & !b): complement structure
        let sim = aig.simulate(&[vec![0b1100, 7], vec![0b1010, 42]]);
        // Same node, either polarity: same fingerprint and phase.
        assert_eq!(sim.fingerprint(f), sim.fingerprint(!f));
        // Distinct functions: distinct fingerprints (with these words).
        assert_ne!(sim.fingerprint(f).0, sim.fingerprint(g.var().pos()).0);
        // canon_eq is reflexive and matches signature equality.
        assert!(sim.canon_eq(f, !f));
        assert!(!sim.canon_eq(f, a));
        assert_eq!(
            sim.signature(f).0,
            sim.canon_words_iter(f).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_simulation_is_deterministic() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        let s1 = aig.simulate_random(2, 42);
        let s2 = aig.simulate_random(2, 42);
        assert_eq!(s1.lit_words(f), s2.lit_words(f));
    }

    #[test]
    fn random_simulation_seeds_are_distinct() {
        // Regression: `seed | 1` xorshift seeding collapsed every even/odd
        // seed pair (e.g. 42 and 43) onto the same stimulus stream.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let s_even = aig.simulate_random(2, 42);
        let s_odd = aig.simulate_random(2, 43);
        assert_ne!(s_even.lit_words(a), s_odd.lit_words(a));
    }

    #[test]
    fn constant_simulates_to_zero() {
        let aig = Aig::new();
        let sim = aig.simulate(&[]);
        assert_eq!(sim.lit_words(Lit::FALSE)[0], 0);
        assert_eq!(sim.lit_words(Lit::TRUE)[0], !0u64);
    }

    /// The deleted `fraig::random_patterns` path, reconstructed: per-input
    /// rows materialized input-major from one SplitMix64 stream. Drawing
    /// the same stream straight into the arena must yield bit-identical
    /// values for every node.
    #[test]
    fn random_base_matches_materialized_pattern_rows() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let f = aig.mux(a, b, c);
        let ac = aig.and(a, c);
        let g = aig.xor(f, ac);
        aig.add_output("g", g);

        let (words, seed) = (8usize, 0x5eed_cafe_u64);
        let mut rng = SplitMix64::new(seed);
        let patterns: Vec<Vec<u64>> = (0..aig.num_inputs())
            .map(|_| (0..words).map(|_| rng.next_u64()).collect())
            .collect();
        let reference = IncrementalSim::new(&aig, &patterns);
        let direct = IncrementalSim::with_random_base(&aig, words, seed);
        assert_eq!(direct.words(), reference.words());
        for (v, _) in aig.iter_nodes() {
            assert_eq!(
                direct.vectors().node_words(v),
                reference.vectors().node_words(v),
                "mismatch on {v:?}"
            );
        }
        let one_shot = aig.simulate_random(words, seed);
        for (v, _) in aig.iter_nodes() {
            assert_eq!(one_shot.node_words(v), reference.vectors().node_words(v));
        }

        // Input-less AIGs keep the historical one-column stimulus width.
        let constant_only = Aig::new();
        let isim = IncrementalSim::with_random_base(&constant_only, 8, 1);
        assert_eq!(isim.words(), 1);
        assert_eq!(constant_only.simulate_random(8, 1).words(), 1);
    }

    #[test]
    fn incremental_append_matches_full_simulation() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let f = aig.mux(a, b, c);
        let ac = aig.and(a, c);
        let g = aig.xor(f, ac);
        aig.add_output("g", g);

        let base = vec![vec![0x0123], vec![0x4567], vec![0x89ab]];
        let mut isim = IncrementalSim::new(&aig, &base);
        // Two single patterns, one whole column, one more pattern.
        isim.append_pattern(&aig, &[true, false, true]);
        isim.append_pattern(&aig, &[false, true, true]);
        isim.append_word_column(&aig, &[!0, 0x5555, 0xaaaa]);
        isim.append_pattern(&aig, &[true, true, false]);
        isim.resimulate(&aig);

        // Reference: one shot over the concatenated stimulus.
        let full = aig.simulate(&[
            vec![0x0123, 0b01, !0, 0b1],
            vec![0x4567, 0b10, 0x5555, 0b1],
            vec![0x89ab, 0b11, 0xaaaa, 0b0],
        ]);
        assert_eq!(isim.words(), 4);
        for lit in [a, b, c, f, g, !g] {
            assert_eq!(
                isim.vectors().lit_words(lit),
                full.lit_words(lit),
                "mismatch on {lit:?}"
            );
        }
    }

    #[test]
    fn incremental_growth_preserves_existing_columns() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        let mut isim = IncrementalSim::with_capacity(&aig, &[vec![0b1100], vec![0b1010]], 2);
        let mut rng = SplitMix64::new(9);
        // Far past the initial stride: several re-layouts.
        for _ in 0..40 {
            isim.append_random_column(&aig, &mut rng);
        }
        isim.resimulate(&aig);
        assert_eq!(isim.words(), 41);
        assert_eq!(isim.vectors().lit_words(f)[0], 0b1000);
        // Every column still satisfies f = a & b.
        let v = isim.vectors();
        for w in 0..41 {
            assert_eq!(
                v.node_words(f.var())[w],
                v.node_words(a.var())[w] & v.node_words(b.var())[w]
            );
        }
        assert!(isim.resim_columns() >= 41);
        assert_eq!(isim.resim_columns_saved(), 1, "base column skipped once");
    }

    #[test]
    fn resimulate_is_idempotent_and_counts_savings() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        aig.add_output("f", f);
        let mut isim = IncrementalSim::new(&aig, &[vec![1, 2], vec![3, 4]]);
        assert_eq!(isim.resimulate(&aig), 0, "clean engine is a no-op");
        assert_eq!(isim.resim_columns(), 2);
        isim.append_pattern(&aig, &[true, true]);
        assert_eq!(isim.resimulate(&aig), 1);
        assert_eq!(isim.resim_columns(), 3);
        assert_eq!(isim.resim_columns_saved(), 2);
        // Another pattern lands in the same open column: one dirty column.
        isim.append_pattern(&aig, &[true, false]);
        assert_eq!(isim.resimulate(&aig), 1);
        assert_eq!(isim.resim_columns_saved(), 4);
    }
}
