//! BTOR2 I/O (bit-level subset).
//!
//! Reads and writes the BTOR2 word-level model-checking format
//! restricted to 1-bit sorts — exactly the fragment a gate-level ECO
//! flow needs. Supported node tags: `sort bitvec 1`, `input`, `state`,
//! `init`, `next`, `output`, constants (`const`/`constd`/`zero`/`one`/
//! `ones`), and the operators `not`, `and`, `or`, `xor`, `xnor`, `nand`,
//! `nor`, `implies`, `iff`, `eq`, `neq`, `ite`. Negative operand ids
//! denote bitwise negation, matching btor2tools.
//!
//! The writer emits a canonical form — sort first, inputs, states,
//! constants, ANDs in topological order, `next`/`init` lines, outputs —
//! plus `; net <name> <id>` footer comments carrying the full named-net
//! map, so write → parse → write is a byte-level fixpoint and ECO base
//! candidates survive a BTOR2 round-trip.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use eco_aig::{Aig, Lit, Var};
use eco_netlist::LatchInit;

use crate::netlist::{Latch, SeqNetlist};

/// Error produced when BTOR2 text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBtor2Error {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseBtor2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "btor2 line {}: {}", self.line, self.message)
    }
}

impl Error for ParseBtor2Error {}

/// Parses a 1-bit BTOR2 model.
///
/// Latch states become inputs of the elaborated AIG (named from their
/// symbols, or `s<id>`); `init` values must be constants. `; net <name>
/// <id>` comments — as emitted by [`write_btor2`] — extend the named-net
/// map beyond the input/state/output symbols.
///
/// # Errors
///
/// Returns [`ParseBtor2Error`] on non-1-bit sorts, unsupported tags,
/// undefined or forward operand references, states without `next`, or
/// non-constant `init` values.
pub fn parse_btor2(text: &str) -> Result<SeqNetlist, ParseBtor2Error> {
    let err = |line: usize, m: String| ParseBtor2Error { line, message: m };

    let mut aig = Aig::new();
    let mut sorts: HashMap<i64, ()> = HashMap::new();
    let mut nodes: HashMap<i64, Lit> = HashMap::new();
    // (id, declaration line) per state, in declaration order.
    let mut states: Vec<(i64, usize)> = Vec::new();
    let mut state_next: HashMap<i64, Lit> = HashMap::new();
    let mut state_init: HashMap<i64, LatchInit> = HashMap::new();
    let mut outputs: Vec<(Lit, Option<String>)> = Vec::new();
    let mut net_names: Vec<(String, i64)> = Vec::new();
    let mut net_lits: HashMap<String, Lit> = HashMap::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix(';') {
            // Canonical net-map footer: `; net <name> <signed-id>`.
            let toks: Vec<&str> = comment.split_whitespace().collect();
            if toks.len() == 3 && toks[0] == "net" {
                let id: i64 = toks[2]
                    .parse()
                    .map_err(|_| err(line_no, format!("invalid net id `{}`", toks[2])))?;
                net_names.push((toks[1].to_string(), id));
            }
            continue;
        }
        let mut toks = line.split_whitespace();
        let id: i64 = {
            let t = toks.next().expect("non-empty line");
            t.parse()
                .map_err(|_| err(line_no, format!("invalid node id `{t}`")))?
        };
        if id <= 0 {
            return Err(err(line_no, "node ids must be positive".into()));
        }
        let tag = toks
            .next()
            .ok_or_else(|| err(line_no, "missing node tag".into()))?;
        let args: Vec<&str> = toks.collect();
        let num = |k: usize, what: &str| -> Result<i64, ParseBtor2Error> {
            args.get(k)
                .ok_or_else(|| err(line_no, format!("missing {what}")))?
                .parse()
                .map_err(|_| err(line_no, format!("invalid {what}")))
        };
        let resolve = |nodes: &HashMap<i64, Lit>, sid: i64| -> Result<Lit, ParseBtor2Error> {
            let lit = nodes
                .get(&sid.abs())
                .copied()
                .ok_or_else(|| err(line_no, format!("operand {sid} is not defined yet")))?;
            Ok(lit.xor_complement(sid < 0))
        };
        let check_sort = |sorts: &HashMap<i64, ()>, sid: i64| -> Result<(), ParseBtor2Error> {
            if sorts.contains_key(&sid) {
                Ok(())
            } else {
                Err(err(line_no, format!("sort {sid} is not defined")))
            }
        };
        match tag {
            "sort" => match (args.first().copied(), args.get(1).copied()) {
                (Some("bitvec"), Some("1")) => {
                    sorts.insert(id, ());
                }
                (Some("bitvec"), Some(w)) => {
                    return Err(err(
                        line_no,
                        format!("only bit-width 1 is supported, got bitvec {w}"),
                    ))
                }
                (Some(other), _) => {
                    return Err(err(line_no, format!("unsupported sort `{other}`")))
                }
                (None, _) => return Err(err(line_no, "missing sort kind".into())),
            },
            "input" => {
                check_sort(&sorts, num(0, "sort id")?)?;
                let symbol = args.get(1).map(|s| (*s).to_string());
                let name = symbol.unwrap_or_else(|| format!("i{id}"));
                let lit = aig.add_input(name.clone());
                nodes.insert(id, lit);
                net_lits.insert(name, lit);
            }
            "state" => {
                check_sort(&sorts, num(0, "sort id")?)?;
                let symbol = args.get(1).map(|s| (*s).to_string());
                let name = symbol.unwrap_or_else(|| format!("s{id}"));
                let lit = aig.add_input(name.clone());
                nodes.insert(id, lit);
                net_lits.insert(name, lit);
                states.push((id, line_no));
            }
            "init" => {
                check_sort(&sorts, num(0, "sort id")?)?;
                let state = num(1, "state id")?;
                let value = resolve(&nodes, num(2, "init value id")?)?;
                if !states.iter().any(|&(s, _)| s == state) {
                    return Err(err(line_no, format!("init references non-state {state}")));
                }
                let init = match value {
                    Lit::FALSE => LatchInit::Zero,
                    Lit::TRUE => LatchInit::One,
                    _ => {
                        return Err(err(
                            line_no,
                            "only constant init values are supported".into(),
                        ))
                    }
                };
                state_init.insert(state, init);
            }
            "next" => {
                check_sort(&sorts, num(0, "sort id")?)?;
                let state = num(1, "state id")?;
                if !states.iter().any(|&(s, _)| s == state) {
                    return Err(err(line_no, format!("next references non-state {state}")));
                }
                let next = resolve(&nodes, num(2, "next id")?)?;
                if state_next.insert(state, next).is_some() {
                    return Err(err(
                        line_no,
                        format!("state {state} has two next functions"),
                    ));
                }
            }
            "output" => {
                let lit = resolve(&nodes, num(0, "output id")?)?;
                outputs.push((lit, args.get(1).map(|s| (*s).to_string())));
            }
            "const" | "constd" | "consth" => {
                check_sort(&sorts, num(0, "sort id")?)?;
                let lit = match args.get(1).copied() {
                    Some("0") => Lit::FALSE,
                    Some("1") => Lit::TRUE,
                    other => {
                        return Err(err(
                            line_no,
                            format!("invalid 1-bit constant `{}`", other.unwrap_or("")),
                        ))
                    }
                };
                nodes.insert(id, lit);
            }
            "zero" => {
                check_sort(&sorts, num(0, "sort id")?)?;
                nodes.insert(id, Lit::FALSE);
            }
            "one" | "ones" => {
                check_sort(&sorts, num(0, "sort id")?)?;
                nodes.insert(id, Lit::TRUE);
            }
            "not" => {
                check_sort(&sorts, num(0, "sort id")?)?;
                let a = resolve(&nodes, num(1, "operand")?)?;
                nodes.insert(id, !a);
            }
            "and" | "or" | "xor" | "xnor" | "nand" | "nor" | "implies" | "iff" | "eq" | "neq" => {
                check_sort(&sorts, num(0, "sort id")?)?;
                let a = resolve(&nodes, num(1, "first operand")?)?;
                let b = resolve(&nodes, num(2, "second operand")?)?;
                let lit = match tag {
                    "and" => aig.and(a, b),
                    "or" => aig.or(a, b),
                    "xor" | "neq" => aig.xor(a, b),
                    "xnor" | "iff" | "eq" => aig.xnor(a, b),
                    "nand" => !aig.and(a, b),
                    "nor" => !aig.or(a, b),
                    _ => aig.implies(a, b),
                };
                nodes.insert(id, lit);
            }
            "ite" => {
                check_sort(&sorts, num(0, "sort id")?)?;
                let c = resolve(&nodes, num(1, "condition")?)?;
                let t = resolve(&nodes, num(2, "then value")?)?;
                let e = resolve(&nodes, num(3, "else value")?)?;
                nodes.insert(id, aig.mux(c, t, e));
            }
            other => return Err(err(line_no, format!("unsupported tag `{other}`"))),
        }
    }

    let mut latches = Vec::with_capacity(states.len());
    for &(sid, line) in &states {
        let state = nodes[&sid].var();
        let next = state_next
            .remove(&sid)
            .ok_or_else(|| err(line, format!("state {sid} has no next function")))?;
        latches.push(Latch {
            state,
            next,
            init: state_init.get(&sid).copied().unwrap_or(LatchInit::DontCare),
        });
    }
    for (k, (lit, symbol)) in outputs.iter().enumerate() {
        let name = symbol.clone().unwrap_or_else(|| format!("o{k}"));
        aig.add_output(name.clone(), *lit);
        net_lits.entry(name).or_insert(*lit);
    }
    // A `; net` footer is authoritative: it reproduces exactly the named
    // -net map of the design that was written (keeping write → parse →
    // write a fixpoint). The symbol-derived map above is the fallback
    // for files from other producers.
    if !net_names.is_empty() {
        net_lits.clear();
        for (name, sid) in net_names {
            let lit = nodes
                .get(&sid.abs())
                .copied()
                .ok_or_else(|| err(0, format!("net comment references undefined node {sid}")))?;
            net_lits.insert(name, lit.xor_complement(sid < 0));
        }
    }
    SeqNetlist::new("top", aig, latches, net_lits).map_err(|e| err(0, e.to_string()))
}

/// Writes a design as canonical 1-bit BTOR2. See the module docs for the
/// emission order; [`parse_btor2`] reads the result back byte-exactly
/// (write → parse → write is a fixpoint).
pub fn write_btor2(design: &SeqNetlist) -> String {
    use fmt::Write as _;
    let aig = &design.aig;
    let mut s = String::new();
    let _ = writeln!(s, "1 sort bitvec 1");
    let mut next_id: i64 = 2;
    let mut id_of: HashMap<Var, i64> = HashMap::new();

    let states = design.state_vars();
    for pos in 0..aig.num_inputs() {
        let v = aig.input_var(pos);
        if states.contains(&v) {
            continue;
        }
        let _ = writeln!(s, "{next_id} input 1 {}", aig.input_name(pos));
        id_of.insert(v, next_id);
        next_id += 1;
    }
    let mut state_ids = Vec::with_capacity(design.latches.len());
    for (k, l) in design.latches.iter().enumerate() {
        let _ = writeln!(s, "{next_id} state 1 {}", design.latch_name(k));
        id_of.insert(l.state, next_id);
        state_ids.push(next_id);
        next_id += 1;
    }

    // Emission cone: outputs, latch nexts, then every named net (sorted)
    // so dead-but-named logic survives the round-trip.
    let mut net_names: Vec<&String> = design.net_lits.keys().collect();
    net_names.sort();
    let mut roots: Vec<Lit> = aig.outputs().iter().map(|o| o.lit).collect();
    roots.extend(design.latches.iter().map(|l| l.next));
    roots.extend(net_names.iter().map(|n| design.net_lits[*n]));

    let cone = aig.cone_vars(&roots);
    let needs_const = cone.contains(&Var::CONST)
        || roots.iter().any(|r| r.var() == Var::CONST)
        || design
            .latches
            .iter()
            .any(|l| !matches!(l.init, LatchInit::DontCare));
    let needs_one = design
        .latches
        .iter()
        .any(|l| matches!(l.init, LatchInit::One));
    let mut zero_id = 0i64;
    let mut one_id = 0i64;
    if needs_const {
        zero_id = next_id;
        let _ = writeln!(s, "{next_id} zero 1");
        id_of.insert(Var::CONST, next_id);
        next_id += 1;
    }
    if needs_one {
        one_id = next_id;
        let _ = writeln!(s, "{next_id} one 1");
        next_id += 1;
    }
    let lit_ref = |id_of: &HashMap<Var, i64>, lit: Lit| -> i64 {
        let id = id_of[&lit.var()];
        if lit.is_complement() {
            -id
        } else {
            id
        }
    };
    for &v in &cone {
        if let Some((f0, f1)) = aig.and_fanins(v) {
            let a = lit_ref(&id_of, f0);
            let b = lit_ref(&id_of, f1);
            let _ = writeln!(s, "{next_id} and 1 {a} {b}");
            id_of.insert(v, next_id);
            next_id += 1;
        }
    }
    for (k, l) in design.latches.iter().enumerate() {
        let _ = writeln!(
            s,
            "{next_id} next 1 {} {}",
            state_ids[k],
            lit_ref(&id_of, l.next)
        );
        next_id += 1;
        match l.init {
            LatchInit::DontCare => {}
            LatchInit::Zero => {
                let _ = writeln!(s, "{next_id} init 1 {} {zero_id}", state_ids[k]);
                next_id += 1;
            }
            LatchInit::One => {
                let _ = writeln!(s, "{next_id} init 1 {} {one_id}", state_ids[k]);
                next_id += 1;
            }
        }
    }
    for out in aig.outputs() {
        let _ = writeln!(
            s,
            "{next_id} output {} {}",
            lit_ref(&id_of, out.lit),
            out.name
        );
        next_id += 1;
    }
    for n in net_names {
        let _ = writeln!(s, "; net {n} {}", lit_ref(&id_of, design.net_lits[n]));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SeqNetlist {
        let mut aig = Aig::new();
        let d = aig.add_input("d");
        let s0 = aig.add_input("s0");
        let s1 = aig.add_input("s1");
        let w = aig.xor(d, s1);
        let q = aig.and(s0, s1);
        aig.add_output("q", q);
        let net_lits = HashMap::from([
            ("d".to_string(), d),
            ("s0".to_string(), s0),
            ("s1".to_string(), s1),
            ("w".to_string(), w),
            ("q".to_string(), q),
        ]);
        SeqNetlist::new(
            "sr",
            aig,
            vec![
                Latch {
                    state: s0.var(),
                    next: w,
                    init: LatchInit::Zero,
                },
                Latch {
                    state: s1.var(),
                    next: s0,
                    init: LatchInit::One,
                },
            ],
            net_lits,
        )
        .expect("valid")
    }

    #[test]
    fn write_parse_write_is_byte_fixpoint() {
        let d = sample();
        let text = write_btor2(&d);
        let back = parse_btor2(&text).expect("parses");
        assert_eq!(back.latches.len(), 2);
        assert_eq!(back.latches[0].init, LatchInit::Zero);
        assert_eq!(back.latches[1].init, LatchInit::One);
        // Net map survives, including the internal net `w`.
        assert!(back.net_lits.contains_key("w"));
        assert_eq!(write_btor2(&back), text);
        // Behaviour identical over a stimulus sweep.
        for bits in 0u32..32 {
            let stim: Vec<Vec<bool>> = (0..5).map(|f| vec![bits >> f & 1 == 1]).collect();
            assert_eq!(d.simulate(&stim), back.simulate(&stim), "{bits:#b}");
        }
    }

    #[test]
    fn parses_handwritten_model() {
        // Toggle flip-flop with an enable input.
        let text = "1 sort bitvec 1\n2 input 1 en\n3 state 1 t\n\
                    4 xor 1 2 3\n5 next 1 3 4\n6 zero 1\n7 init 1 3 6\n\
                    8 output 3 q\n";
        let d = parse_btor2(text).expect("parses");
        assert_eq!(d.latches.len(), 1);
        assert_eq!(d.latches[0].init, LatchInit::Zero);
        // en=1 for 3 cycles: t = 0,1,0.
        let out = d.simulate(&vec![vec![true]; 3]);
        assert_eq!(out, vec![vec![false], vec![true], vec![false]]);
    }

    #[test]
    fn operators_and_negative_ids() {
        let text = "1 sort bitvec 1\n2 input 1 a\n3 input 1 b\n\
                    4 and 1 -2 3\n5 or 1 2 -3\n6 ite 1 4 5 -2\n\
                    7 output -6 y\n";
        let d = parse_btor2(text).expect("parses");
        assert!(d.is_combinational());
        // y = !(ite(!a&b, a|!b, !a))
        for bits in 0u32..4 {
            let (a, b) = (bits & 1 == 1, bits >> 1 == 1);
            let c = !a && b;
            let want = !(if c { a || !b } else { !a });
            assert_eq!(d.aig.eval(&[a, b]), vec![want], "a={a} b={b}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        // Wide sorts.
        assert!(parse_btor2("1 sort bitvec 32\n").is_err());
        // Array sorts.
        assert!(parse_btor2("1 sort array 2 2\n").is_err());
        // Unsupported tag.
        assert!(parse_btor2("1 sort bitvec 1\n2 add 1 0 0\n").is_err());
        // Forward reference.
        assert!(parse_btor2("1 sort bitvec 1\n2 and 1 3 3\n3 input 1\n").is_err());
        // State without next.
        assert!(parse_btor2("1 sort bitvec 1\n2 state 1 s\n").is_err());
        // Non-constant init.
        assert!(parse_btor2(
            "1 sort bitvec 1\n2 input 1 a\n3 state 1 s\n4 init 1 3 2\n5 next 1 3 2\n"
        )
        .is_err());
        // Undefined sort.
        assert!(parse_btor2("2 input 7\n").is_err());
        // Garbage ids.
        assert!(parse_btor2("x sort bitvec 1\n").is_err());
        assert!(parse_btor2("-1 sort bitvec 1\n").is_err());
        // Truncated lines.
        assert!(parse_btor2("1 sort\n").is_err());
        assert!(parse_btor2("1 sort bitvec 1\n2 and 1 2\n").is_err());
    }

    #[test]
    fn combinational_round_trip() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.xor(a, b);
        aig.add_output("f", f);
        let d = SeqNetlist::from_comb(
            "c",
            aig,
            HashMap::from([("a".to_string(), a), ("b".to_string(), b)]),
        );
        let text = write_btor2(&d);
        let back = parse_btor2(&text).expect("parses");
        assert!(back.is_combinational());
        assert_eq!(write_btor2(&back), text);
        for bits in 0u32..4 {
            let (a, b) = (bits & 1 == 1, bits >> 1 == 1);
            assert_eq!(back.aig.eval(&[a, b]), vec![a ^ b]);
        }
    }
}
