//! Benches for the CDCL core and interpolation engine.

use eco_bench::Bench;
use eco_sat::{ClauseLabel, ItpSolver, Lit, Solver, Var};

fn random_3sat(n: usize, m: usize, seed: u64) -> Vec<Vec<Lit>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..m)
        .map(|_| {
            (0..3)
                .map(|_| Var::new((next() % n as u64) as u32).lit(next() & 1 == 1))
                .collect()
        })
        .collect()
}

fn pigeonhole(n: u32) -> (usize, Vec<Vec<Lit>>) {
    let h = n - 1;
    let p = |i: u32, j: u32| Var::new(i * h + j).pos();
    let mut clauses = Vec::new();
    for i in 0..n {
        clauses.push((0..h).map(|j| p(i, j)).collect());
    }
    for j in 0..h {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                clauses.push(vec![!p(i1, j), !p(i2, j)]);
            }
        }
    }
    ((n * h) as usize, clauses)
}

fn main() {
    let mut bench = Bench::from_env();

    let clauses = random_3sat(100, 420, 0xfeed);
    bench.run("sat/random3sat_100v_420c", || {
        let mut s = Solver::new();
        for _ in 0..100 {
            s.new_var();
        }
        for cl in &clauses {
            s.add_clause(cl);
        }
        s.solve(&[])
    });

    let (nv, clauses) = pigeonhole(8);
    bench.run("sat/pigeonhole_8_into_7", || {
        let mut s = Solver::new();
        for _ in 0..nv {
            s.new_var();
        }
        for cl in &clauses {
            s.add_clause(cl);
        }
        s.solve(&[])
    });

    // One solver, many assumption queries.
    let clauses = random_3sat(80, 280, 0xabcd);
    let mut s = Solver::new();
    for _ in 0..80 {
        s.new_var();
    }
    for cl in &clauses {
        s.add_clause(cl);
    }
    bench.run("sat/incremental_assumptions", || {
        for k in 0..16u32 {
            let a = Var::new(k).lit(k % 2 == 0);
            std::hint::black_box(s.solve(&[a]));
        }
    });

    bench.run("sat/interpolant_implication_chain", || {
        // x0 -> x1 -> ... -> x39, A = first half, B = second + !x39.
        let mut q = ItpSolver::new();
        let vars: Vec<Var> = (0..40).map(|_| q.new_var()).collect();
        q.add_clause(&[vars[0].pos()], ClauseLabel::A);
        for w in vars.windows(2).take(20) {
            q.add_clause(&[w[0].neg(), w[1].pos()], ClauseLabel::A);
        }
        for w in vars.windows(2).skip(20) {
            q.add_clause(&[w[0].neg(), w[1].pos()], ClauseLabel::B);
        }
        q.add_clause(&[vars[39].neg()], ClauseLabel::B);
        q.solve_limited().expect("unbounded").into_interpolant()
    });
    bench.finish();
}
