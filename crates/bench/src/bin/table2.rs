//! Regenerates Table 2: cost / size / time, baseline vs ours, 20 units.

use std::time::Instant;

use eco_core::{EcoEngine, EcoOptions};
use eco_workgen::contest_suite;

struct Row {
    name: String,
    n_targets: usize,
    difficult: bool,
    base_cost: u64,
    base_size: usize,
    base_time: f64,
    our_cost: u64,
    our_size: usize,
    our_time: f64,
}

fn run(unit: &eco_workgen::SuiteUnit, opts: EcoOptions) -> (u64, usize, f64) {
    let inst = unit.instance().expect("valid instance");
    let t0 = Instant::now();
    let result = EcoEngine::new(inst, opts)
        .run()
        .expect("rectifiable by construction");
    if std::env::var_os("ECO_STAGES").is_some() {
        eprintln!("    stages: {:?}", result.stage_times);
    }
    (result.cost, result.size, t0.elapsed().as_secs_f64())
}

fn main() {
    let mut only: Vec<String> = std::env::args().skip(1).collect();
    let stress = only.iter().any(|a| a == "--stress");
    only.retain(|a| a != "--stress");
    let units = if stress {
        eco_workgen::stress_suite()
    } else {
        contest_suite()
    };
    let mut rows = Vec::new();
    for unit in units {
        if !only.is_empty() && !only.contains(&unit.spec.name) {
            continue;
        }
        let (bc, bs, bt) = run(&unit, EcoOptions::baseline());
        let (oc, os, ot) = run(&unit, EcoOptions::default());
        let row = Row {
            name: unit.spec.name.clone(),
            n_targets: unit.spec.n_targets,
            difficult: unit.spec.difficult,
            base_cost: bc,
            base_size: bs,
            base_time: bt,
            our_cost: oc,
            our_size: os,
            our_time: ot,
        };
        eprintln!(
            "{}{}: baseline cost {} size {} t {:.2}s | ours cost {} size {} t {:.2}s",
            row.name,
            if row.difficult { "*" } else { "" },
            bc,
            bs,
            bt,
            oc,
            os,
            ot
        );
        rows.push(row);
    }

    println!(
        "\nTable 2 (reproduction): baseline (PI-support, no localization, no cost opt) vs ours"
    );
    println!(
        "{:<8} {:>7} | {:>9} {:>6} {:>8} | {:>9} {:>6} {:>8} | {:>6} {:>6} {:>6}",
        "unit",
        "#target",
        "cost",
        "size",
        "time",
        "cost",
        "size",
        "time",
        "rcost",
        "rsize",
        "rtime"
    );
    let (mut pc, mut ps, mut pt) = (0.0f64, 0.0f64, 0.0f64);
    let mut n = 0;
    for r in &rows {
        let rc = r.base_cost.max(1) as f64 / r.our_cost.max(1) as f64;
        let rs = r.base_size.max(1) as f64 / r.our_size.max(1) as f64;
        let rt = if r.our_time > 0.0 {
            r.base_time / r.our_time
        } else {
            1.0
        };
        pc += rc.ln();
        ps += rs.ln();
        pt += rt.ln();
        n += 1;
        println!(
            "{:<8} {:>7} | {:>9} {:>6} {:>8.2} | {:>9} {:>6} {:>8.2} | {:>6.2} {:>6.2} {:>6.2}",
            format!("{}{}", r.name, if r.difficult { "*" } else { "" }),
            r.n_targets,
            r.base_cost,
            r.base_size,
            r.base_time,
            r.our_cost,
            r.our_size,
            r.our_time,
            rc,
            rs,
            rt
        );
    }
    if n > 0 {
        println!(
            "{:<8} {:>7} | {:>9} {:>6} {:>8} | {:>9} {:>6} {:>8} | {:>6.2} {:>6.2} {:>6.2}",
            "geomean",
            "",
            "",
            "",
            "",
            "",
            "",
            "",
            (pc / n as f64).exp(),
            (ps / n as f64).exp(),
            (pt / n as f64).exp()
        );
        println!("\nratios are baseline/ours (paper reports winner/ours; >1 means ours is better)");
        println!("* = difficult unit (paper's units 6, 10, 11, 19 analogues)");
    }
}
