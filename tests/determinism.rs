//! Determinism regression: the per-cluster patch-generation stage runs on
//! scoped worker threads when `jobs > 1`, but merges in cluster order, so
//! every `jobs` value must produce *identical* results — same cost, same
//! size, same per-target base sets, byte-identical patch AIG.

mod common;

use eco::core::{BudgetOptions, ClusterDiagnosis, EcoEngine, EcoOptions, EcoOutcome, EcoResult};
use eco::workgen::contest_suite;

fn run_with_jobs(inst: &eco::core::EcoInstance, jobs: usize) -> EcoResult {
    EcoEngine::new(
        inst.clone(),
        EcoOptions {
            jobs,
            ..Default::default()
        },
    )
    .run()
    .expect("rectifiable")
}

fn assert_identical(unit: &str, seq: &EcoResult, par: &EcoResult) {
    assert_eq!(seq.cost, par.cost, "{unit}: cost differs");
    assert_eq!(seq.size, par.size, "{unit}: size differs");
    assert_eq!(
        seq.patches.len(),
        par.patches.len(),
        "{unit}: patch count differs"
    );
    for (a, b) in seq.patches.iter().zip(&par.patches) {
        assert_eq!(a.target, b.target, "{unit}: target order differs");
        assert_eq!(a.base, b.base, "{unit}: base set differs for {}", a.target);
        assert_eq!(
            a.size, b.size,
            "{unit}: patch size differs for {}",
            a.target
        );
    }
    assert_eq!(
        format!("{:?}", seq.patch_aig),
        format!("{:?}", par.patch_aig),
        "{unit}: patch AIG differs structurally"
    );
}

/// Multi-cluster units from the synthetic contest suite, jobs=1 vs jobs=4.
#[test]
fn parallel_patchgen_is_deterministic() {
    let subset = ["unit02", "unit04", "unit06", "unit10", "unit12"];
    let mut checked = 0;
    for unit in contest_suite() {
        if !subset.contains(&unit.spec.name.as_str()) {
            continue;
        }
        let inst = unit.instance().expect("valid instance");
        let seq = run_with_jobs(&inst, 1);
        let par = run_with_jobs(&inst, 4);
        common::assert_patched_equals_golden(&unit.faulty, &unit.golden, &par);
        assert_identical(&unit.spec.name, &seq, &par);
        assert!(
            par.telemetry.jobs >= 1 && par.telemetry.clusters >= 1,
            "{}: telemetry must record the flow shape",
            unit.spec.name
        );
        checked += 1;
    }
    assert_eq!(checked, subset.len(), "suite units went missing");
}

/// Degradation must be jobs-independent too: under a fixed conflict
/// budget (no wall clock), the patched-vs-exhausted cluster split and the
/// merged partial patches are identical for `--jobs 1` and `--jobs 4`,
/// because conflict accounting is worker-local and charged with
/// deterministic SAT conflict counts.
#[test]
fn degradation_is_jobs_independent() {
    let run_governed = |inst: &eco::core::EcoInstance, jobs: usize, conflicts: u64| {
        EcoEngine::new(
            inst.clone(),
            EcoOptions {
                jobs,
                budget: BudgetOptions {
                    timeout: None,
                    cluster_conflicts: Some(conflicts),
                },
                ..Default::default()
            },
        )
        .run_governed()
        .expect("governed runs degrade, they do not error")
    };
    let unit = contest_suite()
        .into_iter()
        .find(|u| u.spec.name == "unit06")
        .expect("unit06 exists");
    let inst = unit.instance().expect("valid instance");
    // A zero allowance exhausts every cluster up front; a generous one
    // completes. Either way jobs=1 and jobs=4 must agree exactly.
    for conflicts in [0, 1 << 30] {
        let seq = run_governed(&inst, 1, conflicts);
        let par = run_governed(&inst, 4, conflicts);
        match (&seq, &par) {
            (EcoOutcome::Complete(a), EcoOutcome::Complete(b)) => {
                assert_identical("unit06-governed", a, b);
            }
            (EcoOutcome::Partial(a), EcoOutcome::Partial(b)) => {
                assert_eq!(a.reason, b.reason, "degradation reason differs");
                assert_eq!(a.clusters.len(), b.clusters.len());
                for (ca, cb) in a.clusters.iter().zip(&b.clusters) {
                    assert_eq!(ca.targets, cb.targets, "cluster order differs");
                    assert_eq!(
                        ca.diagnosis, cb.diagnosis,
                        "diagnosis differs for {:?}",
                        ca.targets
                    );
                }
                assert_eq!(a.cost, b.cost);
                assert_eq!(a.size, b.size);
                assert_eq!(
                    format!("{:?}", a.patch_aig),
                    format!("{:?}", b.patch_aig),
                    "partial patch AIG differs structurally"
                );
            }
            _ => panic!("jobs=1 and jobs=4 disagree on complete-vs-partial"),
        }
        if conflicts == 0 {
            let EcoOutcome::Partial(p) = &seq else {
                panic!("a zero allowance must degrade");
            };
            assert!(p
                .clusters
                .iter()
                .all(|c| c.diagnosis == ClusterDiagnosis::BudgetExhausted));
        } else {
            assert!(
                matches!(seq, EcoOutcome::Complete(_)),
                "a generous allowance must complete"
            );
        }
    }
}

/// `jobs: 0` (auto) must agree with explicit sequential execution too.
#[test]
fn auto_jobs_matches_sequential() {
    for unit in contest_suite() {
        if unit.spec.name != "unit06" {
            continue;
        }
        let inst = unit.instance().expect("valid instance");
        let seq = run_with_jobs(&inst, 1);
        let auto = run_with_jobs(&inst, 0);
        assert_identical(&unit.spec.name, &seq, &auto);
    }
}
