//! Fault injection: turning a golden netlist into a contest-style ECO
//! instance by cutting target nets, optionally scrambling the dangling
//! logic, and assigning signal weights.

use std::error::Error;
use std::fmt;

use eco_aig::SplitMix64;
use eco_netlist::{GateKind, Netlist, WeightTable};

/// Error from [`cut_targets`]: the requested target cannot be cut.
///
/// Deterministic and typed so callers that generate targets freely (the
/// fuzzer, user-supplied target lists) can skip or report bad picks
/// instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// No gate of the golden netlist drives the target net.
    NoDriver(String),
    /// The target is already a primary input (cutting it is meaningless).
    TargetIsInput(String),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::NoDriver(t) => write!(f, "target `{t}` has no driver"),
            FaultError::TargetIsInput(t) => write!(f, "target `{t}` is already an input"),
        }
    }
}

impl Error for FaultError {}

/// How weights are assigned to faulty-circuit signals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightProfile {
    /// All signals weigh 1.
    Unit,
    /// Uniform random in `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Primary inputs are expensive (`pi`), internal nets cheap (`wire`) —
    /// the regime where intermediate-signal patches shine.
    CheapWires {
        /// Weight of each primary input.
        pi: u64,
        /// Weight of each internal wire.
        wire: u64,
    },
}

/// Cuts the drivers of `targets` out of `golden`, producing the faulty
/// circuit with those nets floating as pseudo-primary-inputs.
///
/// The cut gates' fanin logic is retained (it may dangle), exactly like
/// contest instances where the obsolete logic stays in the design as
/// reusable spare structure. Rectifiability is guaranteed by construction:
/// reconnecting each target to its original function restores the golden
/// circuit.
///
/// Errors with [`FaultError`] if a target is already a primary input or is
/// driven by no gate; the golden netlist is never partially mutated.
pub fn cut_targets(golden: &Netlist, targets: &[String]) -> Result<Netlist, FaultError> {
    let mut faulty = golden.clone();
    faulty.name = format!("{}_faulty", golden.name);
    for t in targets {
        if faulty.inputs.contains(t) {
            return Err(FaultError::TargetIsInput(t.clone()));
        }
        let gi = faulty
            .gates
            .iter()
            .position(|g| g.output == *t)
            .ok_or_else(|| FaultError::NoDriver(t.clone()))?;
        faulty.gates.remove(gi);
        faulty.wires.retain(|w| w != t);
        faulty.inputs.push(t.clone());
    }
    Ok(faulty)
}

/// Scrambles gates that became dangling after the cut (their outputs no
/// longer reach any primary output): flips gate kinds pseudo-randomly.
/// This models leftover erroneous logic in the faulty design without
/// affecting rectifiability, and diversifies the candidate signal pool.
pub fn scramble_dangling(faulty: &mut Netlist, seed: u64) -> usize {
    let mut rng = SplitMix64::new(seed);
    // Nets transitively reaching an output.
    let mut live: std::collections::HashSet<&str> =
        faulty.outputs.iter().map(String::as_str).collect();
    loop {
        let before = live.len();
        for g in &faulty.gates {
            if live.contains(g.output.as_str()) {
                for i in &g.inputs {
                    if let Some(n) = i.name() {
                        live.insert(n);
                    }
                }
            }
        }
        if live.len() == before {
            break;
        }
    }
    let live_nets: std::collections::HashSet<String> = live.iter().map(|s| s.to_string()).collect();
    let swaps = [
        (GateKind::And, GateKind::Nand),
        (GateKind::Or, GateKind::Nor),
        (GateKind::Xor, GateKind::Xnor),
    ];
    let mut flipped = 0;
    for g in &mut faulty.gates {
        if live_nets.contains(&g.output) || !rng.chance(0.5) {
            continue;
        }
        for (a, bk) in swaps {
            if g.kind == a {
                g.kind = bk;
                flipped += 1;
                break;
            } else if g.kind == bk {
                g.kind = a;
                flipped += 1;
                break;
            }
        }
    }
    flipped
}

/// Assigns weights to every named net of `faulty` per the profile.
pub fn assign_weights(faulty: &Netlist, profile: WeightProfile, seed: u64) -> WeightTable {
    let mut rng = SplitMix64::new(seed);
    let mut table = WeightTable::new(1);
    for net in faulty.declared_nets() {
        let w = match profile {
            WeightProfile::Unit => 1,
            WeightProfile::Uniform { lo, hi } => rng.range_inclusive(lo, hi),
            WeightProfile::CheapWires { pi, wire } => {
                if faulty.inputs.iter().any(|i| i == net) {
                    pi
                } else {
                    wire
                }
            }
        };
        table.set(net, w);
    }
    table
}

/// Makes a cut instance *unrectifiable* by flipping one gate that feeds a
/// primary output outside every target's fanout cone. Returns the mutated
/// gate's output net, or `None` if no suitable gate exists (every live
/// gate reaches a target-dependent output).
///
/// The guarantee: the flipped gate changes the function of at least one
/// output that no patch can influence, so `∀X ∃T. F = G` is false.
pub fn break_untouched_output(
    faulty: &mut Netlist,
    golden: &Netlist,
    targets: &[String],
    seed: u64,
) -> Option<String> {
    use eco_netlist::elaborate;
    let gold = elaborate(golden).ok()?;
    let fault = elaborate(faulty).ok()?;

    // Outputs whose faulty cone contains no target.
    let untouched: Vec<String> = faulty
        .outputs
        .iter()
        .filter(|o| {
            let lit = fault.net_lits[o.as_str()];
            let sup = fault.aig.support(&[lit]);
            !targets
                .iter()
                .any(|t| fault.aig.find_input(t).is_some_and(|tv| sup.contains(&tv)))
        })
        .cloned()
        .collect();
    if untouched.is_empty() {
        return None;
    }

    // Candidate gates: drive a net in some untouched output's cone and in
    // no target-dependent output's cone (so the flip cannot be patched
    // around), with a flippable kind.
    let mut untouched_cone: std::collections::HashSet<eco_aig::Var> = Default::default();
    for o in &untouched {
        let lit = fault.net_lits[o.as_str()];
        untouched_cone.extend(fault.aig.cone_vars(&[lit]));
    }
    let mut touched_cone: std::collections::HashSet<eco_aig::Var> = Default::default();
    for o in &faulty.outputs {
        if untouched.contains(o) {
            continue;
        }
        let lit = fault.net_lits[o.as_str()];
        touched_cone.extend(fault.aig.cone_vars(&[lit]));
    }

    let flippable = [
        (GateKind::And, GateKind::Nand),
        (GateKind::Nand, GateKind::And),
        (GateKind::Or, GateKind::Nor),
        (GateKind::Nor, GateKind::Or),
        (GateKind::Xor, GateKind::Xnor),
        (GateKind::Xnor, GateKind::Xor),
        (GateKind::Buf, GateKind::Not),
        (GateKind::Not, GateKind::Buf),
    ];
    let mut rng = SplitMix64::new(seed);
    let mut order: Vec<usize> = (0..faulty.gates.len()).collect();
    rng.shuffle(&mut order);
    for gi in order {
        let g = &faulty.gates[gi];
        let Some(&lit) = fault.net_lits.get(&g.output) else {
            continue;
        };
        let v = lit.var();
        if !untouched_cone.contains(&v) || touched_cone.contains(&v) {
            continue;
        }
        let from = g.kind;
        let Some(&(_, to)) = flippable.iter().find(|(f, _)| *f == from) else {
            continue;
        };
        // Flip and confirm the untouched outputs actually change (the flip
        // could be masked downstream).
        let out = g.output.clone();
        faulty.gates[gi].kind = to;
        let mutated = match elaborate(faulty) {
            Ok(m) => m,
            Err(_) => {
                faulty.gates[gi].kind = from;
                continue;
            }
        };
        let differs = untouched.iter().any(|o| {
            let ml = mutated.net_lits[o.as_str()];
            let gl = gold.net_lits[o.as_str()];
            // Random-simulation difference check (cheap and sufficient:
            // if it differs on any sampled pattern, it differs).
            (0..256u32).any(|k| {
                let bits: Vec<bool> = (0..mutated.aig.num_inputs())
                    .map(|i| (k.wrapping_mul(2654435761).wrapping_add(i as u32 * 97)) & 1 == 1)
                    .collect();
                let gbits: Vec<bool> = (0..gold.aig.num_inputs())
                    .map(|i| {
                        let name = gold.aig.input_name(i);
                        (0..mutated.aig.num_inputs())
                            .find(|&p| mutated.aig.input_name(p) == name)
                            .map(|p| bits[p])
                            .unwrap_or(false)
                    })
                    .collect();
                mutated.aig.eval_lit(ml, &bits) != gold.aig.eval_lit(gl, &gbits)
            })
        });
        if differs {
            return Some(out);
        }
        // Masked: revert and try another gate.
        faulty.gates[gi].kind = from;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::ripple_adder;
    use eco_netlist::elaborate;

    #[test]
    fn cut_moves_net_to_inputs() {
        let golden = ripple_adder(3);
        let faulty = cut_targets(&golden, &["w1".into()]).expect("w1 is driven");
        assert!(faulty.inputs.contains(&"w1".to_string()));
        assert!(!faulty.wires.contains(&"w1".to_string()));
        assert_eq!(faulty.num_gates(), golden.num_gates() - 1);
        // Still elaborates (w1's old fanins may dangle).
        elaborate(&faulty).expect("elaborates");
    }

    #[test]
    fn cutting_an_input_is_typed_error() {
        let golden = ripple_adder(2);
        let err = cut_targets(&golden, &["a0".into()]).expect_err("a0 is an input");
        assert_eq!(err, FaultError::TargetIsInput("a0".into()));
    }

    #[test]
    fn cutting_an_unknown_net_is_typed_error() {
        let golden = ripple_adder(2);
        let err = cut_targets(&golden, &["nope".into()]).expect_err("no such net");
        assert_eq!(err, FaultError::NoDriver("nope".into()));
        assert!(err.to_string().contains("no driver"));
    }

    #[test]
    fn scramble_touches_only_dangling_logic() {
        let golden = ripple_adder(4);
        // Cut the final carry OR: its fanins (g, p gates) dangle... they
        // actually still feed sum logic; cut an xor used only by one sum.
        let mut faulty =
            cut_targets(&golden, &["w13".into(), "w1".into()]).expect("wires are driven");
        let before = elaborate(&faulty).expect("elab before");
        let _ = scramble_dangling(&mut faulty, 9);
        let after = elaborate(&faulty).expect("elab after");
        // Live outputs unchanged for all assignments of the (now larger)
        // input space: compare on matching input names.
        assert_eq!(before.aig.num_inputs(), after.aig.num_inputs());
        for trial in 0..64u64 {
            let bits: Vec<bool> = (0..before.aig.num_inputs())
                .map(|i| trial.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64) % 3 == 0)
                .collect();
            assert_eq!(before.aig.eval(&bits), after.aig.eval(&bits));
        }
    }

    #[test]
    fn weight_profiles() {
        let golden = ripple_adder(2);
        let faulty = cut_targets(&golden, &["w0".into()]).expect("w0 is driven");
        let unit = assign_weights(&faulty, WeightProfile::Unit, 1);
        assert_eq!(unit.weight("a0"), 1);
        let uni = assign_weights(&faulty, WeightProfile::Uniform { lo: 5, hi: 9 }, 1);
        for net in faulty.declared_nets() {
            let w = uni.weight(net);
            assert!((5..=9).contains(&w), "{net} weight {w}");
        }
        let cw = assign_weights(&faulty, WeightProfile::CheapWires { pi: 40, wire: 2 }, 1);
        assert_eq!(cw.weight("a0"), 40);
        assert_eq!(cw.weight("w1"), 2);
        // The cut target is now an input.
        assert_eq!(cw.weight("w0"), 40);
    }

    #[test]
    fn weights_are_deterministic() {
        let golden = ripple_adder(2);
        let faulty = cut_targets(&golden, &["w0".into()]).expect("w0 is driven");
        let w1 = assign_weights(&faulty, WeightProfile::Uniform { lo: 1, hi: 100 }, 42);
        let w2 = assign_weights(&faulty, WeightProfile::Uniform { lo: 1, hi: 100 }, 42);
        assert_eq!(w1, w2);
    }
}
