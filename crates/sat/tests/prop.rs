// Needs the external `proptest` crate; compiled out by default so the
// workspace builds offline. Enable with `--features proptest` (see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for the SAT solver: agreement with brute force,
//! assumption semantics, unsat-core soundness, and the full interpolant
//! contract.

use eco_sat::{
    encode_cone, ClauseLabel, ItpOutcome, ItpSolver, LBool, Lit, Solver, SolverConfig, Var,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Inprocessing tuned to fire on every solve call and as often as
/// possible mid-search, so short proptest runs actually exercise it.
fn aggressive_inprocessing(bve: bool) -> SolverConfig {
    SolverConfig {
        inprocess_first_solve: 0,
        inprocess_min_clauses: 0,
        inprocess_solve_interval: 1,
        inprocess_conflict_interval: 20,
        bve,
        ..SolverConfig::default()
    }
}

type Cnf = Vec<Vec<i32>>;

fn cnf_strategy(max_var: i32, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let lit = (1..=max_var).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    prop::collection::vec(prop::collection::vec(lit, 1..4), 1..max_clauses)
}

fn to_lits(clause: &[i32]) -> Vec<Lit> {
    clause.iter().map(|&d| Lit::from_dimacs(d)).collect()
}

fn brute_force(n: usize, cnf: &Cnf, fixed: &[(usize, bool)]) -> bool {
    'assign: for bits in 0u32..1 << n {
        for &(v, val) in fixed {
            if (bits >> v & 1 == 1) != val {
                continue 'assign;
            }
        }
        for c in cnf {
            let sat = c.iter().any(|&d| {
                let v = d.unsigned_abs() as usize - 1;
                (bits >> v & 1 == 1) == (d > 0)
            });
            if !sat {
                continue 'assign;
            }
        }
        return true;
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// solve() agrees with brute force; SAT models satisfy every clause.
    #[test]
    fn agrees_with_brute_force(cnf in cnf_strategy(8, 30)) {
        let mut s = Solver::new();
        for _ in 0..8 {
            s.new_var();
        }
        for c in &cnf {
            s.add_clause(&to_lits(c));
        }
        let got = s.solve(&[]).expect("unbounded");
        prop_assert_eq!(got, brute_force(8, &cnf, &[]));
        if got {
            for c in &cnf {
                prop_assert!(
                    to_lits(c).iter().any(|&l| s.model_value(l) == LBool::True),
                    "model violates {:?}", c
                );
            }
        }
    }

    /// Assumptions behave exactly like temporary unit clauses, and the
    /// solver remains reusable afterwards.
    #[test]
    fn assumptions_are_temporary_units(
        cnf in cnf_strategy(7, 24),
        a1 in 0..7u32,
        s1 in any::<bool>(),
        a2 in 0..7u32,
        s2 in any::<bool>(),
    ) {
        let mut s = Solver::new();
        for _ in 0..7 {
            s.new_var();
        }
        for c in &cnf {
            s.add_clause(&to_lits(c));
        }
        let assumptions = vec![Var::new(a1).lit(!s1), Var::new(a2).lit(!s2)];
        let got = s.solve(&assumptions).expect("unbounded");
        let mut fixed = vec![(a1 as usize, s1), (a2 as usize, s2)];
        if a1 == a2 && s1 != s2 {
            prop_assert!(!got, "contradictory assumptions");
        } else {
            fixed.dedup();
            prop_assert_eq!(got, brute_force(7, &cnf, &fixed));
        }
        // Reusable: plain solve matches brute force afterwards.
        let plain = s.solve(&[]).expect("unbounded");
        prop_assert_eq!(plain, brute_force(7, &cnf, &[]));
    }

    /// Unsat cores are sound: re-solving under just the core is UNSAT.
    #[test]
    fn unsat_cores_are_sound(cnf in cnf_strategy(7, 24), picks in prop::collection::vec((0..7u32, any::<bool>()), 1..6)) {
        let mut s = Solver::new();
        for _ in 0..7 {
            s.new_var();
        }
        for c in &cnf {
            s.add_clause(&to_lits(c));
        }
        let assumptions: Vec<Lit> = picks.iter().map(|&(v, neg)| Var::new(v).lit(neg)).collect();
        if s.solve(&assumptions).expect("unbounded") {
            return Ok(());
        }
        let core: Vec<Lit> = s.unsat_core().to_vec();
        prop_assert!(core.iter().all(|l| assumptions.contains(l)), "core ⊆ assumptions");
        prop_assert_eq!(s.solve(&core), Some(false), "core must stay unsat");
    }

    /// Full interpolant contract on random labeled CNFs: A → I, I ∧ B
    /// unsat, vars(I) ⊆ shared.
    #[test]
    fn interpolants_satisfy_craig_contract(
        cnf in cnf_strategy(7, 28),
        labels in prop::collection::vec(any::<bool>(), 28),
    ) {
        let mut q = ItpSolver::new();
        for _ in 0..7 {
            q.new_var();
        }
        let labeled: Vec<(Vec<Lit>, ClauseLabel)> = cnf
            .iter()
            .zip(labels.iter().cycle())
            .map(|(c, &a)| {
                (to_lits(c), if a { ClauseLabel::A } else { ClauseLabel::B })
            })
            .collect();
        for (lits, label) in &labeled {
            q.add_clause(lits, *label);
        }
        let itp = match q.solve_limited().expect("unbounded") {
            ItpOutcome::Sat(_) => return Ok(()),
            ItpOutcome::Unsat(i) => i,
        };
        for bits in 0u32..128 {
            let assignment: Vec<bool> = (0..7).map(|i| bits >> i & 1 == 1).collect();
            let holds = |label: ClauseLabel| {
                labeled
                    .iter()
                    .filter(|(_, l)| *l == label)
                    .all(|(c, _)| {
                        c.iter().any(|l| {
                            assignment[l.var().index() as usize] != l.is_negated()
                        })
                    })
            };
            let i_val = itp.eval(&assignment);
            if holds(ClauseLabel::A) {
                prop_assert!(i_val, "A → I violated at {:?}", assignment);
            }
            if holds(ClauseLabel::B) {
                prop_assert!(!i_val, "I ∧ B satisfiable at {:?}", assignment);
            }
        }
    }

    /// Aggressive inprocessing (vivification + subsumption + BVE) must
    /// not change the one-shot SAT/UNSAT answer of a random CNF.
    #[test]
    fn inprocessing_preserves_oneshot_answers(cnf in cnf_strategy(8, 30)) {
        let mut plain = Solver::with_config(SolverConfig {
            inprocessing: false,
            ..SolverConfig::default()
        });
        let mut inproc = Solver::with_config(aggressive_inprocessing(true));
        for _ in 0..8 {
            plain.new_var();
            inproc.new_var();
        }
        for c in &cnf {
            plain.add_clause(&to_lits(c));
            inproc.add_clause(&to_lits(c));
        }
        let want = brute_force(8, &cnf, &[]);
        prop_assert_eq!(plain.solve(&[]), Some(want), "plain vs brute force");
        prop_assert_eq!(inproc.solve(&[]), Some(want), "inprocessing vs brute force");
    }

    /// Incremental solving with assumptions across repeated calls (the
    /// engine's Eq.-12 usage pattern) agrees with brute force under
    /// vivification and subsumption.
    #[test]
    fn inprocessing_preserves_incremental_answers(
        cnf in cnf_strategy(8, 30),
        rounds in prop::collection::vec(
            prop::collection::vec((0..8u32, any::<bool>()), 0..4), 1..4),
    ) {
        // BVE stays off: these assumption variables are deliberately not
        // frozen, matching call sites that keep the default config.
        let mut s = Solver::with_config(aggressive_inprocessing(false));
        for _ in 0..8 {
            s.new_var();
        }
        for c in &cnf {
            s.add_clause(&to_lits(c));
        }
        for picks in &rounds {
            let assumptions: Vec<Lit> =
                picks.iter().map(|&(v, neg)| Var::new(v).lit(neg)).collect();
            let fixed: Vec<(usize, bool)> = picks
                .iter()
                .map(|&(v, neg)| (v as usize, !neg))
                .collect();
            // Contradictory picks (v and ¬v) are unsatisfiable both ways.
            let contradictory = picks.iter().any(|&(v, neg)|
                picks.contains(&(v, !neg)));
            let want = !contradictory && brute_force(8, &cnf, &fixed);
            prop_assert_eq!(s.solve(&assumptions), Some(want));
        }
    }

    /// SAT/UNSAT agreement on random Tseitin-encoded AIG miters, with and
    /// without inprocessing; SAT models must satisfy the miter under
    /// re-evaluation on the AIG.
    #[test]
    fn inprocessing_agrees_on_tseitin_miters(
        ops in prop::collection::vec(
            (any::<bool>(), 0..24usize, 0..24usize, any::<bool>(), any::<bool>()), 1..40),
    ) {
        use eco_aig::Aig;

        let mut mgr = Aig::new();
        let mut nodes = vec![
            mgr.add_input("a"),
            mgr.add_input("b"),
            mgr.add_input("c"),
            mgr.add_input("d"),
        ];
        for &(is_and, i, j, ni, nj) in &ops {
            let x = nodes[i % nodes.len()];
            let x = if ni { !x } else { x };
            let y = nodes[j % nodes.len()];
            let y = if nj { !y } else { y };
            nodes.push(if is_and { mgr.and(x, y) } else { mgr.xor(x, y) });
        }
        let f = *nodes.last().expect("nonempty");
        let g = nodes[nodes.len() / 2];
        let miter = mgr.xor(f, g);

        let mut answers = Vec::new();
        for cfg in [
            SolverConfig { inprocessing: false, ..SolverConfig::default() },
            aggressive_inprocessing(false),
            aggressive_inprocessing(true),
        ] {
            let mut s = Solver::with_config(cfg);
            let mut map: HashMap<eco_aig::Var, Lit> = HashMap::new();
            let roots = encode_cone(&mgr, &[miter], &mut map, &mut s);
            s.add_clause(&[roots[0]]);
            // The model's input values are read back below, so inputs
            // must survive variable elimination.
            for (&v, &sl) in &map {
                if mgr.input_pos(v).is_some() {
                    s.freeze_var(sl.var());
                }
            }
            let got = s.solve(&[]).expect("unbounded");
            if got {
                let mut inputs = vec![false; mgr.num_inputs()];
                for (&v, &sl) in &map {
                    if let Some(pos) = mgr.input_pos(v) {
                        inputs[pos] = s.model_value(sl) == LBool::True;
                    }
                }
                prop_assert!(
                    mgr.eval_lit(miter, &inputs),
                    "SAT model does not satisfy the miter"
                );
            }
            answers.push(got);
        }
        prop_assert!(
            answers.windows(2).all(|w| w[0] == w[1]),
            "configs disagree: {:?}", answers
        );
    }
}
