//! Benches regenerating the Table-2 timing series: full engine runs
//! (ours and baseline) per representative unit, sequential vs.
//! parallel (`jobs = 4`) cluster scheduling on multi-cluster units, and
//! single-config vs. 4-member solver-portfolio runs on the
//! solver-bound units.
//!
//! `cargo bench -p eco-bench --bench patch_generation -- --json BENCH_patchgen.json`

use eco_bench::Bench;
use eco_core::{EcoEngine, EcoOptions};
use eco_workgen::contest_suite;

fn main() {
    let mut bench = Bench::from_env();
    for unit in contest_suite() {
        // Representative subset: easy, medium, difficult.
        if !matches!(
            unit.spec.name.as_str(),
            "unit01" | "unit04" | "unit06" | "unit10" | "unit16"
        ) {
            continue;
        }
        let inst = unit.instance().expect("valid");
        bench.run(&format!("table2/ours/{}", unit.spec.name), || {
            EcoEngine::new(inst.clone(), EcoOptions::default())
                .run()
                .expect("rectifiable")
        });
        bench.run(&format!("table2/baseline/{}", unit.spec.name), || {
            EcoEngine::new(inst.clone(), EcoOptions::baseline())
                .run()
                .expect("rectifiable")
        });
    }

    // Cluster-parallel scheduling: the suite units whose clustering yields
    // several independent groups (unit11: 2, unit14: 4, unit20: 4),
    // sequential vs. four workers. On a single-core host the jobs=4
    // variant measures pure scheduling overhead, not speedup.
    for unit in contest_suite() {
        if !matches!(unit.spec.name.as_str(), "unit11" | "unit14" | "unit20") {
            continue;
        }
        let inst = unit.instance().expect("valid");
        for jobs in [1usize, 4] {
            let opts = EcoOptions {
                jobs,
                ..Default::default()
            };
            bench.run(&format!("jobs{}/{}", jobs, unit.spec.name), || {
                EcoEngine::new(inst.clone(), opts.clone())
                    .run()
                    .expect("rectifiable")
            });
        }
    }

    // Solver portfolio: the two units whose wall time is SAT-bound, cold
    // engine runs, single configuration vs. the full 4-member race, at
    // jobs 1 and 4. Results are byte-identical across all four variants
    // (tests/determinism.rs); only wall time may differ. On a single-core
    // host the portfolio rows measure the determinism overhead of the
    // race (epoch accounting + thread spawn), not a speedup.
    for unit in contest_suite() {
        if !matches!(unit.spec.name.as_str(), "unit04" | "unit16") {
            continue;
        }
        let inst = unit.instance().expect("valid");
        for portfolio in [1usize, 4] {
            for jobs in [1usize, 4] {
                let opts = EcoOptions {
                    portfolio,
                    jobs,
                    ..Default::default()
                };
                bench.run(
                    &format!("portfolio{portfolio}-jobs{jobs}/{}", unit.spec.name),
                    || {
                        EcoEngine::new(inst.clone(), opts.clone())
                            .run()
                            .expect("rectifiable")
                    },
                );
            }
        }
    }
    bench.note(
        "portfolio*/: cold runs; outputs byte-identical across portfolio/jobs values, \
         wall time is the only degree of freedom",
    );
    bench.note(
        "unit04/unit16 ours-vs-baseline before this series: 93.2ms vs 21.0ms (4.4x) and \
         57.4ms vs 9.1ms (6.3x); the gap was dominated by redundant decisions on retired \
         enumeration controls in the Eq.-12 query plus unpreprocessed Tseitin copies \
         (fixed by control retirement in cexenum and inprocessing in the SAT core)",
    );
    bench.finish();
}
