//! AIG node representation.

use crate::Lit;

/// A node of an And-Inverter Graph.
///
/// The node at index 0 is always [`Node::Constant`] (logical false in its
/// positive phase). Inputs carry their position within the input list; all
/// other logic is expressed with two-input ANDs whose fanin literals may be
/// complemented.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// The constant-false node (index 0).
    Constant,
    /// A primary (or pseudo-primary) input; `pos` is its position in the
    /// AIG's input list.
    Input {
        /// Position within [`Aig::inputs`](crate::Aig::inputs).
        pos: u32,
    },
    /// A two-input AND gate. Invariant: `fan0 <= fan1` (canonical order).
    And {
        /// First (smaller) fanin literal.
        fan0: Lit,
        /// Second (larger) fanin literal.
        fan1: Lit,
    },
}

impl Node {
    /// Returns `true` for AND nodes.
    #[inline]
    pub fn is_and(&self) -> bool {
        matches!(self, Node::And { .. })
    }

    /// Returns `true` for input nodes.
    #[inline]
    pub fn is_input(&self) -> bool {
        matches!(self, Node::Input { .. })
    }

    /// Returns the fanin literals of an AND node, if any.
    #[inline]
    pub fn fanins(&self) -> Option<(Lit, Lit)> {
        match *self {
            Node::And { fan0, fan1 } => Some((fan0, fan1)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    #[test]
    fn node_kind_predicates() {
        let c = Node::Constant;
        let i = Node::Input { pos: 0 };
        let a = Node::And {
            fan0: Var::new(1).pos(),
            fan1: Var::new(2).neg(),
        };
        assert!(!c.is_and() && !c.is_input());
        assert!(i.is_input() && !i.is_and());
        assert!(a.is_and() && !a.is_input());
        assert_eq!(a.fanins(), Some((Var::new(1).pos(), Var::new(2).neg())));
        assert_eq!(i.fanins(), None);
    }
}
