#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q --workspace

echo "all checks passed"
