// Needs the external `proptest` crate; compiled out by default so the
// workspace builds offline. Enable with `--features proptest` (see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests for the §6 optimization machinery.

use eco_core::{
    enumerate_cex, on_off_sets, select_base, BaseSelectOptions, EcoInstance, OptimizeOptions,
    RebaseQuery, Workspace,
};
use eco_netlist::elaborate;
use proptest::prelude::*;

/// Builds a random rectifiable single-target instance over a random-DAG
/// golden circuit and returns the workspace plus the target's on/off pair
/// and candidate pool.
fn random_query(
    seed: u64,
    n_gates: usize,
) -> Option<(Workspace, eco_aig::Lit, eco_aig::Lit, Vec<usize>)> {
    let golden = eco_workgen::circuits::random_dag(5, n_gates, 3, seed);
    let live: Vec<String> = {
        let e = elaborate(&golden).ok()?;
        let roots: Vec<_> = e.aig.outputs().iter().map(|o| o.lit).collect();
        let cone: std::collections::HashSet<_> = e.aig.cone_vars(&roots).into_iter().collect();
        golden
            .wires
            .iter()
            .filter(|w| e.net_lits.get(*w).is_some_and(|l| cone.contains(&l.var())))
            .cloned()
            .collect()
    };
    if live.is_empty() {
        return None;
    }
    let target = live[live.len() / 2].clone();
    let faulty =
        eco_workgen::cut_targets(&golden, std::slice::from_ref(&target)).expect("target is driven");
    let weights = eco_workgen::assign_weights(
        &faulty,
        eco_workgen::WeightProfile::Uniform { lo: 1, hi: 9 },
        seed,
    );
    let inst = EcoInstance::from_netlists("prop", &faulty, &golden, vec![target], &weights).ok()?;
    let mut ws = Workspace::new(&inst);
    let t = ws.target_vars[0];
    let (f, g) = (ws.f_outs.clone(), ws.g_outs.clone());
    let onoff = on_off_sets(&mut ws.mgr, &f, &g, t);
    if onoff.on == eco_aig::Lit::FALSE || onoff.off == eco_aig::Lit::FALSE {
        return None; // constant patch; nothing to select
    }
    let mut pool: Vec<usize> = (0..ws.cands.len()).collect();
    pool.sort_by_key(|&i| (ws.cands[i].weight, ws.cands[i].name.clone()));
    pool.truncate(24);
    Some((ws, onoff.on, onoff.off, pool))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counterexample enumeration invariants: masks are unique, bounded by
    /// 2^|watch|, and probing a feasible selection yields the empty set.
    #[test]
    fn cex_enumeration_invariants(seed in 0u64..2000, n_gates in 15usize..40) {
        let Some((ws, on, off, pool)) = random_query(seed, n_gates) else {
            return Ok(());
        };
        let mut q = RebaseQuery::new(&ws, on, off, pool.clone());
        let full: Vec<usize> = (0..pool.len()).collect();
        prop_assume!(q.feasible(&full, 100_000) == Some(true));

        let watch: Vec<usize> = full.iter().copied().take(3).collect();
        let cex = enumerate_cex(&mut q, &[], None, &watch, 200_000)
            .expect("within budget");
        prop_assert!(cex.len() <= 1 << watch.len());
        let mut masks = cex.masks.clone();
        masks.sort_unstable();
        masks.dedup();
        prop_assert_eq!(masks.len(), cex.len(), "masks must be unique");

        // Probing with everything selected leaves no counterexample.
        let (probe, hold) = full.split_first().expect("non-empty pool");
        let none = enumerate_cex(&mut q, hold, Some(*probe), &watch, 200_000)
            .expect("within budget");
        prop_assert!(none.is_empty());
    }

    /// select_base always returns a feasible base no more expensive than
    /// the initial one.
    #[test]
    fn selected_bases_are_feasible_and_no_worse(seed in 0u64..2000, n_gates in 15usize..40) {
        let Some((ws, on, off, pool)) = random_query(seed, n_gates) else {
            return Ok(());
        };
        let mut q = RebaseQuery::new(&ws, on, off, pool.clone());
        let full: Vec<usize> = (0..pool.len()).collect();
        prop_assume!(q.feasible(&full, 100_000) == Some(true));
        let initial_cost: u64 = full.iter().map(|&i| ws.cands[pool[i]].weight).sum();

        let opts = BaseSelectOptions {
            watch_size: 3,
            max_rounds: 3,
            ..Default::default()
        };
        let sel = select_base(&ws, &mut q, &full, &opts);
        prop_assert!(sel.cost <= initial_cost);
        prop_assert_eq!(q.feasible(&sel.base, 200_000), Some(true));
        let recomputed: u64 = sel.base.iter().map(|&i| ws.cands[pool[i]].weight).sum();
        prop_assert_eq!(sel.cost, recomputed);
    }

    /// optimize_patches never increases the total cost.
    #[test]
    fn optimization_is_monotone(seed in 0u64..2000, n_gates in 15usize..45) {
        let golden = eco_workgen::circuits::random_dag(5, n_gates, 3, seed);
        let live: Vec<String> = {
            let e = elaborate(&golden).expect("elab");
            let roots: Vec<_> = e.aig.outputs().iter().map(|o| o.lit).collect();
            let cone: std::collections::HashSet<_> =
                e.aig.cone_vars(&roots).into_iter().collect();
            golden
                .wires
                .iter()
                .filter(|w| e.net_lits.get(*w).is_some_and(|l| cone.contains(&l.var())))
                .cloned()
                .collect()
        };
        prop_assume!(live.len() >= 2);
        let targets: Vec<String> = vec![live[live.len() / 3].clone(), live[2 * live.len() / 3].clone()];
        prop_assume!(targets[0] != targets[1]);
        let faulty = eco_workgen::cut_targets(&golden, &targets).expect("targets are driven");
        let weights = eco_workgen::assign_weights(
            &faulty,
            eco_workgen::WeightProfile::Uniform { lo: 1, hi: 20 },
            seed,
        );
        let inst = EcoInstance::from_netlists("mono", &faulty, &golden, targets, &weights)
            .expect("valid");
        let mut ws = Workspace::new(&inst);
        let clustering = eco_core::cluster_targets(&ws);
        let tap = eco_core::TapMap::empty();
        let mut patches = Vec::new();
        for cluster in &clustering.clusters {
            patches.extend(
                eco_core::generate_group_patches(
                    &mut ws,
                    &tap,
                    cluster,
                    &eco_core::PatchGenOptions::default(),
                )
                .patches,
            );
        }
        prop_assume!(!patches.is_empty());
        let stats = eco_core::optimize_patches(&mut ws, &mut patches, &OptimizeOptions::default());
        prop_assert!(
            stats.cost_after <= stats.cost_before,
            "optimizer regressed: {:?}",
            stats
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Eq.-2 precheck agrees with the engine on cut (rectifiable)
    /// instances.
    #[test]
    fn precheck_agrees_on_rectifiable_instances(seed in 0u64..2000, n_gates in 12usize..35) {
        let golden = eco_workgen::circuits::random_dag(5, n_gates, 3, seed);
        let live: Vec<String> = {
            let e = elaborate(&golden).expect("elab");
            let roots: Vec<_> = e.aig.outputs().iter().map(|o| o.lit).collect();
            let cone: std::collections::HashSet<_> =
                e.aig.cone_vars(&roots).into_iter().collect();
            golden
                .wires
                .iter()
                .filter(|w| e.net_lits.get(*w).is_some_and(|l| cone.contains(&l.var())))
                .cloned()
                .collect()
        };
        prop_assume!(!live.is_empty());
        let targets = vec![live[live.len() / 2].clone()];
        let faulty = eco_workgen::cut_targets(&golden, &targets).expect("targets are driven");
        let weights = eco_workgen::assign_weights(
            &faulty,
            eco_workgen::WeightProfile::Unit,
            seed,
        );
        let inst = EcoInstance::from_netlists("pre", &faulty, &golden, targets, &weights)
            .expect("valid");
        let mut ws = Workspace::new(&inst);
        let got = eco_core::check_rectifiable(&mut ws, 512, 1 << 22);
        prop_assert!(got.is_rectifiable(), "{got:?}");
        // And with the precheck enabled, the engine still succeeds.
        let opts = eco_core::EcoOptions {
            precheck_rectifiability: true,
            ..Default::default()
        };
        eco_core::EcoEngine::new(inst, opts).run().expect("rectifiable");
    }
}
